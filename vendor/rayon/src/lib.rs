//! Offline stand-in for the `rayon` crate.
//!
//! The workspace uses exactly one rayon API — `par_chunks_mut(..).enumerate()
//! .for_each(..)` in the parallel GEMM kernel — so this shim implements that
//! one pipeline on std scoped threads. Work is split into contiguous runs of
//! chunks, one per hardware thread, which matches the row-panel access
//! pattern of the kernel (each chunk is one `C` row).

/// Everything the workspace imports via `rayon::prelude::*`.
pub mod prelude {
    pub use crate::ParallelSliceMut;
}

/// Mutable parallel slice splitting (the subset of rayon's trait).
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over non-overlapping mutable chunks of `size`.
    fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T> {
        assert!(size > 0, "chunk size must be positive");
        ParChunksMut { data: self, size }
    }
}

/// Pending parallel chunk iteration.
pub struct ParChunksMut<'a, T> {
    data: &'a mut [T],
    size: usize,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    /// Pairs each chunk with its index, like `ParallelIterator::enumerate`.
    pub fn enumerate(self) -> EnumeratedParChunksMut<'a, T> {
        EnumeratedParChunksMut {
            data: self.data,
            size: self.size,
        }
    }

    /// Applies `f` to every chunk in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut [T]) + Send + Sync,
    {
        self.enumerate().for_each(|(_, chunk)| f(chunk));
    }
}

/// Enumerated variant of [`ParChunksMut`].
pub struct EnumeratedParChunksMut<'a, T> {
    data: &'a mut [T],
    size: usize,
}

impl<T: Send> EnumeratedParChunksMut<'_, T> {
    /// Applies `f` to every `(index, chunk)` pair across worker threads.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &mut [T])) + Send + Sync,
    {
        let mut chunks: Vec<(usize, &mut [T])> =
            self.data.chunks_mut(self.size).enumerate().collect();
        if chunks.is_empty() {
            return;
        }
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(chunks.len());
        if workers <= 1 {
            for item in chunks {
                f(item);
            }
            return;
        }
        // Contiguous runs keep each worker streaming through adjacent rows.
        let per = chunks.len().div_ceil(workers);
        let f = &f;
        std::thread::scope(|scope| {
            while !chunks.is_empty() {
                let take = per.min(chunks.len());
                let batch: Vec<(usize, &mut [T])> = chunks.drain(..take).collect();
                scope.spawn(move || {
                    for item in batch {
                        f(item);
                    }
                });
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn chunks_cover_every_element_once() {
        let mut v = vec![0u64; 10_000];
        v.par_chunks_mut(17).enumerate().for_each(|(i, chunk)| {
            for (k, x) in chunk.iter_mut().enumerate() {
                *x = (i * 17 + k) as u64;
            }
        });
        for (k, &x) in v.iter().enumerate() {
            assert_eq!(x, k as u64);
        }
    }

    #[test]
    fn short_tail_chunk_is_delivered() {
        let mut v = [0u8; 10];
        let mut seen = Vec::new();
        v.par_chunks_mut(4).enumerate().for_each(|(i, chunk)| {
            // Single-threaded determinism is not guaranteed; record lengths
            // via the data itself.
            chunk[0] = (10 * (i + 1) + chunk.len()) as u8;
        });
        for c in v.chunks(4) {
            seen.push(c[0]);
        }
        assert_eq!(seen, vec![14, 24, 32]);
    }
}
