//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! the external `rand` dependency is replaced by this vendored shim. It
//! implements exactly the subset the workspace uses — `StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::random_range` over integer and float
//! ranges, and `SliceRandom::shuffle` — with a deterministic splitmix64
//! generator. Streams differ from the real `rand` crate, which is fine:
//! every consumer in the workspace only relies on seeded reproducibility
//! within one build, never on matching upstream `rand` output.

use std::ops::{Range, RangeInclusive};

/// Core generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction (the subset of `rand::SeedableRng` we need).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The default generator: splitmix64, deterministic and seedable.
#[derive(Debug, Clone)]
pub struct StdRng {
    state: u64,
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // Avoid the all-zero fixed point and decorrelate small seeds.
        Self {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        // splitmix64 (Steele, Lea, Flood 2014): passes BigCrush, one
        // multiply-xor-shift pipeline per draw.
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// A range that knows how to sample itself uniformly.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one uniform value from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 high bits -> uniform in [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty f64 range");
        self.start + unit_f64(rng) * (self.end - self.start)
    }
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty integer range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range");
                let span = (hi - lo) as u64 + 1;
                if span == 0 {
                    // Full-width range: every u64 is a valid draw.
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

int_range!(usize, u64, u32, i64);

/// Convenience sampling methods (the subset of `rand::Rng` we need).
pub trait Rng: RngCore {
    /// Uniform draw from a range.
    fn random_range<S: SampleRange>(&mut self, range: S) -> S::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// In-place slice shuffling (the subset of `rand::seq::SliceRandom`).
pub trait SliceRandom {
    /// Fisher–Yates shuffle driven by `rng`.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = (rng.next_u64() % (i as u64 + 1)) as usize;
            self.swap(i, j);
        }
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    pub use crate::StdRng;
}

/// Everything the workspace imports via `rand::prelude::*`.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::{Rng, RngCore, SeedableRng, SliceRandom};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.random_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&x));
            let k = rng.random_range(3usize..10);
            assert!((3..10).contains(&k));
            let k = rng.random_range(1usize..=4);
            assert!((1..=4).contains(&k));
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }
}
