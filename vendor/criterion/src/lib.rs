//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API surface the workspace's benches use — `Criterion`,
//! `BenchmarkGroup`, `BenchmarkId`, `Throughput`, `criterion_group!` and
//! `criterion_main!` — backed by a simple wall-clock harness: each
//! benchmark runs a short warm-up, then `sample_size` timed samples, and
//! prints the median with min/max spread (plus throughput when declared).
//! There is no statistical analysis, HTML report, or baseline comparison.

use std::time::{Duration, Instant};

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter`, like criterion's `BenchmarkId::new`.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        Self {
            label: format!("{name}/{parameter}"),
        }
    }

    /// Parameter-only id.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

/// Converts the various accepted "benchmark name" argument types.
pub trait IntoBenchmarkLabel {
    /// The printable label.
    fn into_label(self) -> String;
}

impl IntoBenchmarkLabel for BenchmarkId {
    fn into_label(self) -> String {
        self.label
    }
}

impl IntoBenchmarkLabel for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkLabel for String {
    fn into_label(self) -> String {
        self
    }
}

/// Declared per-iteration work, used to report a rate.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timer handle passed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `sample_size` runs of `f` (after one warm-up run).
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        std::hint::black_box(f());
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            std::hint::black_box(f());
            self.samples.push(t0.elapsed());
        }
    }
}

fn report(prefix: &str, label: &str, samples: &mut [Duration], throughput: Option<Throughput>) {
    if samples.is_empty() {
        println!("{prefix}{label}: no samples");
        return;
    }
    samples.sort_unstable();
    let median = samples[samples.len() / 2];
    let rate = throughput.map(|t| {
        let per_s = |units: u64| units as f64 / median.as_secs_f64();
        match t {
            Throughput::Elements(n) => format!(" {:.3e} elem/s", per_s(n)),
            Throughput::Bytes(n) => format!(" {:.3e} B/s", per_s(n)),
        }
    });
    println!(
        "{prefix}{label:<40} median {:>12.3?}  (min {:.3?}, max {:.3?}){}",
        median,
        samples[0],
        samples[samples.len() - 1],
        rate.unwrap_or_default(),
    );
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function(
        &mut self,
        id: impl IntoBenchmarkLabel,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        let label = format!("{}/{}", self.name, id.into_label());
        report("  ", &label, &mut b.samples, self.throughput);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I>(
        &mut self,
        id: impl IntoBenchmarkLabel,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (formatting no-op in this shim).
    pub fn finish(&mut self) {}
}

/// Top-level harness state.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl std::fmt::Display) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 10,
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function(
        &mut self,
        id: impl IntoBenchmarkLabel,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: 10,
        };
        f(&mut b);
        report("", &id.into_label(), &mut b.samples, None);
        self
    }
}

/// Prevents the optimizer from deleting a value (re-export shim).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a group-runner function from bench functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("t");
        group.sample_size(3);
        let mut ran = 0usize;
        group.bench_function("count", |b| {
            b.iter(|| {
                ran += 1;
            })
        });
        group.finish();
        // warm-up + 3 samples
        assert_eq!(ran, 4);
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("k", 64).label, "k/64");
        assert_eq!(BenchmarkId::from_parameter(9).label, "9");
    }
}
