//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this shim reimplements
//! the slice of proptest the workspace's property tests use:
//!
//! * the [`proptest!`] macro with `#![proptest_config(..)]`, `#[test]`
//!   functions and `arg in strategy` bindings;
//! * [`Strategy`] for numeric ranges, tuples, `collection::vec` and
//!   `prop_map`;
//! * [`prop_assert!`], [`prop_assert_eq!`] and [`prop_assume!`].
//!
//! Unlike real proptest there is no shrinking and no persisted failure
//! corpus: each test runs a fixed number of cases sampled from a
//! deterministic generator seeded by the test's name, so failures are
//! reproducible run-to-run and across machines.

use std::ops::Range;

/// Deterministic splitmix64 driving all sampling.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator; the [`proptest!`] macro seeds it with a hash of
    /// the test function's name.
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Seed helper: FNV-1a over the test name, so each test gets its own
    /// stable stream.
    pub fn from_name(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
        }
        Self::new(h)
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty sampling domain");
        self.next_u64() % n
    }
}

/// A value generator. The single method draws one value; there is no
/// shrinking tree.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f` (no shrinking, so this is a plain
    /// function application).
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer range");
                self.start + rng.below((self.end - self.start) as u64) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range");
                lo + rng.below((hi - lo) as u64 + 1) as $t
            }
        }
    )*};
}

int_strategy!(usize, u64, u32, i64, i32);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Generates `Vec`s with a length drawn from `len` and elements drawn
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    /// Result of [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + (rng.next_u64() % span) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Per-test configuration (`cases` only; the other knobs of real proptest
/// have no meaning without shrinking or persistence).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of sampled cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` sampled cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; this shim trims the default so
        // un-configured property tests stay fast in CI.
        Self { cases: 48 }
    }
}

/// Property-test assertion; identical to `assert!` here (no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Property-test equality assertion; identical to `assert_eq!` here.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Skips the current case when the precondition fails. Works because the
/// [`proptest!`] macro wraps each case body in its own closure.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

/// The proptest entry macro: declares `#[test]` functions whose arguments
/// are sampled from strategies for `config.cases` iterations.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg); $($rest)*);
    };
    (@cfg ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::from_name(stringify!($name));
            #[allow(clippy::redundant_closure_call)]
            for _case in 0..config.cases {
                $(
                    let $arg = $crate::Strategy::sample(&($strat), &mut rng);
                )+
                // The closure gives `prop_assume!` an early-exit scope.
                (|| $body)();
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()); $($rest)*);
    };
}

/// Everything the workspace imports via `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest, ProptestConfig, Strategy};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_vecs_sample_in_bounds() {
        let mut rng = crate::TestRng::from_name("ranges_and_vecs");
        for _ in 0..200 {
            let x = (3usize..9).sample(&mut rng);
            assert!((3..9).contains(&x));
            let v = crate::collection::vec(0.0f64..1.0, 2..5).sample(&mut rng);
            assert!(v.len() >= 2 && v.len() < 5);
            assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }
    }

    #[test]
    fn prop_map_applies() {
        let mut rng = crate::TestRng::from_name("prop_map");
        let doubled = (1usize..10).prop_map(|x| x * 2);
        for _ in 0..50 {
            let x = doubled.sample(&mut rng);
            assert_eq!(x % 2, 0);
            assert!((2..20).contains(&x));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_binds_and_assumes(a in 0usize..100, b in 0usize..100) {
            prop_assume!(a != b);
            prop_assert!(a < 100 && b < 100);
            prop_assert_eq!(a + b, b + a);
        }
    }
}
