//! Cross-crate integration tests: the full pipeline (distribution →
//! shape construction → SummaGen execution) against a sequential
//! reference, across shapes, sizes, processor counts and kernels.

use summagen_comm::HockneyModel;
use summagen_core::{multiply, multiply_with_cost, ExecutionMode};
use summagen_matrix::{
    approx_eq, gemm_naive, gemm_tolerance, random_matrix, DenseMatrix, GemmKernel,
};
use summagen_partition::{
    beaumont_column_layout, proportional_areas, PartitionSpec, Shape, ALL_FOUR_SHAPES,
};

fn reference(a: &DenseMatrix, b: &DenseMatrix) -> DenseMatrix {
    let n = a.rows();
    let mut c = DenseMatrix::zeros(n, n);
    gemm_naive(
        n,
        n,
        n,
        1.0,
        a.as_slice(),
        n,
        b.as_slice(),
        n,
        0.0,
        c.as_mut_slice(),
        n,
    );
    c
}

fn check(spec: &PartitionSpec, seed: u64, label: &str) {
    let n = spec.n;
    let a = random_matrix(n, n, seed);
    let b = random_matrix(n, n, seed + 1);
    let res = multiply(spec, &a, &b, ExecutionMode::Real);
    assert!(
        approx_eq(&res.c, &reference(&a, &b), gemm_tolerance(n) * 100.0),
        "{label}: wrong product at n = {n}"
    );
}

#[test]
fn all_shapes_many_sizes() {
    for &n in &[12usize, 17, 33, 64, 100] {
        let areas = proportional_areas(n, &[1.0, 2.0, 0.9]);
        for shape in ALL_FOUR_SHAPES {
            check(&shape.build(n, &areas), n as u64, shape.name());
        }
    }
}

#[test]
fn extension_shapes_many_sizes() {
    for &n in &[16usize, 31, 64] {
        let areas = proportional_areas(n, &[1.4, 1.0, 0.6]);
        for shape in [Shape::RectangleCorner, Shape::LRectangle] {
            check(&shape.build(n, &areas), 1000 + n as u64, shape.name());
        }
    }
}

#[test]
fn extreme_heterogeneity() {
    let n = 60;
    for speeds in [[10.0, 1.0, 1.0], [1.0, 10.0, 1.0], [1.0, 1.0, 10.0]] {
        let areas = proportional_areas(n, &speeds);
        for shape in ALL_FOUR_SHAPES {
            check(
                &shape.build(n, &areas),
                2000,
                &format!("{} at {speeds:?}", shape.name()),
            );
        }
    }
}

#[test]
fn beaumont_layouts_up_to_eight_processors() {
    for p in 1..=8usize {
        let n = 16 * p;
        let speeds: Vec<f64> = (1..=p).map(|i| 0.5 + 0.4 * i as f64).collect();
        let spec = beaumont_column_layout(n, &speeds);
        check(&spec, 3000 + p as u64, &format!("beaumont p={p}"));
    }
}

#[test]
fn one_d_many_processors() {
    let n = 72;
    let areas: Vec<f64> = (1..=8).map(|i| (n * n) as f64 * i as f64 / 36.0).collect();
    let spec = Shape::OneDRectangular.build(n, &areas);
    assert_eq!(spec.nprocs, 8);
    check(&spec, 4000, "1D p=8");
}

#[test]
fn hockney_pricing_does_not_affect_results() {
    let n = 40;
    let areas = proportional_areas(n, &[1.0, 2.0, 0.9]);
    let spec = Shape::SquareCorner.build(n, &areas);
    let a = random_matrix(n, n, 50);
    let b = random_matrix(n, n, 51);
    let free = multiply(&spec, &a, &b, ExecutionMode::Real);
    let priced = multiply_with_cost(
        &spec,
        &a,
        &b,
        ExecutionMode::Real,
        HockneyModel::intra_node(),
    );
    assert_eq!(free.c, priced.c, "cost model changed numerical results");
    assert!(priced.comm_time > free.comm_time);
}

#[test]
fn repeated_runs_are_bitwise_identical() {
    let n = 32;
    let areas = proportional_areas(n, &[1.0, 2.0, 0.9]);
    let spec = Shape::BlockRectangle.build(n, &areas);
    let a = random_matrix(n, n, 60);
    let b = random_matrix(n, n, 61);
    let r1 = multiply(&spec, &a, &b, ExecutionMode::RealWith(GemmKernel::Blocked));
    let r2 = multiply(&spec, &a, &b, ExecutionMode::RealWith(GemmKernel::Blocked));
    assert_eq!(r1.c, r2.c);
}

#[test]
fn facade_prelude_compiles_and_works() {
    use summagen_repro::prelude::*;
    let n = 24;
    let areas = proportional_areas(n, &[1.0, 1.0, 1.0]);
    let spec = Shape::SquareRectangle.build(n, &areas);
    let a = random_matrix(n, n, 70);
    let b = random_matrix(n, n, 71);
    let res = multiply(&spec, &a, &b, ExecutionMode::Real);
    assert_eq!(res.c.rows(), n);
}
