//! Chaos parity across transport backends: the same seeded faults over
//! in-process channels and over loopback TCP must produce bit-identical
//! products and equivalent recovery outcomes.
//!
//! The `Transport` trait sits *below* the lossy-link machinery: wire
//! fates (drop/duplicate/reorder/delay), the stop-and-wait ARQ, and the
//! heartbeat detector all run identically over both backends, so every
//! scenario in this suite is one run per backend plus a comparison.
//! TCP-only faults (refused connects, mid-stream resets, stalled
//! sockets) additionally exercise the connection-level robustness the
//! channel backend never needs.
//!
//! Every failure message carries the backend pair and the raw
//! `SUMMAGEN_CHAOS_SEED` so a red CI log alone reproduces the cell.

use std::sync::Arc;
use std::time::Duration;

use summagen_comm::{Backend, FaultPlan, HeartbeatConfig, HockneyModel, LinkPlan, RuntimeMetrics};
use summagen_core::{multiply_with_recovery, ExecutionMode, RecoveryOptions, RunResult};
use summagen_matrix::{gemm_naive, max_abs_diff, random_matrix, DenseMatrix};
use summagen_partition::{Shape, ALL_FOUR_SHAPES};

const SPEEDS: [f64; 3] = [1.0, 2.0, 0.9];
const N: usize = 32;

fn reference(a: &DenseMatrix, b: &DenseMatrix) -> DenseMatrix {
    let n = a.rows();
    let mut c = DenseMatrix::zeros(n, n);
    gemm_naive(
        n,
        n,
        n,
        1.0,
        a.as_slice(),
        n,
        b.as_slice(),
        n,
        0.0,
        c.as_mut_slice(),
        n,
    );
    c
}

/// Reproduction context for failure messages (satellite requirement:
/// chaos harnesses print the active seed and backend on failure).
fn ctx(backend: Backend) -> String {
    let seed_env = std::env::var("SUMMAGEN_CHAOS_SEED").unwrap_or_else(|_| "<unset>".into());
    format!("backend={} SUMMAGEN_CHAOS_SEED={seed_env}", backend.name())
}

/// The parity sweep's seeds, with any `SUMMAGEN_CHAOS_SEED` from the CI
/// matrix folded in.
fn parity_seeds() -> Vec<u64> {
    let mut seeds = vec![2u64, 5, 7];
    if let Ok(v) = std::env::var("SUMMAGEN_CHAOS_SEED") {
        if let Ok(s) = v.trim().parse::<u64>() {
            if !seeds.contains(&s) {
                seeds.push(s);
            }
        }
    }
    seeds
}

fn base_opts(backend: Backend) -> RecoveryOptions {
    RecoveryOptions {
        max_attempts: 4,
        retry_backoff: 0.1,
        recv_timeout: Duration::from_millis(2_000),
        backend,
        ..RecoveryOptions::default()
    }
}

/// The lossy wire of the soak, reused here at parity scale.
fn lossy_plan(seed: u64) -> LinkPlan {
    LinkPlan::seeded(seed)
        .drop_rate(120)
        .duplicate_rate(80)
        .reorder_rate(60)
        .delay_rate(40, 1e-4)
}

fn run_pair(
    shape: Shape,
    a: &DenseMatrix,
    b: &DenseMatrix,
    mk_opts: impl Fn(Backend) -> RecoveryOptions,
) -> (RunResult, RunResult) {
    let run = |backend: Backend| {
        multiply_with_recovery(
            shape,
            &SPEEDS,
            a,
            b,
            ExecutionMode::Real,
            HockneyModel::intra_node(),
            &[],
            &mk_opts(backend),
        )
        .unwrap_or_else(|e| panic!("{} [{}]: run failed: {e}", shape.name(), ctx(backend)))
    };
    (run(Backend::Channel), run(Backend::Tcp))
}

#[test]
fn fault_free_runs_are_bit_identical_across_backends() {
    // The acceptance bar of the backend abstraction: with no faults at
    // all, channels and loopback TCP produce the same product bits and
    // the same virtual makespan on every paper shape.
    let a = random_matrix(N, N, 71);
    let b = random_matrix(N, N, 72);
    let want = reference(&a, &b);
    for shape in ALL_FOUR_SHAPES {
        let (chan, tcp) = run_pair(shape, &a, &b, base_opts);
        assert_eq!(
            max_abs_diff(&chan.c, &tcp.c),
            0.0,
            "{} [{}]: backends disagree on the product bits",
            shape.name(),
            ctx(Backend::Tcp)
        );
        assert!(
            max_abs_diff(&chan.c, &want) < 1e-9,
            "{}: product wrong",
            shape.name()
        );
        assert_eq!(
            chan.exec_time.to_bits(),
            tcp.exec_time.to_bits(),
            "{} [{}]: virtual makespans diverged (chan {} vs tcp {})",
            shape.name(),
            ctx(Backend::Tcp),
            chan.exec_time,
            tcp.exec_time
        );
        assert!(chan.recovery.is_none() && tcp.recovery.is_none());
    }
}

#[test]
fn seeded_lossy_chaos_is_bit_identical_across_backends() {
    // The same seeded drop/duplicate/reorder/delay plan over both
    // backends: wire fates hash from (seed, link, seq, attempt), so the
    // retransmission schedule — and therefore the product bits and the
    // virtual makespan — must be identical.
    let a = random_matrix(N, N, 73);
    let b = random_matrix(N, N, 74);
    for &seed in &parity_seeds() {
        let (chan, tcp) = run_pair(Shape::SquareCorner, &a, &b, |backend| RecoveryOptions {
            link_plan: Some(lossy_plan(seed)),
            ..base_opts(backend)
        });
        assert_eq!(
            max_abs_diff(&chan.c, &tcp.c),
            0.0,
            "seed {seed} [{}]: lossy products diverged across backends",
            ctx(Backend::Tcp)
        );
        assert_eq!(
            chan.exec_time.to_bits(),
            tcp.exec_time.to_bits(),
            "seed {seed} [{}]: lossy makespans diverged (chan {} vs tcp {})",
            ctx(Backend::Tcp),
            chan.exec_time,
            tcp.exec_time
        );
        assert!(
            chan.recovery.is_none() && tcp.recovery.is_none(),
            "seed {seed}: wire faults alone must not trigger recovery"
        );
    }
}

#[test]
fn seeded_kill_chaos_recovers_equivalently_across_backends() {
    // Seeded rank kills: both backends must converge on the same
    // recovery story — same attempt count, same dropped devices, same
    // survivors — and a correct product.
    let a = random_matrix(N, N, 75);
    let b = random_matrix(N, N, 76);
    let want = reference(&a, &b);
    for &seed in &parity_seeds() {
        let plan = FaultPlan::seeded(seed, SPEEDS.len());
        let run = |backend: Backend| {
            multiply_with_recovery(
                Shape::OneDRectangular,
                &SPEEDS,
                &a,
                &b,
                ExecutionMode::Real,
                HockneyModel::intra_node(),
                std::slice::from_ref(&plan),
                &base_opts(backend),
            )
            .map_err(|e| e.to_string())
        };
        let chan = run(Backend::Channel);
        let tcp = run(Backend::Tcp);
        match (&chan, &tcp) {
            (Ok(c), Ok(t)) => {
                assert!(
                    max_abs_diff(&c.c, &want) < 1e-9 && max_abs_diff(&t.c, &want) < 1e-9,
                    "seed {seed} [{}]: wrong product",
                    ctx(Backend::Tcp)
                );
                let story = |r: &RunResult| {
                    r.recovery
                        .as_ref()
                        .map(|rep| {
                            (
                                rep.attempts,
                                rep.failed_devices.clone(),
                                rep.surviving_devices.clone(),
                            )
                        })
                        .unwrap_or((1, Vec::new(), vec![0, 1, 2]))
                };
                assert_eq!(
                    story(c),
                    story(t),
                    "seed {seed} [{}]: recovery stories diverged",
                    ctx(Backend::Tcp)
                );
            }
            (Err(ce), Err(te)) => assert_eq!(
                ce,
                te,
                "seed {seed} [{}]: typed errors diverged",
                ctx(Backend::Tcp)
            ),
            _ => panic!(
                "seed {seed} [{}]: one backend recovered, the other errored: chan={chan:?} tcp={tcp:?}",
                ctx(Backend::Tcp)
            ),
        }
    }
}

#[test]
fn injected_connection_reset_is_absorbed_transparently() {
    // A mid-stream reset on the 1→0 link before its second frame (that
    // link carries four frames on `SquareCorner` at this size): the
    // sender's write fails, the backend reconnects and resends, and the
    // per-link sequence cursor suppresses any duplicate — no recovery,
    // product identical to the channel run.
    let a = random_matrix(N, N, 77);
    let b = random_matrix(N, N, 78);
    let m = RuntimeMetrics::fresh();
    let metrics = Arc::clone(&m);
    let (chan, tcp) = run_pair(Shape::SquareCorner, &a, &b, move |backend| {
        RecoveryOptions {
            link_plan: Some(LinkPlan::default().reset_connection(1, 0, 1)),
            metrics: (backend == Backend::Tcp).then(|| Arc::clone(&metrics)),
            ..base_opts(backend)
        }
    });
    assert!(
        m.tcp_resets.get() >= 1,
        "[{}] the reset injector never fired",
        ctx(Backend::Tcp)
    );
    assert!(
        m.tcp_reconnects.get() >= 1,
        "[{}] the reset was not followed by a reconnect",
        ctx(Backend::Tcp)
    );
    assert_eq!(
        max_abs_diff(&chan.c, &tcp.c),
        0.0,
        "[{}] reset-and-resend changed the product",
        ctx(Backend::Tcp)
    );
    assert!(
        tcp.recovery.is_none(),
        "[{}] a transparent reconnect must not surface as recovery",
        ctx(Backend::Tcp)
    );
}

#[test]
fn refused_connects_within_budget_are_retried_with_backoff() {
    // The first three dials of 0→1 are refused; the bounded-backoff
    // retry loop must absorb them and the run completes cleanly.
    let a = random_matrix(N, N, 79);
    let b = random_matrix(N, N, 80);
    let want = reference(&a, &b);
    let m = RuntimeMetrics::fresh();
    let metrics = Arc::clone(&m);
    let run = multiply_with_recovery(
        Shape::OneDRectangular,
        &SPEEDS,
        &a,
        &b,
        ExecutionMode::Real,
        HockneyModel::intra_node(),
        &[],
        &RecoveryOptions {
            link_plan: Some(LinkPlan::default().refuse_connects(0, 1, 3)),
            metrics: Some(metrics),
            ..base_opts(Backend::Tcp)
        },
    )
    .unwrap_or_else(|e| {
        panic!(
            "[{}] refusals within budget failed the run: {e}",
            ctx(Backend::Tcp)
        )
    });
    assert!(
        m.tcp_connect_retries.get() >= 3,
        "[{}] expected at least 3 dial retries, saw {}",
        ctx(Backend::Tcp),
        m.tcp_connect_retries.get()
    );
    assert!(
        run.recovery.is_none(),
        "retried dials must stay transparent"
    );
    assert!(max_abs_diff(&run.c, &want) < 1e-9);
}

#[test]
fn refusals_exhausting_the_budget_feed_shrink_and_retry() {
    // A link whose dials are *always* refused: the sender surfaces
    // `Unreachable` naming rank 1, recovery shrinks the blamed peer out
    // (replaying the same set would replay the same exhaustion), and the
    // retry over the survivors completes with a correct product —
    // connection-level failure feeds the PR-1 recovery loop instead of
    // hanging or burning the whole attempt budget.
    let a = random_matrix(N, N, 81);
    let b = random_matrix(N, N, 82);
    let want = reference(&a, &b);
    let run = multiply_with_recovery(
        Shape::OneDRectangular,
        &SPEEDS,
        &a,
        &b,
        ExecutionMode::Real,
        HockneyModel::intra_node(),
        &[],
        &RecoveryOptions {
            link_plan: Some(LinkPlan::default().refuse_connects(0, 1, u32::MAX)),
            ..base_opts(Backend::Tcp)
        },
    )
    .unwrap_or_else(|e| {
        panic!(
            "[{}] recovery from dead link failed: {e}",
            ctx(Backend::Tcp)
        )
    });
    let rep = run
        .recovery
        .expect("an unreachable peer must force a retry");
    assert!(
        rep.attempts >= 2,
        "[{}] report implies no retry: {rep:?}",
        ctx(Backend::Tcp)
    );
    assert!(
        rep.failed_devices.contains(&1),
        "[{}] the unreachable peer was not shrunk out: {rep:?}",
        ctx(Backend::Tcp)
    );
    assert!(max_abs_diff(&run.c, &want) < 1e-9);
}

#[test]
fn stalled_socket_is_ridden_out_without_correctness_loss() {
    // A 100 ms stall before the 0→1 link's second frame: well under the
    // write deadline and heartbeat suspicion threshold, so the run just
    // absorbs the latency. The stall counter proves the injector fired.
    let a = random_matrix(N, N, 83);
    let b = random_matrix(N, N, 84);
    let want = reference(&a, &b);
    let m = RuntimeMetrics::fresh();
    let metrics = Arc::clone(&m);
    let run = multiply_with_recovery(
        Shape::SquareRectangle,
        &SPEEDS,
        &a,
        &b,
        ExecutionMode::Real,
        HockneyModel::intra_node(),
        &[],
        &RecoveryOptions {
            link_plan: Some(LinkPlan::default().stall_socket(0, 1, 1, 100)),
            metrics: Some(metrics),
            ..base_opts(Backend::Tcp)
        },
    )
    .unwrap_or_else(|e| panic!("[{}] stalled socket failed the run: {e}", ctx(Backend::Tcp)));
    assert!(
        m.tcp_stalls.get() >= 1,
        "[{}] the stall injector never fired",
        ctx(Backend::Tcp)
    );
    assert!(run.recovery.is_none());
    assert!(max_abs_diff(&run.c, &want) < 1e-9);
}

#[test]
fn silent_hang_is_detected_and_recovered_on_both_backends() {
    // The soak's silent-hang scenario at parity scale: rank 2 goes
    // quiet on a lossy wire; the heartbeat watchdog must detect it on
    // either backend and shrink-and-retry must converge on the same
    // survivors with a correct product.
    let a = random_matrix(N, N, 85);
    let b = random_matrix(N, N, 86);
    let want = reference(&a, &b);
    let run = |backend: Backend| {
        multiply_with_recovery(
            Shape::SquareCorner,
            &SPEEDS,
            &a,
            &b,
            ExecutionMode::Real,
            HockneyModel::intra_node(),
            &[],
            &RecoveryOptions {
                link_plan: Some(lossy_plan(2).hang_rank(2, 2)),
                heartbeat: Some(HeartbeatConfig::default()),
                ..base_opts(backend)
            },
        )
        .unwrap_or_else(|e| panic!("[{}] hang recovery failed: {e}", ctx(backend)))
    };
    let chan = run(Backend::Channel);
    let tcp = run(Backend::Tcp);
    for (backend, res) in [(Backend::Channel, &chan), (Backend::Tcp, &tcp)] {
        let rep = res
            .recovery
            .as_ref()
            .unwrap_or_else(|| panic!("[{}] a hung rank must force a retry", ctx(backend)));
        assert!(
            rep.detected_failures >= 1,
            "[{}] the hang was never *detected* (announced: {})",
            ctx(backend),
            rep.announced_failures
        );
        assert!(
            rep.failed_devices.contains(&2),
            "[{}] recovery dropped {:?}, not the hung rank 2",
            ctx(backend),
            rep.failed_devices
        );
        assert!(
            max_abs_diff(&res.c, &want) < 1e-9,
            "[{}] recovered product wrong",
            ctx(backend)
        );
    }
    let chan_rep = chan.recovery.as_ref().unwrap();
    let tcp_rep = tcp.recovery.as_ref().unwrap();
    assert_eq!(
        (chan_rep.attempts, &chan_rep.failed_devices),
        (tcp_rep.attempts, &tcp_rep.failed_devices),
        "[{}] hang recovery stories diverged across backends",
        ctx(Backend::Tcp)
    );
}
