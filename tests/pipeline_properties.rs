//! Property-based integration tests over the whole pipeline.

use proptest::prelude::*;
use summagen_core::{multiply, ExecutionMode};
use summagen_matrix::{approx_eq, gemm_naive, gemm_tolerance, random_matrix, DenseMatrix};
use summagen_partition::{
    load_imbalancing_areas, proportional_areas, DiscreteFpm, ALL_FOUR_SHAPES,
};
use summagen_platform::speed::{ConstantSpeed, TabulatedSpeed};

fn reference(a: &DenseMatrix, b: &DenseMatrix) -> DenseMatrix {
    let n = a.rows();
    let mut c = DenseMatrix::zeros(n, n);
    gemm_naive(
        n,
        n,
        n,
        1.0,
        a.as_slice(),
        n,
        b.as_slice(),
        n,
        0.0,
        c.as_mut_slice(),
        n,
    );
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Whole-pipeline correctness: random speeds -> proportional areas ->
    /// each shape -> SummaGen product equals the reference.
    #[test]
    fn pipeline_correct_for_random_speeds(
        n in 10usize..48,
        s0 in 0.2f64..5.0,
        s1 in 0.2f64..5.0,
        s2 in 0.2f64..5.0,
        seed in 0u64..1_000,
    ) {
        let areas = proportional_areas(n, &[s0, s1, s2]);
        let a = random_matrix(n, n, seed);
        let b = random_matrix(n, n, seed + 1);
        let want = reference(&a, &b);
        for shape in ALL_FOUR_SHAPES {
            let spec = shape.build(n, &areas);
            let res = multiply(&spec, &a, &b, ExecutionMode::Real);
            prop_assert!(
                approx_eq(&res.c, &want, gemm_tolerance(n) * 100.0),
                "{} at n={n} speeds=({s0:.2},{s1:.2},{s2:.2})",
                shape.name()
            );
        }
    }

    /// FPM pipeline: random tabulated speed functions -> load-imbalancing
    /// DP -> shapes -> correct products, areas conserved.
    #[test]
    fn fpm_pipeline_correct_for_random_profiles(
        n in 24usize..56,
        p0 in 0.5f64..4.0,
        p1 in 0.5f64..4.0,
        p2 in 0.5f64..4.0,
        drop in 0.2f64..0.9,
        seed in 0u64..1_000,
    ) {
        // Non-smooth profiles: each processor has a cliff at a random
        // fraction of the workload.
        let n2 = (n * n) as f64;
        let mk = |peak: f64, frac: f64| {
            TabulatedSpeed::new(vec![
                (0.0, peak * 1e9),
                (n2 * frac, peak * 1e9),
                ((n2 * frac + 1.0).min(n2 - 1.0), peak * drop * 1e9),
                (n2, peak * drop * 1e9),
            ])
        };
        let fpms = vec![
            DiscreteFpm::from_speed(&mk(p0, 0.4), n, 48),
            DiscreteFpm::from_speed(&mk(p1, 0.6), n, 48),
            DiscreteFpm::from_speed(&mk(p2, 0.5), n, 48),
        ];
        let areas = load_imbalancing_areas(n, &fpms);
        prop_assert!((areas.iter().sum::<f64>() - n2).abs() < 1e-6);
        prop_assert!(areas.iter().all(|&a| a > 0.0));
        let a = random_matrix(n, n, seed);
        let b = random_matrix(n, n, seed + 1);
        let want = reference(&a, &b);
        for shape in ALL_FOUR_SHAPES {
            let spec = shape.build(n, &areas);
            prop_assert_eq!(spec.areas().iter().sum::<usize>(), n * n);
            let res = multiply(&spec, &a, &b, ExecutionMode::Real);
            prop_assert!(
                approx_eq(&res.c, &want, gemm_tolerance(n) * 100.0),
                "{} at n={n}", shape.name()
            );
        }
    }

    /// Traffic accounting conservation: total bytes sent equals total
    /// bytes received across ranks.
    #[test]
    fn traffic_is_conserved(n in 12usize..40, seed in 0u64..500) {
        let areas = proportional_areas(n, &[1.0, 2.0, 0.9]);
        let spec = ALL_FOUR_SHAPES[(seed % 4) as usize].build(n, &areas);
        let a = random_matrix(n, n, seed);
        let b = random_matrix(n, n, seed + 1);
        let res = multiply(&spec, &a, &b, ExecutionMode::Real);
        let sent: u64 = res.traffic.iter().map(|t| t.bytes_sent).sum();
        let recv: u64 = res.traffic.iter().map(|t| t.bytes_recv).sum();
        prop_assert_eq!(sent, recv);
    }

    /// Clock sanity: exec time >= comp and comm components on every rank,
    /// and the balanced distribution beats a degenerate one on constant
    /// speeds.
    #[test]
    fn clock_components_are_consistent(n in 12usize..40, seed in 0u64..500) {
        use summagen_core::simulate;
        use summagen_comm::HockneyModel;
        use summagen_platform::{AbstractProcessor, Platform};
        use summagen_platform::device::HASWELL_E5_2670V3;
        use std::sync::Arc;

        let platform = Platform::new(
            (0..3)
                .map(|i| AbstractProcessor::new(
                    HASWELL_E5_2670V3,
                    Arc::new(ConstantSpeed::new(1e9 * (i + 1) as f64)),
                ))
                .collect(),
            230.0,
        );
        let areas = proportional_areas(n, &[1.0, 2.0, 3.0]);
        let spec = ALL_FOUR_SHAPES[(seed % 4) as usize].build(n, &areas);
        let r = simulate(&spec, &platform, HockneyModel::intra_node());
        for c in &r.clocks {
            prop_assert!(c.now + 1e-12 >= c.comp_time);
            prop_assert!(c.now + 1e-12 >= c.comm_time);
            prop_assert!(c.now <= c.comp_time + c.comm_time + 1e-12);
        }
        prop_assert!(r.exec_time > 0.0);
    }
}
