//! Stress and property tests for the message-passing runtime: randomized
//! collective schedules, overlapping subgroups, and conservation
//! invariants under concurrency.

use proptest::prelude::*;
use summagen_comm::{BcastAlgorithm, Payload, ReduceOp, Universe, ZeroCost};

#[test]
fn many_interleaved_subgroups() {
    // Every pair (i, j) forms a subgroup; each performs a bcast. 6 ranks
    // -> 15 overlapping communicators active at once.
    let p = 6;
    let out = Universe::new(p, ZeroCost).run(|comm| {
        let me = comm.rank();
        let mut received = Vec::new();
        for i in 0..p {
            for j in (i + 1)..p {
                if me == i || me == j {
                    let label = (i * p + j) as u64;
                    let mut sub = comm.subgroup(&[i, j], label).unwrap();
                    let v = sub.bcast(0, Payload::U64(vec![(i * 100 + j) as u64]));
                    received.push(v.into_u64()[0]);
                }
            }
        }
        received
    });
    // Each rank participates in p-1 pairs and must have received the
    // pair-specific value each time.
    for (me, vals) in out.iter().enumerate() {
        assert_eq!(vals.len(), p - 1, "rank {me}");
        for &v in vals {
            let (i, j) = ((v / 100) as usize, (v % 100) as usize);
            assert!(i == me || j == me);
        }
    }
}

#[test]
fn heavy_out_of_order_traffic() {
    // Rank 0 sends 100 tagged messages; rank 1 receives them in reverse.
    let out = Universe::new(2, ZeroCost).run(|comm| {
        if comm.rank() == 0 {
            for tag in 0..100u64 {
                comm.send(1, tag, Payload::U64(vec![tag * 7]));
            }
            0
        } else {
            let mut sum = 0;
            for tag in (0..100u64).rev() {
                sum += comm.recv(0, tag).into_u64()[0];
            }
            sum
        }
    });
    assert_eq!(out[1], 7 * (0..100).sum::<u64>());
}

#[test]
fn nested_subgroups() {
    // Subgroup of a subgroup: {0..5} -> evens {0,2,4} -> {0,4}.
    let out = Universe::new(6, ZeroCost).run(|comm| {
        let evens = [0usize, 2, 4];
        if let Some(sub) = comm.subgroup(&evens, 1) {
            // Within the even group, local ranks 0 and 2 are global 0, 4.
            if sub.rank() == 0 || sub.rank() == 2 {
                let mut inner = sub.subgroup(&[0, 2], 2).unwrap();
                let v = inner.bcast(1, Payload::U64(vec![comm.rank() as u64]));
                return v.into_u64()[0] as i64;
            }
        }
        -1
    });
    // The inner bcast root (local 1 of inner = global 4) wins.
    assert_eq!(out[0], 4);
    assert_eq!(out[4], 4);
    assert_eq!(out[2], -1);
    assert_eq!(out[1], -1);
}

#[test]
fn collectives_with_empty_payloads() {
    let out = Universe::new(4, ZeroCost).run(|mut comm| {
        let b = comm.bcast(0, Payload::F64(Vec::new())).into_f64();
        let g = comm.gather(0, Payload::U64(Vec::new()));
        comm.barrier();
        (b.len(), g.map(|v| v.len()))
    });
    assert_eq!(out[0], (0, Some(4)));
    assert_eq!(out[1], (0, None));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random collective schedules: any sequence of (bcast root, algo,
    /// payload size) pairs produces the root's payload everywhere and
    /// conserves bytes.
    #[test]
    fn random_bcast_schedules(
        p in 2usize..7,
        schedule in proptest::collection::vec((0usize..7, 0usize..2, 0usize..500), 1..12),
    ) {
        let out = Universe::new(p, ZeroCost).run(|mut comm| {
            let mut ok = true;
            for &(root, algo, len) in &schedule {
                let root = root % p;
                let algo = if algo == 0 {
                    BcastAlgorithm::Flat
                } else {
                    BcastAlgorithm::Binomial
                };
                let payload = Payload::F64(vec![root as f64; len]);
                let got = comm.bcast_with(root, payload, algo).into_f64();
                ok &= got.len() == len && got.iter().all(|&x| x == root as f64);
            }
            (ok, comm.traffic())
        });
        prop_assert!(out.iter().all(|(ok, _)| *ok));
        let sent: u64 = out.iter().map(|(_, t)| t.bytes_sent).sum();
        let recv: u64 = out.iter().map(|(_, t)| t.bytes_recv).sum();
        prop_assert_eq!(sent, recv);
    }

    /// allreduce results agree on every rank and match a serial fold,
    /// regardless of op and vector contents.
    #[test]
    fn allreduce_agrees_with_serial_fold(
        p in 1usize..6,
        data in proptest::collection::vec(-100.0f64..100.0, 1..8),
        op_idx in 0usize..3,
    ) {
        let op = [ReduceOp::Sum, ReduceOp::Max, ReduceOp::Min][op_idx];
        let out = Universe::new(p, ZeroCost).run(|mut comm| {
            // Rank r contributes data shifted by r.
            let mine: Vec<f64> = data.iter().map(|&x| x + comm.rank() as f64).collect();
            comm.allreduce_f64(&mine, op)
        });
        // Serial expectation.
        let mut expect: Vec<f64> = data.clone();
        for r in 1..p {
            let contrib: Vec<f64> = data.iter().map(|&x| x + r as f64).collect();
            for (e, c) in expect.iter_mut().zip(&contrib) {
                *e = match op {
                    ReduceOp::Sum => *e + c,
                    ReduceOp::Max => e.max(*c),
                    ReduceOp::Min => e.min(*c),
                };
            }
        }
        for r in &out {
            prop_assert_eq!(r.clone(), expect.clone());
        }
    }

    /// Ring send/recv of random payload sizes conserves content through
    /// arbitrary rotations.
    #[test]
    fn ring_rotation_conserves_data(
        p in 2usize..7,
        len in 0usize..200,
        rounds in 1usize..5,
    ) {
        let out = Universe::new(p, ZeroCost).run(|comm| {
            let me = comm.rank();
            let mut data: Vec<f64> = (0..len).map(|k| (me * 1000 + k) as f64).collect();
            for round in 0..rounds {
                let right = (me + 1) % p;
                let left = (me + p - 1) % p;
                data = comm
                    .sendrecv(right, left, round as u64, Payload::F64(data))
                    .into_f64();
            }
            data
        });
        // After `rounds` rotations, rank r holds the data that started at
        // (r - rounds) mod p... actually data moves to the right, so rank
        // r holds data from (r + p - rounds % p) % p.
        for (r, data) in out.iter().enumerate() {
            let origin = (r + p - rounds % p) % p;
            prop_assert_eq!(data.len(), len);
            for (k, &v) in data.iter().enumerate() {
                prop_assert_eq!(v, (origin * 1000 + k) as f64);
            }
        }
    }
}
