//! Stress and property tests for the message-passing runtime: randomized
//! collective schedules, overlapping subgroups, conservation invariants
//! under concurrency, and failure propagation (panics mid-collective,
//! mismatched participation) under short timeouts.

use std::time::{Duration, Instant};

use proptest::prelude::*;
use summagen_comm::{
    BcastAlgorithm, CommError, CommResult, FailureCause, Payload, ReduceOp, Universe, ZeroCost,
};

#[test]
fn many_interleaved_subgroups() {
    // Every pair (i, j) forms a subgroup; each performs a bcast. 6 ranks
    // -> 15 overlapping communicators active at once.
    let p = 6;
    let out = Universe::new(p, ZeroCost).run(|comm| {
        let me = comm.rank();
        let mut received = Vec::new();
        for i in 0..p {
            for j in (i + 1)..p {
                if me == i || me == j {
                    let label = (i * p + j) as u64;
                    let mut sub = comm.subgroup(&[i, j], label).unwrap();
                    let v = sub.bcast(0, Payload::U64(vec![(i * 100 + j) as u64]));
                    received.push(v.into_u64()[0]);
                }
            }
        }
        received
    });
    // Each rank participates in p-1 pairs and must have received the
    // pair-specific value each time.
    for (me, vals) in out.iter().enumerate() {
        assert_eq!(vals.len(), p - 1, "rank {me}");
        for &v in vals {
            let (i, j) = ((v / 100) as usize, (v % 100) as usize);
            assert!(i == me || j == me);
        }
    }
}

#[test]
fn heavy_out_of_order_traffic() {
    // Rank 0 sends 100 tagged messages; rank 1 receives them in reverse.
    let out = Universe::new(2, ZeroCost).run(|comm| {
        if comm.rank() == 0 {
            for tag in 0..100u64 {
                comm.send(1, tag, Payload::U64(vec![tag * 7]));
            }
            0
        } else {
            let mut sum = 0;
            for tag in (0..100u64).rev() {
                sum += comm.recv(0, tag).into_u64()[0];
            }
            sum
        }
    });
    assert_eq!(out[1], 7 * (0..100).sum::<u64>());
}

#[test]
fn nested_subgroups() {
    // Subgroup of a subgroup: {0..5} -> evens {0,2,4} -> {0,4}.
    let out = Universe::new(6, ZeroCost).run(|comm| {
        let evens = [0usize, 2, 4];
        if let Some(sub) = comm.subgroup(&evens, 1) {
            // Within the even group, local ranks 0 and 2 are global 0, 4.
            if sub.rank() == 0 || sub.rank() == 2 {
                let mut inner = sub.subgroup(&[0, 2], 2).unwrap();
                let v = inner.bcast(1, Payload::U64(vec![comm.rank() as u64]));
                return v.into_u64()[0] as i64;
            }
        }
        -1
    });
    // The inner bcast root (local 1 of inner = global 4) wins.
    assert_eq!(out[0], 4);
    assert_eq!(out[4], 4);
    assert_eq!(out[2], -1);
    assert_eq!(out[1], -1);
}

#[test]
fn collectives_with_empty_payloads() {
    let out = Universe::new(4, ZeroCost).run(|mut comm| {
        let b = comm.bcast(0, Payload::F64(Vec::new())).into_f64();
        let g = comm.gather(0, Payload::U64(Vec::new()));
        comm.barrier();
        (b.len(), g.map(|v| v.len()))
    });
    assert_eq!(out[0], (0, Some(4)));
    assert_eq!(out[1], (0, None));
}

#[test]
fn panic_mid_broadcast_propagates_to_survivors() {
    // Rank 1 panics between two collective rounds. The survivors must
    // observe `PeerFailed(1)` on the next round instead of hanging until
    // the receive timeout.
    let t0 = Instant::now();
    let failure = Universe::new(4, ZeroCost)
        .recv_timeout(Duration::from_millis(250))
        .try_run(|mut comm| -> CommResult<u64> {
            let v = comm.try_bcast(0, Payload::U64(vec![11]))?;
            if comm.rank() == 1 {
                panic!("simulated accelerator fault");
            }
            comm.try_bcast(2, Payload::U64(vec![22]))?;
            Ok(v.try_into_u64()?[0])
        })
        .expect_err("rank 1 panics");
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "propagation took {:?}",
        t0.elapsed()
    );
    assert_eq!(failure.crashed_ranks(), vec![1]);
    let panicked = failure
        .failed
        .iter()
        .find(|fr| fr.rank == 1)
        .expect("rank 1 recorded");
    match &panicked.cause {
        FailureCause::Panic(msg) => assert!(msg.contains("simulated accelerator fault")),
        other => panic!("want Panic cause, got {other:?}"),
    }
    for fr in failure.failed.iter().filter(|fr| fr.rank != 1) {
        assert_eq!(
            fr.cause,
            FailureCause::Error(CommError::PeerFailed { rank: 1 }),
            "rank {} saw the wrong error",
            fr.rank
        );
    }
}

#[test]
fn mismatched_collective_participation_times_out_cleanly() {
    // Rank 2 skips the broadcast every other rank joins: the root's
    // message to rank 2 is never consumed and ranks waiting on rank 2's
    // participation in the follow-up gather starve. With a millisecond
    // timeout this resolves as typed `Timeout`s, not a 60 s hang.
    let t0 = Instant::now();
    let failure = Universe::new(3, ZeroCost)
        .recv_timeout(Duration::from_millis(200))
        .try_run(|mut comm| -> CommResult<()> {
            if comm.rank() != 2 {
                comm.try_bcast(0, Payload::U64(vec![5]))?;
                comm.try_gather(0, Payload::U64(vec![comm.rank() as u64]))?;
            }
            Ok(())
        })
        .expect_err("the gather can never complete without rank 2");
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "deadlock took {:?} to detect",
        t0.elapsed()
    );
    // Nobody crashed — the failure is pure starvation, so a recovery
    // policy must not evict anyone.
    assert!(failure.crashed_ranks().is_empty());
    let timed_out = failure
        .failed
        .iter()
        .filter(|fr| matches!(fr.cause, FailureCause::Error(CommError::Timeout { .. })))
        .count();
    assert!(timed_out >= 1, "at least one rank must report Timeout");
}

#[test]
fn send_to_dead_rank_fails_fast() {
    // After rank 1 dies, sends towards it must fail immediately with a
    // typed error instead of queueing into the void.
    let failure = Universe::new(2, ZeroCost)
        .recv_timeout(Duration::from_millis(250))
        .try_run(|comm| -> CommResult<()> {
            if comm.rank() == 1 {
                panic!("rank 1 dies before receiving");
            }
            // Rank 0: keep sending until the death notice lands, then
            // verify the error names the dead peer.
            for i in 0..1000u64 {
                if let Err(e) = comm.try_send(1, 0, Payload::U64(vec![i])) {
                    match e {
                        CommError::PeerFailed { rank } | CommError::ChannelClosed { rank } => {
                            assert_eq!(rank, 1);
                            return Err(e);
                        }
                        other => panic!("unexpected error {other}"),
                    }
                }
                std::thread::sleep(Duration::from_millis(1));
            }
            panic!("send to dead rank never failed");
        })
        .expect_err("both ranks end abnormally");
    assert_eq!(failure.crashed_ranks(), vec![1]);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random collective schedules: any sequence of (bcast root, algo,
    /// payload size) pairs produces the root's payload everywhere and
    /// conserves bytes.
    #[test]
    fn random_bcast_schedules(
        p in 2usize..7,
        schedule in proptest::collection::vec((0usize..7, 0usize..2, 0usize..500), 1..12),
    ) {
        let out = Universe::new(p, ZeroCost).run(|mut comm| {
            let mut ok = true;
            for &(root, algo, len) in &schedule {
                let root = root % p;
                let algo = if algo == 0 {
                    BcastAlgorithm::Flat
                } else {
                    BcastAlgorithm::Binomial
                };
                let payload = Payload::F64(vec![root as f64; len]);
                let got = comm.bcast_with(root, payload, algo).into_f64();
                ok &= got.len() == len && got.iter().all(|&x| x == root as f64);
            }
            (ok, comm.traffic())
        });
        prop_assert!(out.iter().all(|(ok, _)| *ok));
        let sent: u64 = out.iter().map(|(_, t)| t.bytes_sent).sum();
        let recv: u64 = out.iter().map(|(_, t)| t.bytes_recv).sum();
        prop_assert_eq!(sent, recv);
    }

    /// allreduce results agree on every rank and match a serial fold,
    /// regardless of op and vector contents.
    #[test]
    fn allreduce_agrees_with_serial_fold(
        p in 1usize..6,
        data in proptest::collection::vec(-100.0f64..100.0, 1..8),
        op_idx in 0usize..3,
    ) {
        let op = [ReduceOp::Sum, ReduceOp::Max, ReduceOp::Min][op_idx];
        let out = Universe::new(p, ZeroCost).run(|mut comm| {
            // Rank r contributes data shifted by r.
            let mine: Vec<f64> = data.iter().map(|&x| x + comm.rank() as f64).collect();
            comm.allreduce_f64(&mine, op)
        });
        // Serial expectation.
        let mut expect: Vec<f64> = data.clone();
        for r in 1..p {
            let contrib: Vec<f64> = data.iter().map(|&x| x + r as f64).collect();
            for (e, c) in expect.iter_mut().zip(&contrib) {
                *e = match op {
                    ReduceOp::Sum => *e + c,
                    ReduceOp::Max => e.max(*c),
                    ReduceOp::Min => e.min(*c),
                };
            }
        }
        for r in &out {
            prop_assert_eq!(r.clone(), expect.clone());
        }
    }

    /// Ring send/recv of random payload sizes conserves content through
    /// arbitrary rotations.
    #[test]
    fn ring_rotation_conserves_data(
        p in 2usize..7,
        len in 0usize..200,
        rounds in 1usize..5,
    ) {
        let out = Universe::new(p, ZeroCost).run(|comm| {
            let me = comm.rank();
            let mut data: Vec<f64> = (0..len).map(|k| (me * 1000 + k) as f64).collect();
            for round in 0..rounds {
                let right = (me + 1) % p;
                let left = (me + p - 1) % p;
                data = comm
                    .sendrecv(right, left, round as u64, Payload::F64(data))
                    .into_f64();
            }
            data
        });
        // After `rounds` rotations, rank r holds the data that started at
        // (r - rounds) mod p... actually data moves to the right, so rank
        // r holds data from (r + p - rounds % p) % p.
        for (r, data) in out.iter().enumerate() {
            let origin = (r + p - rounds % p) % p;
            prop_assert_eq!(data.len(), len);
            for (k, &v) in data.iter().enumerate() {
                prop_assert_eq!(v, (origin * 1000 + k) as f64);
            }
        }
    }
}
