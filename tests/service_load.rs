//! End-to-end checks of the `reproduce serve` pipeline at the workspace
//! level: the scheduling win the artifacts gate on, the per-tenant
//! Prometheus series, and the on-disk artifact set itself.

use std::fs;

use summagen_bench::servecmd::{run_policy, run_serve, serve_json, PolicyRun};
use summagen_service::{hetero_mix, small_mix, LoadMix, Policy};

fn truncated(mut mix: LoadMix, jobs: usize) -> LoadMix {
    mix.jobs = jobs;
    mix
}

/// The headline claim, on the mix built to show it: FPM-aware placement
/// beats head-of-line FIFO on both tail latency and makespan for the
/// heterogeneous tenant mix.
#[test]
fn fpm_aware_beats_fifo_on_the_hetero_mix() {
    let mix = hetero_mix();
    let fifo = run_policy(&mix, Policy::Fifo);
    let fpm = run_policy(&mix, Policy::FpmAware);
    assert!(
        fpm.report.latency_quantile(0.95) < fifo.report.latency_quantile(0.95),
        "fpm p95 {} !< fifo p95 {}",
        fpm.report.latency_quantile(0.95),
        fifo.report.latency_quantile(0.95)
    );
    assert!(
        fpm.report.makespan < fifo.report.makespan,
        "fpm makespan {} !< fifo makespan {}",
        fpm.report.makespan,
        fifo.report.makespan
    );
    // The win holds for every tenant's p95, not just the aggregate.
    let fifo_t = fifo.report.tenant_summaries(mix.tenants.len());
    let fpm_t = fpm.report.tenant_summaries(mix.tenants.len());
    for (f, p) in fifo_t.iter().zip(&fpm_t) {
        assert!(
            p.p95 < f.p95,
            "tenant {} p95: fpm {} !< fifo {}",
            mix.tenants[f.tenant].name,
            p.p95,
            f.p95
        );
    }
}

/// Every tenant of the mix shows up as a label on the exported series,
/// with the jobs accounted for, and the schedule timeline carries one
/// sched span per dispatched batch.
#[test]
fn exposition_and_timeline_carry_the_service_story() {
    let mix = truncated(small_mix(), 80);
    let run = run_policy(&mix, Policy::FpmAware);
    for tenant in mix.tenant_names() {
        let label = format!("tenant=\"{tenant}\"");
        assert!(
            run.exposition.contains(&label),
            "series for {tenant} missing from exposition"
        );
    }
    for series in [
        "summagen_service_jobs_total",
        "summagen_service_latency_seconds",
        "summagen_service_queue_wait_seconds",
        "summagen_service_rejections_total",
        "summagen_service_queue_depth_peak",
        "summagen_service_device_busy_seconds",
    ] {
        assert!(run.exposition.contains(series), "{series} missing");
    }
    assert!(run.perfetto.contains("\"sched\""));
    assert_eq!(
        run.report.completed() + run.report.failed(),
        run.report.records.len()
    );
}

/// `run_serve` writes the full artifact set and its gate passes on the
/// small mix; the latency document is parseable and carries all three
/// policies.
#[test]
fn run_serve_writes_artifacts_and_passes_its_gate() {
    let out = std::env::temp_dir().join(format!("summagen-serve-test-{}", std::process::id()));
    run_serve("small", None, Some(80), &out).expect("serve gate");
    for name in [
        "LOAD_small.json",
        "LOAD_small.prom",
        "SCHEDULE_small_fifo.json",
        "SCHEDULE_small_round-robin.json",
        "SCHEDULE_small_fpm-aware.json",
    ] {
        assert!(out.join(name).is_file(), "{name} not written");
    }
    let text = fs::read_to_string(out.join("LOAD_small.json")).unwrap();
    let doc = summagen_bench::json::Json::parse(&text).unwrap();
    let policies = doc.get("policies").and_then(|p| p.as_arr()).unwrap();
    assert_eq!(policies.len(), 3);
    fs::remove_dir_all(&out).ok();
}

/// The serve document is a pure function of the mix: rebuilding it from
/// fresh runs reproduces it byte-for-byte (modulo nothing — the virtual
/// clock means there is no wall-time anywhere in the pipeline).
#[test]
fn serve_document_is_reproducible() {
    let mix = truncated(small_mix(), 60);
    let build = || -> String {
        let runs: Vec<PolicyRun> = Policy::ALL.iter().map(|&p| run_policy(&mix, p)).collect();
        serve_json(&mix, &runs).pretty()
    };
    assert_eq!(build(), build());
}
