//! End-to-end checks of the `reproduce serve` and `reproduce degrade`
//! pipelines at the workspace level: the scheduling win the artifacts
//! gate on, the per-tenant Prometheus series, the on-disk artifact
//! sets, and the graceful-degradation comparison.

use std::fs;

use summagen_bench::degradecmd::{run_degrade, run_mode, top_tier};
use summagen_bench::servecmd::{run_policy, run_serve, serve_json, PolicyRun};
use summagen_service::{hetero_mix, small_mix, LoadMix, Policy};

fn truncated(mut mix: LoadMix, jobs: usize) -> LoadMix {
    mix.jobs = jobs;
    mix
}

/// The headline claim, on the mix built to show it: FPM-aware placement
/// beats head-of-line FIFO on both tail latency and makespan for the
/// heterogeneous tenant mix.
#[test]
fn fpm_aware_beats_fifo_on_the_hetero_mix() {
    let mix = hetero_mix();
    let fifo = run_policy(&mix, Policy::Fifo);
    let fpm = run_policy(&mix, Policy::FpmAware);
    assert!(
        fpm.report.latency_quantile(0.95) < fifo.report.latency_quantile(0.95),
        "fpm p95 {} !< fifo p95 {}",
        fpm.report.latency_quantile(0.95),
        fifo.report.latency_quantile(0.95)
    );
    assert!(
        fpm.report.makespan < fifo.report.makespan,
        "fpm makespan {} !< fifo makespan {}",
        fpm.report.makespan,
        fifo.report.makespan
    );
    // The win holds for every tenant's p95, not just the aggregate.
    let fifo_t = fifo.report.tenant_summaries(mix.tenants.len());
    let fpm_t = fpm.report.tenant_summaries(mix.tenants.len());
    for (f, p) in fifo_t.iter().zip(&fpm_t) {
        assert!(
            p.p95 < f.p95,
            "tenant {} p95: fpm {} !< fifo {}",
            mix.tenants[f.tenant].name,
            p.p95,
            f.p95
        );
    }
}

/// Every tenant of the mix shows up as a label on the exported series,
/// with the jobs accounted for, and the schedule timeline carries one
/// sched span per dispatched batch.
#[test]
fn exposition_and_timeline_carry_the_service_story() {
    let mix = truncated(small_mix(), 80);
    let run = run_policy(&mix, Policy::FpmAware);
    for tenant in mix.tenant_names() {
        let label = format!("tenant=\"{tenant}\"");
        assert!(
            run.exposition.contains(&label),
            "series for {tenant} missing from exposition"
        );
    }
    for series in [
        "summagen_service_jobs_total",
        "summagen_service_latency_seconds",
        "summagen_service_queue_wait_seconds",
        "summagen_service_rejections_total",
        "summagen_service_queue_depth_peak",
        "summagen_service_device_busy_seconds",
    ] {
        assert!(run.exposition.contains(series), "{series} missing");
    }
    assert!(run.perfetto.contains("\"sched\""));
    assert_eq!(
        run.report.completed() + run.report.failed(),
        run.report.records.len()
    );
}

/// `run_serve` writes the full artifact set and its gate passes on the
/// small mix; the latency document is parseable and carries all three
/// policies.
#[test]
fn run_serve_writes_artifacts_and_passes_its_gate() {
    let out = std::env::temp_dir().join(format!("summagen-serve-test-{}", std::process::id()));
    run_serve("small", None, Some(80), &out).expect("serve gate");
    for name in [
        "LOAD_small.json",
        "LOAD_small.prom",
        "SCHEDULE_small_fifo.json",
        "SCHEDULE_small_round-robin.json",
        "SCHEDULE_small_fpm-aware.json",
    ] {
        assert!(out.join(name).is_file(), "{name} not written");
    }
    let text = fs::read_to_string(out.join("LOAD_small.json")).unwrap();
    let doc = summagen_bench::json::Json::parse(&text).unwrap();
    let policies = doc.get("policies").and_then(|p| p.as_arr()).unwrap();
    assert_eq!(policies.len(), 3);
    fs::remove_dir_all(&out).ok();
}

/// The serve document is a pure function of the mix: rebuilding it from
/// fresh runs reproduces it byte-for-byte (modulo nothing — the virtual
/// clock means there is no wall-time anywhere in the pipeline).
#[test]
fn serve_document_is_reproducible() {
    let mix = truncated(small_mix(), 60);
    let build = || -> String {
        let runs: Vec<PolicyRun> = Policy::ALL.iter().map(|&p| run_policy(&mix, p)).collect();
        serve_json(&mix, &runs).pretty()
    };
    assert_eq!(build(), build());
}

/// The degradation claim, end to end on the full small mix at the gated
/// stampede factor: with the layer armed, the top-priority tenant's
/// tail latency and deadline-hit rate both beat the plain service on
/// the identical stream, and nothing is lost — every submitted job is a
/// record or a typed rejection in both modes.
#[test]
fn degradation_beats_the_baseline_at_overload() {
    let mix = small_mix();
    let top = top_tier(&mix);
    let base = run_mode(&mix, 5.0, 7, false);
    let deg = run_mode(&mix, 5.0, 7, true);
    for run in [&base, &deg] {
        assert_eq!(
            run.report.records.len() + run.report.rejections.len(),
            mix.jobs,
            "jobs lost or invented"
        );
    }
    let base_t = &base.report.tenant_summaries(mix.tenants.len())[top];
    let deg_t = &deg.report.tenant_summaries(mix.tenants.len())[top];
    assert!(
        deg_t.p95 < base_t.p95,
        "top-tier p95: degraded {} !< baseline {}",
        deg_t.p95,
        base_t.p95
    );
    assert!(
        deg_t.deadline_hit_rate() > base_t.deadline_hit_rate(),
        "top-tier hit rate: degraded {} !> baseline {}",
        deg_t.deadline_hit_rate(),
        base_t.deadline_hit_rate()
    );
    // The degraded run actually degraded: it shed load and preempted.
    assert!(deg.report.rejections.len() > base.report.rejections.len());
    assert_eq!(base.report.preemptions, 0);
    assert_eq!(base.report.shed(), 0);
    assert!(base.report.quarantine_events.is_empty());
}

/// `run_degrade` writes the full artifact set and its gates pass on the
/// small mix; the document is parseable and carries every load factor
/// with both modes.
#[test]
fn run_degrade_writes_artifacts_and_passes_its_gates() {
    let out = std::env::temp_dir().join(format!("summagen-degrade-test-{}", std::process::id()));
    run_degrade("small", &out).expect("degrade gates");
    for name in [
        "DEGRADE_small.json",
        "SCHEDULE_DEGRADE_small_baseline.json",
        "SCHEDULE_DEGRADE_small_degraded.json",
    ] {
        assert!(out.join(name).is_file(), "{name} not written");
    }
    let text = fs::read_to_string(out.join("DEGRADE_small.json")).unwrap();
    let doc = summagen_bench::json::Json::parse(&text).unwrap();
    let loads = doc.get("loads").and_then(|l| l.as_arr()).unwrap();
    assert_eq!(
        loads.len(),
        summagen_bench::degradecmd::DEGRADE_LOAD_FACTORS.len()
    );
    for load in loads {
        assert!(load.get("baseline").is_some());
        assert!(load.get("degraded").is_some());
    }
    fs::remove_dir_all(&out).ok();
}
