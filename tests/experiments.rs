//! Integration tests asserting the *shape* of the paper's experimental
//! findings on the simulated platform — the reproduction's acceptance
//! criteria from DESIGN.md.

use summagen_comm::HockneyModel;
use summagen_core::{simulate, simulate_with_energy};
use summagen_partition::{
    load_imbalancing_areas, proportional_areas, DiscreteFpm, Shape, ALL_FOUR_SHAPES,
};
use summagen_platform::energy::hclserver1_power_model;
use summagen_platform::profile::hclserver1;
use summagen_platform::stats::percent_spread;

fn link() -> HockneyModel {
    HockneyModel::intra_node()
}

/// Section VI-A: the four shapes exhibit (nearly) equal performance when
/// speeds are constant functions of problem size.
#[test]
fn cpm_shapes_tie_within_reason() {
    let platform = hclserver1();
    for &n in &[25_600usize, 30_720, 35_840] {
        let areas = proportional_areas(n, &[1.0, 2.0, 0.9]);
        let times: Vec<f64> = ALL_FOUR_SHAPES
            .iter()
            .map(|s| simulate(&s.build(n, &areas), &platform, link()).exec_time)
            .collect();
        let spread = percent_spread(&times);
        assert!(spread < 25.0, "N={n}: spread {spread}% (paper max: 23%)");
    }
}

/// Section VI-A: parallel execution times are dominated by computation.
#[test]
fn cpm_computation_dominates() {
    let platform = hclserver1();
    let n = 30_720;
    let areas = proportional_areas(n, &[1.0, 2.0, 0.9]);
    for shape in ALL_FOUR_SHAPES {
        let r = simulate(&shape.build(n, &areas), &platform, link());
        assert!(
            r.comp_time > 3.0 * r.comm_time,
            "{}: comp {} not >> comm {}",
            shape.name(),
            r.comp_time,
            r.comm_time
        );
    }
}

/// Section VI-A: the communication times of the shapes *differ* (Fig. 6c)
/// even though execution times tie.
#[test]
fn cpm_communication_times_differ_between_shapes() {
    let platform = hclserver1();
    let n = 30_720;
    let areas = proportional_areas(n, &[1.0, 2.0, 0.9]);
    let comms: Vec<f64> = ALL_FOUR_SHAPES
        .iter()
        .map(|s| simulate(&s.build(n, &areas), &platform, link()).comm_time)
        .collect();
    let spread = percent_spread(&comms);
    assert!(spread > 10.0, "comm times too similar: {comms:?}");
}

/// Section VI-C: the four shapes exhibit equal dynamic energy consumption
/// under the constant performance model.
#[test]
fn cpm_dynamic_energies_tie() {
    let platform = hclserver1();
    let power = hclserver1_power_model();
    let n = 28_672;
    let areas = proportional_areas(n, &[1.0, 2.0, 0.9]);
    let energies: Vec<f64> = ALL_FOUR_SHAPES
        .iter()
        .map(|s| {
            simulate_with_energy(&s.build(n, &areas), &platform, link(), &power)
                .energy
                .unwrap()
                .dynamic_energy_j
        })
        .collect();
    let spread = percent_spread(&energies);
    assert!(spread < 10.0, "energy spread {spread}%: {energies:?}");
}

/// Section VI-B: with non-constant speeds and the load-imbalancing
/// partitioner, square rectangle and block rectangle outperform (on
/// average) the square corner and 1D rectangular shapes.
#[test]
fn fpm_square_rect_and_block_rect_win_on_average() {
    let platform = hclserver1();
    let mut mean = std::collections::HashMap::new();
    let sizes: Vec<usize> = (4..=20).step_by(4).map(|k| k * 1_024).collect();
    for &n in &sizes {
        let fpms: Vec<DiscreteFpm> = platform
            .processors
            .iter()
            .map(|p| DiscreteFpm::from_speed(p.speed.as_ref(), n, 160))
            .collect();
        let areas = load_imbalancing_areas(n, &fpms);
        for shape in ALL_FOUR_SHAPES {
            let t = simulate(&shape.build(n, &areas), &platform, link()).exec_time;
            *mean.entry(shape.name()).or_insert(0.0) += t / sizes.len() as f64;
        }
    }
    let sr = mean["square rectangle"];
    let br = mean["block rectangle"];
    let sc = mean["square corner"];
    let od = mean["1D rectangular"];
    let winners = sr.max(br);
    let losers = sc.min(od);
    assert!(
        winners < losers,
        "paper ranking violated: SR {sr:.3} BR {br:.3} vs SC {sc:.3} 1D {od:.3}"
    );
}

/// The peak achieved performance sits in the paper's 70-90 % band of the
/// 2.5 TFLOPs theoretical platform peak.
#[test]
fn peak_performance_fraction_in_band() {
    let platform = hclserver1();
    let mut best: f64 = 0.0;
    for &n in &[30_720usize, 33_792, 35_840] {
        let areas = proportional_areas(n, &[1.0, 2.0, 0.9]);
        for shape in ALL_FOUR_SHAPES {
            let r = simulate(&shape.build(n, &areas), &platform, link());
            best = best.max(r.achieved_flops());
        }
    }
    let frac = best / platform.theoretical_peak_flops();
    assert!(
        (0.65..0.95).contains(&frac),
        "peak fraction {frac} outside the plausible band"
    );
}

/// Simulated experiments are fully deterministic (required for the
/// benchmark harness to be meaningful).
#[test]
fn experiment_pipeline_is_deterministic() {
    let platform = hclserver1();
    let n = 20_480;
    let fpms: Vec<DiscreteFpm> = platform
        .processors
        .iter()
        .map(|p| DiscreteFpm::from_speed(p.speed.as_ref(), n, 160))
        .collect();
    let a1 = load_imbalancing_areas(n, &fpms);
    let a2 = load_imbalancing_areas(n, &fpms);
    assert_eq!(a1, a2);
    let spec = Shape::SquareRectangle.build(n, &a1);
    let r1 = simulate(&spec, &platform, link());
    let r2 = simulate(&spec, &platform, link());
    assert_eq!(r1.exec_time, r2.exec_time);
    assert_eq!(r1.traffic, r2.traffic);
}

/// The load-imbalancing partitioner gives the GPU the largest area on
/// this platform (it is the fastest processor over the whole range).
#[test]
fn fpm_partitioner_respects_device_hierarchy() {
    let platform = hclserver1();
    let n = 16_384;
    let fpms: Vec<DiscreteFpm> = platform
        .processors
        .iter()
        .map(|p| DiscreteFpm::from_speed(p.speed.as_ref(), n, 160))
        .collect();
    let areas = load_imbalancing_areas(n, &fpms);
    assert!(
        areas[1] > areas[0] && areas[1] > areas[2],
        "GPU should get the most work: {areas:?}"
    );
}
