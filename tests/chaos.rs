//! Deterministic chaos tests: the four paper shapes under seeded fault
//! plans. Every run must end, within the configured (millisecond-scale)
//! timeout regime, in either a numerically correct `C` computed on the
//! surviving devices or a clean typed error — never a panic and never a
//! 60-second hang.

use std::time::{Duration, Instant};

use summagen_comm::{CommError, CommResult, FaultPlan, Payload, Universe, ZeroCost};
use summagen_core::{
    multiply_abft, multiply_with_recovery, AbftOptions, ExecutionMode, RecoveryError,
    RecoveryOptions,
};
use summagen_matrix::{gemm_naive, max_abs_diff, random_matrix, DenseMatrix};
use summagen_partition::{Shape, ALL_FOUR_SHAPES};

const SPEEDS: [f64; 3] = [1.0, 2.0, 0.9];

/// Numeric tolerance for a 32×32 product computed with reordered sums.
const TOL: f64 = 1e-10;

/// Generous wall-clock ceiling per run: with 300 ms receive timeouts and
/// at most 4 attempts, anything beyond this means a rank hung.
const RUN_DEADLINE: Duration = Duration::from_secs(20);

fn reference(a: &DenseMatrix, b: &DenseMatrix) -> DenseMatrix {
    let n = a.rows();
    let mut c = DenseMatrix::zeros(n, n);
    gemm_naive(
        n,
        n,
        n,
        1.0,
        a.as_slice(),
        n,
        b.as_slice(),
        n,
        0.0,
        c.as_mut_slice(),
        n,
    );
    c
}

fn chaos_opts() -> RecoveryOptions {
    RecoveryOptions {
        max_attempts: 4,
        retry_backoff: 0.1,
        recv_timeout: Duration::from_millis(300),
        ..Default::default()
    }
}

/// Reproduction context stamped into failure messages: the backend the
/// chaos ran over and the raw `SUMMAGEN_CHAOS_SEED` environment value,
/// so a red CI log alone identifies the failing matrix cell.
fn chaos_context() -> String {
    let seed_env = std::env::var("SUMMAGEN_CHAOS_SEED").unwrap_or_else(|_| "<unset>".into());
    format!(
        "backend={} SUMMAGEN_CHAOS_SEED={seed_env}",
        RecoveryOptions::default().backend.name()
    )
}

/// The observable outcome of one chaos run, reduced to comparable parts.
#[derive(Debug, Clone, PartialEq)]
enum Outcome {
    /// Correct product; fields are (attempts, failed devices).
    Correct(usize, Vec<usize>),
    /// Typed recovery error, reduced to its display string.
    TypedError(String),
}

fn run_once(
    shape: summagen_partition::Shape,
    seed: u64,
    a: &DenseMatrix,
    b: &DenseMatrix,
    want: &DenseMatrix,
) -> Outcome {
    let plan = FaultPlan::seeded(seed, SPEEDS.len());
    match multiply_with_recovery(
        shape,
        &SPEEDS,
        a,
        b,
        ExecutionMode::Real,
        ZeroCost,
        std::slice::from_ref(&plan),
        &chaos_opts(),
    ) {
        Ok(res) => {
            let err = max_abs_diff(&res.c, want);
            assert!(
                err < TOL,
                "{} seed {seed} [{}]: wrong product, max err {err:.2e}",
                shape.name(),
                chaos_context()
            );
            match &res.recovery {
                Some(rep) => {
                    assert!(rep.attempts >= 2, "report implies no retry");
                    assert!(
                        !rep.surviving_devices.is_empty(),
                        "recovered with no survivors?"
                    );
                    let load_sum: f64 = rep.final_loads.iter().sum();
                    assert!(
                        (load_sum - 1.0).abs() < 1e-9,
                        "loads sum to {load_sum}, want 1"
                    );
                    Outcome::Correct(rep.attempts, rep.failed_devices.clone())
                }
                None => Outcome::Correct(1, Vec::new()),
            }
        }
        Err(e) => Outcome::TypedError(e.to_string()),
    }
}

#[test]
fn chaos_sweep_all_shapes_by_seed() {
    let n = 32;
    let a = random_matrix(n, n, 51);
    let b = random_matrix(n, n, 52);
    let want = reference(&a, &b);
    let mut recovered = 0;
    for shape in ALL_FOUR_SHAPES {
        for seed in 0..8u64 {
            let t0 = Instant::now();
            let outcome = run_once(shape, seed, &a, &b, &want);
            assert!(
                t0.elapsed() < RUN_DEADLINE,
                "{} seed {seed} [{}] took {:?} — a rank hung",
                shape.name(),
                chaos_context(),
                t0.elapsed()
            );
            if let Outcome::Correct(attempts, _) = outcome {
                if attempts > 1 {
                    recovered += 1;
                }
            }
        }
    }
    // The sweep must actually exercise recovery, not just clean runs: the
    // seeded plans are deterministic, so this is a fixed property of the
    // (seed, shape) grid, not a flaky threshold.
    assert!(
        recovered > 0,
        "no seed in the sweep triggered a recovery — fault plans never fired"
    );
}

#[test]
fn chaos_outcomes_are_deterministic_for_fixed_seed() {
    let n = 32;
    let a = random_matrix(n, n, 53);
    let b = random_matrix(n, n, 54);
    let want = reference(&a, &b);
    for shape in ALL_FOUR_SHAPES {
        for seed in [2u64, 5, 7] {
            let first = run_once(shape, seed, &a, &b, &want);
            let second = run_once(shape, seed, &a, &b, &want);
            assert_eq!(
                first,
                second,
                "{} seed {seed} [{}]: outcome changed between identical runs",
                shape.name(),
                chaos_context()
            );
        }
    }
}

#[test]
fn survivors_observe_peer_failed_without_hanging() {
    // A rank killed mid-broadcast must surface as `PeerFailed` on the
    // survivors within the millisecond timeout regime — the acceptance
    // criterion that replaces the old 60 s silent hang.
    let plan = FaultPlan::new().kill_rank(1, 0);
    let t0 = Instant::now();
    let failure = Universe::new(3, ZeroCost)
        .recv_timeout(Duration::from_millis(300))
        .with_faults(plan)
        .try_run(|mut comm| -> CommResult<()> {
            comm.try_bcast(0, Payload::U64(vec![7]))?;
            comm.try_barrier()?;
            Ok(())
        })
        .expect_err("rank 1 dies, so the run must fail");
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "failure took {:?} to surface",
        t0.elapsed()
    );
    assert_eq!(failure.crashed_ranks(), vec![1]);
    let survivor_errors: Vec<_> = failure.failed.iter().filter(|fr| fr.rank != 1).collect();
    assert!(
        !survivor_errors.is_empty(),
        "at least one survivor must have observed the death"
    );
    // A survivor may blame either the killed rank or a peer that already
    // resigned after observing the death — but never a live rank, and
    // never a timeout (the death notice must beat the 300 ms clock).
    for fr in survivor_errors {
        match &fr.cause {
            summagen_comm::FailureCause::Error(CommError::PeerFailed { rank }) => {
                assert!(
                    failure.failed.iter().any(|other| other.rank == *rank),
                    "rank {} blamed live rank {rank}",
                    fr.rank
                );
            }
            other => panic!("rank {} saw {other:?}, want PeerFailed", fr.rank),
        }
    }
}

#[test]
fn cascading_kills_shrink_to_survivors_on_every_shape() {
    let n = 30;
    let a = random_matrix(n, n, 55);
    let b = random_matrix(n, n, 56);
    let want = reference(&a, &b);
    // Attempt 1 loses rank 2 (device 2); attempt 2 loses rank 0 (device 0)
    // of the shrunken pool; attempt 3 runs on the last device.
    let faults = vec![
        FaultPlan::new().kill_rank(2, 1),
        FaultPlan::new().kill_rank(0, 1),
    ];
    for shape in ALL_FOUR_SHAPES {
        let res = multiply_with_recovery(
            shape,
            &SPEEDS,
            &a,
            &b,
            ExecutionMode::Real,
            ZeroCost,
            &faults,
            &chaos_opts(),
        )
        .unwrap_or_else(|e| panic!("{}: cascading recovery failed: {e}", shape.name()));
        let rep = res.recovery.expect("two retries happened");
        assert_eq!(rep.attempts, 3, "{}", shape.name());
        assert_eq!(rep.failed_devices, vec![2, 0], "{}", shape.name());
        assert_eq!(rep.surviving_devices, vec![1], "{}", shape.name());
        assert!(max_abs_diff(&res.c, &want) < TOL, "{}", shape.name());
    }
}

#[test]
fn exhausted_attempts_return_typed_error_not_panic() {
    let n = 24;
    let a = random_matrix(n, n, 57);
    let b = random_matrix(n, n, 58);
    // Every attempt the budget allows is killed.
    let faults: Vec<FaultPlan> = (0..2).map(|_| FaultPlan::new().kill_rank(0, 0)).collect();
    let opts = RecoveryOptions {
        max_attempts: 2,
        ..chaos_opts()
    };
    for shape in ALL_FOUR_SHAPES {
        let err = multiply_with_recovery(
            shape,
            &SPEEDS,
            &a,
            &b,
            ExecutionMode::Real,
            ZeroCost,
            &faults,
            &opts,
        )
        .expect_err("both attempts are killed");
        match err {
            RecoveryError::AttemptsExhausted { attempts, .. } => {
                assert_eq!(attempts, 2, "{}", shape.name())
            }
            other => panic!("{}: want AttemptsExhausted, got {other}", shape.name()),
        }
    }
}

#[test]
fn message_drops_resolve_within_timeout_and_retry_succeeds() {
    let n = 24;
    let a = random_matrix(n, n, 59);
    let b = random_matrix(n, n, 60);
    let want = reference(&a, &b);
    // Drop an early panel broadcast on attempt 1: receivers starve, the
    // run times out at 300 ms, and the fault-free retry succeeds with all
    // devices intact (a timeout identifies no crash culprit).
    let faults = vec![FaultPlan::new().drop_message(0, 1, 0)];
    for shape in ALL_FOUR_SHAPES {
        let t0 = Instant::now();
        let res = multiply_with_recovery(
            shape,
            &SPEEDS,
            &a,
            &b,
            ExecutionMode::Real,
            ZeroCost,
            &faults,
            &chaos_opts(),
        )
        .unwrap_or_else(|e| panic!("{}: retry after drop failed: {e}", shape.name()));
        assert!(
            t0.elapsed() < RUN_DEADLINE,
            "{}: drop took {:?} to resolve",
            shape.name(),
            t0.elapsed()
        );
        let rep = res.recovery.expect("the drop forced a retry");
        assert!(rep.failed_devices.is_empty(), "{}", shape.name());
        assert_eq!(rep.surviving_devices, vec![0, 1, 2], "{}", shape.name());
        assert!(max_abs_diff(&res.c, &want) < TOL, "{}", shape.name());
    }
}

/// Seeds of the corruption chaos sweep. The CI chaos matrix adds one
/// extra seed per job via `SUMMAGEN_CHAOS_SEED`, so the grid covered
/// across the matrix is wider than any single local run.
fn corruption_seeds() -> Vec<u64> {
    let mut seeds = vec![1u64, 3, 6];
    if let Ok(v) = std::env::var("SUMMAGEN_CHAOS_SEED") {
        if let Ok(s) = v.trim().parse::<u64>() {
            if !seeds.contains(&s) {
                seeds.push(s);
            }
        }
    }
    seeds
}

/// The comparable parts of one protected chaos run.
#[derive(Debug, Clone, PartialEq)]
enum AbftOutcome {
    /// (attempts, detected, corrected, uncorrectable, resume_k).
    Correct(usize, u64, u64, u64, usize),
    TypedError(String),
}

fn run_abft_once(
    shape: Shape,
    seed: u64,
    a: &DenseMatrix,
    b: &DenseMatrix,
    want: &DenseMatrix,
) -> AbftOutcome {
    let plan = FaultPlan::seeded_with_corruption(seed, SPEEDS.len());
    match multiply_abft(
        shape,
        &SPEEDS,
        a,
        b,
        ExecutionMode::Real,
        ZeroCost,
        std::slice::from_ref(&plan),
        &chaos_opts(),
        &AbftOptions::default(),
    ) {
        Ok(res) => {
            let err = max_abs_diff(&res.run.c, want);
            assert!(
                err < 1e-9,
                "{} seed {seed} [{}]: protected run returned a wrong product, max err {err:.2e}",
                shape.name(),
                chaos_context()
            );
            assert_eq!(
                res.abft.detected,
                res.abft.corrected + res.abft.uncorrectable,
                "{} seed {seed}: detection ledger does not balance: {:?}",
                shape.name(),
                res.abft
            );
            AbftOutcome::Correct(
                res.abft.attempts,
                res.abft.detected,
                res.abft.corrected,
                res.abft.uncorrectable,
                res.abft.resume_k,
            )
        }
        Err(e) => AbftOutcome::TypedError(e.to_string()),
    }
}

#[test]
fn corruption_chaos_sweep_never_returns_wrong_results() {
    // Seeded kills + wire/block corruption against the ABFT executor:
    // every cell of the grid must end, within the deadline, in a correct
    // product or a typed error — silent corruption must never survive
    // into a returned `C`. Outcomes are seed-deterministic, so the sweep
    // also pins them across two identical passes.
    let n = 32;
    let a = random_matrix(n, n, 63);
    let b = random_matrix(n, n, 64);
    let want = reference(&a, &b);
    let mut detected_total = 0u64;
    for shape in ALL_FOUR_SHAPES {
        for &seed in &corruption_seeds() {
            let t0 = Instant::now();
            let first = run_abft_once(shape, seed, &a, &b, &want);
            assert!(
                t0.elapsed() < RUN_DEADLINE,
                "{} seed {seed} [{}] took {:?} — a rank hung",
                shape.name(),
                chaos_context(),
                t0.elapsed()
            );
            let second = run_abft_once(shape, seed, &a, &b, &want);
            assert_eq!(
                first,
                second,
                "{} seed {seed} [{}]: protected outcome changed between identical runs",
                shape.name(),
                chaos_context()
            );
            if let AbftOutcome::Correct(_, detected, ..) = first {
                detected_total += detected;
            }
        }
    }
    // The sweep must actually exercise detection: every seeded plan
    // carries at least one wire corruption, and the fixed grid is known
    // to land several of them on live broadcast panels.
    assert!(
        detected_total > 0,
        "no corruption in the sweep was ever detected — injection never fired"
    );
}

#[test]
fn corrupted_broadcast_panel_is_detected_and_corrected() {
    // Acceptance: a seeded corruption fault in a broadcast panel is
    // detected and corrected by the ABFT path, and the final C matches
    // the fault-free reference within 1e-9 — on the first attempt.
    let n = 32;
    let a = random_matrix(n, n, 65);
    let b = random_matrix(n, n, 66);
    let want = reference(&a, &b);
    let plan = FaultPlan::new().corrupt_message(0, 1, 0, 13, 4.0);
    let res = multiply_abft(
        Shape::OneDRectangular,
        &[1.0, 1.0, 1.0],
        &a,
        &b,
        ExecutionMode::Real,
        ZeroCost,
        std::slice::from_ref(&plan),
        &chaos_opts(),
        &AbftOptions::default(),
    )
    .expect("single-element wire corruption is absorbed");
    assert_eq!(res.abft.attempts, 1, "correction must not trigger recovery");
    assert!(res.abft.corrected >= 1, "report: {:?}", res.abft);
    assert_eq!(res.abft.uncorrectable, 0);
    assert!(max_abs_diff(&res.run.c, &want) < 1e-9);
}

#[test]
fn uncorrectable_corruption_escalates_to_recovery_not_wrong_results() {
    // Acceptance: multi-element corruption in one accumulator cannot be
    // localized; the detecting rank must crash with `DataCorruption`,
    // recovery drops its device, and the retry still produces a correct
    // product — wrong results are never returned.
    let n = 32;
    let a = random_matrix(n, n, 67);
    let b = random_matrix(n, n, 68);
    let want = reference(&a, &b);
    let plan = FaultPlan::new()
        .corrupt_block(1, 1, 2, 1.5)
        .corrupt_block(1, 1, 140, -3.0);
    let res = multiply_abft(
        Shape::OneDRectangular,
        &[1.0, 1.0, 1.0],
        &a,
        &b,
        ExecutionMode::Real,
        ZeroCost,
        std::slice::from_ref(&plan),
        &chaos_opts(),
        &AbftOptions {
            checkpoint_interval: 1,
            ..AbftOptions::default()
        },
    )
    .expect("recovery absorbs the uncorrectable corruption");
    assert!(res.abft.uncorrectable >= 1, "report: {:?}", res.abft);
    assert_eq!(res.abft.attempts, 2, "the detecting attempt must fail");
    let rep = res.run.recovery.as_ref().expect("a retry happened");
    assert!(
        rep.failure_causes
            .iter()
            .any(|(label, n)| label == "data-corruption" && *n >= 1),
        "causes: {:?}",
        rep.failure_causes
    );
    // The panel-0 boundary checkpoint was complete before the step-1
    // corruption, so the retry resumed mid-plan.
    assert!(res.abft.resume_k > 0, "report: {:?}", res.abft);
    assert!(res.abft.recompute_fraction < 1.0);
    assert!(max_abs_diff(&res.run.c, &want) < 1e-9);
}

#[test]
fn stragglers_and_delays_do_not_affect_correctness() {
    let n = 32;
    let a = random_matrix(n, n, 61);
    let b = random_matrix(n, n, 62);
    let want = reference(&a, &b);
    // Delays and slowdowns perturb virtual time but never data: the run
    // completes on the first attempt with a correct product.
    let plan = FaultPlan::new()
        .delay_message(0, 1, 0, 0.25)
        .delay_message(2, 1, 1, 0.5)
        .slow_rank(2, 3.0);
    for shape in ALL_FOUR_SHAPES {
        let res = multiply_with_recovery(
            shape,
            &SPEEDS,
            &a,
            &b,
            ExecutionMode::Real,
            ZeroCost,
            std::slice::from_ref(&plan),
            &chaos_opts(),
        )
        .unwrap_or_else(|e| panic!("{}: benign faults failed the run: {e}", shape.name()));
        assert!(
            res.recovery.is_none(),
            "{}: delays must not force a retry",
            shape.name()
        );
        assert!(max_abs_diff(&res.c, &want) < TOL, "{}", shape.name());
    }
}
