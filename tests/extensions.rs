//! Integration tests for the extension machinery: NRRP layouts, push
//! refinement, the energy-optimal partitioner and classic SUMMA, all
//! exercised through the full pipeline.

use summagen_core::{multiply, summa_multiply, ExecutionMode};
use summagen_matrix::{approx_eq, gemm_naive, gemm_tolerance, random_matrix, DenseMatrix};
use summagen_partition::{
    energy_optimal_areas, load_imbalancing_areas, nrrp_layout, push_optimize, DiscreteFpm, Shape,
};
use summagen_platform::profile::hclserver1;
use summagen_platform::speed::{ConstantSpeed, SpeedFunction};

fn reference(a: &DenseMatrix, b: &DenseMatrix) -> DenseMatrix {
    let n = a.rows();
    let mut c = DenseMatrix::zeros(n, n);
    gemm_naive(
        n,
        n,
        n,
        1.0,
        a.as_slice(),
        n,
        b.as_slice(),
        n,
        0.0,
        c.as_mut_slice(),
        n,
    );
    c
}

#[test]
fn nrrp_layouts_run_through_summagen() {
    for (n, speeds) in [
        (48usize, vec![1.0, 2.0]),
        (64, vec![1.0, 6.0, 1.0]),
        (80, vec![3.0, 1.0, 2.0, 0.5]),
        (96, vec![1.0; 6]),
    ] {
        let spec = nrrp_layout(n, &speeds);
        let a = random_matrix(n, n, 100 + n as u64);
        let b = random_matrix(n, n, 200 + n as u64);
        let res = multiply(&spec, &a, &b, ExecutionMode::Real);
        assert!(
            approx_eq(&res.c, &reference(&a, &b), gemm_tolerance(n) * 100.0),
            "nrrp p={} n={n}",
            speeds.len()
        );
    }
}

#[test]
fn push_refined_layouts_stay_correct() {
    let n = 64;
    let speeds_v = [
        ConstantSpeed::new(1.0e9),
        ConstantSpeed::new(2.0e9),
        ConstantSpeed::new(0.9e9),
    ];
    let speeds: Vec<&dyn SpeedFunction> = speeds_v.iter().map(|s| s as _).collect();
    let areas = summagen_partition::proportional_areas(n, &[1.0, 2.0, 0.9]);
    let spec = Shape::SquareCorner.build(n, &areas);
    let refined = push_optimize(&spec, &speeds, 1e-5, 4e-10, 30).spec;
    let a = random_matrix(n, n, 1);
    let b = random_matrix(n, n, 2);
    let res = multiply(&refined, &a, &b, ExecutionMode::Real);
    assert!(approx_eq(
        &res.c,
        &reference(&a, &b),
        gemm_tolerance(n) * 100.0
    ));
}

#[test]
fn push_improves_an_unbalanced_start_end_to_end() {
    use std::sync::Arc;
    use summagen_comm::HockneyModel;
    use summagen_core::simulate;
    use summagen_platform::device::HASWELL_E5_2670V3;
    use summagen_platform::{AbstractProcessor, Platform};

    // Equal-speed platform, deliberately skewed 1D layout: the refined
    // layout must simulate faster.
    let n = 1024;
    let spec =
        summagen_partition::PartitionSpec::new(vec![0, 1, 2], vec![n], vec![n - 128, 64, 64], 3);
    let speeds_v = [
        ConstantSpeed::new(1.0e11),
        ConstantSpeed::new(1.0e11),
        ConstantSpeed::new(1.0e11),
    ];
    let speeds: Vec<&dyn SpeedFunction> = speeds_v.iter().map(|s| s as _).collect();
    let refined = push_optimize(&spec, &speeds, 1e-5, 4e-10, 50).spec;

    let platform = Platform::new(
        (0..3)
            .map(|_| {
                AbstractProcessor::new(HASWELL_E5_2670V3, Arc::new(ConstantSpeed::new(1.0e11)))
            })
            .collect(),
        230.0,
    );
    let before = simulate(&spec, &platform, HockneyModel::intra_node()).exec_time;
    let after = simulate(&refined, &platform, HockneyModel::intra_node()).exec_time;
    assert!(
        after < before * 0.6,
        "refinement did not help: {before} -> {after}"
    );
}

#[test]
fn energy_optimal_areas_feed_the_shapes() {
    let platform = hclserver1();
    let n = 64;
    let fpms: Vec<DiscreteFpm> = platform
        .processors
        .iter()
        .map(|p| DiscreteFpm::from_speed(p.speed.as_ref(), n, 32))
        .collect();
    let powers = [155.0, 130.0, 110.0];
    let areas = energy_optimal_areas(n, &fpms, &powers);
    let spec = Shape::BlockRectangle.build(n, &areas);
    let a = random_matrix(n, n, 5);
    let b = random_matrix(n, n, 6);
    let res = multiply(&spec, &a, &b, ExecutionMode::Real);
    assert!(approx_eq(
        &res.c,
        &reference(&a, &b),
        gemm_tolerance(n) * 100.0
    ));
    // Sanity: it differs from the time-optimal distribution on this
    // platform (different objectives).
    let t_areas = load_imbalancing_areas(n, &fpms);
    assert_ne!(
        areas.iter().map(|&a| a.round() as i64).collect::<Vec<_>>(),
        t_areas
            .iter()
            .map(|&a| a.round() as i64)
            .collect::<Vec<_>>()
    );
}

#[test]
fn summa_and_summagen_agree_numerically() {
    let n = 36;
    let a = random_matrix(n, n, 9);
    let b = random_matrix(n, n, 10);
    let summa = summa_multiply(&a, &b, 2, 2, 6);
    let areas = summagen_partition::proportional_areas(n, &[1.0, 1.0, 1.0, 1.0]);
    let spec = Shape::OneDRectangular.build(n, &areas);
    let sg = multiply(&spec, &a, &b, ExecutionMode::Real);
    assert!(approx_eq(&summa.c, &sg.c, gemm_tolerance(n) * 200.0));
}

#[test]
fn auto_generated_layouts_run_through_summagen() {
    use summagen_partition::auto::{auto_layout, AutoOptions};
    let sp = [
        ConstantSpeed::new(1.0e9),
        ConstantSpeed::new(2.0e9),
        ConstantSpeed::new(0.9e9),
        ConstantSpeed::new(1.5e9),
    ];
    let speeds: Vec<&dyn SpeedFunction> = sp.iter().map(|s| s as _).collect();
    let n = 48;
    let (spec, _) = auto_layout(
        n,
        &speeds,
        AutoOptions {
            iterations: 150,
            ..AutoOptions::default()
        },
    );
    let a = random_matrix(n, n, 31);
    let b = random_matrix(n, n, 32);
    let res = multiply(&spec, &a, &b, ExecutionMode::Real);
    assert!(approx_eq(
        &res.c,
        &reference(&a, &b),
        gemm_tolerance(n) * 100.0
    ));
}

#[test]
fn strassen_agrees_with_summagen() {
    use summagen_matrix::strassen_multiply;
    let n = 96;
    let a = random_matrix(n, n, 41);
    let b = random_matrix(n, n, 42);
    let strassen = strassen_multiply(&a, &b);
    let areas = summagen_partition::proportional_areas(n, &[1.0, 2.0, 0.9]);
    let spec = Shape::SquareCorner.build(n, &areas);
    let sg = multiply(&spec, &a, &b, ExecutionMode::Real);
    assert!(approx_eq(&strassen, &sg.c, gemm_tolerance(n) * 1e4));
}

#[test]
fn ooc_gemm_agrees_with_summagen() {
    use summagen_matrix::ooc_gemm;
    let n = 64;
    let a = random_matrix(n, n, 51);
    let b = random_matrix(n, n, 52);
    let mut c = DenseMatrix::zeros(n, n);
    ooc_gemm(n, a.as_slice(), b.as_slice(), c.as_mut_slice(), 3 * 16 * 16);
    let areas = summagen_partition::proportional_areas(n, &[1.0, 1.0, 1.0]);
    let spec = Shape::BlockRectangle.build(n, &areas);
    let sg = multiply(&spec, &a, &b, ExecutionMode::Real);
    assert!(approx_eq(&c, &sg.c, gemm_tolerance(n) * 100.0));
}

#[test]
fn placement_improves_cluster_execution_time() {
    use summagen_comm::{HockneyModel, TwoLevelTopology};
    use summagen_core::simulate;
    use summagen_partition::{inter_node_traffic, optimal_placement, pairwise_traffic};
    use summagen_platform::profile::hclserver1;
    use summagen_platform::Platform;

    // Six processors, a layout with strong pairwise structure: the
    // square-corner spec where some pairs never talk.
    let n = 4_096;
    let single = hclserver1();
    let mut procs = single.processors.clone();
    procs.extend(single.processors.iter().cloned());
    let platform = Platform::new(procs, 460.0);
    let areas = summagen_partition::proportional_areas(n, &[1.0, 2.0, 0.9, 1.0, 2.0, 0.9]);
    let spec = Shape::OneDRectangular.build(n, &areas);

    let t = pairwise_traffic(&spec);
    let (best_assign, best_bytes) = optimal_placement(&t, &[3, 3]);
    let naive = [0usize, 0, 0, 1, 1, 1];
    let naive_bytes = inter_node_traffic(&t, &naive);
    assert!(best_bytes <= naive_bytes);

    // Simulated execution with the two placements: the optimal placement
    // must not be slower.
    let intra = HockneyModel::intra_node();
    let inter = HockneyModel::from_latency_bandwidth(2e-5, 1.0e9);
    let run = |assign: &[usize]| {
        let topo = TwoLevelTopology {
            node_of: assign.to_vec(),
            intra,
            inter,
        };
        simulate(&spec, &platform, topo).exec_time
    };
    assert!(run(&best_assign) <= run(&naive) * 1.001);
}

#[test]
fn two_proc_theory_holds_through_real_execution() {
    use summagen_partition::two_proc::{square_corner_2p, straight_cut_2p};
    let n = 48;
    for r in [2.0, 6.0] {
        for spec in [square_corner_2p(n, r), straight_cut_2p(n, r)] {
            let a = random_matrix(n, n, 11);
            let b = random_matrix(n, n, 12);
            let res = multiply(&spec, &a, &b, ExecutionMode::Real);
            assert!(approx_eq(
                &res.c,
                &reference(&a, &b),
                gemm_tolerance(n) * 100.0
            ));
        }
    }
}
