//! Integration tests for the tracing subsystem: virtual-clock
//! determinism (same shape + configuration ⇒ byte-identical canonical
//! event stream and identical critical path), critical-path consistency
//! with the executor's reported virtual time, and Perfetto export
//! sanity.

use std::sync::Arc;

use summagen_comm::{HockneyModel, SpanKind, ZeroCost};
use summagen_core::{multiply_traced, simulate_instrumented, ExecutionMode};
use summagen_matrix::{gemm_naive, max_abs_diff, random_matrix, DenseMatrix};
use summagen_partition::{proportional_areas, Shape, ALL_FOUR_SHAPES};
use summagen_platform::profile::hclserver1;
use summagen_trace::{critical_path, metrics, perfetto_json, RecordedTrace, TraceRecorder};

fn traced_sim(n: usize, shape: Shape) -> (f64, RecordedTrace) {
    let platform = hclserver1();
    let areas = proportional_areas(n, &[1.0, 2.0, 0.9]);
    let spec = shape.build(n, &areas);
    let recorder = TraceRecorder::new(spec.nprocs);
    let report = simulate_instrumented(
        &spec,
        &platform,
        HockneyModel::intra_node(),
        recorder.clone(),
    );
    (report.exec_time, recorder.finish())
}

#[test]
fn same_config_produces_byte_identical_traces() {
    for shape in [Shape::SquareCorner, Shape::OneDRectangular] {
        let (t1, a) = traced_sim(2_048, shape);
        let (t2, b) = traced_sim(2_048, shape);
        assert_eq!(t1, t2, "{}: exec times differ", shape.name());
        assert_eq!(
            a.canonical_bytes(),
            b.canonical_bytes(),
            "{}: canonical event streams differ between identical runs",
            shape.name()
        );
        assert_eq!(
            critical_path(&a),
            critical_path(&b),
            "{}: critical paths differ between identical runs",
            shape.name()
        );
    }
}

#[test]
fn critical_path_makespan_matches_executor_time_for_all_shapes() {
    for shape in ALL_FOUR_SHAPES {
        let (exec_time, trace) = traced_sim(4_096, shape);
        assert!(!trace.is_empty(), "{}: empty trace", shape.name());
        let cp = critical_path(&trace);
        let drift = (cp.makespan - exec_time).abs() / exec_time;
        assert!(
            drift < 1e-9,
            "{}: critical-path makespan {} vs executor time {exec_time}",
            shape.name(),
            cp.makespan
        );
        // The path decomposition covers the makespan exactly.
        let covered = cp.comp_time + cp.comm_time + cp.idle_time;
        assert!(
            (covered - cp.makespan).abs() < 1e-9 * cp.makespan.max(1.0),
            "{}: decomposition {covered} vs makespan {}",
            shape.name(),
            cp.makespan
        );
        let m = metrics(&trace);
        assert_eq!(m.makespan, cp.makespan, "{}", shape.name());
        assert_eq!(m.dropped, 0, "{}: ring overflow", shape.name());
        // Every rank computed something and talked to someone.
        for r in &m.per_rank {
            assert!(
                r.comp_time > 0.0,
                "{} rank {}: no compute",
                shape.name(),
                r.rank
            );
            assert!(
                r.leaf_spans > 0,
                "{} rank {}: no leaves",
                shape.name(),
                r.rank
            );
        }
        assert!(!m.links.is_empty(), "{}: no link traffic", shape.name());
    }
}

#[test]
fn perfetto_export_names_every_rank_track() {
    let (_, trace) = traced_sim(1_024, Shape::BlockRectangle);
    let json = perfetto_json(&trace, "integration test");
    assert!(json.contains("\"traceEvents\""));
    for rank in 0..trace.nranks {
        assert!(json.contains(&format!("\"name\":\"rank {rank} ops\"")));
        assert!(json.contains(&format!("\"name\":\"rank {rank} phases\"")));
    }
    let balance = |open: char, close: char| {
        json.chars().filter(|&c| c == open).count() == json.chars().filter(|&c| c == close).count()
    };
    assert!(balance('{', '}') && balance('[', ']'));
}

#[test]
fn real_mode_traced_run_is_correct_and_records_kernel_times() {
    let n = 64;
    let areas = proportional_areas(n, &[1.0, 2.0, 0.9]);
    let spec = Shape::SquareCorner.build(n, &areas);
    let a = random_matrix(n, n, 11);
    let b = random_matrix(n, n, 12);
    let recorder = TraceRecorder::new(spec.nprocs);
    let res = multiply_traced(
        &spec,
        &a,
        &b,
        ExecutionMode::Real,
        ZeroCost,
        recorder.clone() as Arc<_>,
    );
    let mut want = DenseMatrix::zeros(n, n);
    gemm_naive(
        n,
        n,
        n,
        1.0,
        a.as_slice(),
        n,
        b.as_slice(),
        n,
        0.0,
        want.as_mut_slice(),
        n,
    );
    assert!(
        max_abs_diff(&res.c, &want) < 1e-9,
        "traced run corrupted the result"
    );

    let trace = recorder.finish();
    let kernel_ns: u64 = trace
        .iter()
        .filter_map(|ts| match ts.record.kind {
            SpanKind::Gemm { kernel_ns, .. } => Some(kernel_ns),
            _ => None,
        })
        .sum();
    assert!(
        kernel_ns > 0,
        "real-mode GEMM spans must carry measured kernel times"
    );
}
