//! Figure-level acceptance tests: run the actual benchmark-harness
//! experiment functions and assert the qualitative shape of every series
//! the paper plots (who wins, what grows, what ties).

use summagen_bench::{
    cluster_experiment, crossover_series, fig5_series, fig8_series, nrrp_comparison, run_cpm_point,
    run_fpm_point, summa_comparison, CPM_SPEEDS,
};
use summagen_partition::{Shape, ALL_FOUR_SHAPES};
use summagen_platform::profile::hclserver1;
use summagen_platform::stats::percent_spread;

#[test]
fn fig5_gpu_dominates_and_all_ramp() {
    let rows = fig5_series(4_096);
    // At every plateau-range point the GPU is fastest and the Phi is
    // within the CPU's ballpark (ratio 0.9).
    for &(x, s) in rows.iter().filter(|&&(x, _)| (10_000..20_000).contains(&x)) {
        assert!(s[1] > s[0] && s[1] > s[2], "x = {x}: {s:?}");
    }
    // Ramp: speeds at x=64 are far below the plateau.
    let (_, first) = rows[0];
    let mid = rows[rows.len() / 2].1;
    for d in 0..3 {
        assert!(first[d] < 0.7 * mid[d], "device {d} did not ramp");
    }
}

#[test]
fn fig6_times_grow_with_n_for_every_shape() {
    let platform = hclserver1();
    for shape in ALL_FOUR_SHAPES {
        let t1 = run_cpm_point(25_600, shape, &platform).exec_time;
        let t2 = run_cpm_point(30_720, shape, &platform).exec_time;
        let t3 = run_cpm_point(35_840, shape, &platform).exec_time;
        assert!(t1 < t2 && t2 < t3, "{}: {t1} {t2} {t3}", shape.name());
    }
}

#[test]
fn fig6_spread_largest_at_small_sizes_is_bounded() {
    let platform = hclserver1();
    let spread_at = |n: usize| {
        let times: Vec<f64> = ALL_FOUR_SHAPES
            .iter()
            .map(|&s| run_cpm_point(n, s, &platform).exec_time)
            .collect();
        percent_spread(&times)
    };
    // Whatever the per-size ordering, the spread never exceeds the
    // paper's worst case.
    for n in [25_600usize, 30_720, 35_840] {
        let s = spread_at(n);
        assert!(s < 23.0, "spread {s}% at N = {n}");
    }
}

#[test]
fn fig7_fpm_times_grow_with_n() {
    let platform = hclserver1();
    let t1 = run_fpm_point(8_192, Shape::SquareRectangle, &platform).exec_time;
    let t2 = run_fpm_point(16_384, Shape::SquareRectangle, &platform).exec_time;
    assert!(t2 > 4.0 * t1, "cubic flops should dominate: {t1} -> {t2}");
}

#[test]
fn fig8_energy_grows_with_n_and_ties_across_shapes() {
    let series = fig8_series();
    let ns: Vec<usize> = {
        let mut v: Vec<usize> = series.iter().map(|&(n, _, _)| n).collect();
        v.sort_unstable();
        v.dedup();
        v
    };
    // Per-shape monotonic growth.
    for shape in ALL_FOUR_SHAPES {
        let per_n: Vec<f64> = ns
            .iter()
            .map(|&n| {
                series
                    .iter()
                    .find(|&&(m, s, _)| m == n && s == shape)
                    .map(|&(_, _, e)| e)
                    .unwrap()
            })
            .collect();
        for w in per_n.windows(2) {
            assert!(w[1] > w[0], "{}: energy not growing", shape.name());
        }
    }
    // Tie across shapes at each size.
    for &n in &ns {
        let es: Vec<f64> = series
            .iter()
            .filter(|&&(m, _, _)| m == n)
            .map(|&(_, _, e)| e)
            .collect();
        assert!(percent_spread(&es) < 10.0, "N = {n}");
    }
}

#[test]
fn crossover_monotone_in_ratio() {
    let series = crossover_series(2_048);
    // Square-corner volume decreases monotonically with the ratio while
    // the 1D volume is constant.
    for w in series.windows(2) {
        assert!(w[1].1 <= w[0].1, "SC volume must not grow with ratio");
        assert_eq!(w[1].2, w[0].2, "1D volume is ratio-independent");
    }
}

#[test]
fn nrrp_table_is_internally_consistent() {
    for (label, nrrp, cols, best_shape, lb) in nrrp_comparison(512) {
        assert!(nrrp as f64 >= lb, "{label}");
        assert!(cols as f64 >= lb, "{label}");
        assert!(best_shape as f64 >= lb, "{label}");
    }
}

#[test]
fn summa_gap_shrinks_with_homogeneity() {
    // The SummaGen-vs-SUMMA speedup stems from heterogeneity: verify the
    // measured speedups in the harness are >1 (heterogeneous node).
    for (n, sg, classic) in summa_comparison() {
        let speedup = classic / sg;
        assert!((1.05..2.5).contains(&speedup), "n = {n}: speedup {speedup}");
    }
    let _ = CPM_SPEEDS;
}

#[test]
fn cluster_rows_cover_three_topologies() {
    let rows = cluster_experiment(8_192);
    assert_eq!(rows.len(), 3);
    let labels: Vec<&str> = rows.iter().map(|r| r.0.as_str()).collect();
    assert!(labels[0].contains("one node"));
    assert!(labels[2].contains("six"));
}
