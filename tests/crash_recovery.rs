//! End-to-end crash/restart recovery: the durable journal, the service's
//! recovery path, and the core checkpointed executor, exercised together
//! the way a real deployment would hit them — crash, reopen the (possibly
//! torn) journal, resubmit everything, and demand exactly-once terminal
//! outcomes with bit-identical numeric results.

use summagen_comm::HockneyModel;
use summagen_core::{multiply_abft_prefix, panel_boundaries, AbftOptions, ExecutionMode};
use summagen_durable::{decode_frames, replay, CrashKind, CrashSpec, GroupCommitConfig, Journal};
use summagen_matrix::random_matrix;
use summagen_partition::Shape;
use summagen_platform::profile::hclserver1;
use summagen_service::{
    AdmissionConfig, DevicePool, DurableRun, FaultProfile, GemmService, JobSpec, Policy,
    ServiceBackend, ServiceConfig,
};

fn pool() -> DevicePool {
    DevicePool::from_platform(&hclserver1(), 1e-5, 4e-10)
}

fn config(backend: ServiceBackend, fault_seed: u64) -> ServiceConfig {
    ServiceConfig {
        policy: Policy::FpmAware,
        backend,
        admission: AdmissionConfig {
            queue_capacity: 1 << 16,
            per_tenant_quota: 1 << 16,
            ..AdmissionConfig::default()
        },
        faults: FaultProfile {
            fail_permille: 200,
            seed: fault_seed,
            ..FaultProfile::default()
        },
        ..ServiceConfig::default()
    }
}

fn jobs(count: u64) -> Vec<JobSpec> {
    (0..count)
        .map(|id| JobSpec {
            id,
            tenant: (id % 3) as usize,
            n: [16, 24, 32][(id % 3) as usize],
            priority: (id % 3) as u8,
            deadline: None,
            submit_time: id as f64 * 0.002,
        })
        .collect()
}

fn reopen(journal: Journal) -> (Journal, usize) {
    let (bytes, _) = journal.into_durable();
    let decode = decode_frames(&bytes);
    let torn = bytes.len() - decode.valid_bytes;
    (
        Journal::reopen(bytes, decode.valid_bytes, GroupCommitConfig::default()),
        torn,
    )
}

/// Crash-ladder the stream until it drains: every restart resubmits the
/// whole stream. Returns the final journal and how many cycles crashed.
fn drain_with_crashes(
    stream: &[JobSpec],
    backend: ServiceBackend,
    seed: u64,
    armed_cycles: u64,
    max_event: u64,
) -> (Journal, u64) {
    let mut journal = Journal::new(GroupCommitConfig::default());
    let mut crashes = 0;
    for cycle in 0.. {
        let spec = (cycle < armed_cycles).then(|| CrashSpec::draw(seed, cycle, max_event));
        let mut service = GemmService::new(pool(), config(backend, seed));
        match service.recover(journal, stream.to_vec(), spec) {
            DurableRun::Finished(rep) => return (rep.journal, crashes),
            DurableRun::Crashed(c) => {
                crashes += 1;
                journal = reopen(c.journal).0;
            }
        }
    }
    unreachable!("the post-ladder epoch runs with no crash armed");
}

/// The tentpole contract on the *real* numeric backend: a crash ladder
/// with full-stream resubmission after every restart completes each job
/// exactly once, and the journal's completion digests — captured from
/// the actually-executed products — are bit-identical to a crash-free
/// control's.
#[test]
fn real_backend_crash_ladder_is_exactly_once_with_bit_identical_digests() {
    let backend = ServiceBackend::Real { abft: true };
    let stream = jobs(10);

    let mut control_svc = GemmService::new(pool(), config(backend, 5));
    let control = match control_svc.run_durable(
        stream.clone(),
        Journal::new(GroupCommitConfig::default()),
        None,
    ) {
        DurableRun::Finished(rep) => replay(rep.journal.durable()).state,
        DurableRun::Crashed(_) => panic!("control crashed with no injector armed"),
    };
    assert_eq!(
        control.completed.len() + control.failed.len(),
        stream.len(),
        "control did not drain the stream"
    );

    let (journal, crashes) = drain_with_crashes(&stream, backend, 5, 6, 8);
    assert!(crashes >= 2, "only {crashes} of 6 armed cycles crashed");
    let ladder = replay(journal.durable()).state;

    let keys = |m: &std::collections::BTreeMap<u64, _>| m.keys().copied().collect::<Vec<u64>>();
    assert_eq!(keys(&ladder.completed), keys(&control.completed));
    assert_eq!(keys(&ladder.failed), keys(&control.failed));
    for (key, rec) in &ladder.completed {
        assert_eq!(
            rec.digest, control.completed[key].digest,
            "job {} (key {key:016x}): recovered product digest differs from the crash-free run",
            rec.job
        );
    }
}

/// A deterministic torn-write crash: the journal tail is severed
/// mid-record, reopen truncates exactly the torn bytes, and the
/// recovered run still drains to the crash-free ledger.
#[test]
fn torn_journal_tail_is_truncated_and_recovery_still_drains_exactly_once() {
    let stream = jobs(24);
    let spec = CrashSpec {
        at_event: 20,
        kind: CrashKind::MidAppend { torn_bytes: 7 },
    };
    let mut service = GemmService::new(pool(), config(ServiceBackend::Virtual, 9));
    let crashed = match service.run_durable(
        stream.clone(),
        Journal::new(GroupCommitConfig::default()),
        Some(spec),
    ) {
        DurableRun::Crashed(c) => c,
        DurableRun::Finished(_) => panic!("armed mid-append crash never fired"),
    };
    assert_eq!(crashed.kind, CrashKind::MidAppend { torn_bytes: 7 });

    // Tearing 7 bytes off mid-frame leaves a partial frame whose whole
    // remnant the decoder must discard — at least some bytes truncate.
    let (journal, torn) = reopen(crashed.journal);
    assert!(torn > 0, "reopen truncated nothing after a torn write");

    let mut restarted = GemmService::new(pool(), config(ServiceBackend::Virtual, 9));
    let finished = match restarted.recover(journal, stream.clone(), None) {
        DurableRun::Finished(rep) => rep,
        DurableRun::Crashed(_) => panic!("recovery crashed with no injector armed"),
    };
    assert!(finished.recovery.epoch >= 1);
    let state = replay(finished.journal.durable()).state;
    assert_eq!(state.completed.len() + state.failed.len(), stream.len());
    assert!(state.queued.is_empty() && state.in_flight.is_empty());

    let mut control = GemmService::new(pool(), config(ServiceBackend::Virtual, 9));
    let want = match control.run_durable(stream, Journal::new(GroupCommitConfig::default()), None) {
        DurableRun::Finished(rep) => replay(rep.journal.durable()).state,
        DurableRun::Crashed(_) => panic!("control crashed"),
    };
    let keys = |m: &std::collections::BTreeMap<u64, _>| m.keys().copied().collect::<Vec<u64>>();
    assert_eq!(keys(&state.completed), keys(&want.completed));
    assert_eq!(keys(&state.failed), keys(&want.failed));
}

/// The core-level contract behind the mid-checkpoint crash seam: when
/// the newest checkpoint's journal record is lost, recovery resumes
/// from the *previous* durable boundary — and the real checksummed
/// executor reproduces the uninterrupted product bit-for-bit from
/// there, re-deriving the panels the lost checkpoint had covered.
#[test]
fn real_executor_falls_back_a_boundary_and_stays_bit_identical() {
    let n = 24;
    let speeds = [1.0, 1.0, 1.0];
    let shape = Shape::OneDRectangular;
    let a = random_matrix(n, n, 21);
    let b = random_matrix(n, n, 22);
    let abft = AbftOptions::default();
    let run = |resume: Option<&summagen_core::PanelCheckpoint>, stop_k: usize| {
        multiply_abft_prefix(
            shape,
            &speeds,
            &a,
            &b,
            ExecutionMode::Real,
            HockneyModel::intra_node(),
            &abft,
            resume,
            stop_k,
        )
        .expect("prefix run")
    };

    let bounds = panel_boundaries(shape, n, &speeds);
    assert!(
        bounds.len() >= 3,
        "need two interior boundaries: {bounds:?}"
    );
    let whole = run(None, n);

    // Checkpoint at the first boundary is durable; the one at the second
    // boundary was written but its journal record lost in the crash.
    let durable = run(None, bounds[0]);
    let lost = run(Some(&durable), bounds[1]);
    assert!(lost.k > durable.k);

    // Recovery never sees `lost`: it resumes from `durable` and redoes
    // the middle panel on the way to the end.
    let recovered = run(Some(&durable), n);
    assert_eq!(recovered.k, n);
    for (i, (got, want)) in recovered
        .c
        .as_slice()
        .iter()
        .zip(whole.c.as_slice())
        .enumerate()
    {
        assert_eq!(
            got.to_bits(),
            want.to_bits(),
            "element {i} differs after falling back to boundary {}",
            bounds[0]
        );
    }
}
