//! Facade crate for the SummaGen reproduction: re-exports the public API
//! of every workspace crate under one roof, so downstream users can depend
//! on a single crate.
//!
//! ```
//! use summagen_repro::prelude::*;
//!
//! let n = 64;
//! let areas = proportional_areas(n, &[1.0, 2.0, 0.9]);
//! let spec = Shape::SquareCorner.build(n, &areas);
//! let a = random_matrix(n, n, 1);
//! let b = random_matrix(n, n, 2);
//! let result = multiply(&spec, &a, &b, ExecutionMode::Real);
//! assert_eq!(result.c.rows(), n);
//! ```

pub use summagen_comm as comm;
pub use summagen_core as core;
pub use summagen_matrix as matrix;
pub use summagen_partition as partition;
pub use summagen_platform as platform;
pub use summagen_trace as trace;

/// The most common imports, re-exported flat.
pub mod prelude {
    pub use summagen_comm::{
        CommError, CommResult, Communicator, EventSink, FaultPlan, HockneyModel, Payload,
        RankFailure, SpanKind, SpanRecord, Universe, ZeroCost,
    };
    pub use summagen_core::{
        multiply, multiply_abft, multiply_abft_traced, multiply_traced, multiply_with_cost,
        multiply_with_recovery, simulate, simulate_instrumented, simulate_with_energy, AbftOptions,
        AbftReport, AbftRunResult, ExecutionMode, RecoveryOptions, RecoveryReport, RunResult,
        SimReport,
    };
    pub use summagen_matrix::{random_matrix, DenseMatrix, GemmKernel};
    pub use summagen_partition::{
        beaumont_column_layout, load_imbalancing_areas, proportional_areas, DiscreteFpm,
        PartitionSpec, Shape, ALL_FOUR_SHAPES,
    };
    pub use summagen_platform::profile::hclserver1;
    pub use summagen_platform::{AbstractProcessor, Platform};
    pub use summagen_trace::{
        critical_path, metrics, perfetto_json, CriticalPath, RecordedTrace, TraceMetrics,
        TraceRecorder,
    };
}
