//! Shape explorer: render all six partition shapes (the paper's four plus
//! the two extension candidates) for arbitrary speed ratios, and compare
//! their communication volumes against the theoretical lower bound.
//!
//! ```sh
//! cargo run --example shape_explorer [s0 s1 s2]
//! # e.g. a 1:8:1 platform where square corner shines:
//! cargo run --example shape_explorer 1 8 1
//! ```

use summagen_partition::{half_perimeter_lower_bound, proportional_areas, Shape, ALL_FOUR_SHAPES};

fn main() {
    let args: Vec<f64> = std::env::args()
        .skip(1)
        .filter_map(|s| s.parse().ok())
        .collect();
    let speeds: [f64; 3] = if args.len() == 3 {
        [args[0], args[1], args[2]]
    } else {
        [1.0, 2.0, 0.9]
    };

    let n = 64;
    let areas = proportional_areas(n, &speeds);
    println!(
        "speeds {speeds:?} -> areas {:?} on an {n}x{n} matrix\n",
        areas.iter().map(|a| a.round()).collect::<Vec<_>>()
    );

    let all_shapes = ALL_FOUR_SHAPES
        .iter()
        .chain(&[Shape::RectangleCorner, Shape::LRectangle]);
    let lb = half_perimeter_lower_bound(&areas);
    println!(
        "{:<24}{:>14}{:>18}",
        "shape", "sum c(Z_i)", "vs lower bound"
    );
    let mut best: Option<(Shape, usize)> = None;
    for &shape in all_shapes.clone() {
        let spec = shape.build(n, &areas);
        let hp = spec.total_half_perimeter();
        println!("{:<24}{:>14}{:>17.2}x", shape.name(), hp, hp as f64 / lb);
        if best.is_none() || hp < best.unwrap().1 {
            best = Some((shape, hp));
        }
    }
    let (winner, _) = best.unwrap();
    println!(
        "\nlower bound 2·Σ√aᵢ = {lb:.0}; best shape here: {}\n",
        winner.name()
    );

    for &shape in all_shapes {
        let spec = shape.build(n, &areas);
        println!("{} (areas {:?}):", shape.name(), spec.areas());
        println!("{}", spec.element_map(32));
    }
}
