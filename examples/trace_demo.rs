//! End-to-end tracing demo: run a small square-corner SummaGen
//! multiplication on the three modelled devices with the trace recorder
//! installed, print the per-rank accounting and the critical path, and
//! write a Perfetto trace file you can open at <https://ui.perfetto.dev>.
//!
//! ```sh
//! cargo run --example trace_demo [N] [OUT.json]
//! ```

use summagen_comm::HockneyModel;
use summagen_core::simulate_instrumented;
use summagen_partition::{proportional_areas, Shape};
use summagen_platform::profile::hclserver1;
use summagen_trace::{critical_path, metrics, perfetto_json, TraceRecorder};

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(4_096);
    let out = args
        .next()
        .unwrap_or_else(|| "target/trace_demo.json".to_string());

    // A small three-device run: square-corner partition with the paper's
    // 1 : 2 : 0.9 relative speeds on the modelled HCLServer1.
    let platform = hclserver1();
    let areas = proportional_areas(n, &[1.0, 2.0, 0.9]);
    let spec = Shape::SquareCorner.build(n, &areas);

    let recorder = TraceRecorder::new(spec.nprocs);
    let report = simulate_instrumented(
        &spec,
        &platform,
        HockneyModel::intra_node(),
        recorder.clone(),
    );
    let trace = recorder.finish();

    println!(
        "SummaGen / square corner, N = {n}: exec {:.4} s, {} spans recorded ({} dropped)\n",
        report.exec_time,
        trace.len(),
        trace.dropped
    );

    let m = metrics(&trace);
    let names = ["AbsCPU", "AbsGPU", "AbsPhi"];
    println!(
        "{:>8} {:>12} {:>12} {:>12} {:>7}",
        "rank", "comp (s)", "comm (s)", "idle (s)", "comp%"
    );
    for r in &m.per_rank {
        println!(
            "{:>8} {:>12.6} {:>12.6} {:>12.6} {:>6.1}%",
            names.get(r.rank).copied().unwrap_or("rank"),
            r.comp_time,
            r.comm_time,
            r.idle_time,
            100.0 * r.comp_fraction(m.makespan),
        );
    }
    println!("\nlink volumes:");
    for l in &m.links {
        println!(
            "  r{} -> r{}: {:>12} B in {} messages",
            l.src, l.dst, l.bytes, l.msgs
        );
    }

    let cp = critical_path(&trace);
    println!();
    print!("{}", cp.table());

    if let Some(dir) = std::path::Path::new(&out).parent() {
        std::fs::create_dir_all(dir).expect("create output directory");
    }
    let title = format!("SummaGen square corner N={n} (trace_demo)");
    std::fs::write(&out, perfetto_json(&trace, &title)).expect("write trace file");
    println!("\nwrote {out} — load it at https://ui.perfetto.dev (Open trace file)");
}
