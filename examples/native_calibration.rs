//! Native calibration: apply the paper's measurement methodology to the
//! machine this example runs on. Each data point times the real
//! rayon-parallel GEMM kernel, repeating until the Student's-t 95 %
//! confidence interval is within 2.5 % of the mean (the paper's
//! protocol), then builds a tabulated FPM of the *actual* host and uses
//! it to partition a real multiplication across three unequal
//! thread-group "processors".
//!
//! ```sh
//! cargo run --release --example native_calibration
//! ```

use std::time::Instant;

use summagen_matrix::{gemm_parallel, random_matrix, DenseMatrix};
use summagen_partition::{load_imbalancing_areas, DiscreteFpm, Shape};
use summagen_platform::speed::{SpeedFunction, TabulatedSpeed};
use summagen_platform::stats::{measure_to_confidence, MeasurementProtocol, SampleStats};

fn time_gemm(n: usize) -> f64 {
    let a = random_matrix(n, n, 1);
    let b = random_matrix(n, n, 2);
    let mut c = DenseMatrix::zeros(n, n);
    let t0 = Instant::now();
    gemm_parallel(
        n,
        n,
        n,
        1.0,
        a.as_slice(),
        n,
        b.as_slice(),
        n,
        0.0,
        c.as_mut_slice(),
        n,
    );
    t0.elapsed().as_secs_f64()
}

fn main() {
    let protocol = MeasurementProtocol {
        precision: 0.05, // slightly looser than the paper's 2.5% to keep
        // the example fast on shared machines
        min_reps: 3,
        max_reps: 40,
    };

    println!("measuring the native rayon-parallel GEMM (Student's-t protocol)...\n");
    println!(
        "{:>6}{:>8}{:>14}{:>12}{:>10}",
        "n", "reps", "mean t (s)", "GFLOP/s", "CI/mean"
    );
    let sizes = [64usize, 96, 128, 192, 256, 384];
    let mut points = Vec::new();
    for &n in &sizes {
        let stats: SampleStats = measure_to_confidence(protocol, || time_gemm(n));
        let flops = 2.0 * (n as f64).powi(3);
        let speed = flops / stats.mean;
        println!(
            "{n:>6}{:>8}{:>14.5}{:>12.2}{:>10.3}",
            stats.reps,
            stats.mean,
            speed / 1e9,
            stats.relative_precision()
        );
        points.push((n as f64, speed));
    }

    // The measured speed function of this machine.
    let fpm = TabulatedSpeed::from_square_sizes(points);
    println!(
        "\nnative speed at n=256 equivalent: {:.2} GFLOP/s",
        fpm.flops_at_square(256.0) / 1e9
    );

    // Partition a real multiplication across three synthetic processors
    // whose speeds are fractions of the measured native speed (as if the
    // host were three unequal devices), then verify through SummaGen.
    let n = 192;
    let fracs = [1.0, 0.6, 0.3];
    let fpms: Vec<DiscreteFpm> = fracs
        .iter()
        .map(|&f| {
            let scaled: Vec<(f64, f64)> = fpm.points().iter().map(|&(a, s)| (a, s * f)).collect();
            DiscreteFpm::from_speed(&TabulatedSpeed::new(scaled), n, 64)
        })
        .collect();
    let areas = load_imbalancing_areas(n, &fpms);
    println!(
        "\nload-imbalancing areas from the measured FPM at n = {n}: {:?}",
        areas.iter().map(|a| a.round()).collect::<Vec<_>>()
    );
    let spec = Shape::SquareRectangle.build(n, &areas);
    let a = random_matrix(n, n, 3);
    let b = random_matrix(n, n, 4);
    let res = summagen_core::multiply(&spec, &a, &b, summagen_core::ExecutionMode::Real);
    println!(
        "SummaGen on the calibrated partition: C computed, {} bytes moved",
        res.traffic.iter().map(|t| t.bytes_sent).sum::<u64>()
    );
}
