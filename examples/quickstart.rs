//! Quickstart: multiply two matrices with SummaGen using the square-corner
//! partition shape for three heterogeneous processors, and verify the
//! result against a sequential reference.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use summagen_core::{multiply, ExecutionMode};
use summagen_matrix::{gemm_naive, max_abs_diff, random_matrix, DenseMatrix};
use summagen_partition::{proportional_areas, Shape};

fn main() {
    // A 256 x 256 product split across three processors whose relative
    // speeds are {1.0, 2.0, 0.9} — the ratios the paper measures for its
    // CPU / GPU / Xeon Phi abstract processors.
    let n = 256;
    let speeds = [1.0, 2.0, 0.9];

    // Step 1 (Section V): distribute the workload n² proportionally.
    let areas = proportional_areas(n, &speeds);
    println!(
        "target areas: {:?} (fractions of n² = {})",
        areas.iter().map(|a| a.round()).collect::<Vec<_>>(),
        n * n
    );

    // Steps 2-3: arrange the partitions in the square-corner shape.
    let spec = Shape::SquareCorner.build(n, &areas);
    println!("\npartition layout (each digit = owning processor):");
    println!("{}", spec.element_map(32));
    println!("achieved areas: {:?}", spec.areas());
    println!(
        "half-perimeters (comm volume): {:?}",
        spec.half_perimeters()
    );

    // Run SummaGen: three rank threads, real data movement, real DGEMM.
    let a = random_matrix(n, n, 42);
    let b = random_matrix(n, n, 43);
    let result = multiply(&spec, &a, &b, ExecutionMode::Real);

    // Verify against the sequential reference.
    let mut reference = DenseMatrix::zeros(n, n);
    gemm_naive(
        n,
        n,
        n,
        1.0,
        a.as_slice(),
        n,
        b.as_slice(),
        n,
        0.0,
        reference.as_mut_slice(),
        n,
    );
    let err = max_abs_diff(&result.c, &reference);
    println!("\nmax |SummaGen - reference| = {err:.3e}");
    assert!(err < 1e-9, "verification failed");
    println!("verified: SummaGen matches the sequential reference");

    for (rank, t) in result.traffic.iter().enumerate() {
        println!(
            "rank {rank}: sent {} msgs / {} bytes, received {} msgs / {} bytes",
            t.msgs_sent, t.bytes_sent, t.msgs_recv, t.bytes_recv
        );
    }
}
