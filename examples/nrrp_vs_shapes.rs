//! NRRP vs the named shapes vs the column-based baseline: compares the
//! communication volumes (total half-perimeters) of all partitioners over
//! a sweep of heterogeneity, then verifies an NRRP layout numerically
//! through SummaGen.
//!
//! ```sh
//! cargo run --example nrrp_vs_shapes
//! ```

use summagen_core::{multiply, ExecutionMode};
use summagen_matrix::{gemm_naive, max_abs_diff, random_matrix, DenseMatrix};
use summagen_partition::{
    beaumont_column_layout, half_perimeter_lower_bound, nrrp_layout, proportional_areas, Shape,
};

fn main() {
    let n = 512;
    println!(
        "{:>8}{:>10}{:>10}{:>14}{:>12}{:>10}",
        "ratio", "NRRP", "columns", "square corner", "lower bnd", "NRRP/LB"
    );
    for k in 1..=8 {
        let r = k as f64;
        let speeds = [1.0, r, 1.0];
        let areas = proportional_areas(n, &speeds);
        let nrrp = nrrp_layout(n, &speeds).total_half_perimeter();
        let cols = beaumont_column_layout(n, &speeds).total_half_perimeter();
        let sc = Shape::SquareCorner.build(n, &areas).total_half_perimeter();
        let lb = half_perimeter_lower_bound(&areas);
        println!(
            "{:>7}:1{nrrp:>10}{cols:>10}{sc:>14}{lb:>12.0}{:>10.3}",
            k,
            nrrp as f64 / lb
        );
    }

    // NRRP layouts are ordinary PartitionSpecs: run one through SummaGen.
    let n = 96;
    let spec = nrrp_layout(n, &[1.0, 6.0, 1.0, 0.5]);
    println!("\nNRRP layout for speeds [1, 6, 1, 0.5] at n = {n}:");
    println!("{}", spec.element_map(32));
    let a = random_matrix(n, n, 1);
    let b = random_matrix(n, n, 2);
    let res = multiply(&spec, &a, &b, ExecutionMode::Real);
    let mut want = DenseMatrix::zeros(n, n);
    gemm_naive(
        n,
        n,
        n,
        1.0,
        a.as_slice(),
        n,
        b.as_slice(),
        n,
        0.0,
        want.as_mut_slice(),
        n,
    );
    println!(
        "max error through SummaGen: {:.3e}",
        max_abs_diff(&res.c, &want)
    );
    assert!(max_abs_diff(&res.c, &want) < 1e-9);
}
