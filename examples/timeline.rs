//! Timeline view: run a paper-scale simulated SummaGen multiplication
//! with event tracing and render an ASCII Gantt chart of what each
//! abstract processor was doing — plus the exact (timeline-sampled)
//! dynamic energy next to the paper's Equation 5.
//!
//! ```sh
//! cargo run --example timeline [N]
//! ```

use summagen_comm::{HockneyModel, TraceKind};
use summagen_core::{metered_energy_from_timelines, simulate_traced};
use summagen_partition::{proportional_areas, Shape};
use summagen_platform::energy::hclserver1_power_model;
use summagen_platform::profile::hclserver1;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(25_600);

    let platform = hclserver1();
    let areas = proportional_areas(n, &[1.0, 2.0, 0.9]);
    let spec = Shape::SquareCorner.build(n, &areas);
    let (report, timelines) = simulate_traced(&spec, &platform, HockneyModel::intra_node());

    println!(
        "SummaGen / square corner, N = {n}: exec {:.2} s (comp {:.2} s, comm {:.2} s)\n",
        report.exec_time, report.comp_time, report.comm_time
    );

    // ASCII Gantt: 100 columns spanning [0, exec_time].
    const WIDTH: usize = 100;
    let names = ["AbsCPU", "AbsGPU", "AbsPhi"];
    println!(
        "legend: #=compute  -=comm  .=wait   ({WIDTH} cols = {:.2} s)",
        report.exec_time
    );
    for (rank, tl) in timelines.iter().enumerate() {
        let mut row = vec![' '; WIDTH];
        for e in tl {
            let c0 = ((e.start / report.exec_time) * WIDTH as f64) as usize;
            let c1 = (((e.end / report.exec_time) * WIDTH as f64).ceil() as usize).min(WIDTH);
            let ch = match e.kind {
                TraceKind::Compute => '#',
                TraceKind::Comm => '-',
                TraceKind::Wait => '.',
            };
            for cell in row.iter_mut().take(c1).skip(c0.min(WIDTH)) {
                *cell = ch;
            }
        }
        println!(
            "{:>7} |{}|",
            names.get(rank).unwrap_or(&"rank"),
            row.iter().collect::<String>()
        );
    }

    let power = hclserver1_power_model();
    let exact = metered_energy_from_timelines(&timelines, &power, report.exec_time);
    println!(
        "\ndynamic energy (timeline-sampled, 1 Hz WattsUp model): {:.0} J",
        exact.dynamic_energy_j
    );
    println!(
        "total energy incl. {} W static draw: {:.0} J over {:.1} s",
        power.static_power_w, exact.total_energy_j, exact.exec_time_s
    );
}
