//! The paper's headline experiment at one problem size: run all four
//! partition shapes on the modelled HCLServer1 node (Haswell CPU + K40c
//! GPU + Xeon Phi 3120P) in simulated time and compare execution,
//! computation and communication times plus dynamic energy.
//!
//! ```sh
//! cargo run --example heterogeneous_node [N]
//! ```

use summagen_comm::HockneyModel;
use summagen_core::simulate_with_energy;
use summagen_partition::{proportional_areas, ALL_FOUR_SHAPES};
use summagen_platform::energy::hclserver1_power_model;
use summagen_platform::profile::hclserver1;
use summagen_platform::stats::percent_spread;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(30_720);

    let platform = hclserver1();
    let power = hclserver1_power_model();
    let link = HockneyModel::intra_node();
    // Section VI-A: constant relative speeds {1.0, 2.0, 0.9}.
    let areas = proportional_areas(n, &[1.0, 2.0, 0.9]);

    println!(
        "HCLServer1 model: {} abstract processors, theoretical peak {:.2} TFLOPs",
        platform.len(),
        platform.theoretical_peak_flops() / 1e12
    );
    println!("problem size N = {n}\n");
    println!(
        "{:<20}{:>10}{:>10}{:>10}{:>12}{:>10}",
        "shape", "exec (s)", "comp (s)", "comm (s)", "energy (J)", "TFLOPs"
    );

    let mut times = Vec::new();
    for shape in ALL_FOUR_SHAPES {
        let spec = shape.build(n, &areas);
        let r = simulate_with_energy(&spec, &platform, link, &power);
        println!(
            "{:<20}{:>10.2}{:>10.2}{:>10.2}{:>12.0}{:>10.2}",
            shape.name(),
            r.exec_time,
            r.comp_time,
            r.comm_time,
            r.energy.as_ref().unwrap().dynamic_energy_j,
            r.achieved_flops() / 1e12,
        );
        times.push(r.exec_time);
    }
    println!(
        "\nshape spread: {:.1}% (the paper reports an average of 8% over its range)",
        percent_spread(&times)
    );
}
