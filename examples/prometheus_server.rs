//! Metrics demo: run an instrumented SummaGen multiplication with the
//! metrics registry installed, then expose the result in Prometheus
//! text format — either printed once or served over HTTP so a real
//! Prometheus (or `curl`) can scrape it.
//!
//! ```sh
//! cargo run --example prometheus_server -- --once          # print and exit
//! cargo run --example prometheus_server [N] [ADDR]         # serve /metrics
//! curl http://127.0.0.1:9184/metrics
//! ```
//!
//! The server is a deliberately tiny `std::net::TcpListener` loop — one
//! request per connection, no threads, no dependencies — because the
//! interesting part is the exposition text, not the plumbing. Every
//! scrape re-renders from the same registry snapshot-free: counters and
//! histograms are read with atomic loads, so serving never perturbs a
//! run that might still be writing.

use std::io::{Read, Write};
use std::net::TcpListener;

use summagen_comm::{HockneyModel, RuntimeMetrics};
use summagen_core::simulate_observed;
use summagen_partition::{proportional_areas, Shape};
use summagen_platform::profile::hclserver1;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let once = args.iter().any(|a| a == "--once");
    let positional: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    let n: usize = positional
        .first()
        .and_then(|s| s.parse().ok())
        .unwrap_or(8_192);
    let addr = positional
        .get(1)
        .map(|s| s.as_str())
        .unwrap_or("127.0.0.1:9184");

    // One metered paper-shape run fills the registry: comm volume and
    // latency histograms, per-block GEMM throughput, panel counters.
    let platform = hclserver1();
    let areas = proportional_areas(n, &[1.0, 2.0, 0.9]);
    let spec = Shape::SquareCorner.build(n, &areas);
    let metrics = RuntimeMetrics::fresh();
    let report = simulate_observed(
        &spec,
        &platform,
        HockneyModel::intra_node(),
        None,
        Some(metrics.clone()),
    );
    eprintln!(
        "SummaGen / square corner, N = {n}: exec {:.4} s, {} sends / {} bytes metered",
        report.exec_time,
        metrics.send_msgs.get(),
        metrics.send_bytes.get()
    );

    if once {
        print!("{}", metrics.render_prometheus());
        return;
    }

    let listener = TcpListener::bind(addr).expect("bind scrape endpoint");
    eprintln!("serving Prometheus metrics on http://{addr}/metrics (Ctrl-C to stop)");
    for stream in listener.incoming() {
        let Ok(mut stream) = stream else { continue };
        // Drain the request line; the path doesn't matter — everything
        // answers with the exposition, which is what curl and Prometheus
        // both expect from a metrics endpoint.
        let mut buf = [0u8; 1024];
        let _ = stream.read(&mut buf);
        let body = metrics.render_prometheus();
        let response = format!(
            "HTTP/1.1 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        );
        let _ = stream.write_all(response.as_bytes());
    }
}
