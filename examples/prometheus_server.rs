//! Metrics demo: fill a registry with an instrumented SummaGen run and
//! expose it in Prometheus text format — either printed once or served
//! over HTTP so a real Prometheus (or `curl`) can scrape it.
//!
//! Two sources:
//!
//! * default — one metered paper-shape multiplication: comm volume and
//!   latency histograms, per-block GEMM throughput, panel counters.
//! * `--service [MIX]` — a full multi-tenant service load run (default
//!   mix `small`) under the FPM-aware scheduler: per-tenant job/latency/
//!   rejection series, queue depth gauges, per-device busy time.
//!
//! ```sh
//! cargo run --example prometheus_server -- --once            # print and exit
//! cargo run --example prometheus_server -- --service --once  # service series
//! cargo run --example prometheus_server [N] [ADDR]           # serve /metrics
//! cargo run --example prometheus_server -- --service hetero  # serve load run
//! curl http://127.0.0.1:9184/metrics
//! ```
//!
//! The server is a deliberately tiny `std::net::TcpListener` loop — no
//! dependencies, one thread per connection — because the interesting
//! part is the exposition text, not the plumbing. Scrapes are served
//! concurrently: each connection renders on its own thread from shared
//! atomics, so overlapping scrapes (Prometheus retrying while a curl is
//! mid-read) never block or tear each other.

use std::io::{Read, Write};
use std::net::TcpListener;
use std::sync::Arc;
use std::thread;

use summagen_comm::{HockneyModel, RuntimeMetrics};
use summagen_core::simulate_observed;
use summagen_metrics::MetricsRegistry;
use summagen_partition::{proportional_areas, Shape};
use summagen_platform::profile::hclserver1;
use summagen_service::{
    generate, mix_by_name, DevicePool, GemmService, Policy, ServiceConfig, ServiceMetrics,
};

/// Renders the exposition text on demand; shared across scrape threads.
type Renderer = Arc<dyn Fn() -> String + Send + Sync>;

/// One metered paper-shape run; the renderer reads its live atomics.
fn kernel_renderer(n: usize) -> Renderer {
    let platform = hclserver1();
    let areas = proportional_areas(n, &[1.0, 2.0, 0.9]);
    let spec = Shape::SquareCorner.build(n, &areas);
    let metrics = RuntimeMetrics::fresh();
    let report = simulate_observed(
        &spec,
        &platform,
        HockneyModel::intra_node(),
        None,
        Some(metrics.clone()),
    );
    eprintln!(
        "SummaGen / square corner, N = {n}: exec {:.4} s, {} sends / {} bytes metered",
        report.exec_time,
        metrics.send_msgs.get(),
        metrics.send_bytes.get()
    );
    Arc::new(move || metrics.render_prometheus())
}

/// One FPM-aware service load run; the renderer serves the per-tenant
/// series its registry accumulated.
fn service_renderer(mix_name: &str) -> Renderer {
    let mix = mix_by_name(mix_name).unwrap_or_else(|| {
        eprintln!("unknown mix '{mix_name}'; expected small or hetero");
        std::process::exit(2);
    });
    let pool = DevicePool::from_platform(&hclserver1(), 1e-5, 4e-10);
    let tenant_names = mix.tenant_names();
    let device_names: Vec<&'static str> = pool.devices().iter().map(|d| d.name).collect();
    let registry = Arc::new(MetricsRegistry::new());
    let metrics = ServiceMetrics::register(&registry, &tenant_names, &device_names);
    let mut service = GemmService::new(
        pool,
        ServiceConfig {
            policy: Policy::FpmAware,
            ..ServiceConfig::default()
        },
    )
    .with_metrics(metrics);
    let report = service.run(generate(&mix));
    eprintln!(
        "service / {} mix, fpm-aware: {} completed, {} failed, {} rejected, makespan {:.3} s",
        mix.name,
        report.completed(),
        report.failed(),
        report.rejections.len(),
        report.makespan
    );
    Arc::new(move || summagen_metrics::prometheus::render(&registry))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let once = args.iter().any(|a| a == "--once");
    let service = args.iter().any(|a| a == "--service");
    let positional: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();

    let render: Renderer = if service {
        let mix = positional.first().map(|s| s.as_str()).unwrap_or("small");
        service_renderer(mix)
    } else {
        let n: usize = positional
            .first()
            .and_then(|s| s.parse().ok())
            .unwrap_or(8_192);
        kernel_renderer(n)
    };
    let addr = positional
        .get(1)
        .map(|s| s.as_str())
        .unwrap_or("127.0.0.1:9184");

    if once {
        print!("{}", render());
        return;
    }

    let listener = TcpListener::bind(addr).expect("bind scrape endpoint");
    eprintln!("serving Prometheus metrics on http://{addr}/metrics (Ctrl-C to stop)");
    for stream in listener.incoming() {
        let Ok(mut stream) = stream else { continue };
        let render = render.clone();
        // One thread per scrape: counters and histograms are read with
        // atomic loads, so concurrent renders are safe and a slow reader
        // never holds up the accept loop.
        thread::spawn(move || {
            // Drain the request line; the path doesn't matter — every
            // path answers with the exposition, which is what curl and
            // Prometheus both expect from a metrics endpoint.
            let mut buf = [0u8; 1024];
            let _ = stream.read(&mut buf);
            let body = render();
            let response = format!(
                "HTTP/1.1 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\n\
                 Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
                body.len()
            );
            let _ = stream.write_all(response.as_bytes());
        });
    }
}
