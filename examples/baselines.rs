//! All the multiplication algorithms in one place: SummaGen (the paper's
//! contribution), classic SUMMA, block-cyclic SUMMA (Elemental-style),
//! Cannon, and 2.5D — all verified against one reference and compared on
//! communication traffic.
//!
//! ```sh
//! cargo run --example baselines
//! ```

use summagen_core::{
    cannon_multiply, caps_multiply, multiply, summa25d_multiply, summa_cyclic_multiply,
    summa_multiply, BlockCyclic, ExecutionMode,
};
use summagen_matrix::{gemm_naive, max_abs_diff, random_matrix, DenseMatrix};
use summagen_partition::proportional_areas;

fn main() {
    let n = 48;
    let a = random_matrix(n, n, 1);
    let b = random_matrix(n, n, 2);
    let mut reference = DenseMatrix::zeros(n, n);
    gemm_naive(
        n,
        n,
        n,
        1.0,
        a.as_slice(),
        n,
        b.as_slice(),
        n,
        0.0,
        reference.as_mut_slice(),
        n,
    );

    println!(
        "{:<34}{:>6}{:>12}{:>14}",
        "algorithm", "p", "max error", "total bytes"
    );

    let report = |name: &str, p: usize, c: &DenseMatrix, bytes: u64| {
        let err = max_abs_diff(c, &reference);
        println!("{name:<34}{p:>6}{err:>12.2e}{bytes:>14}");
        assert!(err < 1e-9, "{name} verification failed");
    };

    // SummaGen over the four named shapes.
    let areas = proportional_areas(n, &[1.0, 2.0, 0.9]);
    for shape in summagen_partition::ALL_FOUR_SHAPES {
        let spec = shape.build(n, &areas);
        let r = multiply(&spec, &a, &b, ExecutionMode::Real);
        let bytes = r.traffic.iter().map(|t| t.bytes_sent).sum();
        report(&format!("SummaGen / {}", shape.name()), 3, &r.c, bytes);
    }

    // Classic SUMMA, 2x2 grid.
    let r = summa_multiply(&a, &b, 2, 2, 8);
    let bytes = r.traffic.iter().map(|t| t.bytes_sent).sum();
    report("classic SUMMA (2x2, nb=8)", 4, &r.c, bytes);

    // Block-cyclic SUMMA.
    let (c, _, traffic) = summa_cyclic_multiply(&a, &b, BlockCyclic::new(8, 2, 2));
    let bytes = traffic.iter().map(|t| t.bytes_sent).sum();
    report("block-cyclic SUMMA (nb=8, 2x2)", 4, &c, bytes);

    // Cannon on a 4x4 torus.
    let r = cannon_multiply(&a, &b, 4);
    let bytes = r.traffic.iter().map(|t| t.bytes_sent).sum();
    report("Cannon (4x4)", 16, &r.c, bytes);

    // 2.5D with two replication layers.
    let r = summa25d_multiply(&a, &b, 4, 2);
    let bytes = r.traffic.iter().map(|t| t.bytes_sent).sum();
    report("2.5D (q=4, c=2)", 32, &r.c, bytes);

    // Parallel Strassen (CAPS-style BFS step over 7 ranks).
    let r = caps_multiply(&a, &b);
    let bytes = r.traffic.iter().map(|t| t.bytes_sent).sum();
    report("parallel Strassen (CAPS, p=7)", 7, &r.c, bytes);

    println!("\nall algorithms verified against the sequential reference");
}
