//! Energy study (Section VI-C): dynamic energy of the four shapes under
//! the constant performance model, measured with the simulated WattsUp
//! meter (1 Hz sampling, Equation 5).
//!
//! ```sh
//! cargo run --example energy_study
//! ```

use summagen_comm::HockneyModel;
use summagen_core::simulate_with_energy;
use summagen_partition::{proportional_areas, ALL_FOUR_SHAPES};
use summagen_platform::energy::hclserver1_power_model;
use summagen_platform::profile::hclserver1;
use summagen_platform::stats::percent_spread;

fn main() {
    let platform = hclserver1();
    let power = hclserver1_power_model();
    let link = HockneyModel::intra_node();

    println!(
        "static platform power: {} W (fans pinned at full speed)",
        power.static_power_w
    );
    println!("dynamic device powers: {:?} W\n", power.compute_power_w);

    println!(
        "{:>8}{:>18}{:>18}{:>18}{:>18}{:>10}",
        "N", "square corner", "square rect", "block rect", "1D rect", "spread"
    );
    for k in 0..=5 {
        let n = 25_600 + k * 2_048;
        let areas = proportional_areas(n, &[1.0, 2.0, 0.9]);
        let mut row = format!("{n:>8}");
        let mut energies = Vec::new();
        for shape in ALL_FOUR_SHAPES {
            let spec = shape.build(n, &areas);
            let r = simulate_with_energy(&spec, &platform, link, &power);
            let e = r.energy.unwrap().dynamic_energy_j;
            energies.push(e);
            row.push_str(&format!("{e:>18.0}"));
        }
        println!("{row}{:>9.1}%", percent_spread(&energies));
    }
    println!("\n(paper: the four shapes exhibit equal dynamic energy consumptions)");
}
