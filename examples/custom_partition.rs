//! Custom partitions: SummaGen accepts *any* `{subp, subph, subpw}`
//! layout, not just the four named shapes. This example builds the paper's
//! Fig. 1a arrays by hand (scaled 4x), plus a deliberately weird
//! checkerboard over five processors, and verifies both.
//!
//! ```sh
//! cargo run --example custom_partition
//! ```

use summagen_core::{multiply, ExecutionMode};
use summagen_matrix::{gemm_naive, max_abs_diff, random_matrix, DenseMatrix};
use summagen_partition::PartitionSpec;

fn verify(spec: &PartitionSpec, label: &str) {
    let n = spec.n;
    let a = random_matrix(n, n, 7);
    let b = random_matrix(n, n, 8);
    let result = multiply(spec, &a, &b, ExecutionMode::Real);
    let mut reference = DenseMatrix::zeros(n, n);
    gemm_naive(
        n,
        n,
        n,
        1.0,
        a.as_slice(),
        n,
        b.as_slice(),
        n,
        0.0,
        reference.as_mut_slice(),
        n,
    );
    let err = max_abs_diff(&result.c, &reference);
    println!(
        "{label}: n = {n}, p = {}, max error = {err:.3e}",
        spec.nprocs
    );
    assert!(err < 1e-9);
}

fn main() {
    // The paper's Fig. 1a square-corner arrays, scaled from 16 to 64:
    //   subp  = {0, 1, 1, 1, 1, 1, 1, 1, 2}
    //   subph = subpw = {36, 12, 16}
    let fig1a = PartitionSpec::new(
        vec![0, 1, 1, 1, 1, 1, 1, 1, 2],
        vec![36, 12, 16],
        vec![36, 12, 16],
        3,
    );
    println!("Fig. 1a layout (scaled to 64):");
    println!("{}", fig1a.element_map(16));
    println!("half-perimeters: {:?}", fig1a.half_perimeters());
    verify(&fig1a, "square corner (manual arrays)");

    // A 4x4 checkerboard over five processors — nothing like the paper's
    // shapes, still a valid input to SummaGen.
    let owners = vec![
        0, 1, 2, 3, //
        1, 2, 3, 4, //
        2, 3, 4, 0, //
        3, 4, 0, 1,
    ];
    let checker = PartitionSpec::new(owners, vec![20, 12, 20, 12], vec![16, 16, 16, 16], 5);
    println!("\ncheckerboard layout over 5 processors:");
    println!("{}", checker.element_map(16));
    verify(&checker, "checkerboard");

    println!("\nboth custom partitions verified against the reference");
}
