//! Building a functional performance model the way the paper does:
//! repeat each timing until the Student's-t 95 % confidence interval is
//! within 2.5 % of the mean, check normality with Pearson's chi-squared
//! test, and tabulate the measured speed function.
//!
//! ```sh
//! cargo run --example fpm_measurement
//! ```

use summagen_platform::measurement::{build_fpm_via_protocol, NoisyTimer};
use summagen_platform::profile::abs_gpu_profile;
use summagen_platform::speed::SpeedFunction;
use summagen_platform::stats::{pearson_normality_test, MeasurementProtocol};

fn main() {
    let truth = abs_gpu_profile();
    let sizes: Vec<f64> = (2..=24).map(|k| k as f64 * 1_024.0).collect();

    println!("building the AbsGPU profile via the measurement protocol (3% noise)...\n");
    let (table, points) =
        build_fpm_via_protocol(&truth, &sizes, 0.03, 2024, MeasurementProtocol::default());

    println!(
        "{:>8}{:>8}{:>14}{:>14}{:>12}",
        "x", "reps", "mean t (s)", "measured TF", "true TF"
    );
    for p in &points {
        println!(
            "{:>8.0}{:>8}{:>14.4}{:>14.3}{:>12.3}",
            p.x,
            p.stats.reps,
            p.stats.mean,
            p.speed / 1e12,
            truth.flops_at_square(p.x) / 1e12,
        );
    }

    // The paper verifies the t-test's normality assumption with Pearson's
    // chi-squared test: do the same on raw samples at one size.
    let mut timer = NoisyTimer::new(&truth, 0.03, 99);
    let samples: Vec<f64> = (0..200).map(|_| timer.time_once(8_192.0)).collect();
    let test = pearson_normality_test(&samples, 8);
    println!(
        "\nPearson chi-squared on 200 raw samples at x = 8192: statistic {:.2}, 95% critical {:.2} -> normality {}",
        test.statistic,
        test.critical_95,
        if test.consistent_with_normal() { "not rejected" } else { "REJECTED" }
    );

    // The tabulated model can drive partitioning directly.
    let worst = points
        .iter()
        .map(|p| (p.speed - truth.flops_at_square(p.x)).abs() / truth.flops_at_square(p.x))
        .fold(0.0, f64::max);
    println!(
        "worst relative error of the measured profile: {:.2}%",
        worst * 100.0
    );
    let _ = table;
}
