//! Per-tenant service metrics: the bridge from the scheduler's event
//! loop into `summagen-metrics`, and from there into the Prometheus
//! exposition the scrape endpoint serves.
//!
//! Handles are registered once per tenant (and per rejection reason) at
//! service construction; the event loop records through plain `Arc`
//! field accesses, never touching the registry lock mid-run — the same
//! discipline `RuntimeMetrics` uses on the comm hot path.

use std::sync::Arc;

use summagen_insight::SloKind;
use summagen_metrics::{Counter, Gauge, Histogram, MetricsRegistry};

use crate::job::Rejection;

/// The rejection reasons, in label order, for per-reason counters.
const REJECTION_LABELS: [&str; 6] = [
    "queue-full",
    "quota-exceeded",
    "too-large",
    "deadline-infeasible",
    "shed",
    "duplicate",
];

fn rejection_slot(r: &Rejection) -> usize {
    match r {
        Rejection::QueueFull { .. } => 0,
        Rejection::QuotaExceeded { .. } => 1,
        Rejection::TooLarge { .. } => 2,
        Rejection::DeadlineInfeasible { .. } => 3,
        Rejection::Shed { .. } => 4,
        Rejection::Duplicate { .. } => 5,
    }
}

/// Pre-registered per-tenant handles plus the service-wide gauges.
pub struct ServiceMetrics {
    registry: Arc<MetricsRegistry>,
    /// `summagen_service_jobs_total{tenant,outcome="completed"}`.
    completed: Vec<Arc<Counter>>,
    /// `summagen_service_jobs_total{tenant,outcome="failed"}`.
    failed: Vec<Arc<Counter>>,
    /// `summagen_service_rejections_total{tenant,reason}` — tenant-major.
    rejections: Vec<[Arc<Counter>; 6]>,
    /// `summagen_service_shed_total{tenant}` — brownout sheds.
    shed: Vec<Arc<Counter>>,
    /// `summagen_service_deadline_miss_total{tenant}` — typed misses on
    /// finished jobs (not rejections: the job ran and was late).
    deadline_miss: Vec<Arc<Counter>>,
    /// `summagen_service_latency_seconds{tenant}` (submit → finish).
    latency: Vec<Arc<Histogram>>,
    /// `summagen_service_queue_wait_seconds{tenant}` (submit → dispatch).
    queue_wait: Vec<Arc<Histogram>>,
    /// Instantaneous queue depth.
    pub queue_depth: Arc<Gauge>,
    /// High-water mark of the queue depth.
    pub queue_depth_peak: Arc<Gauge>,
    /// Batches dispatched.
    pub batches: Arc<Counter>,
    /// Shrink-and-retry executions beyond each job's first attempt.
    pub retries: Arc<Counter>,
    /// Checkpoint preemptions performed.
    pub preemptions: Arc<Counter>,
    /// Per-device busy seconds, labelled by device name.
    device_busy: Vec<Arc<Gauge>>,
    /// Per-device quarantine flag (1 = breaker open), by device name.
    quarantined: Vec<Arc<Gauge>>,
    /// Per-device breaker-open count, by device name.
    quarantine_opens: Vec<Arc<Counter>>,
    /// `summagen_service_slo_burn_rate{tenant,slo,window="fast"}` —
    /// tenant-major, [`SloKind::ALL`] slot order within.
    slo_burn_fast: Vec<[Arc<Gauge>; 3]>,
    /// `summagen_service_slo_burn_rate{tenant,slo,window="slow"}`.
    slo_burn_slow: Vec<[Arc<Gauge>; 3]>,
    /// `summagen_service_slo_alerts_total{tenant,slo}`.
    slo_alerts: Vec<[Arc<Counter>; 3]>,
    /// Journal records made durable.
    pub journal_records: Arc<Counter>,
    /// Journal fsyncs performed (group commit keeps this below the
    /// record count under load).
    pub journal_fsyncs: Arc<Counter>,
    /// Durable journal size in bytes.
    pub journal_bytes: Arc<Gauge>,
    /// Virtual seconds of fsync cost accounted to durability.
    pub journal_fsync_seconds: Arc<Gauge>,
    /// Torn or corrupt tail bytes discarded during recovery.
    pub journal_torn_bytes: Arc<Counter>,
    /// Crash-restart recoveries performed.
    pub recoveries: Arc<Counter>,
    /// Journal records replayed across all recoveries.
    pub replay_records: Arc<Counter>,
    /// Jobs rebuilt (queued + in-flight) across all recoveries.
    pub recovered_jobs: Arc<Counter>,
    /// In-flight jobs resumed from a journaled panel boundary.
    pub resumed_from_checkpoint: Arc<Counter>,
    /// Duplicate resubmissions suppressed by idempotency keys.
    pub duplicates_suppressed: Arc<Counter>,
}

impl ServiceMetrics {
    /// Registers every per-tenant series on `registry`. `tenants` and
    /// `devices` fix the label sets for the whole service lifetime.
    pub fn register(
        registry: &Arc<MetricsRegistry>,
        tenants: &[&'static str],
        devices: &[&'static str],
    ) -> Arc<Self> {
        let completed = tenants
            .iter()
            .map(|t| {
                registry.counter_with(
                    "summagen_service_jobs_total",
                    "Jobs that left the service, by tenant and outcome.",
                    &[("tenant", t), ("outcome", "completed")],
                )
            })
            .collect();
        let failed = tenants
            .iter()
            .map(|t| {
                registry.counter_with(
                    "summagen_service_jobs_total",
                    "Jobs that left the service, by tenant and outcome.",
                    &[("tenant", t), ("outcome", "failed")],
                )
            })
            .collect();
        let rejections = tenants
            .iter()
            .map(|t| {
                REJECTION_LABELS.map(|reason| {
                    registry.counter_with(
                        "summagen_service_rejections_total",
                        "Jobs refused by admission control, by tenant and reason.",
                        &[("tenant", t), ("reason", reason)],
                    )
                })
            })
            .collect();
        let shed = tenants
            .iter()
            .map(|t| {
                registry.counter_with(
                    "summagen_service_shed_total",
                    "Jobs shed by brownout load shedding, by tenant.",
                    &[("tenant", t)],
                )
            })
            .collect();
        let deadline_miss = tenants
            .iter()
            .map(|t| {
                registry.counter_with(
                    "summagen_service_deadline_miss_total",
                    "Finished jobs that missed their deadline, by tenant.",
                    &[("tenant", t)],
                )
            })
            .collect();
        let latency = tenants
            .iter()
            .map(|t| {
                registry.histogram_with(
                    "summagen_service_latency_seconds",
                    "Job sojourn time (submit to finish) on the virtual clock.",
                    &[("tenant", t)],
                )
            })
            .collect();
        let queue_wait = tenants
            .iter()
            .map(|t| {
                registry.histogram_with(
                    "summagen_service_queue_wait_seconds",
                    "Time jobs spent queued before dispatch.",
                    &[("tenant", t)],
                )
            })
            .collect();
        let device_busy = devices
            .iter()
            .map(|d| {
                registry.gauge_with(
                    "summagen_service_device_busy_seconds",
                    "Virtual seconds of dispatched occupancy per pool device.",
                    &[("device", d)],
                )
            })
            .collect();
        let quarantined = devices
            .iter()
            .map(|d| {
                registry.gauge_with(
                    "summagen_service_quarantined",
                    "Whether the device's circuit breaker is open (1) or not (0).",
                    &[("device", d)],
                )
            })
            .collect();
        let quarantine_opens = devices
            .iter()
            .map(|d| {
                registry.counter_with(
                    "summagen_service_quarantine_opens_total",
                    "Times the device's circuit breaker opened.",
                    &[("device", d)],
                )
            })
            .collect();
        let slo_burn_fast = tenants
            .iter()
            .map(|t| {
                SloKind::ALL.map(|kind| {
                    registry.gauge_with(
                        "summagen_service_slo_burn_rate",
                        "Error-budget burn rate per tenant, SLO, and window.",
                        &[("tenant", t), ("slo", kind.label()), ("window", "fast")],
                    )
                })
            })
            .collect();
        let slo_burn_slow = tenants
            .iter()
            .map(|t| {
                SloKind::ALL.map(|kind| {
                    registry.gauge_with(
                        "summagen_service_slo_burn_rate",
                        "Error-budget burn rate per tenant, SLO, and window.",
                        &[("tenant", t), ("slo", kind.label()), ("window", "slow")],
                    )
                })
            })
            .collect();
        let slo_alerts = tenants
            .iter()
            .map(|t| {
                SloKind::ALL.map(|kind| {
                    registry.counter_with(
                        "summagen_service_slo_alerts_total",
                        "Multi-window burn-rate alerts fired, by tenant and SLO.",
                        &[("tenant", t), ("slo", kind.label())],
                    )
                })
            })
            .collect();
        Arc::new(Self {
            completed,
            failed,
            rejections,
            shed,
            deadline_miss,
            latency,
            queue_wait,
            queue_depth: registry.gauge(
                "summagen_service_queue_depth",
                "Jobs currently queued (bounded by the admission capacity).",
            ),
            queue_depth_peak: registry.gauge(
                "summagen_service_queue_depth_peak",
                "High-water mark of the queue depth.",
            ),
            batches: registry.counter(
                "summagen_service_batches_total",
                "Batches dispatched onto the device pool.",
            ),
            retries: registry.counter(
                "summagen_service_retries_total",
                "Shrink-and-retry executions beyond first attempts.",
            ),
            preemptions: registry.counter(
                "summagen_service_preemptions_total",
                "Checkpoint preemptions of running batches.",
            ),
            journal_records: registry.counter(
                "summagen_service_journal_records_total",
                "Write-ahead journal records made durable.",
            ),
            journal_fsyncs: registry.counter(
                "summagen_service_journal_fsyncs_total",
                "Journal fsyncs performed (group commit batches records per fsync).",
            ),
            journal_bytes: registry.gauge(
                "summagen_service_journal_bytes",
                "Durable write-ahead journal size in bytes.",
            ),
            journal_fsync_seconds: registry.gauge(
                "summagen_service_journal_fsync_seconds",
                "Virtual seconds of fsync cost accounted to durability.",
            ),
            journal_torn_bytes: registry.counter(
                "summagen_service_journal_torn_bytes_total",
                "Torn or corrupt journal tail bytes discarded during recovery.",
            ),
            recoveries: registry.counter(
                "summagen_service_recoveries_total",
                "Crash-restart recoveries performed.",
            ),
            replay_records: registry.counter(
                "summagen_service_replay_records_total",
                "Journal records replayed across recoveries.",
            ),
            recovered_jobs: registry.counter(
                "summagen_service_recovered_jobs_total",
                "Jobs rebuilt into the queue or in-flight set by recovery.",
            ),
            resumed_from_checkpoint: registry.counter(
                "summagen_service_resumed_from_checkpoint_total",
                "In-flight jobs resumed from a journaled panel boundary.",
            ),
            duplicates_suppressed: registry.counter(
                "summagen_service_duplicates_suppressed_total",
                "Duplicate resubmissions suppressed by idempotency keys.",
            ),
            registry: Arc::clone(registry),
            device_busy,
            quarantined,
            quarantine_opens,
            slo_burn_fast,
            slo_burn_slow,
            slo_alerts,
        })
    }

    /// The registry the series live on (for Prometheus rendering).
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// Records a completed job's latency and queue wait.
    pub fn record_completed(&self, tenant: usize, latency_s: f64, queue_wait_s: f64) {
        self.completed[tenant].inc();
        self.latency[tenant].observe(latency_s);
        self.queue_wait[tenant].observe(queue_wait_s);
    }

    /// Records a failed job (latency still observed: failure took time).
    pub fn record_failed(&self, tenant: usize, latency_s: f64, queue_wait_s: f64) {
        self.failed[tenant].inc();
        self.latency[tenant].observe(latency_s);
        self.queue_wait[tenant].observe(queue_wait_s);
    }

    /// Records an admission rejection. A brownout shed also bumps the
    /// dedicated per-tenant shed counter.
    pub fn record_rejection(&self, tenant: usize, rejection: &Rejection) {
        self.rejections[tenant][rejection_slot(rejection)].inc();
        if matches!(rejection, Rejection::Shed { .. }) {
            self.shed[tenant].inc();
        }
    }

    /// Records a typed deadline miss on a finished job.
    pub fn record_deadline_miss(&self, tenant: usize) {
        self.deadline_miss[tenant].inc();
    }

    /// Publishes one device's quarantine flag and, on an open, bumps the
    /// open counter.
    pub fn record_quarantine(&self, device: usize, open: bool) {
        self.quarantined[device].set(if open { 1.0 } else { 0.0 });
        if open {
            self.quarantine_opens[device].inc();
        }
    }

    /// Publishes the per-device busy totals.
    pub fn set_device_busy(&self, busy_seconds: &[f64]) {
        for (gauge, &busy) in self.device_busy.iter().zip(busy_seconds) {
            gauge.set(busy);
        }
    }

    /// Latency quantile estimate for one tenant, from the histogram.
    pub fn latency_quantile(&self, tenant: usize, q: f64) -> f64 {
        self.latency[tenant].quantile(q)
    }

    /// Publishes one tenant's burn rates for one SLO kind.
    pub fn set_slo_burn(&self, tenant: usize, kind: SloKind, fast: f64, slow: f64) {
        self.slo_burn_fast[tenant][kind.slot()].set(fast);
        self.slo_burn_slow[tenant][kind.slot()].set(slow);
    }

    /// Counts one fired burn-rate alert.
    pub fn record_slo_alert(&self, tenant: usize, kind: SloKind) {
        self.slo_alerts[tenant][kind.slot()].inc();
    }

    /// Publishes the journal's cumulative counters and current size.
    /// Counters are advanced by the delta against their current value,
    /// so repeated publishes of the same stats are idempotent.
    pub fn publish_journal(&self, stats: &summagen_durable::JournalStats, durable_bytes: usize) {
        self.journal_records.add(
            stats
                .records_flushed
                .saturating_sub(self.journal_records.get()),
        );
        self.journal_fsyncs
            .add(stats.fsyncs.saturating_sub(self.journal_fsyncs.get()));
        self.journal_bytes.set(durable_bytes as f64);
        self.journal_fsync_seconds.set(stats.fsync_seconds);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics() -> Arc<ServiceMetrics> {
        let registry = Arc::new(MetricsRegistry::new());
        ServiceMetrics::register(&registry, &["free", "pro"], &["dev0", "dev1"])
    }

    #[test]
    fn per_tenant_series_are_distinct() {
        let m = metrics();
        m.record_completed(0, 1.0, 0.5);
        m.record_completed(0, 2.0, 0.5);
        m.record_failed(1, 3.0, 0.5);
        assert_eq!(m.completed[0].get(), 2);
        assert_eq!(m.completed[1].get(), 0);
        assert_eq!(m.failed[1].get(), 1);
        assert_eq!(m.latency[0].count(), 2);
        assert_eq!(m.latency[1].count(), 1);
    }

    #[test]
    fn rejection_reasons_hit_their_counters() {
        let m = metrics();
        m.record_rejection(0, &Rejection::QueueFull { capacity: 4 });
        m.record_rejection(0, &Rejection::QueueFull { capacity: 4 });
        m.record_rejection(1, &Rejection::TooLarge { max_n: 10 });
        assert_eq!(m.rejections[0][0].get(), 2);
        assert_eq!(m.rejections[0][2].get(), 0);
        assert_eq!(m.rejections[1][2].get(), 1);
    }

    #[test]
    fn exposition_carries_tenant_labels() {
        let m = metrics();
        m.record_completed(0, 1.0, 0.1);
        m.record_rejection(1, &Rejection::QuotaExceeded { quota: 2 });
        m.set_device_busy(&[4.5, 0.0]);
        let text = summagen_metrics::prometheus::render(m.registry());
        assert!(text.contains("tenant=\"free\""), "{text}");
        assert!(text.contains("tenant=\"pro\""), "{text}");
        assert!(text.contains("reason=\"quota-exceeded\""), "{text}");
        assert!(text.contains("device=\"dev0\""), "{text}");
    }

    #[test]
    fn degradation_series_hit_their_counters() {
        let m = metrics();
        m.record_rejection(
            0,
            &Rejection::Shed {
                tenant: 0,
                queue_wait_p95: 10.0,
                threshold: 8.0,
            },
        );
        m.record_rejection(
            1,
            &Rejection::DeadlineInfeasible {
                tenant: 1,
                deadline: 1.0,
                estimated_completion: 2.0,
            },
        );
        m.record_deadline_miss(1);
        m.record_quarantine(0, true);
        m.record_quarantine(0, false);
        assert_eq!(m.shed[0].get(), 1);
        assert_eq!(m.shed[1].get(), 0);
        assert_eq!(m.rejections[0][4].get(), 1);
        assert_eq!(m.rejections[1][3].get(), 1);
        assert_eq!(m.deadline_miss[1].get(), 1);
        assert_eq!(m.quarantine_opens[0].get(), 1);
        let text = summagen_metrics::prometheus::render(m.registry());
        assert!(text.contains("summagen_service_shed_total"), "{text}");
        assert!(
            text.contains("summagen_service_deadline_miss_total"),
            "{text}"
        );
        assert!(
            text.contains("summagen_service_quarantine_opens_total"),
            "{text}"
        );
        assert!(text.contains("reason=\"deadline-infeasible\""), "{text}");
    }

    #[test]
    fn duplicate_rejections_hit_their_slot() {
        let m = metrics();
        m.record_rejection(1, &Rejection::Duplicate { idempotency: 42 });
        assert_eq!(m.rejections[1][5].get(), 1);
        assert_eq!(m.shed[1].get(), 0, "duplicates are not sheds");
        let text = summagen_metrics::prometheus::render(m.registry());
        assert!(text.contains("reason=\"duplicate\""), "{text}");
    }

    #[test]
    fn journal_series_publish_idempotently() {
        let m = metrics();
        let stats = summagen_durable::JournalStats {
            records_flushed: 10,
            fsyncs: 3,
            fsync_seconds: 0.003,
            records_dropped: 1,
            torn_bytes: 0,
        };
        m.publish_journal(&stats, 800);
        m.publish_journal(&stats, 800); // same stats: no double count
        assert_eq!(m.journal_records.get(), 10);
        assert_eq!(m.journal_fsyncs.get(), 3);
        assert_eq!(m.journal_bytes.get(), 800.0);
        let text = summagen_metrics::prometheus::render(m.registry());
        assert!(
            text.contains("summagen_service_journal_records_total"),
            "{text}"
        );
        assert!(
            text.contains("summagen_service_journal_fsyncs_total"),
            "{text}"
        );
        assert!(text.contains("summagen_service_recoveries_total"), "{text}");
        assert!(
            text.contains("summagen_service_duplicates_suppressed_total"),
            "{text}"
        );
    }

    #[test]
    fn slo_series_carry_kind_and_window_labels() {
        let m = metrics();
        m.set_slo_burn(0, SloKind::LatencyP95, 2.5, 1.5);
        m.record_slo_alert(0, SloKind::LatencyP95);
        m.record_slo_alert(0, SloKind::LatencyP95);
        m.record_slo_alert(1, SloKind::Availability);
        assert_eq!(m.slo_alerts[0][SloKind::LatencyP95.slot()].get(), 2);
        assert_eq!(m.slo_alerts[1][SloKind::Availability.slot()].get(), 1);
        assert_eq!(m.slo_alerts[1][SloKind::LatencyP95.slot()].get(), 0);
        let text = summagen_metrics::prometheus::render(m.registry());
        assert!(text.contains("summagen_service_slo_burn_rate"), "{text}");
        assert!(text.contains("summagen_service_slo_alerts_total"), "{text}");
        assert!(text.contains("slo=\"latency-p95\""), "{text}");
        assert!(text.contains("window=\"fast\""), "{text}");
        assert!(text.contains("window=\"slow\""), "{text}");
    }
}
