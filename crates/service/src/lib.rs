//! Multi-tenant GEMM service: a long-lived front-end over the SummaGen
//! execution stack that accepts a stream of multiply jobs from competing
//! tenants and runs them on a shared, heterogeneous device pool.
//!
//! The crate decomposes the service the way the data flows:
//!
//! * [`job`] — the vocabulary: [`JobSpec`]s in, typed [`Rejection`]s or
//!   [`JobRecord`]s out.
//! * [`queue`] — bounded admission: queue capacity, per-tenant quotas,
//!   and a size ceiling, each with its own deterministic rejection.
//! * [`scheduler`] — the device pool and the three placement policies:
//!   FIFO and round-robin baselines, and the FPM-aware planner that
//!   costs every device subset (and, for three-device subsets, every
//!   paper partition shape) with the pool's functional performance
//!   models before placing a job.
//! * [`loadgen`] — seeded Poisson tenant mixes, so load is reproducible
//!   to the byte.
//! * [`service`] — the virtual-clock event loop tying it together:
//!   admission, batching, dispatch-when-a-device-is-free, seeded
//!   shrink-and-retry fault handling, per-tenant metrics, and Sched
//!   trace spans.
//! * [`metrics`] — per-tenant counters/histograms on a
//!   `summagen-metrics` registry, Prometheus-renderable.
//! * [`degrade`] — graceful degradation under overload and device
//!   failure: deadline-aware admission, checkpoint preemption at panel
//!   boundaries, per-device circuit-breaker quarantine, and brownout
//!   load shedding — each optional, all deterministic.
//!
//! Durable runs ([`GemmService::run_durable`] / [`GemmService::recover`])
//! additionally write every job-lifecycle event ahead to a
//! `summagen-durable` journal and rebuild the full service state from it
//! after a crash, completing every admitted job exactly once.
//!
//! The whole service runs on the repo's virtual clock: a run is a pure
//! function of (job stream, config), asserted by the report's schedule
//! digest. The FPM-aware policy's win over FIFO on the heterogeneous
//! mixes is the service-level restatement of the paper's claim that
//! speed-function-aware partitioning beats homogeneous splits.

pub mod degrade;
pub mod job;
pub mod loadgen;
pub mod metrics;
pub mod queue;
pub mod scheduler;
pub mod service;

pub use degrade::{
    BrownoutConfig, CircuitBreaker, CircuitState, DegradeConfig, PreemptionConfig,
    QuarantineConfig, QuarantineEvent, QuarantineTransition, WaitWindow,
};
pub use job::{DeadlineVerdict, JobId, JobOutcome, JobRecord, JobSpec, Rejection};
pub use loadgen::{generate, hetero_mix, mix_by_name, small_mix, LoadMix, TenantProfile};
pub use metrics::ServiceMetrics;
pub use queue::{AdmissionConfig, JobQueue};
pub use scheduler::{commit, plan, service_time, DevicePool, Placement, Policy, PoolDevice};
pub use service::{
    BatchingConfig, CrashedRun, DurableReport, DurableRun, FaultProfile, GemmService,
    RecoveryStats, ServiceBackend, ServiceConfig, ServiceReport, TenantSummary,
};
