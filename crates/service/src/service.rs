//! The service itself: a virtual-clock event loop that admits submitted
//! jobs through the bounded queue, batches compatible work, places it on
//! the shared device pool under the configured policy, and survives
//! injected device failures by shrink-and-retry — without ever poisoning
//! the queue.
//!
//! Everything runs on the same virtual clock the rest of the repo
//! simulates on: arrivals, dispatches, and completions are events; the
//! loop jumps from event to event and dispatches work whenever a
//! placement can *start at the current instant*. That last clause is the
//! load-bearing one — an eager scheduler that assigned queued jobs to
//! future device slots would drain the queue instantly and no admission
//! bound would ever bind. Holding jobs in the queue until a device can
//! actually take them is what makes queue depth, backpressure, and the
//! FIFO-vs-FPM comparison meaningful.
//!
//! Determinism: the loop consumes no wall clock and no ambient
//! randomness. Fault draws are a pure hash of `(fault seed, job id,
//! attempt)` — deliberately independent of policy and placement, so all
//! three policies face the *same* adversity and the comparison stays
//! fair. Same jobs + same config ⇒ byte-identical report, which the
//! schedule digest asserts cheaply.

use std::sync::Arc;
use std::time::Duration;

use summagen_comm::span::{EventSink, SpanKind, SpanRecord};
use summagen_comm::{FaultPlan, HockneyModel};
use summagen_core::{
    multiply_abft, multiply_with_recovery, AbftOptions, ExecutionMode, RecoveryOptions,
};
use summagen_matrix::{gemm_naive, max_abs_diff, random_matrix, DenseMatrix};

use crate::job::{JobOutcome, JobRecord, JobSpec, Rejection};
use crate::metrics::ServiceMetrics;
use crate::queue::{AdmissionConfig, JobQueue};
use crate::scheduler::{commit, plan, service_time, DevicePool, Placement, Policy};

/// Comparison slack for virtual-clock instants.
const EPS: f64 = 1e-9;

/// How dispatched jobs execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ServiceBackend {
    /// Timing-only: durations come from the cost model, no matrices are
    /// materialized. This is how the load mixes run at scale.
    #[default]
    Virtual,
    /// Every job numerically executes through the recovery-capable
    /// executor on matrices seeded from its id, and the product is
    /// verified against a sequential reference. Timing stays virtual
    /// (the schedule must not depend on host speed). For test-sized jobs.
    Real {
        /// Route through the ABFT checkpointed executor instead of the
        /// plain shrink-and-retry one.
        abft: bool,
    },
}

/// Seeded device-failure injection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultProfile {
    /// Per-attempt failure probability in permille (0 = no faults).
    pub fail_permille: u16,
    /// Seed of the failure draws.
    pub seed: u64,
    /// Executions allowed per job (first try plus retries).
    pub max_attempts: usize,
    /// Virtual seconds charged per retry (detection + restart).
    pub retry_backoff: f64,
}

impl Default for FaultProfile {
    fn default() -> Self {
        Self {
            fail_permille: 0,
            seed: 0,
            max_attempts: 3,
            retry_backoff: 0.05,
        }
    }
}

/// Batching knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchingConfig {
    /// Most jobs dispatched per batch (1 disables batching).
    pub max_batch: usize,
    /// Virtual seconds of per-batch setup the batch amortizes.
    pub setup_cost: f64,
}

impl Default for BatchingConfig {
    fn default() -> Self {
        Self {
            max_batch: 4,
            setup_cost: 0.002,
        }
    }
}

/// Full service configuration.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ServiceConfig {
    /// Admission-control bounds.
    pub admission: AdmissionConfig,
    /// Scheduling policy.
    pub policy: Policy,
    /// Batching knobs.
    pub batching: BatchingConfig,
    /// Failure injection.
    pub faults: FaultProfile,
    /// Execution backend.
    pub backend: ServiceBackend,
}

/// The multi-tenant GEMM service.
pub struct GemmService {
    pool: DevicePool,
    config: ServiceConfig,
    metrics: Option<Arc<ServiceMetrics>>,
    sink: Option<Arc<dyn EventSink>>,
}

/// Everything one `run` produced.
#[derive(Debug, Clone)]
pub struct ServiceReport {
    /// The policy that ran.
    pub policy: Policy,
    /// One record per *accepted* job, in dispatch order.
    pub records: Vec<JobRecord>,
    /// Every admission rejection, in arrival order.
    pub rejections: Vec<(JobSpec, Rejection)>,
    /// Instant the last batch finished (0 for an empty run).
    pub makespan: f64,
    /// Deepest the queue ever got.
    pub peak_queue_depth: usize,
    /// Batches dispatched.
    pub batches: u64,
    /// Retry executions beyond first attempts.
    pub retries: u64,
    /// Pool device names, in pool order.
    pub device_names: Vec<&'static str>,
    /// Per-device busy virtual seconds, in pool order.
    pub device_busy: Vec<f64>,
    /// FNV-1a digest of every scheduling decision — two runs scheduled
    /// identically iff their digests match.
    pub schedule_digest: u64,
}

/// Per-tenant latency/throughput summary with *exact* quantiles
/// (computed from the sorted per-job latencies, not histogram buckets —
/// the artifact numbers must be reproducible to the bit).
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSummary {
    /// Tenant index.
    pub tenant: usize,
    /// Jobs the tenant submitted (accepted + rejected).
    pub submitted: usize,
    /// Jobs that completed.
    pub completed: usize,
    /// Jobs that failed after retries.
    pub failed: usize,
    /// Jobs bounced by admission control.
    pub rejected: usize,
    /// Median latency of finished jobs, seconds.
    pub p50: f64,
    /// 95th-percentile latency, seconds.
    pub p95: f64,
    /// 99th-percentile latency, seconds.
    pub p99: f64,
    /// Mean latency, seconds.
    pub mean: f64,
    /// Worst latency, seconds.
    pub max: f64,
    /// Finished jobs that missed their (advisory) deadline.
    pub deadline_misses: usize,
}

/// Exact nearest-rank quantile of an already-sorted sample.
fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q.clamp(0.0, 1.0) * sorted.len() as f64).ceil() as usize).max(1);
    sorted[rank - 1]
}

impl ServiceReport {
    /// Completed-job count.
    pub fn completed(&self) -> usize {
        self.records
            .iter()
            .filter(|r| r.outcome == JobOutcome::Completed)
            .count()
    }

    /// Failed-job count.
    pub fn failed(&self) -> usize {
        self.records.len() - self.completed()
    }

    /// Completed jobs per virtual second.
    pub fn throughput(&self) -> f64 {
        if self.makespan > 0.0 {
            self.completed() as f64 / self.makespan
        } else {
            0.0
        }
    }

    /// Latency of one quantile across *all* finished jobs.
    pub fn latency_quantile(&self, q: f64) -> f64 {
        let mut lats: Vec<f64> = self.records.iter().map(JobRecord::latency).collect();
        lats.sort_by(f64::total_cmp);
        quantile_sorted(&lats, q)
    }

    /// Per-tenant summaries for tenants `0..ntenants`.
    pub fn tenant_summaries(&self, ntenants: usize) -> Vec<TenantSummary> {
        (0..ntenants)
            .map(|t| {
                let mut lats: Vec<f64> = self
                    .records
                    .iter()
                    .filter(|r| r.spec.tenant == t)
                    .map(JobRecord::latency)
                    .collect();
                lats.sort_by(f64::total_cmp);
                let recs = || self.records.iter().filter(|r| r.spec.tenant == t);
                let completed = recs()
                    .filter(|r| r.outcome == JobOutcome::Completed)
                    .count();
                let rejected = self
                    .rejections
                    .iter()
                    .filter(|(j, _)| j.tenant == t)
                    .count();
                TenantSummary {
                    tenant: t,
                    submitted: lats.len() + rejected,
                    completed,
                    failed: lats.len() - completed,
                    rejected,
                    p50: quantile_sorted(&lats, 0.50),
                    p95: quantile_sorted(&lats, 0.95),
                    p99: quantile_sorted(&lats, 0.99),
                    mean: if lats.is_empty() {
                        0.0
                    } else {
                        lats.iter().sum::<f64>() / lats.len() as f64
                    },
                    max: lats.last().copied().unwrap_or(0.0),
                    deadline_misses: recs().filter(|r| r.missed_deadline()).count(),
                }
            })
            .collect()
    }
}

/// Splitmix-style finalizer over `(seed, job, attempt)` — the fault
/// oracle. Policy- and placement-independent on purpose: every policy
/// faces the same draws for the same job.
fn fault_hash(seed: u64, job: u64, attempt: u64) -> u64 {
    let mut x = seed
        ^ job.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ attempt.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x
}

/// One simulated execution attempt's fate.
struct AttemptFate {
    /// Whether the attempt's placement loses a device mid-run.
    fails: bool,
    /// Fraction of the attempt's duration burnt before the failure
    /// surfaces (0.25–0.75).
    burn_fraction: f64,
    /// Which member of the surviving device list is blamed.
    victim_slot: usize,
}

fn draw_fate(profile: &FaultProfile, job: u64, attempt: u64, ndevices: usize) -> AttemptFate {
    let h = fault_hash(profile.seed, job, attempt);
    AttemptFate {
        fails: (h % 1000) < u64::from(profile.fail_permille),
        burn_fraction: 0.25 + 0.5 * ((h >> 32) % 1000) as f64 / 1000.0,
        victim_slot: ((h >> 16) as usize) % ndevices.max(1),
    }
}

impl GemmService {
    /// A service over `pool` under `config`, with no metrics or tracing.
    pub fn new(pool: DevicePool, config: ServiceConfig) -> Self {
        Self {
            pool,
            config,
            metrics: None,
            sink: None,
        }
    }

    /// Attaches a metrics bundle (per-tenant series must already be
    /// registered for the load's tenants).
    pub fn with_metrics(mut self, metrics: Arc<ServiceMetrics>) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// Attaches an event sink; every dispatch emits one
    /// [`SpanKind::Sched`] span per occupied device, rank = pool index.
    pub fn with_sink(mut self, sink: Arc<dyn EventSink>) -> Self {
        self.sink = Some(sink);
        self
    }

    /// The configuration the service runs under.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Runs the whole job stream to completion and reports.
    pub fn run(&mut self, mut jobs: Vec<JobSpec>) -> ServiceReport {
        jobs.sort_by(|a, b| {
            a.submit_time
                .total_cmp(&b.submit_time)
                .then(a.id.cmp(&b.id))
        });
        let mut queue = JobQueue::new(self.config.admission);
        let mut arrivals = jobs.into_iter().peekable();
        // Outstanding batch finish instants; completions are events.
        let mut in_flight: Vec<f64> = Vec::new();
        let mut records: Vec<JobRecord> = Vec::new();
        let mut rejections: Vec<(JobSpec, Rejection)> = Vec::new();
        let mut next_batch: u64 = 0;
        let mut retries: u64 = 0;
        let mut now = 0.0f64;

        loop {
            let next_arrival = arrivals.peek().map(|j| j.submit_time);
            let next_done = in_flight.iter().copied().fold(f64::INFINITY, f64::min);
            let next = match next_arrival {
                Some(t) => t.min(next_done),
                None if next_done.is_finite() => next_done,
                None => break,
            };
            now = now.max(next);
            in_flight.retain(|&f| f > now + EPS);
            while arrivals.peek().is_some_and(|j| j.submit_time <= now + EPS) {
                let job = arrivals.next().expect("peeked");
                match queue.offer(job.clone()) {
                    Ok(()) => {}
                    Err(rej) => {
                        if let Some(m) = &self.metrics {
                            m.record_rejection(job.tenant, &rej);
                        }
                        rejections.push((job, rej));
                    }
                }
            }
            self.dispatch_all(
                &mut queue,
                now,
                &mut in_flight,
                &mut records,
                &mut next_batch,
                &mut retries,
            );
            if let Some(m) = &self.metrics {
                m.queue_depth.set(queue.len() as f64);
                m.queue_depth_peak.set(queue.peak_depth() as f64);
            }
        }
        debug_assert!(queue.is_empty(), "event loop ended with queued jobs");

        let makespan = records.iter().map(|r| r.finish_time).fold(0.0, f64::max);
        let device_busy: Vec<f64> = self.pool.devices().iter().map(|d| d.busy_seconds).collect();
        if let Some(m) = &self.metrics {
            m.set_device_busy(&device_busy);
        }
        let report = ServiceReport {
            policy: self.config.policy,
            schedule_digest: digest(&records, &rejections),
            records,
            rejections,
            makespan,
            peak_queue_depth: queue.peak_depth(),
            batches: next_batch,
            retries,
            device_names: self.pool.devices().iter().map(|d| d.name).collect(),
            device_busy,
        };
        report
    }

    /// Dispatches every queued job whose placement can start *now*.
    /// FIFO and round-robin only ever look at the head (head-of-line
    /// blocking is part of what those baselines are); FPM-aware walks the
    /// queue in urgency order and backfills past blocked jobs.
    #[allow(clippy::too_many_arguments)]
    fn dispatch_all(
        &mut self,
        queue: &mut JobQueue,
        now: f64,
        in_flight: &mut Vec<f64>,
        records: &mut Vec<JobRecord>,
        next_batch: &mut u64,
        retries: &mut u64,
    ) {
        'dispatch: loop {
            if queue.is_empty() {
                return;
            }
            let candidates: Vec<usize> = match self.config.policy {
                Policy::Fifo | Policy::RoundRobin => vec![0],
                Policy::FpmAware => {
                    let specs: Vec<&JobSpec> = queue.iter().collect();
                    let mut order: Vec<usize> = (0..specs.len()).collect();
                    order.sort_by(|&a, &b| {
                        specs[b]
                            .priority
                            .cmp(&specs[a].priority)
                            .then(
                                specs[a]
                                    .deadline
                                    .unwrap_or(f64::INFINITY)
                                    .total_cmp(&specs[b].deadline.unwrap_or(f64::INFINITY)),
                            )
                            .then(a.cmp(&b))
                    });
                    order
                }
            };
            for idx in candidates {
                let job = queue.iter().nth(idx).expect("index observed").clone();
                let placement = plan(self.config.policy, &mut self.pool, &job, now);
                if placement.start <= now + EPS {
                    commit(self.config.policy, &mut self.pool);
                    self.dispatch_batch(
                        queue, idx, placement, now, in_flight, records, next_batch, retries,
                    );
                    continue 'dispatch;
                }
            }
            return;
        }
    }

    /// Takes the seed job plus up to `max_batch - 1` same-size queued
    /// jobs and runs them back-to-back on one placement, amortizing the
    /// batch setup cost.
    #[allow(clippy::too_many_arguments)]
    fn dispatch_batch(
        &mut self,
        queue: &mut JobQueue,
        seed_idx: usize,
        placement: Placement,
        now: f64,
        in_flight: &mut Vec<f64>,
        records: &mut Vec<JobRecord>,
        next_batch: &mut u64,
        retries: &mut u64,
    ) {
        let seed = queue.take(seed_idx);
        let mut members = vec![seed];
        while members.len() < self.config.batching.max_batch {
            let mate = queue.iter().position(|j| j.n == members[0].n);
            match mate {
                Some(pos) => members.push(queue.take(pos)),
                None => break,
            }
        }
        let batch = *next_batch;
        *next_batch += 1;
        if let Some(m) = &self.metrics {
            m.batches.inc();
        }

        let batch_start = now;
        let mut t = now + self.config.batching.setup_cost;
        for job in members.iter() {
            let start_time = t;
            let (finish, attempts, devices, outcome) = self.execute(job, &placement, t, retries);
            t = finish;
            let record = JobRecord {
                spec: job.clone(),
                start_time,
                finish_time: finish,
                devices,
                shape: placement.shape.name(),
                batch,
                attempts,
                outcome,
            };
            if let Some(m) = &self.metrics {
                match record.outcome {
                    JobOutcome::Completed => {
                        m.record_completed(job.tenant, record.latency(), record.queue_wait())
                    }
                    JobOutcome::Failed { .. } => {
                        m.record_failed(job.tenant, record.latency(), record.queue_wait())
                    }
                }
            }
            records.push(record);
        }
        self.pool.occupy(&placement.devices, batch_start, t);
        in_flight.push(t);
        if let Some(sink) = &self.sink {
            for &d in &placement.devices {
                sink.record(SpanRecord {
                    rank: d,
                    start: batch_start,
                    end: t,
                    kind: SpanKind::Sched {
                        job: members[0].id,
                        n: members[0].n as u64,
                        batch,
                        jobs: members.len() as u64,
                        policy: self.config.policy.name(),
                    },
                });
            }
        }
    }

    /// Executes one job of a batch starting at `t0`: walks the seeded
    /// fault draws through shrink-and-retry on the virtual clock and —
    /// in the real backend — actually multiplies the matrices through
    /// the recovery executor and verifies the product.
    fn execute(
        &self,
        job: &JobSpec,
        placement: &Placement,
        t0: f64,
        retries: &mut u64,
    ) -> (f64, usize, Vec<usize>, JobOutcome) {
        let faults = self.config.faults;
        let mut devices = placement.devices.clone();
        let mut t = t0;
        let mut attempts = 0usize;
        let outcome = loop {
            attempts += 1;
            let duration = if devices.len() == placement.devices.len() {
                placement.duration
            } else {
                service_time(&self.pool, &devices, job.n)
            };
            let fate = draw_fate(&faults, job.id, attempts as u64, devices.len());
            if !fate.fails {
                t += duration;
                break JobOutcome::Completed;
            }
            // The attempt burns part of its duration, then pays the
            // detection/restart backoff. Multi-device placements shrink
            // the blamed device out, exactly like `multiply_with_recovery`
            // shrinks a crashed rank's device out of the partition; a
            // singleton placement treats the failure as transient and
            // restarts on the same device (there is nothing to shrink to).
            t += duration * fate.burn_fraction + faults.retry_backoff;
            if attempts >= faults.max_attempts {
                break JobOutcome::Failed {
                    reason: format!("attempt budget exhausted after {attempts} executions"),
                };
            }
            if devices.len() > 1 {
                devices.remove(fate.victim_slot);
            }
            *retries += 1;
            if let Some(m) = &self.metrics {
                m.retries.inc();
            }
        };
        if let ServiceBackend::Real { abft } = self.config.backend {
            let real = self.execute_real(job, placement, abft);
            if let Err(reason) = real {
                return (t, attempts, devices, JobOutcome::Failed { reason });
            }
        }
        (t, attempts, devices, outcome)
    }

    /// Numerically executes a job through the recovery-capable executor
    /// (or the ABFT one) and verifies the product. Returns an error
    /// string on numeric failure — which would be a service bug, and is
    /// exactly what the real-mode tests are hunting for.
    fn execute_real(&self, job: &JobSpec, placement: &Placement, abft: bool) -> Result<(), String> {
        let n = job.n;
        let a = random_matrix(n, n, job.id.wrapping_mul(2).wrapping_add(1));
        let b = random_matrix(n, n, job.id.wrapping_mul(2).wrapping_add(2));
        // Re-derive the *first* fault draw as an injected rank kill so
        // the virtual fault model and the real executor agree on whether
        // this job sees adversity.
        let fate = draw_fate(&self.config.faults, job.id, 1, placement.devices.len());
        let attempt_faults: Vec<FaultPlan> = if fate.fails && placement.devices.len() > 1 {
            vec![FaultPlan::new().kill_rank(fate.victim_slot, 2)]
        } else {
            Vec::new()
        };
        let opts = RecoveryOptions {
            max_attempts: self.config.faults.max_attempts.max(2),
            retry_backoff: self.config.faults.retry_backoff,
            recv_timeout: Duration::from_millis(500),
            ..RecoveryOptions::default()
        };
        let c = if abft {
            multiply_abft(
                placement.shape,
                &placement.rel_speeds,
                &a,
                &b,
                ExecutionMode::Real,
                HockneyModel::intra_node(),
                &attempt_faults,
                &opts,
                &AbftOptions::default(),
            )
            .map_err(|e| format!("abft execution failed: {e:?}"))?
            .run
            .c
        } else {
            multiply_with_recovery(
                placement.shape,
                &placement.rel_speeds,
                &a,
                &b,
                ExecutionMode::Real,
                HockneyModel::intra_node(),
                &attempt_faults,
                &opts,
            )
            .map_err(|e| format!("recovery execution failed: {e:?}"))?
            .c
        };
        verify_product(&a, &b, &c)
    }
}

fn verify_product(a: &DenseMatrix, b: &DenseMatrix, c: &DenseMatrix) -> Result<(), String> {
    let n = a.rows();
    let mut want = DenseMatrix::zeros(n, b.cols());
    gemm_naive(
        n,
        b.cols(),
        n,
        1.0,
        a.as_slice(),
        n,
        b.as_slice(),
        b.cols(),
        0.0,
        want.as_mut_slice(),
        b.cols(),
    );
    let diff = max_abs_diff(c, &want);
    if diff < 1e-9 {
        Ok(())
    } else {
        Err(format!("product verification failed: max |Δ| = {diff:e}"))
    }
}

/// FNV-1a over every scheduling decision: job ids, times (as bits),
/// device sets, batches, attempts, outcomes, and rejections.
fn digest(records: &[JobRecord], rejections: &[(JobSpec, Rejection)]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |v: u64| {
        for byte in v.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(PRIME);
        }
    };
    for r in records {
        eat(r.spec.id);
        eat(r.start_time.to_bits());
        eat(r.finish_time.to_bits());
        eat(r.batch);
        eat(r.attempts as u64);
        eat(r.devices.len() as u64);
        for &d in &r.devices {
            eat(d as u64);
        }
        eat(match r.outcome {
            JobOutcome::Completed => 1,
            JobOutcome::Failed { .. } => 2,
        });
    }
    for (j, rej) in rejections {
        eat(j.id);
        eat(rej.label().len() as u64);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loadgen::{generate, small_mix};
    use summagen_platform::profile::hclserver1;

    fn pool() -> DevicePool {
        DevicePool::from_platform(&hclserver1(), 1e-5, 4e-10)
    }

    fn config(policy: Policy) -> ServiceConfig {
        ServiceConfig {
            policy,
            ..ServiceConfig::default()
        }
    }

    fn job(id: u64, n: usize, submit: f64) -> JobSpec {
        JobSpec {
            id,
            tenant: 0,
            n,
            priority: 0,
            deadline: None,
            submit_time: submit,
        }
    }

    #[test]
    fn empty_run_reports_empty() {
        let report = GemmService::new(pool(), config(Policy::FpmAware)).run(Vec::new());
        assert!(report.records.is_empty());
        assert_eq!(report.makespan, 0.0);
        assert_eq!(report.completed(), 0);
    }

    #[test]
    fn every_accepted_job_is_recorded_exactly_once() {
        let jobs = generate(&small_mix());
        let total = jobs.len();
        let mut svc = GemmService::new(pool(), config(Policy::FpmAware));
        let report = svc.run(jobs);
        assert_eq!(report.records.len() + report.rejections.len(), total);
        let mut ids: Vec<u64> = report
            .records
            .iter()
            .map(|r| r.spec.id)
            .chain(report.rejections.iter().map(|(j, _)| j.id))
            .collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), total, "a job was lost or double-counted");
    }

    #[test]
    fn same_seed_same_schedule() {
        let jobs = generate(&small_mix());
        let a = GemmService::new(pool(), config(Policy::FpmAware)).run(jobs.clone());
        let b = GemmService::new(pool(), config(Policy::FpmAware)).run(jobs);
        assert_eq!(a.schedule_digest, b.schedule_digest);
        assert_eq!(a.records.len(), b.records.len());
        assert_eq!(a.makespan.to_bits(), b.makespan.to_bits());
    }

    #[test]
    fn policies_schedule_differently() {
        let jobs = generate(&small_mix());
        let fifo = GemmService::new(pool(), config(Policy::Fifo)).run(jobs.clone());
        let fpm = GemmService::new(pool(), config(Policy::FpmAware)).run(jobs);
        assert_ne!(fifo.schedule_digest, fpm.schedule_digest);
    }

    #[test]
    fn fpm_beats_fifo_on_makespan_and_p95_for_the_small_mix() {
        let jobs = generate(&small_mix());
        let fifo = GemmService::new(pool(), config(Policy::Fifo)).run(jobs.clone());
        let fpm = GemmService::new(pool(), config(Policy::FpmAware)).run(jobs);
        assert!(
            fpm.makespan < fifo.makespan,
            "fpm makespan {} vs fifo {}",
            fpm.makespan,
            fifo.makespan
        );
        assert!(
            fpm.latency_quantile(0.95) < fifo.latency_quantile(0.95),
            "fpm p95 {} vs fifo {}",
            fpm.latency_quantile(0.95),
            fifo.latency_quantile(0.95)
        );
    }

    #[test]
    fn dispatch_waits_for_devices_so_the_queue_actually_fills() {
        // A burst of simultaneous arrivals against a single-slot FIFO
        // pool must stack up in the queue rather than be assigned to
        // future device slots at arrival time.
        let jobs: Vec<JobSpec> = (0..8).map(|i| job(i, 512, 0.0)).collect();
        let mut svc = GemmService::new(pool(), config(Policy::Fifo));
        let report = svc.run(jobs);
        assert!(
            report.peak_queue_depth >= 4,
            "queue never filled: peak {}",
            report.peak_queue_depth
        );
        assert_eq!(report.records.len(), 8);
    }

    #[test]
    fn backpressure_rejects_when_the_queue_is_full() {
        let cfg = ServiceConfig {
            admission: AdmissionConfig {
                queue_capacity: 2,
                per_tenant_quota: 2,
                max_n: 16_384,
            },
            ..config(Policy::Fifo)
        };
        let jobs: Vec<JobSpec> = (0..6).map(|i| job(i, 1024, 0.0)).collect();
        let report = GemmService::new(pool(), cfg).run(jobs);
        assert!(!report.rejections.is_empty(), "no backpressure observed");
        assert_eq!(report.records.len() + report.rejections.len(), 6);
    }

    #[test]
    fn batching_amortizes_setup_and_stamps_batch_ids() {
        let jobs: Vec<JobSpec> = (0..4).map(|i| job(i, 512, 0.0)).collect();
        let report = GemmService::new(pool(), config(Policy::FpmAware)).run(jobs);
        assert!(
            report.batches < 4,
            "4 same-size simultaneous jobs never batched ({} batches)",
            report.batches
        );
        let batch0: Vec<&JobRecord> = report.records.iter().filter(|r| r.batch == 0).collect();
        assert!(batch0.len() > 1, "first batch holds one job");
    }

    #[test]
    fn injected_faults_trigger_retries_without_losing_jobs() {
        let cfg = ServiceConfig {
            faults: FaultProfile {
                fail_permille: 300,
                seed: 7,
                max_attempts: 4,
                retry_backoff: 0.05,
            },
            ..config(Policy::FpmAware)
        };
        let jobs = generate(&small_mix());
        let total = jobs.len();
        let report = GemmService::new(pool(), cfg).run(jobs);
        assert_eq!(report.records.len() + report.rejections.len(), total);
        assert!(report.retries > 0, "30% fault rate produced no retries");
        assert!(
            report.records.iter().any(|r| r.attempts > 1),
            "no record shows a retry"
        );
        // The schedule is still deterministic under faults.
        let again = GemmService::new(pool(), cfg).run(generate(&small_mix()));
        assert_eq!(report.schedule_digest, again.schedule_digest);
    }

    #[test]
    fn real_backend_executes_and_verifies_small_jobs() {
        let cfg = ServiceConfig {
            backend: ServiceBackend::Real { abft: false },
            faults: FaultProfile {
                fail_permille: 500,
                seed: 3,
                max_attempts: 3,
                retry_backoff: 0.05,
            },
            ..config(Policy::FpmAware)
        };
        let jobs: Vec<JobSpec> = (0..6).map(|i| job(i, 24, i as f64 * 0.001)).collect();
        let report = GemmService::new(pool(), cfg).run(jobs);
        assert_eq!(report.records.len(), 6);
        // Numeric execution verified inside execute_real; a verification
        // failure would surface as a Failed outcome with its reason.
        for r in &report.records {
            if let JobOutcome::Failed { reason } = &r.outcome {
                assert!(
                    !reason.contains("verification"),
                    "numeric verification failed: {reason}"
                );
            }
        }
    }

    #[test]
    fn sched_spans_cover_every_dispatch() {
        use std::sync::Mutex;
        #[derive(Default)]
        struct Collect(Mutex<Vec<SpanRecord>>);
        impl EventSink for Collect {
            fn record(&self, span: SpanRecord) {
                self.0.lock().unwrap().push(span);
            }
        }
        let sink = Arc::new(Collect::default());
        let jobs: Vec<JobSpec> = (0..5).map(|i| job(i, 512, i as f64 * 0.01)).collect();
        let report = GemmService::new(pool(), config(Policy::FpmAware))
            .with_sink(Arc::clone(&sink) as Arc<dyn EventSink>)
            .run(jobs);
        let spans = sink.0.lock().unwrap();
        assert!(!spans.is_empty());
        let batches: std::collections::BTreeSet<u64> = spans
            .iter()
            .map(|s| match s.kind {
                SpanKind::Sched { batch, .. } => batch,
                ref other => panic!("unexpected span {other:?}"),
            })
            .collect();
        assert_eq!(batches.len() as u64, report.batches);
    }
}
