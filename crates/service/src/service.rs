//! The service itself: a virtual-clock event loop that admits submitted
//! jobs through the bounded queue, batches compatible work, places it on
//! the shared device pool under the configured policy, and survives
//! injected device failures by shrink-and-retry — without ever poisoning
//! the queue.
//!
//! Everything runs on the same virtual clock the rest of the repo
//! simulates on: arrivals, dispatches, and completions are events; the
//! loop jumps from event to event and dispatches work whenever a
//! placement can *start at the current instant*. That last clause is the
//! load-bearing one — an eager scheduler that assigned queued jobs to
//! future device slots would drain the queue instantly and no admission
//! bound would ever bind. Holding jobs in the queue until a device can
//! actually take them is what makes queue depth, backpressure, and the
//! FIFO-vs-FPM comparison meaningful.
//!
//! Determinism: the loop consumes no wall clock and no ambient
//! randomness. Fault draws are a pure hash of `(fault seed, job id,
//! attempt)` — deliberately independent of policy and placement, so all
//! three policies face the *same* adversity and the comparison stays
//! fair. Same jobs + same config ⇒ byte-identical report, which the
//! schedule digest asserts cheaply.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use std::time::Duration;

use summagen_comm::span::{EventSink, SpanKind, SpanRecord};
use summagen_comm::{FaultPlan, HockneyModel};
use summagen_core::{
    multiply_abft, multiply_with_recovery, AbftOptions, ExecutionMode, RecoveryOptions,
};
use summagen_durable::{
    fnv1a_words, replay, CrashKind, CrashSpec, JobMeta, Journal, JournalRecord, RejectionReason,
    TerminalKind,
};
use summagen_insight::{SloAlert, SloEngine, SloPolicy};
use summagen_matrix::{gemm_naive, max_abs_diff, random_matrix, DenseMatrix};

use crate::degrade::{CircuitBreaker, CircuitState, DegradeConfig, QuarantineEvent, WaitWindow};
use crate::job::{DeadlineVerdict, JobId, JobOutcome, JobRecord, JobSpec, Rejection};
use crate::metrics::ServiceMetrics;
use crate::queue::{AdmissionConfig, JobQueue};
use crate::scheduler::{commit, plan, service_time, DevicePool, Placement, Policy};

/// Comparison slack for virtual-clock instants.
const EPS: f64 = 1e-9;

/// How dispatched jobs execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ServiceBackend {
    /// Timing-only: durations come from the cost model, no matrices are
    /// materialized. This is how the load mixes run at scale.
    #[default]
    Virtual,
    /// Every job numerically executes through the recovery-capable
    /// executor on matrices seeded from its id, and the product is
    /// verified against a sequential reference. Timing stays virtual
    /// (the schedule must not depend on host speed). For test-sized jobs.
    Real {
        /// Route through the ABFT checkpointed executor instead of the
        /// plain shrink-and-retry one.
        abft: bool,
    },
}

/// Seeded device-failure injection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultProfile {
    /// Per-attempt failure probability in permille (0 = no faults).
    pub fail_permille: u16,
    /// Seed of the failure draws.
    pub seed: u64,
    /// Executions allowed per job (first try plus retries).
    pub max_attempts: usize,
    /// Virtual seconds charged per retry (detection + restart).
    pub retry_backoff: f64,
}

impl Default for FaultProfile {
    fn default() -> Self {
        Self {
            fail_permille: 0,
            seed: 0,
            max_attempts: 3,
            retry_backoff: 0.05,
        }
    }
}

/// Batching knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchingConfig {
    /// Most jobs dispatched per batch (1 disables batching).
    pub max_batch: usize,
    /// Virtual seconds of per-batch setup the batch amortizes.
    pub setup_cost: f64,
}

impl Default for BatchingConfig {
    fn default() -> Self {
        Self {
            max_batch: 4,
            setup_cost: 0.002,
        }
    }
}

/// Full service configuration.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ServiceConfig {
    /// Admission-control bounds.
    pub admission: AdmissionConfig,
    /// Scheduling policy.
    pub policy: Policy,
    /// Batching knobs.
    pub batching: BatchingConfig,
    /// Failure injection.
    pub faults: FaultProfile,
    /// Execution backend.
    pub backend: ServiceBackend,
    /// The degradation layer (all mechanisms off by default).
    pub degrade: DegradeConfig,
}

/// The multi-tenant GEMM service.
pub struct GemmService {
    pool: DevicePool,
    config: ServiceConfig,
    metrics: Option<Arc<ServiceMetrics>>,
    sink: Option<Arc<dyn EventSink>>,
    slo: Option<SloPolicy>,
}

/// Everything one `run` produced.
#[derive(Debug, Clone)]
pub struct ServiceReport {
    /// The policy that ran.
    pub policy: Policy,
    /// One record per *accepted* job, in dispatch order.
    pub records: Vec<JobRecord>,
    /// Every admission rejection, in arrival order.
    pub rejections: Vec<(JobSpec, Rejection)>,
    /// Instant the last batch finished (0 for an empty run).
    pub makespan: f64,
    /// Deepest the queue ever got.
    pub peak_queue_depth: usize,
    /// Batches dispatched.
    pub batches: u64,
    /// Retry executions beyond first attempts.
    pub retries: u64,
    /// Checkpoint preemptions performed (batch truncations).
    pub preemptions: u64,
    /// Every breaker transition, in observation order — the quarantine
    /// timeline.
    pub quarantine_events: Vec<QuarantineEvent>,
    /// Pool device names, in pool order.
    pub device_names: Vec<&'static str>,
    /// Per-device busy virtual seconds, in pool order.
    pub device_busy: Vec<f64>,
    /// FNV-1a digest of every scheduling decision — two runs scheduled
    /// identically iff their digests match.
    pub schedule_digest: u64,
    /// Every burn-rate alert the SLO engine fired, in fire order (empty
    /// when no [`SloPolicy`] was attached).
    pub slo_alerts: Vec<SloAlert>,
}

/// Per-tenant latency/throughput summary with *exact* quantiles
/// (computed from the sorted per-job latencies, not histogram buckets —
/// the artifact numbers must be reproducible to the bit).
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSummary {
    /// Tenant index.
    pub tenant: usize,
    /// Jobs the tenant submitted (accepted + rejected).
    pub submitted: usize,
    /// Jobs that completed.
    pub completed: usize,
    /// Jobs that failed after retries.
    pub failed: usize,
    /// Jobs bounced by admission control.
    pub rejected: usize,
    /// Median latency of finished jobs, seconds.
    pub p50: f64,
    /// 95th-percentile latency, seconds.
    pub p95: f64,
    /// 99th-percentile latency, seconds.
    pub p99: f64,
    /// Mean latency, seconds.
    pub mean: f64,
    /// Worst latency, seconds.
    pub max: f64,
    /// Finished jobs that missed their (advisory) deadline.
    pub deadline_misses: usize,
    /// Jobs shed by brownout load shedding.
    pub shed: usize,
    /// Finished jobs that carried a deadline.
    pub deadline_jobs: usize,
    /// Finished deadline jobs that met their deadline.
    pub deadline_met: usize,
    /// Burn-rate alerts the SLO engine fired for this tenant.
    pub slo_alerts: usize,
}

impl TenantSummary {
    /// Fraction of the tenant's finished deadline jobs that met their
    /// deadline (1 when the tenant ran no deadline jobs).
    pub fn deadline_hit_rate(&self) -> f64 {
        if self.deadline_jobs == 0 {
            1.0
        } else {
            self.deadline_met as f64 / self.deadline_jobs as f64
        }
    }
}

/// Exact nearest-rank quantile of an already-sorted sample.
fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q.clamp(0.0, 1.0) * sorted.len() as f64).ceil() as usize).max(1);
    sorted[rank - 1]
}

impl ServiceReport {
    /// Completed-job count.
    pub fn completed(&self) -> usize {
        self.records
            .iter()
            .filter(|r| r.outcome == JobOutcome::Completed)
            .count()
    }

    /// Failed-job count.
    pub fn failed(&self) -> usize {
        self.records.len() - self.completed()
    }

    /// Jobs shed by brownout load shedding.
    pub fn shed(&self) -> usize {
        self.rejections
            .iter()
            .filter(|(_, r)| matches!(r, Rejection::Shed { .. }))
            .count()
    }

    /// Finished jobs that missed their deadline (every one carries a
    /// typed [`DeadlineVerdict::Missed`] — no silent lateness).
    pub fn deadline_misses(&self) -> usize {
        self.records.iter().filter(|r| r.missed_deadline()).count()
    }

    /// Completed jobs per virtual second.
    pub fn throughput(&self) -> f64 {
        if self.makespan > 0.0 {
            self.completed() as f64 / self.makespan
        } else {
            0.0
        }
    }

    /// Latency of one quantile across *all* finished jobs.
    pub fn latency_quantile(&self, q: f64) -> f64 {
        let mut lats: Vec<f64> = self.records.iter().map(JobRecord::latency).collect();
        lats.sort_by(f64::total_cmp);
        quantile_sorted(&lats, q)
    }

    /// Per-tenant summaries for tenants `0..ntenants`.
    pub fn tenant_summaries(&self, ntenants: usize) -> Vec<TenantSummary> {
        (0..ntenants)
            .map(|t| {
                let mut lats: Vec<f64> = self
                    .records
                    .iter()
                    .filter(|r| r.spec.tenant == t)
                    .map(JobRecord::latency)
                    .collect();
                lats.sort_by(f64::total_cmp);
                let recs = || self.records.iter().filter(|r| r.spec.tenant == t);
                let completed = recs()
                    .filter(|r| r.outcome == JobOutcome::Completed)
                    .count();
                let rejected = self
                    .rejections
                    .iter()
                    .filter(|(j, _)| j.tenant == t)
                    .count();
                let shed = self
                    .rejections
                    .iter()
                    .filter(|(j, r)| j.tenant == t && matches!(r, Rejection::Shed { .. }))
                    .count();
                TenantSummary {
                    tenant: t,
                    submitted: lats.len() + rejected,
                    completed,
                    failed: lats.len() - completed,
                    rejected,
                    p50: quantile_sorted(&lats, 0.50),
                    p95: quantile_sorted(&lats, 0.95),
                    p99: quantile_sorted(&lats, 0.99),
                    mean: if lats.is_empty() {
                        0.0
                    } else {
                        lats.iter().sum::<f64>() / lats.len() as f64
                    },
                    max: lats.last().copied().unwrap_or(0.0),
                    deadline_misses: recs().filter(|r| r.missed_deadline()).count(),
                    shed,
                    deadline_jobs: recs().filter(|r| r.spec.deadline.is_some()).count(),
                    deadline_met: recs()
                        .filter(|r| r.deadline == DeadlineVerdict::Met)
                        .count(),
                    slo_alerts: self.slo_alerts.iter().filter(|a| a.tenant == t).count(),
                }
            })
            .collect()
    }
}

/// Splitmix-style finalizer over `(seed, job, attempt)` — the fault
/// oracle. Policy- and placement-independent on purpose: every policy
/// faces the same draws for the same job.
fn fault_hash(seed: u64, job: u64, attempt: u64) -> u64 {
    let mut x = seed
        ^ job.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ attempt.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x
}

/// One simulated execution attempt's fate.
struct AttemptFate {
    /// Whether the attempt's placement loses a device mid-run.
    fails: bool,
    /// Fraction of the attempt's duration burnt before the failure
    /// surfaces (0.25–0.75).
    burn_fraction: f64,
    /// Which member of the surviving device list is blamed.
    victim_slot: usize,
}

fn draw_fate(profile: &FaultProfile, job: u64, attempt: u64, ndevices: usize) -> AttemptFate {
    let h = fault_hash(profile.seed, job, attempt);
    AttemptFate {
        fails: (h % 1000) < u64::from(profile.fail_permille),
        burn_fraction: 0.25 + 0.5 * ((h >> 32) % 1000) as f64 / 1000.0,
        victim_slot: ((h >> 16) as usize) % ndevices.max(1),
    }
}

/// One breaker-relevant observation from a simulated execution: a blamed
/// device failure, or a surviving device's success, at a virtual instant.
struct BreakerEvent {
    at: f64,
    device: usize,
    failed: bool,
}

/// A dispatched batch still occupying devices. Member records, the Sched
/// span, and breaker observations are buffered here and only flushed when
/// the batch leaves the pool — which is what lets a preemption rewrite
/// the batch's tail before anything about it is externally visible.
struct InFlight {
    batch: u64,
    devices: Vec<usize>,
    start: f64,
    /// Instant the devices free: the batch end, or the panel boundary a
    /// preemption truncated it to.
    finish: f64,
    /// Member records awaiting flush (requeued members are removed).
    pending: Vec<JobRecord>,
    /// Breaker observations awaiting flush, in execution order.
    breaker_events: Vec<BreakerEvent>,
    /// Seed member's identity, for the Sched span.
    seed_id: JobId,
    seed_n: usize,
}

/// Carried-over progress of a preempted job, keyed by job id.
#[derive(Clone, Copy, Default)]
struct ResumeState {
    /// Fraction of the multiply already checkpointed (k-prefix share).
    fraction: f64,
    /// Checkpoint preemptions suffered so far.
    preemptions: usize,
}

/// What recovery found in the journal when this epoch started.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RecoveryStats {
    /// Epoch index (0 = cold start, k = k-th restart).
    pub epoch: u32,
    /// Virtual instant this epoch's clock started at.
    pub resume_clock: f64,
    /// Journal records replayed.
    pub replayed_records: usize,
    /// Non-terminal jobs re-entered into the queue.
    pub recovered_jobs: usize,
    /// Recovered jobs that resumed from a durable panel checkpoint
    /// (rather than restarting from scratch).
    pub resumed_from_checkpoint: usize,
    /// Resubmissions suppressed because the journal already knew their
    /// idempotency key.
    pub suppressed_duplicates: usize,
    /// Torn tail bytes the frame decoder discarded at replay.
    pub torn_bytes: usize,
}

/// A durable run that ran its whole stream.
#[derive(Debug)]
pub struct DurableReport {
    /// The epoch's service report (this epoch's records only — terminal
    /// outcomes from earlier epochs live in the journal).
    pub report: ServiceReport,
    /// The journal, committed through the end of the run.
    pub journal: Journal,
    /// What recovery found when the epoch started.
    pub recovery: RecoveryStats,
}

/// A durable run the crash injector killed at its drawn kill point.
#[derive(Debug)]
pub struct CrashedRun {
    /// The journal as the crash left it: pending records dropped, and —
    /// for a torn-write crash — the durable tail truncated mid-record.
    pub journal: Journal,
    /// Journal-event counter value at the kill point.
    pub event: u64,
    /// What the crash did.
    pub kind: CrashKind,
    /// Virtual instant the crash hit.
    pub at: f64,
    /// What recovery found when the epoch started.
    pub recovery: RecoveryStats,
}

/// How a durable (journaled) run ended.
#[derive(Debug)]
pub enum DurableRun {
    /// Ran the whole stream; every terminal outcome is durable.
    Finished(Box<DurableReport>),
    /// Killed mid-run; only the journal's durable bytes survive.
    Crashed(Box<CrashedRun>),
}

impl DurableRun {
    /// The journal, however the run ended — what the next epoch reopens.
    pub fn into_journal(self) -> Journal {
        match self {
            DurableRun::Finished(r) => r.journal,
            DurableRun::Crashed(c) => c.journal,
        }
    }

    /// Whether the run crashed.
    pub fn crashed(&self) -> bool {
        matches!(self, DurableRun::Crashed(_))
    }
}

/// Journal + crash-injection state threaded through one durable epoch.
struct DurableCtx {
    journal: Journal,
    crash: Option<CrashSpec>,
    /// Journal-relevant events so far (each append counts one).
    events: u64,
    /// Set once the kill point fires: (what happened, when).
    crashed: Option<(CrashKind, f64)>,
    /// Panel marks per dispatch used for checkpoint records.
    panels: usize,
    /// Real-backend product digests by job id, captured at execution
    /// (virtual-backend digests are recomputed from the spec).
    digests: BTreeMap<JobId, u64>,
    stats: RecoveryStats,
}

impl DurableCtx {
    /// The crash kind due to fire, if the event counter has reached the
    /// kill point and the crash has not happened yet.
    fn due_kind(&self) -> Option<CrashKind> {
        match self.crash {
            Some(c) if self.crashed.is_none() && self.events >= c.at_event => Some(c.kind),
            _ => None,
        }
    }

    /// Executes the kill: pending records are lost; a torn-write crash
    /// first force-flushes what is due and then tears the durable tail
    /// mid-record.
    fn crash_now(&mut self, now: f64, kind: CrashKind) {
        if let CrashKind::MidAppend { torn_bytes } = kind {
            self.journal.commit(now);
            self.journal.drop_pending();
            self.journal.tear_tail(torn_bytes as usize);
        } else {
            self.journal.drop_pending();
        }
        self.crashed = Some((kind, now));
    }

    /// Appends one record (counting the journal event) and fires the
    /// kill point when it lands on this append: a `MidCheckpoint` crash
    /// drops a checkpoint record *instead of* appending it — the crash
    /// between the checkpoint's data write and its journal record — and
    /// a `MidAppend` crash tears the tail right after the append.
    fn append(&mut self, now: f64, at: f64, record: &JournalRecord) {
        if self.crashed.is_some() {
            return;
        }
        self.events += 1;
        if self.due_kind() == Some(CrashKind::MidCheckpoint)
            && matches!(record, JournalRecord::PanelCheckpoint { .. })
        {
            self.crash_now(now, CrashKind::MidCheckpoint);
            return;
        }
        self.journal.append_at(now, at, record);
        if let Some(kind @ CrashKind::MidAppend { .. }) = self.due_kind() {
            self.crash_now(now, kind);
        }
    }
}

/// The journal's view of a job: identity, admission facts, and the
/// idempotency key resubmission suppression matches on.
fn job_meta(job: &JobSpec) -> JobMeta {
    JobMeta {
        id: job.id,
        tenant: job.tenant as u32,
        n: job.n as u32,
        priority: job.priority,
        deadline: job.deadline,
        submit_time: job.submit_time,
        idempotency: job.idempotency(),
    }
}

/// Rebuilds the spec a recovered [`JobMeta`] was journaled from.
fn spec_of(meta: &JobMeta) -> JobSpec {
    JobSpec {
        id: meta.id,
        tenant: meta.tenant as usize,
        n: meta.n as usize,
        priority: meta.priority,
        deadline: meta.deadline,
        submit_time: meta.submit_time,
    }
}

/// The journal's compact code for a typed rejection.
fn reason_of(rej: &Rejection) -> RejectionReason {
    match rej {
        Rejection::QueueFull { .. } => RejectionReason::QueueFull,
        Rejection::QuotaExceeded { .. } => RejectionReason::QuotaExceeded,
        Rejection::TooLarge { .. } => RejectionReason::TooLarge,
        Rejection::DeadlineInfeasible { .. } => RejectionReason::DeadlineInfeasible,
        Rejection::Shed { .. } => RejectionReason::Shed,
        Rejection::Duplicate { .. } => RejectionReason::Duplicate,
    }
}

/// Digest of a virtual-backend job's output. The executor is a pure
/// function of the spec, so the product — and therefore its digest — is
/// fully determined by `(id, n)`; re-running a lost job after a crash
/// reproduces it bit-identically, which is what the exactly-once gate
/// compares across crash and control runs.
fn job_output_digest(spec: &JobSpec) -> u64 {
    fnv1a_words(&[spec.id, spec.n as u64])
}

/// Mutable state of one `run`, threaded through the event loop's helpers
/// as a unit.
struct RunState {
    queue: JobQueue,
    in_flight: Vec<InFlight>,
    records: Vec<JobRecord>,
    rejections: Vec<(JobSpec, Rejection)>,
    next_batch: u64,
    retries: u64,
    preemptions: u64,
    /// One breaker per pool device (empty when quarantine is off).
    breakers: Vec<CircuitBreaker>,
    quarantine_events: Vec<QuarantineEvent>,
    /// Sliding queue-wait window (present when brownout is on).
    waits: Option<WaitWindow>,
    brownout_active: bool,
    resume: BTreeMap<JobId, ResumeState>,
    /// Full-pool service-time estimates by problem size, for the
    /// deadline-admission backlog model.
    est_cache: BTreeMap<usize, f64>,
    /// SLO burn-rate engine (present when a policy is attached).
    slo: Option<SloEngine>,
    /// Journal + crash-injection state (present on durable runs only;
    /// `None` on a plain `run`, which journals nothing).
    durable: Option<DurableCtx>,
    now: f64,
}

impl RunState {
    /// Whether the crash injector has fired (always false on plain runs).
    fn crashed(&self) -> bool {
        self.durable
            .as_ref()
            .is_some_and(|ctx| ctx.crashed.is_some())
    }
}

impl GemmService {
    /// A service over `pool` under `config`, with no metrics or tracing.
    pub fn new(pool: DevicePool, config: ServiceConfig) -> Self {
        Self {
            pool,
            config,
            metrics: None,
            sink: None,
            slo: None,
        }
    }

    /// Attaches a metrics bundle (per-tenant series must already be
    /// registered for the load's tenants).
    pub fn with_metrics(mut self, metrics: Arc<ServiceMetrics>) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// Attaches an event sink; every dispatch emits one
    /// [`SpanKind::Sched`] span per occupied device, rank = pool index.
    pub fn with_sink(mut self, sink: Arc<dyn EventSink>) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Attaches per-tenant SLO specs with multi-window burn-rate
    /// alerting. Each run evaluates the specs over its job outcomes,
    /// publishes burn gauges and alert counters (when metrics are
    /// attached), emits one [`SpanKind::SloAlert`] annotation span per
    /// fired alert (when a sink is attached), and reports the alerts in
    /// [`ServiceReport::slo_alerts`].
    pub fn with_slo(mut self, policy: SloPolicy) -> Self {
        self.slo = Some(policy);
        self
    }

    /// The configuration the service runs under.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Runs the whole job stream to completion and reports.
    pub fn run(&mut self, jobs: Vec<JobSpec>) -> ServiceReport {
        let mut st = self.base_state();
        let finished = self.drive(jobs, &mut st);
        debug_assert!(finished, "a plain run has no crash injector");
        self.finish_report(st)
    }

    /// Runs a journaled epoch from a cold start: every job-lifecycle
    /// event is written ahead to `journal`, terminal outcomes are
    /// group-committed before they are reported, and — when `crash` is
    /// set — the run dies at the drawn kill point, leaving only the
    /// journal's durable bytes for [`GemmService::recover`] to rebuild
    /// from.
    pub fn run_durable(
        &mut self,
        jobs: Vec<JobSpec>,
        journal: Journal,
        crash: Option<CrashSpec>,
    ) -> DurableRun {
        self.recover(journal, jobs, crash)
    }

    /// The restart path: replays the journal's durable bytes, rebuilds
    /// the queue (admitted-but-unstarted jobs in admission order, then
    /// in-flight jobs at the front with their checkpointed resume
    /// fractions), re-seeds the SLO burn windows from the recovered
    /// terminal outcomes, suppresses resubmissions whose idempotency key
    /// the journal already knows, and runs the remaining stream on the
    /// same monotone virtual clock the previous epoch died on. On an
    /// empty journal this *is* the cold start — epoch 0, nothing to
    /// replay.
    ///
    /// Call this on a freshly constructed service (a restarted process
    /// has a fresh device pool); the journal is the only state that
    /// survives a crash.
    pub fn recover(
        &mut self,
        journal: Journal,
        resubmissions: Vec<JobSpec>,
        crash: Option<CrashSpec>,
    ) -> DurableRun {
        let rep = replay(journal.durable());
        let rs = rep.state;
        let epoch = rs.epochs;
        let mut st = self.base_state();

        // Replay downtime: a deterministic function of what was read —
        // one virtual fsync plus a per-record scan cost. The epoch's
        // clock starts *after* the downtime window, so recovery time is
        // visible in queue waits exactly like real downtime would be.
        let downtime = journal.config().fsync_cost + 1e-6 * rs.records as f64;
        st.now = rs.resume_clock + if epoch > 0 { downtime } else { 0.0 };

        // Suppress resubmissions the journal already knows: admitted,
        // running, or terminal — each completes (or completed) exactly
        // once; the duplicate bounces with a typed rejection.
        let known: BTreeSet<u64> = rs.known_keys().collect();
        let mut fresh = Vec::new();
        let mut suppressed = 0usize;
        for job in resubmissions {
            let key = job.idempotency();
            if known.contains(&key) {
                suppressed += 1;
                let rej = Rejection::Duplicate { idempotency: key };
                if let Some(m) = &self.metrics {
                    m.record_rejection(job.tenant, &rej);
                }
                st.rejections.push((job, rej));
            } else {
                fresh.push(job);
            }
        }

        // Rebuild the queue: queued jobs keep their admission order;
        // in-flight jobs re-enter at the front (they were already
        // running) with their durable checkpoint fractions seeded into
        // the resume map — re-dispatch re-runs only the unfinished
        // suffix.
        let mut resumed_from_checkpoint = 0usize;
        for j in &rs.queued {
            st.queue.preload_back(spec_of(&j.meta));
        }
        for j in rs.in_flight.iter().rev() {
            if j.resume_fraction > 0.0 {
                resumed_from_checkpoint += 1;
            }
            st.resume.insert(
                j.meta.id,
                ResumeState {
                    fraction: j.resume_fraction,
                    preemptions: 0,
                },
            );
            st.queue.requeue_front(spec_of(&j.meta));
        }

        // Re-seed the SLO burn windows from the recovered terminal
        // observations, in instant order — the sliding windows must not
        // forget the pre-crash history. Alerts those observations fired
        // pre-crash were already reported then; re-firing is dropped.
        if let Some(engine) = st.slo.as_mut() {
            let mut terms: Vec<_> = rs.completed.values().chain(rs.failed.values()).collect();
            terms.sort_by(|a, b| a.at.total_cmp(&b.at).then(a.job.cmp(&b.job)));
            for t in terms {
                let _ = engine.observe_finished(
                    t.at,
                    t.tenant as usize,
                    t.latency,
                    t.kind == TerminalKind::Failed,
                    t.deadline_met,
                );
            }
        }

        let recovered_jobs = rs.queued.len() + rs.in_flight.len();
        let stats = RecoveryStats {
            epoch,
            resume_clock: rs.resume_clock,
            replayed_records: rs.records,
            recovered_jobs,
            resumed_from_checkpoint,
            suppressed_duplicates: suppressed,
            torn_bytes: rs.torn_bytes,
        };
        if epoch > 0 {
            if let Some(m) = &self.metrics {
                m.recoveries.inc();
                m.replay_records.add(rs.records as u64);
                m.recovered_jobs.add(recovered_jobs as u64);
                m.resumed_from_checkpoint
                    .add(resumed_from_checkpoint as u64);
                m.duplicates_suppressed.add(suppressed as u64);
            }
            if let Some(sink) = &self.sink {
                sink.record(SpanRecord {
                    rank: 0,
                    start: rs.resume_clock,
                    end: st.now,
                    kind: SpanKind::Recover {
                        epoch: u64::from(epoch),
                        records: rs.records as u64,
                        recovered_jobs: recovered_jobs as u64,
                        torn_bytes: rs.torn_bytes as u64,
                    },
                });
            }
        }

        let mut ctx = DurableCtx {
            journal,
            crash,
            events: 0,
            crashed: None,
            panels: self.config.degrade.preemption.map_or(4, |p| p.panels),
            digests: BTreeMap::new(),
            stats,
        };
        ctx.append(
            st.now,
            st.now,
            &JournalRecord::EpochStart {
                epoch,
                resume_clock: rs.resume_clock,
                recovered_jobs: recovered_jobs as u32,
                suppressed_duplicates: suppressed as u32,
            },
        );
        ctx.journal.maybe_flush(st.now);
        st.durable = Some(ctx);

        let finished = !st.crashed() && self.drive(fresh, &mut st);
        let mut ctx = st.durable.take().expect("durable ctx installed above");
        if finished {
            ctx.journal.commit(st.now);
            debug_assert_eq!(
                ctx.journal.pending_records(),
                0,
                "records stranded past the end"
            );
        }
        if let Some(m) = &self.metrics {
            m.publish_journal(&ctx.journal.stats(), ctx.journal.durable_bytes());
        }
        if finished {
            DurableRun::Finished(Box::new(DurableReport {
                recovery: ctx.stats,
                journal: ctx.journal,
                report: self.finish_report(st),
            }))
        } else {
            let (kind, at) = ctx.crashed.expect("drive reported a crash");
            DurableRun::Crashed(Box::new(CrashedRun {
                journal: ctx.journal,
                event: ctx.events,
                kind,
                at,
                recovery: ctx.stats,
            }))
        }
    }

    /// A fresh event-loop state under the current config.
    fn base_state(&self) -> RunState {
        let degrade = self.config.degrade;
        RunState {
            queue: JobQueue::new(self.config.admission),
            in_flight: Vec::new(),
            records: Vec::new(),
            rejections: Vec::new(),
            next_batch: 0,
            retries: 0,
            preemptions: 0,
            breakers: match degrade.quarantine {
                Some(q) => (0..self.pool.len())
                    .map(|_| CircuitBreaker::new(q))
                    .collect(),
                None => Vec::new(),
            },
            quarantine_events: Vec::new(),
            waits: degrade.brownout.map(|b| WaitWindow::new(b.window)),
            brownout_active: false,
            resume: BTreeMap::new(),
            est_cache: BTreeMap::new(),
            slo: self.slo.clone().map(SloEngine::new),
            durable: None,
            now: 0.0,
        }
    }

    /// The event loop. Returns `true` when the stream drained, `false`
    /// when the crash injector killed the run (durable runs only) — in
    /// which case `st` holds whatever in-memory state the crash lost and
    /// only the journal matters.
    fn drive(&mut self, mut jobs: Vec<JobSpec>, st: &mut RunState) -> bool {
        jobs.sort_by(|a, b| {
            a.submit_time
                .total_cmp(&b.submit_time)
                .then(a.id.cmp(&b.id))
        });
        let mut arrivals = jobs.into_iter().peekable();

        // A recovered epoch can start with a preloaded queue and no
        // arrival or completion event pending — kick-start it so
        // resumed work dispatches at the resume instant rather than
        // waiting for (or missing) a wake-up event.
        if !st.queue.is_empty() {
            self.dispatch_all(st);
            if let Some(ctx) = st.durable.as_mut() {
                if ctx.due_kind() == Some(CrashKind::MidBatch) && !st.in_flight.is_empty() {
                    ctx.crash_now(st.now, CrashKind::MidBatch);
                }
                ctx.journal.maybe_flush(st.now);
            }
            if st.crashed() {
                return false;
            }
        }

        loop {
            let next_arrival = arrivals.peek().map(|j| j.submit_time);
            let next_done = st
                .in_flight
                .iter()
                .map(|f| f.finish)
                .fold(f64::INFINITY, f64::min);
            let next = match next_arrival {
                Some(t) => t.min(next_done),
                None if next_done.is_finite() => next_done,
                None => break,
            };
            st.now = st.now.max(next);
            self.flush_done(st);
            if st.crashed() {
                return false;
            }
            while arrivals
                .peek()
                .is_some_and(|j| j.submit_time <= st.now + EPS)
            {
                let job = arrivals.next().expect("peeked");
                self.admit(st, job);
                if st.crashed() {
                    return false;
                }
            }
            self.shed_brownout(st);
            if !st.breakers.is_empty() {
                let now = st.now;
                let mask: Vec<bool> = st.breakers.iter_mut().map(|b| b.eligible(now)).collect();
                self.pool.set_eligible(&mask);
            }
            self.dispatch_all(st);
            if let Some(ctx) = st.durable.as_mut() {
                if ctx.due_kind() == Some(CrashKind::MidBatch) && !st.in_flight.is_empty() {
                    ctx.crash_now(st.now, CrashKind::MidBatch);
                }
                ctx.journal.maybe_flush(st.now);
            }
            if st.crashed() {
                return false;
            }
            if let Some(m) = &self.metrics {
                m.queue_depth.set(st.queue.len() as f64);
                m.queue_depth_peak.set(st.queue.peak_depth() as f64);
                if let Some(ctx) = &st.durable {
                    m.publish_journal(&ctx.journal.stats(), ctx.journal.durable_bytes());
                }
            }
        }
        debug_assert!(st.queue.is_empty(), "event loop ended with queued jobs");
        debug_assert!(st.in_flight.is_empty(), "event loop ended mid-batch");
        true
    }

    /// Builds the report from a drained event-loop state.
    fn finish_report(&mut self, mut st: RunState) -> ServiceReport {
        // Records flush in completion order; re-sort into dispatch order
        // (batch, then position within the batch) so the report's shape
        // does not depend on how completions interleaved.
        st.records.sort_by(|a, b| {
            a.batch
                .cmp(&b.batch)
                .then(a.start_time.total_cmp(&b.start_time))
                .then(a.spec.id.cmp(&b.spec.id))
        });

        let makespan = st.records.iter().map(|r| r.finish_time).fold(0.0, f64::max);
        let device_busy: Vec<f64> = self.pool.devices().iter().map(|d| d.busy_seconds).collect();
        if let Some(m) = &self.metrics {
            m.set_device_busy(&device_busy);
        }
        // Close still-open alerts at the makespan and render each alert
        // interval as an annotation span. Tenants have no rank of their
        // own, so alerts land on the phases track of device
        // `tenant mod pool size` — deterministic and collision-free for
        // the standard mixes (3 tenants, 3 devices).
        let slo_alerts = match st.slo.take() {
            Some(engine) => engine.finish(makespan),
            None => Vec::new(),
        };
        if let Some(sink) = &self.sink {
            for alert in &slo_alerts {
                sink.record(SpanRecord {
                    rank: alert.tenant % self.pool.len().max(1),
                    start: alert.fired_at,
                    end: alert.cleared_at.unwrap_or(makespan),
                    kind: SpanKind::SloAlert {
                        tenant: alert.tenant as u64,
                        slo: alert.kind.label(),
                        burn_fast: alert.burn_fast,
                        burn_slow: alert.burn_slow,
                    },
                });
            }
        }
        ServiceReport {
            policy: self.config.policy,
            schedule_digest: digest(&st.records, &st.rejections),
            records: st.records,
            rejections: st.rejections,
            makespan,
            peak_queue_depth: st.queue.peak_depth(),
            batches: st.next_batch,
            retries: st.retries,
            preemptions: st.preemptions,
            quarantine_events: st.quarantine_events,
            device_names: self.pool.devices().iter().map(|d| d.name).collect(),
            device_busy,
            slo_alerts,
        }
    }

    /// Flushes every batch whose devices free at or before `st.now`:
    /// records and their metrics, the per-device Sched spans, and the
    /// buffered breaker observations.
    fn flush_done(&mut self, st: &mut RunState) {
        let now = st.now;
        let mut still = Vec::with_capacity(st.in_flight.len());
        for fl in std::mem::take(&mut st.in_flight) {
            if fl.finish <= now + EPS {
                self.flush_batch(st, fl);
            } else {
                still.push(fl);
            }
        }
        st.in_flight = still;
    }

    fn flush_batch(&mut self, st: &mut RunState, fl: InFlight) {
        if let Some(sink) = &self.sink {
            for &d in &fl.devices {
                sink.record(SpanRecord {
                    rank: d,
                    start: fl.start,
                    end: fl.finish,
                    kind: SpanKind::Sched {
                        job: fl.seed_id,
                        n: fl.seed_n as u64,
                        batch: fl.batch,
                        jobs: fl.pending.len() as u64,
                        policy: self.config.policy.name(),
                    },
                });
            }
        }
        for rec in fl.pending {
            // Write-ahead ack barrier: the terminal outcome is journaled
            // (commit-class — the group-commit trigger flushes it within
            // this virtual instant) before metrics or the report see it.
            // A crash after the flush finds the job terminal and
            // suppresses its resubmission; a crash before re-runs it to
            // the same digest — either way it completes exactly once.
            if let Some(ctx) = st.durable.as_mut() {
                let at = rec.finish_time;
                let record = match rec.outcome {
                    JobOutcome::Completed => JournalRecord::Completed {
                        at,
                        job: rec.spec.id,
                        idempotency: rec.spec.idempotency(),
                        tenant: rec.spec.tenant as u32,
                        latency: rec.latency(),
                        digest: ctx
                            .digests
                            .remove(&rec.spec.id)
                            .unwrap_or_else(|| job_output_digest(&rec.spec)),
                        deadline_met: rec
                            .spec
                            .deadline
                            .map(|_| rec.deadline == DeadlineVerdict::Met),
                    },
                    JobOutcome::Failed { .. } => JournalRecord::Failed {
                        at,
                        job: rec.spec.id,
                        idempotency: rec.spec.idempotency(),
                        tenant: rec.spec.tenant as u32,
                        latency: rec.latency(),
                        attempts: rec.attempts as u32,
                    },
                };
                ctx.append(at, at, &record);
            }
            if let Some(m) = &self.metrics {
                match rec.outcome {
                    JobOutcome::Completed => {
                        m.record_completed(rec.spec.tenant, rec.latency(), rec.queue_wait())
                    }
                    JobOutcome::Failed { .. } => {
                        m.record_failed(rec.spec.tenant, rec.latency(), rec.queue_wait())
                    }
                }
                if rec.missed_deadline() {
                    m.record_deadline_miss(rec.spec.tenant);
                }
            }
            if let Some(engine) = st.slo.as_mut() {
                let failed = !matches!(rec.outcome, JobOutcome::Completed);
                let deadline_met = rec
                    .spec
                    .deadline
                    .map(|_| rec.deadline == DeadlineVerdict::Met);
                let fired = engine.observe_finished(
                    rec.finish_time,
                    rec.spec.tenant,
                    rec.latency(),
                    failed,
                    deadline_met,
                );
                self.publish_slo(engine, rec.spec.tenant, rec.finish_time, &fired);
            }
            st.records.push(rec);
        }
        for ev in fl.breaker_events {
            self.observe_breaker(st, ev);
        }
    }

    /// Feeds one execution observation into the device's breaker and
    /// publishes any transition: timeline event, metrics, and — on an
    /// open — a [`SpanKind::Quarantine`] annotation spanning the open
    /// interval on the device's track.
    fn observe_breaker(&mut self, st: &mut RunState, ev: BreakerEvent) {
        if st.breakers.is_empty() {
            return;
        }
        let breaker = &mut st.breakers[ev.device];
        let transition = if ev.failed {
            breaker.record_failure(ev.at)
        } else {
            breaker.record_success(ev.at)
        };
        let Some(tr) = transition else { return };
        let opens = breaker.opens();
        st.quarantine_events.push(QuarantineEvent {
            device: ev.device,
            at: ev.at,
            from: tr.from,
            to: tr.to,
        });
        let opened = tr.to == CircuitState::Open;
        if let Some(m) = &self.metrics {
            m.record_quarantine(ev.device, opened);
        }
        if opened {
            if let Some(sink) = &self.sink {
                let failures = match tr.from {
                    // Closed → open fires at the configured streak; a
                    // half-open probe re-opens on its single failure.
                    CircuitState::Closed => self
                        .config
                        .degrade
                        .quarantine
                        .map_or(0, |q| u64::from(q.failure_threshold)),
                    _ => 1,
                };
                sink.record(SpanRecord {
                    rank: ev.device,
                    start: ev.at,
                    end: tr.open_until,
                    kind: SpanKind::Quarantine {
                        failures,
                        opens: u64::from(opens),
                    },
                });
            }
        }
    }

    /// Admits one arrival: size → deadline feasibility → quota →
    /// capacity, each with its typed rejection. The deadline check slots
    /// after the size bound so an oversized job still bounces as
    /// `TooLarge` — rejection reasons stay deterministic per job.
    fn admit(&mut self, st: &mut RunState, job: JobSpec) {
        let deadline_rej =
            if self.config.degrade.deadline_admission && job.n <= self.config.admission.max_n {
                job.deadline.and_then(|d| {
                    let est = self.estimate_completion(st, &job);
                    (est > d + EPS).then_some(Rejection::DeadlineInfeasible {
                        tenant: job.tenant,
                        deadline: d,
                        estimated_completion: est,
                    })
                })
            } else {
                None
            };
        let result = match deadline_rej {
            Some(r) => Err(r),
            None => st.queue.offer(job.clone()),
        };
        // Write-ahead: the admission decision is journaled before the
        // service acts on it. An admit is lazy-class (losing it only
        // means the client resubmits and the job is admitted afresh); a
        // rejection is commit-class (it is an externally visible ack).
        if let Some(ctx) = st.durable.as_mut() {
            let now = st.now;
            let record = match &result {
                Ok(()) => JournalRecord::Admitted {
                    at: now,
                    meta: job_meta(&job),
                },
                Err(rej) => JournalRecord::Rejected {
                    at: now,
                    meta: job_meta(&job),
                    reason: reason_of(rej),
                },
            };
            ctx.append(now, now, &record);
            if ctx.due_kind() == Some(CrashKind::AtAdmission) {
                ctx.crash_now(now, CrashKind::AtAdmission);
                return;
            }
        }
        if let Err(rej) = result {
            if let Some(m) = &self.metrics {
                m.record_rejection(job.tenant, &rej);
            }
            let now = st.now;
            if let Some(engine) = st.slo.as_mut() {
                let fired = engine.observe_rejected(now, job.tenant);
                self.publish_slo(engine, job.tenant, now, &fired);
            }
            st.rejections.push((job, rej));
        }
    }

    /// Publishes one tenant's current burn rates and any newly fired
    /// alerts to the metrics bundle.
    fn publish_slo(&self, engine: &SloEngine, tenant: usize, now: f64, fired: &[usize]) {
        let Some(m) = &self.metrics else { return };
        for (idx, spec) in engine.specs().iter().enumerate() {
            if spec.tenant == tenant {
                let (fast, slow) = engine.burn_rates(idx, now);
                m.set_slo_burn(tenant, spec.kind, fast, slow);
            }
        }
        for &idx in fired {
            let spec = engine.specs()[idx];
            m.record_slo_alert(spec.tenant, spec.kind);
        }
    }

    /// Earliest feasible completion of `job` submitted now: the instant
    /// the pool next frees a device, plus the queued backlog ahead of it
    /// (full-pool service-time estimates, preempted remainders prorated),
    /// plus the job's own full-pool estimate. Deliberately a serial
    /// upper-bound drain model — under the overloads that make deadline
    /// admission matter, the pool is saturated and the bound is tight;
    /// when it is slack the admission errs conservative.
    fn estimate_completion(&self, st: &mut RunState, job: &JobSpec) -> f64 {
        let pool = &self.pool;
        let est = |cache: &mut BTreeMap<usize, f64>, n: usize| -> f64 {
            *cache.entry(n).or_insert_with(|| {
                let all: Vec<usize> = (0..pool.len()).collect();
                service_time(pool, &all, n)
            })
        };
        let mut backlog = 0.0;
        for queued in st.queue.iter() {
            let remaining = 1.0
                - st.resume
                    .get(&queued.id)
                    .map_or(0.0, |r: &ResumeState| r.fraction);
            backlog += remaining * est(&mut st.est_cache, queued.n);
        }
        let free = pool
            .devices()
            .iter()
            .map(|d| d.busy_until)
            .fold(f64::INFINITY, f64::min)
            .max(st.now);
        free + backlog + est(&mut st.est_cache, job.n)
    }

    /// Brownout: updates the hysteresis state from the queue-wait p95
    /// and, while active, sheds every queued deadline-less job at or
    /// below the shed tier with a typed rejection.
    fn shed_brownout(&mut self, st: &mut RunState) {
        let Some(cfg) = self.config.degrade.brownout else {
            return;
        };
        let Some(w) = &st.waits else { return };
        let p95 = w.p95();
        if st.brownout_active {
            if p95 < cfg.exit_fraction * cfg.p95_threshold {
                st.brownout_active = false;
            }
        } else if p95 > cfg.p95_threshold {
            st.brownout_active = true;
        }
        if !st.brownout_active {
            return;
        }
        // Never shed a job holding checkpointed progress — its partial
        // work is real, and conservation through preemption means a
        // preempted job always finishes or fails, never evaporates.
        let resume = &st.resume;
        let shed = st.queue.drain_matching(|j| {
            j.deadline.is_none()
                && j.priority <= cfg.max_shed_priority
                && !resume.contains_key(&j.id)
        });
        for job in shed {
            let rej = Rejection::Shed {
                tenant: job.tenant,
                queue_wait_p95: p95,
                threshold: cfg.p95_threshold,
            };
            // A shed is an externally visible rejection of an already
            // admitted job — commit-class, journaled before the ack.
            if let Some(ctx) = st.durable.as_mut() {
                let now = st.now;
                ctx.append(
                    now,
                    now,
                    &JournalRecord::Rejected {
                        at: now,
                        meta: job_meta(&job),
                        reason: RejectionReason::Shed,
                    },
                );
            }
            if let Some(m) = &self.metrics {
                m.record_rejection(job.tenant, &rej);
            }
            let now = st.now;
            if let Some(engine) = st.slo.as_mut() {
                let fired = engine.observe_rejected(now, job.tenant);
                self.publish_slo(engine, job.tenant, now, &fired);
            }
            st.rejections.push((job, rej));
        }
    }

    /// Dispatches every queued job whose placement can start *now*.
    /// FIFO and round-robin only ever look at the head (head-of-line
    /// blocking is part of what those baselines are); FPM-aware walks the
    /// queue in urgency order and backfills past blocked jobs. When
    /// nothing can start and an urgent job is stuck behind lower-tier
    /// running work, checkpoint preemption truncates a victim batch.
    fn dispatch_all(&mut self, st: &mut RunState) {
        'dispatch: loop {
            if st.queue.is_empty() {
                return;
            }
            let candidates: Vec<usize> = match self.config.policy {
                Policy::Fifo | Policy::RoundRobin => vec![0],
                Policy::FpmAware => {
                    let specs: Vec<&JobSpec> = st.queue.iter().collect();
                    let mut order: Vec<usize> = (0..specs.len()).collect();
                    order.sort_by(|&a, &b| {
                        specs[b]
                            .priority
                            .cmp(&specs[a].priority)
                            .then(
                                specs[a]
                                    .deadline
                                    .unwrap_or(f64::INFINITY)
                                    .total_cmp(&specs[b].deadline.unwrap_or(f64::INFINITY)),
                            )
                            .then(a.cmp(&b))
                    });
                    order
                }
            };
            for idx in candidates {
                let job = st.queue.iter().nth(idx).expect("index observed").clone();
                let placement = plan(self.config.policy, &mut self.pool, &job, st.now);
                if placement.start <= st.now + EPS {
                    commit(self.config.policy, &mut self.pool);
                    self.dispatch_batch(st, idx, placement);
                    continue 'dispatch;
                }
            }
            self.try_preempt(st);
            return;
        }
    }

    /// Checkpoint preemption: if a queued job at or above the urgency
    /// tier would wait longer than the configured bound, truncate the
    /// running batch with the most reclaimable tail at its next panel
    /// boundary, requeue the unfinished members (keeping the in-progress
    /// member's k-prefix as a resume fraction), and free the devices at
    /// the boundary. The preempted work resumes from its checkpoint —
    /// bit-identically, which the core's `multiply_abft_prefix` API
    /// proves on real matrices.
    fn try_preempt(&mut self, st: &mut RunState) {
        let Some(cfg) = self.config.degrade.preemption else {
            return;
        };
        // Preemption needs a dispatch order that will actually run the
        // urgent job on the freed devices. FIFO and round-robin only
        // ever dispatch the queue head — and the requeued victim goes
        // back to the head — so yielding devices under them would just
        // re-dispatch the victim in slices.
        if self.config.policy != Policy::FpmAware {
            return;
        }
        let mut urgent: Option<&JobSpec> = None;
        for j in st.queue.iter().filter(|j| j.priority >= cfg.min_priority) {
            let better = match urgent {
                None => true,
                Some(u) => {
                    j.priority
                        .cmp(&u.priority)
                        .then(
                            u.deadline
                                .unwrap_or(f64::INFINITY)
                                .total_cmp(&j.deadline.unwrap_or(f64::INFINITY)),
                        )
                        .then(u.id.cmp(&j.id))
                        == std::cmp::Ordering::Greater
                }
            };
            if better {
                urgent = Some(j);
            }
        }
        let Some(urgent) = urgent.cloned() else {
            return;
        };
        // If the urgent job would start soon anyway, don't churn.
        let placement = plan(self.config.policy, &mut self.pool, &urgent, st.now);
        if placement.start <= st.now + cfg.min_wait {
            return;
        }
        // Victim: the batch of strictly lower-priority work whose
        // truncation reclaims the most device time.
        let mut victim: Option<usize> = None;
        let mut best_reclaim = cfg.min_wait;
        for (i, fl) in st.in_flight.iter().enumerate() {
            let max_prio = fl.pending.iter().map(|r| r.spec.priority).max();
            if max_prio.is_none_or(|p| p >= urgent.priority) {
                continue;
            }
            let Some(boundary) = preemption_boundary(fl, st.now, cfg.panels) else {
                continue;
            };
            let reclaim = fl.finish - boundary;
            if reclaim > best_reclaim + EPS {
                best_reclaim = reclaim;
                victim = Some(i);
            }
        }
        let Some(vi) = victim else { return };
        let (devices, boundary, old_finish, requeue) = {
            let fl = &mut st.in_flight[vi];
            let boundary =
                preemption_boundary(fl, st.now, cfg.panels).expect("victim had a boundary");
            let old_finish = fl.finish;
            let mut kept = Vec::new();
            let mut requeue: Vec<(JobSpec, f64)> = Vec::new();
            for rec in fl.pending.drain(..) {
                if rec.finish_time <= boundary + EPS {
                    // Done by the boundary: completes as dispatched.
                    kept.push(rec);
                } else if rec.start_time >= boundary - EPS {
                    // Never started: the whole member goes back.
                    requeue.push((rec.spec, 0.0));
                } else {
                    // In progress: the k-prefix up to the boundary is
                    // checkpointed; only the suffix re-runs.
                    let frac = (boundary - rec.start_time) / (rec.finish_time - rec.start_time);
                    requeue.push((rec.spec, frac));
                }
            }
            fl.pending = kept;
            fl.finish = boundary;
            (fl.devices.clone(), boundary, old_finish, requeue)
        };
        self.pool.release(&devices, boundary, old_finish);
        st.preemptions += 1;
        if let Some(m) = &self.metrics {
            m.preemptions.inc();
        }
        // The truncated tail's future-dated checkpoint records must not
        // become durable: the work past the boundary was cut away, and a
        // journal that claimed it would resume a crashed job too far
        // ahead. Checkpoints at or before the boundary stand — that
        // progress is real and checkpointed.
        if let Some(ctx) = st.durable.as_mut() {
            for (spec, _) in &requeue {
                let id = spec.id;
                ctx.journal.retract_pending(|r| {
                    matches!(
                        r,
                        JournalRecord::PanelCheckpoint { job, at, .. }
                            if *job == id && *at > boundary + EPS
                    )
                });
            }
        }
        // Requeue at the head in original order (reverse pushes front).
        for (spec, frac) in requeue.iter().rev() {
            let entry = st.resume.entry(spec.id).or_default();
            // Progress composes: this dispatch covered `frac` of the
            // work that remained when it started.
            entry.fraction += (1.0 - entry.fraction) * frac;
            entry.preemptions += 1;
            st.queue.requeue_front(spec.clone());
        }
    }

    /// Takes the seed job plus up to `max_batch - 1` same-size queued
    /// jobs and runs them back-to-back on one placement, amortizing the
    /// batch setup cost. Records are buffered on the in-flight entry and
    /// only become visible when the batch's devices free.
    fn dispatch_batch(&mut self, st: &mut RunState, seed_idx: usize, placement: Placement) {
        let seed = st.queue.take(seed_idx);
        let mut members = vec![seed];
        while members.len() < self.config.batching.max_batch {
            let mate = st.queue.iter().position(|j| j.n == members[0].n);
            match mate {
                Some(pos) => members.push(st.queue.take(pos)),
                None => break,
            }
        }
        let batch = st.next_batch;
        st.next_batch += 1;
        if let Some(m) = &self.metrics {
            m.batches.inc();
        }

        let batch_start = st.now;
        let mut t = st.now + self.config.batching.setup_cost;
        let mut pending = Vec::with_capacity(members.len());
        let mut breaker_events = Vec::new();
        let mut base_fracs = Vec::with_capacity(members.len());
        let mut digests = Vec::with_capacity(members.len());
        for job in members.iter() {
            let start_time = t;
            let resumed = st.resume.get(&job.id).copied().unwrap_or_default();
            let (finish, attempts, devices, outcome, digest) = self.execute(
                job,
                &placement,
                t,
                resumed.fraction,
                &mut st.retries,
                &mut breaker_events,
            );
            t = finish;
            base_fracs.push(resumed.fraction);
            digests.push(digest);
            if let Some(w) = &mut st.waits {
                w.push(start_time - job.submit_time);
            }
            pending.push(JobRecord {
                spec: job.clone(),
                start_time,
                finish_time: finish,
                devices,
                shape: placement.shape.name(),
                batch,
                attempts,
                preemptions: resumed.preemptions,
                deadline: DeadlineVerdict::of(job.deadline, finish),
                outcome,
            });
        }
        // Journal the dispatch and the panel-boundary checkpoints it
        // will cross. Checkpoint records are future-dated to their
        // boundary instants — the event loop has no event mid-batch, but
        // the journal only flushes them once the clock actually passes
        // them, so the durable log never claims unreached progress. The
        // journaled fraction composes the member's pre-dispatch resume
        // base, making it the job's *absolute* checkpointed share.
        if let Some(ctx) = st.durable.as_mut() {
            ctx.append(
                batch_start,
                batch_start,
                &JournalRecord::BatchStarted {
                    at: batch_start,
                    batch,
                    job_ids: members.iter().map(|j| j.id).collect(),
                    devices: placement.devices.iter().map(|&d| d as u32).collect(),
                },
            );
            for (i, rec) in pending.iter().enumerate() {
                if let Some(d) = digests[i] {
                    ctx.digests.insert(rec.spec.id, d);
                }
                // Only a completing member leaves checkpointable panel
                // products behind; a member that burns its attempt
                // budget has no durable prefix to resume from.
                if rec.outcome != JobOutcome::Completed {
                    continue;
                }
                let span = rec.finish_time - rec.start_time;
                for k in 1..ctx.panels {
                    if ctx.crashed.is_some() {
                        break;
                    }
                    let share = k as f64 / ctx.panels as f64;
                    let boundary = rec.start_time + span * share;
                    ctx.append(
                        batch_start,
                        boundary,
                        &JournalRecord::PanelCheckpoint {
                            at: boundary,
                            job: rec.spec.id,
                            idempotency: rec.spec.idempotency(),
                            fraction: base_fracs[i] + (1.0 - base_fracs[i]) * share,
                        },
                    );
                }
            }
        }
        self.pool.occupy(&placement.devices, batch_start, t);
        st.in_flight.push(InFlight {
            batch,
            devices: placement.devices.clone(),
            start: batch_start,
            finish: t,
            pending,
            breaker_events,
            seed_id: members[0].id,
            seed_n: members[0].n,
        });
    }

    /// Executes one job of a batch starting at `t0`: walks the seeded
    /// fault draws through shrink-and-retry on the virtual clock and —
    /// in the real backend — actually multiplies the matrices through
    /// the recovery executor and verifies the product. A resumed job
    /// (`resume_fraction > 0`) re-runs only its unfinished k-suffix plus
    /// the checkpoint-restore overhead. Breaker observations (blamed
    /// failures, surviving successes) are appended to `breaker_events`.
    fn execute(
        &self,
        job: &JobSpec,
        placement: &Placement,
        t0: f64,
        resume_fraction: f64,
        retries: &mut u64,
        breaker_events: &mut Vec<BreakerEvent>,
    ) -> (f64, usize, Vec<usize>, JobOutcome, Option<u64>) {
        let faults = self.config.faults;
        let work_scale = (1.0 - resume_fraction).max(0.0);
        let track_breakers = self.config.degrade.quarantine.is_some();
        let mut devices = placement.devices.clone();
        let mut t = t0;
        if resume_fraction > 0.0 {
            if let Some(p) = self.config.degrade.preemption {
                t += p.resume_overhead;
            }
        }
        let mut attempts = 0usize;
        let outcome = loop {
            attempts += 1;
            let full = if devices.len() == placement.devices.len() {
                placement.duration
            } else {
                service_time(&self.pool, &devices, job.n)
            };
            let duration = full * work_scale;
            let fate = draw_fate(&faults, job.id, attempts as u64, devices.len());
            if !fate.fails {
                t += duration;
                if track_breakers {
                    for &d in &devices {
                        breaker_events.push(BreakerEvent {
                            at: t,
                            device: d,
                            failed: false,
                        });
                    }
                }
                break JobOutcome::Completed;
            }
            // The attempt burns part of its duration, then pays the
            // detection/restart backoff. Multi-device placements shrink
            // the blamed device out, exactly like `multiply_with_recovery`
            // shrinks a crashed rank's device out of the partition; a
            // singleton placement treats the failure as transient and
            // restarts on the same device (there is nothing to shrink to).
            t += duration * fate.burn_fraction + faults.retry_backoff;
            if track_breakers {
                breaker_events.push(BreakerEvent {
                    at: t,
                    device: devices[fate.victim_slot],
                    failed: true,
                });
            }
            if attempts >= faults.max_attempts {
                break JobOutcome::Failed {
                    reason: format!("attempt budget exhausted after {attempts} executions"),
                };
            }
            if devices.len() > 1 {
                devices.remove(fate.victim_slot);
            }
            *retries += 1;
            if let Some(m) = &self.metrics {
                m.retries.inc();
            }
        };
        if let ServiceBackend::Real { abft } = self.config.backend {
            match self.execute_real(job, placement, abft) {
                Ok(digest) => return (t, attempts, devices, outcome, Some(digest)),
                Err(reason) => return (t, attempts, devices, JobOutcome::Failed { reason }, None),
            }
        }
        (t, attempts, devices, outcome, None)
    }

    /// Numerically executes a job through the recovery-capable executor
    /// (or the ABFT one) and verifies the product, returning the
    /// product's FNV digest (what the journal's `Completed` record
    /// carries — bit-identical re-execution is what makes the digest a
    /// meaningful exactly-once witness). Returns an error string on
    /// numeric failure — which would be a service bug, and is exactly
    /// what the real-mode tests are hunting for.
    fn execute_real(
        &self,
        job: &JobSpec,
        placement: &Placement,
        abft: bool,
    ) -> Result<u64, String> {
        let n = job.n;
        let a = random_matrix(n, n, job.id.wrapping_mul(2).wrapping_add(1));
        let b = random_matrix(n, n, job.id.wrapping_mul(2).wrapping_add(2));
        // Re-derive the *first* fault draw as an injected rank kill so
        // the virtual fault model and the real executor agree on whether
        // this job sees adversity.
        let fate = draw_fate(&self.config.faults, job.id, 1, placement.devices.len());
        let attempt_faults: Vec<FaultPlan> = if fate.fails && placement.devices.len() > 1 {
            vec![FaultPlan::new().kill_rank(fate.victim_slot, 2)]
        } else {
            Vec::new()
        };
        let opts = RecoveryOptions {
            max_attempts: self.config.faults.max_attempts.max(2),
            retry_backoff: self.config.faults.retry_backoff,
            recv_timeout: Duration::from_millis(500),
            ..RecoveryOptions::default()
        };
        let c = if abft {
            multiply_abft(
                placement.shape,
                &placement.rel_speeds,
                &a,
                &b,
                ExecutionMode::Real,
                HockneyModel::intra_node(),
                &attempt_faults,
                &opts,
                &AbftOptions::default(),
            )
            .map_err(|e| format!("abft execution failed: {e:?}"))?
            .run
            .c
        } else {
            multiply_with_recovery(
                placement.shape,
                &placement.rel_speeds,
                &a,
                &b,
                ExecutionMode::Real,
                HockneyModel::intra_node(),
                &attempt_faults,
                &opts,
            )
            .map_err(|e| format!("recovery execution failed: {e:?}"))?
            .c
        };
        verify_product(&a, &b, &c)?;
        let words: Vec<u64> = c.as_slice().iter().map(|v| v.to_bits()).collect();
        Ok(fnv1a_words(&words))
    }
}

/// The earliest panel-aligned instant ≥ `now` at which the batch's
/// unfinished work can be cut, or `None` when nothing after `now` is
/// reclaimable. Members run sequentially, so the first member that is
/// not complete at `now` decides: an unstarted member cuts at its own
/// start; an in-progress member cuts at its next of `panels` equal
/// virtual-time panel marks (the virtual-clock model of the checkpointed
/// executor's column-panel boundaries, which `panel_boundaries` exposes
/// for the real run).
fn preemption_boundary(fl: &InFlight, now: f64, panels: usize) -> Option<f64> {
    for rec in &fl.pending {
        if rec.finish_time <= now + EPS {
            continue;
        }
        if rec.start_time >= now - EPS {
            return Some(rec.start_time.max(now));
        }
        let step = (rec.finish_time - rec.start_time) / panels.max(1) as f64;
        let done = ((now - rec.start_time) / step).ceil().max(1.0);
        return Some((rec.start_time + done * step).min(rec.finish_time));
    }
    None
}

fn verify_product(a: &DenseMatrix, b: &DenseMatrix, c: &DenseMatrix) -> Result<(), String> {
    let n = a.rows();
    let mut want = DenseMatrix::zeros(n, b.cols());
    gemm_naive(
        n,
        b.cols(),
        n,
        1.0,
        a.as_slice(),
        n,
        b.as_slice(),
        b.cols(),
        0.0,
        want.as_mut_slice(),
        b.cols(),
    );
    let diff = max_abs_diff(c, &want);
    if diff < 1e-9 {
        Ok(())
    } else {
        Err(format!("product verification failed: max |Δ| = {diff:e}"))
    }
}

/// FNV-1a over every scheduling decision: job ids, times (as bits),
/// device sets, batches, attempts, outcomes, and rejections.
fn digest(records: &[JobRecord], rejections: &[(JobSpec, Rejection)]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |v: u64| {
        for byte in v.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(PRIME);
        }
    };
    for r in records {
        eat(r.spec.id);
        eat(r.start_time.to_bits());
        eat(r.finish_time.to_bits());
        eat(r.batch);
        eat(r.attempts as u64);
        eat(r.devices.len() as u64);
        for &d in &r.devices {
            eat(d as u64);
        }
        eat(match r.outcome {
            JobOutcome::Completed => 1,
            JobOutcome::Failed { .. } => 2,
        });
        eat(r.preemptions as u64);
        eat(match r.deadline {
            DeadlineVerdict::NoDeadline => 0,
            DeadlineVerdict::Met => 1,
            DeadlineVerdict::Missed { .. } => 2,
        });
    }
    for (j, rej) in rejections {
        eat(j.id);
        eat(rej.label().len() as u64);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::degrade::{BrownoutConfig, PreemptionConfig, QuarantineConfig};
    use crate::loadgen::{generate, small_mix};
    use summagen_platform::profile::hclserver1;

    fn pool() -> DevicePool {
        DevicePool::from_platform(&hclserver1(), 1e-5, 4e-10)
    }

    fn config(policy: Policy) -> ServiceConfig {
        ServiceConfig {
            policy,
            ..ServiceConfig::default()
        }
    }

    fn job(id: u64, n: usize, submit: f64) -> JobSpec {
        JobSpec {
            id,
            tenant: 0,
            n,
            priority: 0,
            deadline: None,
            submit_time: submit,
        }
    }

    #[test]
    fn empty_run_reports_empty() {
        let report = GemmService::new(pool(), config(Policy::FpmAware)).run(Vec::new());
        assert!(report.records.is_empty());
        assert_eq!(report.makespan, 0.0);
        assert_eq!(report.completed(), 0);
    }

    #[test]
    fn every_accepted_job_is_recorded_exactly_once() {
        let jobs = generate(&small_mix());
        let total = jobs.len();
        let mut svc = GemmService::new(pool(), config(Policy::FpmAware));
        let report = svc.run(jobs);
        assert_eq!(report.records.len() + report.rejections.len(), total);
        let mut ids: Vec<u64> = report
            .records
            .iter()
            .map(|r| r.spec.id)
            .chain(report.rejections.iter().map(|(j, _)| j.id))
            .collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), total, "a job was lost or double-counted");
    }

    #[test]
    fn same_seed_same_schedule() {
        let jobs = generate(&small_mix());
        let a = GemmService::new(pool(), config(Policy::FpmAware)).run(jobs.clone());
        let b = GemmService::new(pool(), config(Policy::FpmAware)).run(jobs);
        assert_eq!(a.schedule_digest, b.schedule_digest);
        assert_eq!(a.records.len(), b.records.len());
        assert_eq!(a.makespan.to_bits(), b.makespan.to_bits());
    }

    #[test]
    fn policies_schedule_differently() {
        let jobs = generate(&small_mix());
        let fifo = GemmService::new(pool(), config(Policy::Fifo)).run(jobs.clone());
        let fpm = GemmService::new(pool(), config(Policy::FpmAware)).run(jobs);
        assert_ne!(fifo.schedule_digest, fpm.schedule_digest);
    }

    #[test]
    fn fpm_beats_fifo_on_makespan_and_p95_for_the_small_mix() {
        let jobs = generate(&small_mix());
        let fifo = GemmService::new(pool(), config(Policy::Fifo)).run(jobs.clone());
        let fpm = GemmService::new(pool(), config(Policy::FpmAware)).run(jobs);
        assert!(
            fpm.makespan < fifo.makespan,
            "fpm makespan {} vs fifo {}",
            fpm.makespan,
            fifo.makespan
        );
        assert!(
            fpm.latency_quantile(0.95) < fifo.latency_quantile(0.95),
            "fpm p95 {} vs fifo {}",
            fpm.latency_quantile(0.95),
            fifo.latency_quantile(0.95)
        );
    }

    #[test]
    fn dispatch_waits_for_devices_so_the_queue_actually_fills() {
        // A burst of simultaneous arrivals against a single-slot FIFO
        // pool must stack up in the queue rather than be assigned to
        // future device slots at arrival time.
        let jobs: Vec<JobSpec> = (0..8).map(|i| job(i, 512, 0.0)).collect();
        let mut svc = GemmService::new(pool(), config(Policy::Fifo));
        let report = svc.run(jobs);
        assert!(
            report.peak_queue_depth >= 4,
            "queue never filled: peak {}",
            report.peak_queue_depth
        );
        assert_eq!(report.records.len(), 8);
    }

    #[test]
    fn backpressure_rejects_when_the_queue_is_full() {
        let cfg = ServiceConfig {
            admission: AdmissionConfig {
                queue_capacity: 2,
                per_tenant_quota: 2,
                max_n: 16_384,
            },
            ..config(Policy::Fifo)
        };
        let jobs: Vec<JobSpec> = (0..6).map(|i| job(i, 1024, 0.0)).collect();
        let report = GemmService::new(pool(), cfg).run(jobs);
        assert!(!report.rejections.is_empty(), "no backpressure observed");
        assert_eq!(report.records.len() + report.rejections.len(), 6);
    }

    #[test]
    fn batching_amortizes_setup_and_stamps_batch_ids() {
        let jobs: Vec<JobSpec> = (0..4).map(|i| job(i, 512, 0.0)).collect();
        let report = GemmService::new(pool(), config(Policy::FpmAware)).run(jobs);
        assert!(
            report.batches < 4,
            "4 same-size simultaneous jobs never batched ({} batches)",
            report.batches
        );
        let batch0: Vec<&JobRecord> = report.records.iter().filter(|r| r.batch == 0).collect();
        assert!(batch0.len() > 1, "first batch holds one job");
    }

    #[test]
    fn injected_faults_trigger_retries_without_losing_jobs() {
        let cfg = ServiceConfig {
            faults: FaultProfile {
                fail_permille: 300,
                seed: 7,
                max_attempts: 4,
                retry_backoff: 0.05,
            },
            ..config(Policy::FpmAware)
        };
        let jobs = generate(&small_mix());
        let total = jobs.len();
        let report = GemmService::new(pool(), cfg).run(jobs);
        assert_eq!(report.records.len() + report.rejections.len(), total);
        assert!(report.retries > 0, "30% fault rate produced no retries");
        assert!(
            report.records.iter().any(|r| r.attempts > 1),
            "no record shows a retry"
        );
        // The schedule is still deterministic under faults.
        let again = GemmService::new(pool(), cfg).run(generate(&small_mix()));
        assert_eq!(report.schedule_digest, again.schedule_digest);
    }

    #[test]
    fn real_backend_executes_and_verifies_small_jobs() {
        let cfg = ServiceConfig {
            backend: ServiceBackend::Real { abft: false },
            faults: FaultProfile {
                fail_permille: 500,
                seed: 3,
                max_attempts: 3,
                retry_backoff: 0.05,
            },
            ..config(Policy::FpmAware)
        };
        let jobs: Vec<JobSpec> = (0..6).map(|i| job(i, 24, i as f64 * 0.001)).collect();
        let report = GemmService::new(pool(), cfg).run(jobs);
        assert_eq!(report.records.len(), 6);
        // Numeric execution verified inside execute_real; a verification
        // failure would surface as a Failed outcome with its reason.
        for r in &report.records {
            if let JobOutcome::Failed { reason } = &r.outcome {
                assert!(
                    !reason.contains("verification"),
                    "numeric verification failed: {reason}"
                );
            }
        }
    }

    fn pjob(id: u64, n: usize, submit: f64, priority: u8, deadline: Option<f64>) -> JobSpec {
        JobSpec {
            id,
            tenant: priority as usize,
            n,
            priority,
            deadline,
            submit_time: submit,
        }
    }

    #[test]
    fn default_degrade_config_changes_nothing() {
        let jobs = generate(&small_mix());
        let report = GemmService::new(pool(), config(Policy::FpmAware)).run(jobs);
        assert_eq!(report.preemptions, 0);
        assert!(report.quarantine_events.is_empty());
        assert_eq!(report.shed(), 0);
        for r in &report.records {
            assert_eq!(r.preemptions, 0);
            match (r.spec.deadline, r.deadline) {
                (None, DeadlineVerdict::NoDeadline) => {}
                (Some(d), DeadlineVerdict::Met) => assert!(r.finish_time <= d),
                (Some(d), DeadlineVerdict::Missed { late_by }) => {
                    assert!((r.finish_time - d - late_by).abs() < 1e-12)
                }
                (spec, verdict) => panic!("inconsistent verdict {verdict:?} for deadline {spec:?}"),
            }
        }
    }

    #[test]
    fn urgent_job_triggers_checkpoint_preemption() {
        let cfg = ServiceConfig {
            degrade: DegradeConfig {
                preemption: Some(PreemptionConfig {
                    min_wait: 0.05,
                    ..PreemptionConfig::default()
                }),
                ..DegradeConfig::default()
            },
            ..config(Policy::FpmAware)
        };
        // A long tier-0 job monopolizes the pool; an urgent tier-2 job
        // arrives mid-run and must not wait for the whole thing.
        let low = pjob(0, 8192, 0.0, 0, None);
        let high = pjob(1, 512, 0.2, 2, None);
        let report = GemmService::new(pool(), cfg).run(vec![low, high]);
        assert_eq!(report.records.len(), 2, "a job was lost to preemption");
        assert!(report.preemptions >= 1, "no preemption happened");
        let low_rec = report.records.iter().find(|r| r.spec.id == 0).unwrap();
        let high_rec = report.records.iter().find(|r| r.spec.id == 1).unwrap();
        assert!(low_rec.preemptions >= 1, "victim not marked preempted");
        assert_eq!(low_rec.outcome, JobOutcome::Completed);
        assert_eq!(high_rec.outcome, JobOutcome::Completed);
        assert!(
            high_rec.finish_time < low_rec.finish_time,
            "urgent job ({}) still finished after the preempted one ({})",
            high_rec.finish_time,
            low_rec.finish_time
        );
        // Without preemption the urgent job waits for the full batch.
        let baseline = GemmService::new(pool(), config(Policy::FpmAware)).run(vec![
            pjob(0, 8192, 0.0, 0, None),
            pjob(1, 512, 0.2, 2, None),
        ]);
        let base_high = baseline.records.iter().find(|r| r.spec.id == 1).unwrap();
        assert!(
            high_rec.finish_time < base_high.finish_time,
            "preemption did not improve the urgent job's completion"
        );
    }

    #[test]
    fn infeasible_deadline_jobs_are_rejected_at_the_door() {
        let cfg = ServiceConfig {
            degrade: DegradeConfig {
                deadline_admission: true,
                ..DegradeConfig::default()
            },
            ..config(Policy::FpmAware)
        };
        // Saturate the pool, then submit one job with a hopeless deadline
        // and one with a generous one.
        let mut jobs: Vec<JobSpec> = (0..6).map(|i| job(i, 2048, 0.0)).collect();
        jobs.push(pjob(6, 2048, 0.05, 1, Some(0.06)));
        jobs.push(pjob(7, 2048, 0.05, 1, Some(1e6)));
        let report = GemmService::new(pool(), cfg).run(jobs);
        let hopeless = report
            .rejections
            .iter()
            .find(|(j, _)| j.id == 6)
            .expect("hopeless deadline job was admitted");
        assert!(
            matches!(hopeless.1, Rejection::DeadlineInfeasible { .. }),
            "wrong rejection: {:?}",
            hopeless.1
        );
        // The enriched Display names tenant, deadline, and estimate.
        let msg = hopeless.1.to_string();
        assert!(msg.contains("tenant 1"), "{msg}");
        assert!(msg.contains("0.060"), "{msg}");
        assert!(
            report.records.iter().any(|r| r.spec.id == 7),
            "feasible deadline job was rejected"
        );
    }

    #[test]
    fn repeated_faults_quarantine_the_blamed_device() {
        let cfg = ServiceConfig {
            faults: FaultProfile {
                fail_permille: 700,
                seed: 11,
                max_attempts: 4,
                retry_backoff: 0.05,
            },
            degrade: DegradeConfig {
                quarantine: Some(QuarantineConfig::default()),
                ..DegradeConfig::default()
            },
            ..config(Policy::FpmAware)
        };
        let jobs = generate(&small_mix());
        let total = jobs.len();
        let report = GemmService::new(pool(), cfg).run(jobs);
        assert!(
            report
                .quarantine_events
                .iter()
                .any(|e| e.to == CircuitState::Open),
            "70% fault rate never opened a breaker"
        );
        // Conservation holds under quarantine.
        assert_eq!(report.records.len() + report.rejections.len(), total);
        // The timeline is internally consistent: each transition leaves
        // a state the device could actually have been in (the open →
        // half-open decay is implicit, so after an open the next event
        // may come `from` half-open).
        for d in 0..report.device_names.len() {
            let mut state = CircuitState::Closed;
            for e in report.quarantine_events.iter().filter(|e| e.device == d) {
                let reachable = e.from == state
                    || (state == CircuitState::Open && e.from == CircuitState::HalfOpen);
                assert!(
                    reachable,
                    "device {d}: transition from {:?} while {:?}",
                    e.from, state
                );
                state = e.to;
            }
        }
    }

    #[test]
    fn brownout_sheds_deadline_less_low_tier_jobs_under_overload() {
        let cfg = ServiceConfig {
            degrade: DegradeConfig {
                brownout: Some(BrownoutConfig {
                    p95_threshold: 0.05,
                    exit_fraction: 0.7,
                    window: 16,
                    max_shed_priority: 0,
                }),
                ..DegradeConfig::default()
            },
            ..config(Policy::FpmAware)
        };
        // A flood of tier-0 deadline-less jobs, with a few tier-1 jobs
        // that must never be shed.
        let mut jobs: Vec<JobSpec> = (0..40).map(|i| job(i, 2048, i as f64 * 0.001)).collect();
        jobs.extend((40..44).map(|i| pjob(i, 2048, i as f64 * 0.001, 1, None)));
        let total = jobs.len();
        let report = GemmService::new(pool(), cfg).run(jobs);
        assert!(report.shed() > 0, "overload never shed anything");
        assert_eq!(report.records.len() + report.rejections.len(), total);
        for (j, r) in &report.rejections {
            if let Rejection::Shed {
                tenant, threshold, ..
            } = r
            {
                assert_eq!(*tenant, j.tenant);
                assert_eq!(*threshold, 0.05);
                assert_eq!(j.priority, 0, "shed a protected tier");
                assert!(j.deadline.is_none(), "shed a deadline job");
            }
        }
        assert!(
            report
                .records
                .iter()
                .filter(|r| r.spec.priority == 1)
                .count()
                == 4,
            "a tier-1 job was shed"
        );
    }

    #[test]
    fn degraded_runs_are_deterministic() {
        let cfg = ServiceConfig {
            faults: FaultProfile {
                fail_permille: 300,
                seed: 7,
                max_attempts: 4,
                retry_backoff: 0.05,
            },
            degrade: DegradeConfig::standard(),
            ..config(Policy::FpmAware)
        };
        let a = GemmService::new(pool(), cfg).run(generate(&small_mix()));
        let b = GemmService::new(pool(), cfg).run(generate(&small_mix()));
        assert_eq!(a.schedule_digest, b.schedule_digest);
        assert_eq!(a.preemptions, b.preemptions);
        assert_eq!(a.quarantine_events, b.quarantine_events);
        assert_eq!(a.shed(), b.shed());
    }

    #[test]
    fn slo_alerts_fire_on_breach_and_stay_quiet_when_healthy() {
        use std::sync::Mutex;
        use summagen_insight::{BurnConfig, SloKind, SloSpec};
        #[derive(Default)]
        struct Collect(Mutex<Vec<SpanRecord>>);
        impl EventSink for Collect {
            fn record(&self, span: SpanRecord) {
                self.0.lock().unwrap().push(span);
            }
        }
        let policy = |threshold: f64| SloPolicy {
            specs: vec![SloSpec {
                tenant: 0,
                kind: SloKind::LatencyP95,
                threshold,
                objective: 0.95,
            }],
            burn: BurnConfig {
                fast_window: 0.5,
                slow_window: 2.0,
                fire_rate: 2.0,
                min_events: 5,
            },
        };
        // An unmeetable latency target: every finished job burns budget.
        let sink = Arc::new(Collect::default());
        let report = GemmService::new(pool(), config(Policy::FpmAware))
            .with_slo(policy(0.0))
            .with_sink(Arc::clone(&sink) as Arc<dyn EventSink>)
            .run(generate(&small_mix()));
        assert!(!report.slo_alerts.is_empty(), "breach never alerted");
        let alert = &report.slo_alerts[0];
        assert_eq!(alert.tenant, 0);
        assert_eq!(alert.kind, SloKind::LatencyP95);
        assert!(alert.burn_fast >= 2.0 && alert.burn_slow >= 2.0);
        assert!(alert.cleared_at.is_some(), "finish() must close alerts");
        let summaries = report.tenant_summaries(3);
        assert_eq!(summaries[0].slo_alerts, report.slo_alerts.len());
        assert_eq!(summaries[1].slo_alerts, 0);
        // Each alert rendered as one annotation span on a device track.
        let spans = sink.0.lock().unwrap();
        let alert_spans: Vec<_> = spans
            .iter()
            .filter(|s| matches!(s.kind, SpanKind::SloAlert { .. }))
            .collect();
        assert_eq!(alert_spans.len(), report.slo_alerts.len());
        assert!(alert_spans.iter().all(|s| !s.kind.is_leaf()));
        // A trivially met target: the same load fires nothing.
        let healthy = GemmService::new(pool(), config(Policy::FpmAware))
            .with_slo(policy(1e9))
            .run(generate(&small_mix()));
        assert!(healthy.slo_alerts.is_empty(), "{:?}", healthy.slo_alerts);
    }

    #[test]
    fn sched_spans_cover_every_dispatch() {
        use std::sync::Mutex;
        #[derive(Default)]
        struct Collect(Mutex<Vec<SpanRecord>>);
        impl EventSink for Collect {
            fn record(&self, span: SpanRecord) {
                self.0.lock().unwrap().push(span);
            }
        }
        let sink = Arc::new(Collect::default());
        let jobs: Vec<JobSpec> = (0..5).map(|i| job(i, 512, i as f64 * 0.01)).collect();
        let report = GemmService::new(pool(), config(Policy::FpmAware))
            .with_sink(Arc::clone(&sink) as Arc<dyn EventSink>)
            .run(jobs);
        let spans = sink.0.lock().unwrap();
        assert!(!spans.is_empty());
        let batches: std::collections::BTreeSet<u64> = spans
            .iter()
            .map(|s| match s.kind {
                SpanKind::Sched { batch, .. } => batch,
                ref other => panic!("unexpected span {other:?}"),
            })
            .collect();
        assert_eq!(batches.len() as u64, report.batches);
    }

    // ------------------------------------------------------------------
    // Durable runs: journaling, crash injection, recovery.
    // ------------------------------------------------------------------

    use summagen_durable::{decode_frames, GroupCommitConfig};

    fn fresh_journal() -> Journal {
        Journal::new(GroupCommitConfig::default())
    }

    /// Simulates a process restart: the crashed journal's durable bytes
    /// are reopened on their longest valid frame prefix.
    fn reopen(journal: Journal) -> Journal {
        let (bytes, _) = journal.into_durable();
        let valid = decode_frames(&bytes).valid_bytes;
        Journal::reopen(bytes, valid, GroupCommitConfig::default())
    }

    /// Runs the stream through crash/restart cycles (one drawn kill
    /// point per cycle, up to `max_cycles`) and then a final crash-free
    /// recovery that drains the rest. Returns the final journal and how
    /// many crashes actually fired.
    fn drain_with_crashes(
        jobs: &[JobSpec],
        cfg: ServiceConfig,
        seed: u64,
        max_cycles: u64,
    ) -> (Journal, u64) {
        let mut journal = fresh_journal();
        let mut crashes = 0u64;
        for cycle in 0.. {
            let spec = (cycle < max_cycles).then(|| CrashSpec::draw(seed, cycle, 16));
            let mut svc = GemmService::new(pool(), cfg);
            match svc.recover(journal, jobs.to_vec(), spec) {
                DurableRun::Finished(rep) => return (rep.journal, crashes),
                DurableRun::Crashed(c) => {
                    crashes += 1;
                    journal = reopen(c.journal);
                }
            }
        }
        unreachable!("the crash-free final cycle always finishes");
    }

    #[test]
    fn durable_run_without_crash_matches_the_plain_run() {
        let jobs = generate(&small_mix());
        let plain = GemmService::new(pool(), config(Policy::FpmAware)).run(jobs.clone());
        let out = GemmService::new(pool(), config(Policy::FpmAware)).run_durable(
            jobs,
            fresh_journal(),
            None,
        );
        let DurableRun::Finished(rep) = out else {
            panic!("no crash injector, must finish");
        };
        assert_eq!(
            rep.report.schedule_digest, plain.schedule_digest,
            "journaling must not perturb the schedule"
        );
        assert_eq!(rep.recovery.epoch, 0);
        let replayed = summagen_durable::replay(rep.journal.durable()).state;
        assert_eq!(
            replayed.completed.len() + replayed.failed.len(),
            plain.records.len(),
            "every accepted job's terminal outcome is durable"
        );
        assert!(replayed.queued.is_empty());
        assert!(replayed.in_flight.is_empty());
        assert_eq!(replayed.rejected.len(), plain.rejections.len());
    }

    #[test]
    fn crash_restart_cycles_complete_every_job_exactly_once() {
        let jobs = generate(&small_mix());
        let control = {
            let out = GemmService::new(pool(), config(Policy::FpmAware)).run_durable(
                jobs.clone(),
                fresh_journal(),
                None,
            );
            summagen_durable::replay(out.into_journal().durable()).state
        };
        let (journal, crashes) = drain_with_crashes(&jobs, config(Policy::FpmAware), 42, 64);
        assert!(
            crashes >= 3,
            "kill points should actually fire (got {crashes})"
        );
        let recovered = summagen_durable::replay(journal.durable()).state;
        let want: Vec<u64> = control.completed.keys().copied().collect();
        let got: Vec<u64> = recovered.completed.keys().copied().collect();
        assert_eq!(got, want, "a job was lost or duplicated across crashes");
        for (key, t) in &control.completed {
            assert_eq!(
                recovered.completed[key].digest, t.digest,
                "job {} did not reproduce bit-identically",
                t.job
            );
        }
        assert_eq!(
            recovered.failed.keys().collect::<Vec<_>>(),
            control.failed.keys().collect::<Vec<_>>()
        );
    }

    #[test]
    fn resubmissions_of_journaled_jobs_are_suppressed() {
        let jobs = generate(&small_mix());
        let out = GemmService::new(pool(), config(Policy::FpmAware)).run_durable(
            jobs.clone(),
            fresh_journal(),
            None,
        );
        let journal = out.into_journal();
        let known = summagen_durable::replay(journal.durable())
            .state
            .known_keys()
            .count();
        let out2 = GemmService::new(pool(), config(Policy::FpmAware)).recover(journal, jobs, None);
        let DurableRun::Finished(rep) = out2 else {
            panic!("no crash injector, must finish");
        };
        assert_eq!(rep.recovery.epoch, 1);
        assert_eq!(rep.recovery.suppressed_duplicates, known);
        assert!(
            rep.report
                .rejections
                .iter()
                .filter(|(_, r)| matches!(r, Rejection::Duplicate { .. }))
                .count()
                == known,
            "every known key bounces as a typed duplicate"
        );
        assert!(
            rep.report.records.is_empty(),
            "nothing re-ran: {:?}",
            rep.report.records.len()
        );
    }

    #[test]
    fn recovery_resumes_in_flight_work_from_its_checkpoint() {
        // Hand-build a crashed epoch's durable journal: job 1 was
        // mid-flight with a 0.5 checkpoint durable, job 2 queued.
        let mut j = fresh_journal();
        let j1 = job(1, 1024, 0.0);
        let j2 = job(2, 1024, 0.0);
        j.append(
            0.0,
            &JournalRecord::EpochStart {
                epoch: 0,
                resume_clock: 0.0,
                recovered_jobs: 0,
                suppressed_duplicates: 0,
            },
        );
        j.append(
            0.0,
            &JournalRecord::Admitted {
                at: 0.0,
                meta: job_meta(&j1),
            },
        );
        j.append(
            0.0,
            &JournalRecord::Admitted {
                at: 0.0,
                meta: job_meta(&j2),
            },
        );
        j.append(
            0.1,
            &JournalRecord::BatchStarted {
                at: 0.1,
                batch: 0,
                job_ids: vec![1],
                devices: vec![0],
            },
        );
        j.append(
            0.5,
            &JournalRecord::PanelCheckpoint {
                at: 0.5,
                job: 1,
                idempotency: j1.idempotency(),
                fraction: 0.5,
            },
        );
        j.commit(0.5);
        let journal = reopen(j);

        let mut svc = GemmService::new(pool(), config(Policy::FpmAware));
        let out = svc.recover(journal, Vec::new(), None);
        let DurableRun::Finished(rep) = out else {
            panic!("no crash injector, must finish");
        };
        assert_eq!(rep.recovery.epoch, 1);
        assert_eq!(rep.recovery.recovered_jobs, 2);
        assert_eq!(rep.recovery.resumed_from_checkpoint, 1);
        assert_eq!(rep.report.records.len(), 2);
        let r1 = rep.report.records.iter().find(|r| r.spec.id == 1).unwrap();
        let r2 = rep.report.records.iter().find(|r| r.spec.id == 2).unwrap();
        // The in-flight job re-enters at the queue front and re-runs
        // only its unfinished half.
        assert!(r1.start_time <= r2.start_time + EPS);
        assert!(r1.start_time >= rep.recovery.resume_clock - EPS);
        let d1 = r1.finish_time - r1.start_time;
        let d2 = r2.finish_time - r2.start_time;
        assert!(
            d1 < 0.6 * d2,
            "resumed job should run ~half as long: {d1} vs {d2}"
        );
    }

    #[test]
    fn mid_checkpoint_crash_falls_back_to_the_previous_durable_boundary() {
        // Arrange a crash that lands exactly on a checkpoint append.
        // The dropped checkpoint (and everything pending) is lost; the
        // job must recover at the best *durable* fraction — here 0.0,
        // the previous boundary being the start — and still complete
        // with the control digest.
        let jobs: Vec<JobSpec> = (0..4).map(|i| job(i, 512, i as f64 * 0.01)).collect();
        let control = {
            let out = GemmService::new(pool(), config(Policy::FpmAware)).run_durable(
                jobs.clone(),
                fresh_journal(),
                None,
            );
            summagen_durable::replay(out.into_journal().durable()).state
        };
        // Find an event index whose kill actually lands mid-checkpoint.
        let mut exercised = false;
        for at_event in 1..24u64 {
            let spec = CrashSpec {
                at_event,
                kind: CrashKind::MidCheckpoint,
            };
            let mut svc = GemmService::new(pool(), config(Policy::FpmAware));
            let out = svc.run_durable(jobs.clone(), fresh_journal(), Some(spec));
            let DurableRun::Crashed(c) = out else {
                continue;
            };
            assert_eq!(c.kind, CrashKind::MidCheckpoint);
            exercised = true;
            let journal = reopen(c.journal);
            let mut svc2 = GemmService::new(pool(), config(Policy::FpmAware));
            let out2 = svc2.recover(journal, jobs.clone(), None);
            let DurableRun::Finished(rep) = out2 else {
                panic!("crash-free recovery finishes");
            };
            let st = summagen_durable::replay(rep.journal.durable()).state;
            assert_eq!(
                st.completed.keys().collect::<Vec<_>>(),
                control.completed.keys().collect::<Vec<_>>()
            );
            for (key, t) in &control.completed {
                assert_eq!(st.completed[key].digest, t.digest);
            }
        }
        assert!(exercised, "no kill point landed on a checkpoint append");
    }
}
