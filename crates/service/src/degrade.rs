//! The degradation layer: what the service does when demand or faults
//! exceed capacity, instead of silently going non-linear.
//!
//! Four cooperating mechanisms, each individually optional and all off
//! by default (a [`DegradeConfig::default`] service behaves exactly like
//! the PR-7 service):
//!
//! * **Deadline-aware admission** — at submit, the paper-shape cost
//!   model plus the current queue backlog give an earliest feasible
//!   completion; a deadline job that cannot make it is rejected with
//!   [`crate::Rejection::DeadlineInfeasible`] instead of burning devices
//!   on work that is already dead.
//! * **Checkpoint preemption** — a long-running batch yields at the next
//!   panel boundary when an urgent high-tier job would otherwise wait;
//!   the preempted job's k-prefix is parked (the PR-3 `CheckpointStore`
//!   mechanism, surfaced as `summagen_core::PanelCheckpoint`) and the
//!   job resumes bit-identically later.
//! * **Device quarantine** — a per-device circuit breaker
//!   ([`CircuitBreaker`]) stops placing work on a device after repeated
//!   blamed faults, with capped exponential backoff and a half-open
//!   probe.
//! * **Brownout shedding** — when the queue-wait p95 crosses a
//!   threshold, the lowest tiers' deadline-less jobs are shed with typed
//!   rejections so the paying tiers' tails survive the overload.
//!
//! Everything here is pure state-machine code on the virtual clock: no
//! wall time, no randomness — the degradation decisions are as
//! deterministic as the schedule they protect.

use std::collections::VecDeque;

/// Knobs of the whole degradation layer. `None`/`false` everywhere (the
/// default) disables each mechanism independently.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DegradeConfig {
    /// Reject deadline jobs whose earliest feasible completion already
    /// overruns their deadline at submit time.
    pub deadline_admission: bool,
    /// Checkpoint preemption of running batches for urgent jobs.
    pub preemption: Option<PreemptionConfig>,
    /// Per-device circuit breakers.
    pub quarantine: Option<QuarantineConfig>,
    /// Brownout load shedding.
    pub brownout: Option<BrownoutConfig>,
}

impl DegradeConfig {
    /// All four mechanisms on with the tuned defaults — what
    /// `reproduce degrade` runs against the baseline.
    pub fn standard() -> Self {
        Self {
            deadline_admission: true,
            preemption: Some(PreemptionConfig::default()),
            quarantine: Some(QuarantineConfig::default()),
            brownout: Some(BrownoutConfig::default()),
        }
    }
}

/// Checkpoint-preemption knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PreemptionConfig {
    /// Minimum priority a queued job needs to trigger a preemption.
    pub min_priority: u8,
    /// A batch is only preempted when the urgent job would otherwise
    /// wait longer than this for a device (virtual seconds).
    pub min_wait: f64,
    /// Panel boundaries the running job's execution is divided into —
    /// the preemption granularity. Matches the panel count of the
    /// checkpointed executor the real backend runs.
    pub panels: usize,
    /// Virtual seconds a resumed job pays to restore its checkpoint
    /// (the rollback cost of the ABFT executor, service-side).
    pub resume_overhead: f64,
}

impl Default for PreemptionConfig {
    fn default() -> Self {
        Self {
            min_priority: 2,
            min_wait: 0.25,
            panels: 8,
            resume_overhead: 0.01,
        }
    }
}

/// Circuit-breaker knobs for device quarantine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuarantineConfig {
    /// Consecutive blamed failures that open the breaker.
    pub failure_threshold: u32,
    /// First open interval (virtual seconds); doubles per open.
    pub base_backoff: f64,
    /// Backoff ceiling (virtual seconds).
    pub max_backoff: f64,
}

impl Default for QuarantineConfig {
    fn default() -> Self {
        Self {
            failure_threshold: 3,
            base_backoff: 2.0,
            max_backoff: 60.0,
        }
    }
}

/// Brownout-shedding knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BrownoutConfig {
    /// Queue-wait p95 (virtual seconds) that activates the brownout.
    pub p95_threshold: f64,
    /// The brownout deactivates when p95 drops below
    /// `exit_fraction * p95_threshold` — hysteresis, so the shed/no-shed
    /// decision does not flap at the threshold.
    pub exit_fraction: f64,
    /// Queue waits the sliding p95 window holds.
    pub window: usize,
    /// Highest priority tier the brownout may shed (deadline-less jobs
    /// only; a job that carries a deadline was admitted as feasible and
    /// is never shed).
    pub max_shed_priority: u8,
}

impl Default for BrownoutConfig {
    fn default() -> Self {
        Self {
            p95_threshold: 8.0,
            exit_fraction: 0.7,
            window: 64,
            max_shed_priority: 0,
        }
    }
}

/// Circuit-breaker state, in the classic three positions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CircuitState {
    /// Healthy: the device is schedulable.
    Closed,
    /// Quarantined: no placements until the backoff expires.
    Open,
    /// Backoff expired: the device may take exactly one probe placement;
    /// success closes the breaker, a blamed failure re-opens it with
    /// doubled backoff.
    HalfOpen,
}

impl CircuitState {
    /// Stable label for artifacts and spans.
    pub fn label(&self) -> &'static str {
        match self {
            CircuitState::Closed => "closed",
            CircuitState::Open => "open",
            CircuitState::HalfOpen => "half-open",
        }
    }
}

/// One breaker transition, for the quarantine timeline artifact.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuarantineEvent {
    /// Pool index of the device.
    pub device: usize,
    /// Virtual instant of the transition.
    pub at: f64,
    /// State left.
    pub from: CircuitState,
    /// State entered.
    pub to: CircuitState,
}

/// Per-device circuit breaker: closed → open (capped exponential
/// backoff) → half-open probe → closed again, driven entirely by blamed
/// fault outcomes on the virtual clock.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    config: QuarantineConfig,
    state: CircuitState,
    /// Consecutive blamed failures while closed.
    consecutive_failures: u32,
    /// Instant the current open interval ends.
    open_until: f64,
    /// Times the breaker has opened (drives the exponential backoff).
    opens: u32,
}

impl CircuitBreaker {
    /// A closed breaker under `config`.
    pub fn new(config: QuarantineConfig) -> Self {
        Self {
            config,
            state: CircuitState::Closed,
            consecutive_failures: 0,
            open_until: 0.0,
            opens: 0,
        }
    }

    /// Current state, after resolving an expired open interval into
    /// half-open (the probe offer happens lazily, at observation time —
    /// there is no timer on a virtual clock).
    pub fn state(&mut self, now: f64) -> CircuitState {
        if self.state == CircuitState::Open && now >= self.open_until {
            self.state = CircuitState::HalfOpen;
        }
        self.state
    }

    /// Whether the scheduler may place work on the device at `now`
    /// (closed, or half-open for the probe).
    pub fn eligible(&mut self, now: f64) -> bool {
        self.state(now) != CircuitState::Open
    }

    /// Times the breaker has opened.
    pub fn opens(&self) -> u32 {
        self.opens
    }

    /// The open interval's end, while open.
    pub fn open_until(&self) -> f64 {
        self.open_until
    }

    /// Records a blamed failure at `now`. Returns the transition if the
    /// breaker opened (closed → open after the threshold, half-open →
    /// open immediately with doubled backoff).
    pub fn record_failure(&mut self, now: f64) -> Option<QuarantineTransition> {
        match self.state(now) {
            CircuitState::Closed => {
                self.consecutive_failures += 1;
                if self.consecutive_failures >= self.config.failure_threshold {
                    Some(self.open(now, CircuitState::Closed))
                } else {
                    None
                }
            }
            CircuitState::HalfOpen => Some(self.open(now, CircuitState::HalfOpen)),
            // Blame landing while open (a placement made before the
            // breaker opened can fail after): the quarantine already
            // covers it.
            CircuitState::Open => None,
        }
    }

    /// Records a successful execution on the device at `now`. Returns
    /// the transition if a half-open probe just closed the breaker.
    pub fn record_success(&mut self, now: f64) -> Option<QuarantineTransition> {
        self.consecutive_failures = 0;
        if self.state(now) == CircuitState::HalfOpen {
            self.state = CircuitState::Closed;
            Some(QuarantineTransition {
                from: CircuitState::HalfOpen,
                to: CircuitState::Closed,
                open_until: now,
            })
        } else {
            None
        }
    }

    fn open(&mut self, now: f64, from: CircuitState) -> QuarantineTransition {
        self.opens += 1;
        let backoff = (self.config.base_backoff * 2f64.powi(self.opens as i32 - 1))
            .min(self.config.max_backoff);
        self.state = CircuitState::Open;
        self.open_until = now + backoff;
        self.consecutive_failures = 0;
        QuarantineTransition {
            from,
            to: CircuitState::Open,
            open_until: self.open_until,
        }
    }
}

/// What a breaker transition looked like, for span/timeline emission.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuarantineTransition {
    /// State left.
    pub from: CircuitState,
    /// State entered.
    pub to: CircuitState,
    /// End of the open interval (== the transition instant for closes).
    pub open_until: f64,
}

/// Sliding window of queue waits with an exact nearest-rank p95 — the
/// brownout's activation signal. Same quantile convention as the
/// artifact summaries: sorted sample, nearest rank, no buckets.
#[derive(Debug, Clone)]
pub struct WaitWindow {
    waits: VecDeque<f64>,
    cap: usize,
}

impl WaitWindow {
    /// An empty window holding at most `cap` samples.
    pub fn new(cap: usize) -> Self {
        Self {
            waits: VecDeque::new(),
            cap: cap.max(1),
        }
    }

    /// Pushes one observed queue wait, evicting the oldest at capacity.
    pub fn push(&mut self, wait: f64) {
        if self.waits.len() == self.cap {
            self.waits.pop_front();
        }
        self.waits.push_back(wait);
    }

    /// Samples currently held.
    pub fn len(&self) -> usize {
        self.waits.len()
    }

    /// Whether the window is empty.
    pub fn is_empty(&self) -> bool {
        self.waits.is_empty()
    }

    /// Exact nearest-rank p95 of the window (0 when empty).
    pub fn p95(&self) -> f64 {
        if self.waits.is_empty() {
            return 0.0;
        }
        let mut sorted: Vec<f64> = self.waits.iter().copied().collect();
        sorted.sort_by(f64::total_cmp);
        let rank = ((0.95 * sorted.len() as f64).ceil() as usize).max(1);
        sorted[rank - 1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker() -> CircuitBreaker {
        CircuitBreaker::new(QuarantineConfig {
            failure_threshold: 3,
            base_backoff: 2.0,
            max_backoff: 6.0,
        })
    }

    #[test]
    fn breaker_opens_after_threshold_consecutive_failures() {
        let mut b = breaker();
        assert!(b.record_failure(0.0).is_none());
        assert!(b.record_failure(0.1).is_none());
        let t = b.record_failure(0.2).expect("third failure opens");
        assert_eq!(t.to, CircuitState::Open);
        assert_eq!(b.state(0.3), CircuitState::Open);
        assert!(!b.eligible(0.3));
        // Backoff is base_backoff on the first open.
        assert!((b.open_until() - 2.2).abs() < 1e-12);
    }

    #[test]
    fn success_resets_the_consecutive_count() {
        let mut b = breaker();
        b.record_failure(0.0);
        b.record_failure(0.1);
        b.record_success(0.2);
        // The streak restarts: two more failures do not open.
        assert!(b.record_failure(0.3).is_none());
        assert!(b.record_failure(0.4).is_none());
        assert!(b.record_failure(0.5).is_some());
    }

    #[test]
    fn open_decays_to_half_open_and_a_probe_success_closes() {
        let mut b = breaker();
        for t in 0..3 {
            b.record_failure(t as f64 * 0.1);
        }
        assert_eq!(b.state(1.0), CircuitState::Open);
        assert_eq!(b.state(2.3), CircuitState::HalfOpen);
        assert!(b.eligible(2.3), "half-open must admit the probe");
        let t = b.record_success(2.5).expect("probe success closes");
        assert_eq!(t.to, CircuitState::Closed);
        assert_eq!(b.state(2.6), CircuitState::Closed);
    }

    #[test]
    fn half_open_failure_reopens_with_doubled_capped_backoff() {
        let mut b = breaker();
        for t in 0..3 {
            b.record_failure(t as f64 * 0.1);
        }
        // First open: backoff 2.0, ends at 2.2.
        let t = b.record_failure(3.0).expect("half-open failure reopens");
        assert_eq!(t.from, CircuitState::HalfOpen);
        assert_eq!(t.to, CircuitState::Open);
        // Second open: backoff 4.0.
        assert!((b.open_until() - 7.0).abs() < 1e-12);
        let t = b.record_failure(8.0).expect("reopen again");
        // Third open: 8.0 capped to max_backoff 6.0.
        assert!((t.open_until - 14.0).abs() < 1e-12);
        assert_eq!(b.opens(), 3);
    }

    #[test]
    fn blame_while_open_is_absorbed() {
        let mut b = breaker();
        for t in 0..3 {
            b.record_failure(t as f64 * 0.1);
        }
        assert!(b.record_failure(0.5).is_none(), "already quarantined");
        assert_eq!(b.opens(), 1);
    }

    #[test]
    fn wait_window_p95_is_exact_nearest_rank() {
        let mut w = WaitWindow::new(100);
        for i in 1..=20 {
            w.push(i as f64);
        }
        // rank = ceil(0.95 * 20) = 19 → the 19th smallest.
        assert_eq!(w.p95(), 19.0);
        assert_eq!(w.len(), 20);
    }

    #[test]
    fn wait_window_evicts_oldest_at_capacity() {
        let mut w = WaitWindow::new(4);
        for i in 1..=8 {
            w.push(i as f64);
        }
        assert_eq!(w.len(), 4);
        // Window holds {5,6,7,8}; p95 rank = ceil(3.8) = 4 → 8.
        assert_eq!(w.p95(), 8.0);
    }

    #[test]
    fn default_config_disables_everything() {
        let d = DegradeConfig::default();
        assert!(!d.deadline_admission);
        assert!(d.preemption.is_none());
        assert!(d.quarantine.is_none());
        assert!(d.brownout.is_none());
        let s = DegradeConfig::standard();
        assert!(s.deadline_admission);
        assert!(s.preemption.is_some() && s.quarantine.is_some() && s.brownout.is_some());
    }
}
