//! The job vocabulary of the service: what tenants submit, why the
//! admission controller says no, and what the service reports back.

use std::fmt;

/// Service-global job identifier, assigned at submission in arrival
/// order. Stable across policies for the same load, which is what lets
/// the scheduler comparisons line jobs up one-to-one.
pub type JobId = u64;

/// One multiply request: `C = A × B` with square `n × n` operands.
///
/// Everything the admission controller and the scheduler consult is
/// here; the matrices themselves only materialize in real-execution mode
/// (seeded from `id`, so a job *is* its spec).
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Service-global identifier, assigned in submission order.
    pub id: JobId,
    /// Owning tenant (index into the load's tenant table).
    pub tenant: usize,
    /// Problem size: the multiply is `n × n` by `n × n`.
    pub n: usize,
    /// Scheduling priority; higher runs earlier under priority-aware
    /// policies. Ties broken by deadline, then submission order.
    pub priority: u8,
    /// Optional completion deadline on the service's virtual clock,
    /// seconds since service start. Purely advisory: the scheduler
    /// orders by urgency but never drops a late job.
    pub deadline: Option<f64>,
    /// Virtual-clock arrival time, seconds since service start.
    pub submit_time: f64,
}

impl JobSpec {
    /// Total useful floating-point work of the multiply (`2·n³`).
    pub fn flops(&self) -> f64 {
        2.0 * (self.n as f64).powi(3)
    }

    /// The job's idempotency key: a stable hash of the fields that
    /// identify "the same request" across resubmissions (id, tenant,
    /// size). A client retrying after a crash resends the same spec, so
    /// equal keys mean the same logical job — the durability layer
    /// suppresses the duplicate and the job completes exactly once.
    pub fn idempotency(&self) -> u64 {
        summagen_durable::idempotency_key(self.id, self.tenant as u32, self.n as u32)
    }
}

/// Why the admission controller refused (or shed) a job. Typed so
/// callers (and tests) can gate on the exact reason, and labelled for
/// the per-tenant rejection counters. The degradation variants carry
/// the tenant and the numbers that justified the decision, so a
/// rejection message names exactly what the submitter can act on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Rejection {
    /// The bounded queue is at capacity; backpressure the submitter.
    QueueFull {
        /// The configured bound the queue sits at.
        capacity: usize,
    },
    /// The tenant already has its full quota of jobs in the queue.
    QuotaExceeded {
        /// The per-tenant bound the tenant sits at.
        quota: usize,
    },
    /// The job is larger than the service accepts.
    TooLarge {
        /// The configured size ceiling.
        max_n: usize,
    },
    /// Deadline-aware admission: the earliest feasible completion
    /// already overruns the job's deadline, so running it would only
    /// burn devices on work that is dead on arrival.
    DeadlineInfeasible {
        /// Owning tenant of the refused job.
        tenant: usize,
        /// The deadline the job carried (virtual seconds).
        deadline: f64,
        /// The earliest completion the cost model plus backlog allows.
        estimated_completion: f64,
    },
    /// Brownout load shedding: queue-wait p95 crossed the configured
    /// threshold and this deadline-less low-tier job was dropped to
    /// protect the paying tiers' tails.
    Shed {
        /// Owning tenant of the shed job.
        tenant: usize,
        /// The queue-wait p95 that activated the brownout.
        queue_wait_p95: f64,
        /// The configured activation threshold.
        threshold: f64,
    },
    /// Resubmission suppression after a crash-restart: the journal
    /// already holds durable state for a job with this idempotency key
    /// (queued, running, or terminal), so accepting the resubmission
    /// would risk completing the same logical job twice.
    Duplicate {
        /// The idempotency key the resubmission collided on.
        idempotency: u64,
    },
}

impl Rejection {
    /// Stable label for metrics and artifacts.
    pub fn label(&self) -> &'static str {
        match self {
            Rejection::QueueFull { .. } => "queue-full",
            Rejection::QuotaExceeded { .. } => "quota-exceeded",
            Rejection::TooLarge { .. } => "too-large",
            Rejection::DeadlineInfeasible { .. } => "deadline-infeasible",
            Rejection::Shed { .. } => "shed",
            Rejection::Duplicate { .. } => "duplicate",
        }
    }
}

impl fmt::Display for Rejection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rejection::QueueFull { capacity } => {
                write!(f, "queue full (capacity {capacity})")
            }
            Rejection::QuotaExceeded { quota } => {
                write!(f, "tenant quota exceeded (quota {quota})")
            }
            Rejection::TooLarge { max_n } => {
                write!(f, "job too large (max n {max_n})")
            }
            Rejection::DeadlineInfeasible {
                tenant,
                deadline,
                estimated_completion,
            } => write!(
                f,
                "deadline infeasible for tenant {tenant}: deadline {deadline:.3}s, \
                 earliest feasible completion {estimated_completion:.3}s"
            ),
            Rejection::Shed {
                tenant,
                queue_wait_p95,
                threshold,
            } => write!(
                f,
                "shed under brownout for tenant {tenant}: queue-wait p95 \
                 {queue_wait_p95:.3}s over threshold {threshold:.3}s"
            ),
            Rejection::Duplicate { idempotency } => write!(
                f,
                "duplicate resubmission of journaled job (idempotency key {idempotency:#018x})"
            ),
        }
    }
}

/// How an accepted job ended.
#[derive(Debug, Clone, PartialEq)]
pub enum JobOutcome {
    /// The multiply finished (possibly after shrink-and-retry recovery).
    Completed,
    /// The multiply could not be completed within the retry budget.
    Failed {
        /// Human-readable terminal cause.
        reason: String,
    },
}

impl JobOutcome {
    /// Stable label for metrics and artifacts.
    pub fn label(&self) -> &'static str {
        match self {
            JobOutcome::Completed => "completed",
            JobOutcome::Failed { .. } => "failed",
        }
    }
}

/// How an accepted job's deadline resolved — a *typed* verdict, stamped
/// on every record, so an admitted deadline job is never silently late:
/// it either met its deadline or carries an explicit miss with the
/// overrun.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DeadlineVerdict {
    /// The job was submitted without a deadline.
    NoDeadline,
    /// Finished at or before its deadline.
    Met,
    /// Finished late; `late_by` is the overrun in virtual seconds.
    Missed {
        /// How far past the deadline the job finished.
        late_by: f64,
    },
}

impl DeadlineVerdict {
    /// The verdict for a job with `deadline` finishing at `finish_time`.
    pub fn of(deadline: Option<f64>, finish_time: f64) -> Self {
        match deadline {
            None => DeadlineVerdict::NoDeadline,
            Some(d) if finish_time <= d => DeadlineVerdict::Met,
            Some(d) => DeadlineVerdict::Missed {
                late_by: finish_time - d,
            },
        }
    }

    /// Stable label for metrics and artifacts.
    pub fn label(&self) -> &'static str {
        match self {
            DeadlineVerdict::NoDeadline => "no-deadline",
            DeadlineVerdict::Met => "met",
            DeadlineVerdict::Missed { .. } => "missed",
        }
    }
}

/// The full service-side record of one accepted job, written when the
/// job leaves the system.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRecord {
    /// The job as submitted.
    pub spec: JobSpec,
    /// When the scheduler dispatched it (virtual seconds). For a
    /// preempted job, the dispatch that finished the work.
    pub start_time: f64,
    /// When it completed or failed (virtual seconds).
    pub finish_time: f64,
    /// Devices (pool indices) the job ran on.
    pub devices: Vec<usize>,
    /// Partition shape label the placement used.
    pub shape: &'static str,
    /// Batch the job was dispatched in (batch ids are per-run dense).
    pub batch: u64,
    /// Executions performed: 1 = no failure, >1 = shrink-and-retry.
    pub attempts: usize,
    /// Times the job was checkpoint-preempted before finishing.
    pub preemptions: usize,
    /// How its deadline resolved.
    pub deadline: DeadlineVerdict,
    /// How it ended.
    pub outcome: JobOutcome,
}

impl JobRecord {
    /// Sojourn time: submission to completion (virtual seconds).
    pub fn latency(&self) -> f64 {
        self.finish_time - self.spec.submit_time
    }

    /// Time spent queued before dispatch (virtual seconds).
    pub fn queue_wait(&self) -> f64 {
        self.start_time - self.spec.submit_time
    }

    /// Whether the job finished past its deadline.
    pub fn missed_deadline(&self) -> bool {
        matches!(self.deadline, DeadlineVerdict::Missed { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(n: usize) -> JobSpec {
        JobSpec {
            id: 7,
            tenant: 0,
            n,
            priority: 1,
            deadline: Some(4.0),
            submit_time: 1.0,
        }
    }

    #[test]
    fn flops_is_two_n_cubed() {
        assert_eq!(job(10).flops(), 2000.0);
    }

    #[test]
    fn rejection_labels_are_stable() {
        assert_eq!(Rejection::QueueFull { capacity: 8 }.label(), "queue-full");
        assert_eq!(
            Rejection::QuotaExceeded { quota: 2 }.label(),
            "quota-exceeded"
        );
        assert_eq!(Rejection::TooLarge { max_n: 4096 }.label(), "too-large");
        assert!(Rejection::QueueFull { capacity: 8 }
            .to_string()
            .contains("capacity 8"));
        assert_eq!(
            Rejection::DeadlineInfeasible {
                tenant: 2,
                deadline: 4.0,
                estimated_completion: 9.5,
            }
            .label(),
            "deadline-infeasible"
        );
        assert_eq!(
            Rejection::Shed {
                tenant: 0,
                queue_wait_p95: 12.0,
                threshold: 8.0,
            }
            .label(),
            "shed"
        );
        assert_eq!(Rejection::Duplicate { idempotency: 7 }.label(), "duplicate");
        assert!(Rejection::Duplicate { idempotency: 7 }
            .to_string()
            .contains("0x0000000000000007"));
    }

    #[test]
    fn idempotency_key_depends_on_identity_fields_only() {
        let a = job(64);
        let mut b = a.clone();
        b.submit_time = 99.0; // resubmission after a crash: later clock
        b.deadline = None;
        assert_eq!(a.idempotency(), b.idempotency());
        let mut c = a.clone();
        c.n = 65;
        assert_ne!(a.idempotency(), c.idempotency());
    }

    #[test]
    fn degradation_rejections_name_tenant_and_numbers() {
        let d = Rejection::DeadlineInfeasible {
            tenant: 2,
            deadline: 4.0,
            estimated_completion: 9.5,
        }
        .to_string();
        assert!(d.contains("tenant 2"), "{d}");
        assert!(d.contains("4.000"), "{d}");
        assert!(d.contains("9.500"), "{d}");
        let s = Rejection::Shed {
            tenant: 0,
            queue_wait_p95: 12.25,
            threshold: 8.0,
        }
        .to_string();
        assert!(s.contains("tenant 0"), "{s}");
        assert!(s.contains("12.250"), "{s}");
        assert!(s.contains("8.000"), "{s}");
    }

    #[test]
    fn deadline_verdicts_resolve_exactly() {
        assert_eq!(DeadlineVerdict::of(None, 5.0), DeadlineVerdict::NoDeadline);
        assert_eq!(DeadlineVerdict::of(Some(5.0), 5.0), DeadlineVerdict::Met);
        assert_eq!(
            DeadlineVerdict::of(Some(4.0), 5.5),
            DeadlineVerdict::Missed { late_by: 1.5 }
        );
        assert_eq!(DeadlineVerdict::Met.label(), "met");
        assert_eq!(DeadlineVerdict::NoDeadline.label(), "no-deadline");
        assert_eq!(DeadlineVerdict::Missed { late_by: 1.0 }.label(), "missed");
    }

    #[test]
    fn record_derives_latency_and_deadline_miss() {
        let rec = JobRecord {
            spec: job(16),
            start_time: 2.0,
            finish_time: 5.0,
            devices: vec![1],
            shape: "1d-rectangular",
            batch: 0,
            attempts: 1,
            preemptions: 0,
            deadline: DeadlineVerdict::of(Some(4.0), 5.0),
            outcome: JobOutcome::Completed,
        };
        assert_eq!(rec.latency(), 4.0);
        assert_eq!(rec.queue_wait(), 1.0);
        assert!(rec.missed_deadline());
    }
}
