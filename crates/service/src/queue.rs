//! Bounded admission: the job queue, its capacity and per-tenant quotas,
//! and the typed backpressure it pushes back on submitters.
//!
//! The queue is the *only* buffer in the service — a job is either
//! rejected at the door with a [`Rejection`], sitting here, or running on
//! the device pool. Admission is checked in a fixed order (size, then
//! tenant quota, then capacity), so a given job always bounces for the
//! same reason regardless of what else is queued.

use std::collections::VecDeque;

use crate::job::{JobSpec, Rejection};

/// Admission-control bounds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionConfig {
    /// Maximum jobs queued at once (running jobs do not count).
    pub queue_capacity: usize,
    /// Maximum queued jobs per tenant.
    pub per_tenant_quota: usize,
    /// Largest accepted problem size.
    pub max_n: usize,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        Self {
            queue_capacity: 256,
            per_tenant_quota: 64,
            max_n: 16_384,
        }
    }
}

/// The bounded multi-tenant job queue.
#[derive(Debug)]
pub struct JobQueue {
    config: AdmissionConfig,
    jobs: VecDeque<JobSpec>,
    /// Queued-job count per tenant index (grown on demand).
    tenant_counts: Vec<usize>,
    /// High-water mark of the queue depth, for the gauge.
    peak_depth: usize,
}

impl JobQueue {
    /// An empty queue under the given bounds.
    pub fn new(config: AdmissionConfig) -> Self {
        Self {
            config,
            jobs: VecDeque::new(),
            tenant_counts: Vec::new(),
            peak_depth: 0,
        }
    }

    /// The admission bounds.
    pub fn config(&self) -> &AdmissionConfig {
        &self.config
    }

    /// Jobs currently queued.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Deepest the queue has ever been.
    pub fn peak_depth(&self) -> usize {
        self.peak_depth
    }

    /// Queued jobs of one tenant.
    pub fn tenant_depth(&self, tenant: usize) -> usize {
        self.tenant_counts.get(tenant).copied().unwrap_or(0)
    }

    /// Admits a job or rejects it with the typed reason. Checks are
    /// ordered size → quota → capacity, so the reported reason is
    /// deterministic.
    pub fn offer(&mut self, job: JobSpec) -> Result<(), Rejection> {
        if job.n > self.config.max_n {
            return Err(Rejection::TooLarge {
                max_n: self.config.max_n,
            });
        }
        if self.tenant_depth(job.tenant) >= self.config.per_tenant_quota {
            return Err(Rejection::QuotaExceeded {
                quota: self.config.per_tenant_quota,
            });
        }
        if self.jobs.len() >= self.config.queue_capacity {
            return Err(Rejection::QueueFull {
                capacity: self.config.queue_capacity,
            });
        }
        if self.tenant_counts.len() <= job.tenant {
            self.tenant_counts.resize(job.tenant + 1, 0);
        }
        self.tenant_counts[job.tenant] += 1;
        self.jobs.push_back(job);
        self.peak_depth = self.peak_depth.max(self.jobs.len());
        Ok(())
    }

    /// Removes and returns the job at `index` (0 = head / oldest).
    ///
    /// # Panics
    /// Panics if `index` is out of bounds — the scheduler only asks for
    /// indices it just observed.
    pub fn take(&mut self, index: usize) -> JobSpec {
        let job = self.jobs.remove(index).expect("queue index in bounds");
        self.tenant_counts[job.tenant] -= 1;
        job
    }

    /// Returns a *preempted* job to the head of the queue, bypassing the
    /// admission bounds. A preempted job was already admitted once — a
    /// second admission check could reject it, and the conservation
    /// invariant (every accepted job completes, fails, or is explicitly
    /// rejected, exactly once) forbids losing it to its own preemption.
    /// The quota slot is re-held so the tenant's queue depth stays
    /// truthful; the capacity bound may transiently overshoot, which the
    /// peak-depth gauge deliberately records.
    pub fn requeue_front(&mut self, job: JobSpec) {
        if self.tenant_counts.len() <= job.tenant {
            self.tenant_counts.resize(job.tenant + 1, 0);
        }
        self.tenant_counts[job.tenant] += 1;
        self.jobs.push_front(job);
        self.peak_depth = self.peak_depth.max(self.jobs.len());
    }

    /// Re-enters a *recovered* job at the tail of the queue, bypassing
    /// the admission bounds. Crash recovery replays jobs the journal
    /// proves were admitted before the crash — re-running admission
    /// could reject them (the restart order differs from the arrival
    /// order), and the exactly-once invariant forbids losing a job to
    /// its own recovery. The quota slot is re-held so tenant depths
    /// stay truthful.
    pub fn preload_back(&mut self, job: JobSpec) {
        if self.tenant_counts.len() <= job.tenant {
            self.tenant_counts.resize(job.tenant + 1, 0);
        }
        self.tenant_counts[job.tenant] += 1;
        self.jobs.push_back(job);
        self.peak_depth = self.peak_depth.max(self.jobs.len());
    }

    /// Removes and returns every queued job `pred` matches, preserving
    /// order — the brownout's shed sweep. Quota slots are released.
    pub fn drain_matching(&mut self, pred: impl Fn(&JobSpec) -> bool) -> Vec<JobSpec> {
        let mut kept = VecDeque::with_capacity(self.jobs.len());
        let mut shed = Vec::new();
        for job in self.jobs.drain(..) {
            if pred(&job) {
                self.tenant_counts[job.tenant] -= 1;
                shed.push(job);
            } else {
                kept.push_back(job);
            }
        }
        self.jobs = kept;
        shed
    }

    /// The queued jobs in arrival order, for the scheduler to inspect.
    pub fn iter(&self) -> impl Iterator<Item = &JobSpec> {
        self.jobs.iter()
    }

    /// Index of the queued job the given urgency key ranks first, or
    /// `None` on an empty queue. The key orders descending (larger =
    /// more urgent); ties resolve to the earliest-submitted job, which
    /// keeps every policy deterministic.
    pub fn most_urgent_by<K: PartialOrd>(&self, key: impl Fn(&JobSpec) -> K) -> Option<usize> {
        let mut best: Option<(usize, K)> = None;
        for (i, job) in self.jobs.iter().enumerate() {
            let k = key(job);
            let better = match &best {
                None => true,
                Some((_, bk)) => k.partial_cmp(bk) == Some(std::cmp::Ordering::Greater),
            };
            if better {
                best = Some((i, k));
            }
        }
        best.map(|(i, _)| i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(id: u64, tenant: usize, n: usize) -> JobSpec {
        JobSpec {
            id,
            tenant,
            n,
            priority: 0,
            deadline: None,
            submit_time: id as f64,
        }
    }

    fn small_config() -> AdmissionConfig {
        AdmissionConfig {
            queue_capacity: 3,
            per_tenant_quota: 2,
            max_n: 100,
        }
    }

    #[test]
    fn admits_until_capacity_then_backpressures() {
        let mut q = JobQueue::new(small_config());
        assert!(q.offer(job(0, 0, 10)).is_ok());
        assert!(q.offer(job(1, 1, 10)).is_ok());
        assert!(q.offer(job(2, 2, 10)).is_ok());
        assert_eq!(
            q.offer(job(3, 3, 10)),
            Err(Rejection::QueueFull { capacity: 3 })
        );
        assert_eq!(q.len(), 3);
        assert_eq!(q.peak_depth(), 3);
    }

    #[test]
    fn enforces_per_tenant_quota_before_capacity() {
        let mut q = JobQueue::new(small_config());
        assert!(q.offer(job(0, 0, 10)).is_ok());
        assert!(q.offer(job(1, 0, 10)).is_ok());
        // Tenant 0 is at quota even though the queue has room.
        assert_eq!(
            q.offer(job(2, 0, 10)),
            Err(Rejection::QuotaExceeded { quota: 2 })
        );
        // Another tenant still fits.
        assert!(q.offer(job(3, 1, 10)).is_ok());
    }

    #[test]
    fn rejects_oversized_jobs_first() {
        let mut q = JobQueue::new(small_config());
        // Size is checked before quota/capacity: even an empty queue
        // bounces an oversized job as TooLarge.
        assert_eq!(
            q.offer(job(0, 0, 101)),
            Err(Rejection::TooLarge { max_n: 100 })
        );
        assert!(q.is_empty());
    }

    #[test]
    fn take_releases_quota() {
        let mut q = JobQueue::new(small_config());
        q.offer(job(0, 0, 10)).unwrap();
        q.offer(job(1, 0, 10)).unwrap();
        let taken = q.take(0);
        assert_eq!(taken.id, 0);
        assert_eq!(q.tenant_depth(0), 1);
        // Quota freed: tenant 0 fits again.
        assert!(q.offer(job(2, 0, 10)).is_ok());
    }

    #[test]
    fn requeue_front_bypasses_bounds_and_goes_first() {
        let mut q = JobQueue::new(small_config());
        q.offer(job(0, 0, 10)).unwrap();
        q.offer(job(1, 0, 10)).unwrap();
        // Tenant 0 is at quota; a preempted job still goes back in, at
        // the head.
        q.requeue_front(job(9, 0, 10));
        assert_eq!(q.len(), 3);
        assert_eq!(q.tenant_depth(0), 3);
        assert_eq!(q.iter().next().unwrap().id, 9);
        assert_eq!(q.take(0).id, 9);
        assert_eq!(q.tenant_depth(0), 2);
    }

    #[test]
    fn preload_back_bypasses_bounds_and_keeps_order() {
        let mut q = JobQueue::new(small_config());
        q.offer(job(0, 0, 10)).unwrap();
        q.offer(job(1, 0, 10)).unwrap();
        // Tenant 0 is at quota; a recovered job still re-enters, at the
        // tail (recovery preserves admission order).
        q.preload_back(job(9, 0, 10));
        assert_eq!(q.len(), 3);
        assert_eq!(q.tenant_depth(0), 3);
        assert_eq!(q.iter().last().unwrap().id, 9);
    }

    #[test]
    fn drain_matching_releases_quota_and_preserves_order() {
        let mut q = JobQueue::new(AdmissionConfig::default());
        q.offer(job(0, 0, 10)).unwrap();
        q.offer(job(1, 1, 10)).unwrap();
        q.offer(job(2, 0, 10)).unwrap();
        let shed = q.drain_matching(|j| j.tenant == 0);
        assert_eq!(shed.iter().map(|j| j.id).collect::<Vec<_>>(), vec![0, 2]);
        assert_eq!(q.len(), 1);
        assert_eq!(q.tenant_depth(0), 0);
        assert_eq!(q.tenant_depth(1), 1);
    }

    #[test]
    fn most_urgent_prefers_earliest_on_ties() {
        let mut q = JobQueue::new(AdmissionConfig::default());
        q.offer(job(0, 0, 10)).unwrap();
        q.offer(job(1, 0, 10)).unwrap();
        q.offer(job(2, 0, 20)).unwrap();
        // Priority key is equal for 0 and 1: the earlier submission wins.
        assert_eq!(q.most_urgent_by(|j| j.priority), Some(0));
        // Size key singles out job 2.
        assert_eq!(q.most_urgent_by(|j| j.n), Some(2));
    }
}
