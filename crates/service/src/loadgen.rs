//! Seeded load generation: tenants, arrival processes, and the named
//! mixes the `reproduce serve` artifacts are built from.
//!
//! Arrivals are a Poisson process (exponential inter-arrival times drawn
//! from a seeded splitmix stream); job sizes, priorities, and deadlines
//! are per-tenant draws from the mix's tenant table. Everything is a
//! pure function of the seed, so the same mix generates byte-identical
//! job streams run-to-run — the determinism the load artifacts and the
//! same-seed-same-schedule tests are built on.

use rand::prelude::*;
use rand::Rng;

use crate::job::JobSpec;

/// One tenant's traffic profile within a mix.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantProfile {
    /// Tenant name (the `tenant` label of every exported series).
    pub name: &'static str,
    /// Relative share of the job stream this tenant submits.
    pub weight: f64,
    /// Problem sizes the tenant draws from, uniformly.
    pub sizes: Vec<usize>,
    /// Priority all this tenant's jobs carry.
    pub priority: u8,
    /// Deadline slack: a job of estimated solo duration `d` gets
    /// `deadline = submit + slack · d`; `None` submits without deadlines.
    pub deadline_slack: Option<f64>,
}

/// A complete load mix: tenants plus the arrival process.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadMix {
    /// Mix name (the `LOAD_<mix>.json` artifact stem).
    pub name: &'static str,
    /// The tenant table; `JobSpec::tenant` indexes into it.
    pub tenants: Vec<TenantProfile>,
    /// Mean arrival rate, jobs per virtual second (Poisson).
    pub arrival_rate: f64,
    /// Total jobs to generate.
    pub jobs: usize,
    /// Seed of the whole stream.
    pub seed: u64,
}

impl LoadMix {
    /// Tenant names in table order.
    pub fn tenant_names(&self) -> Vec<&'static str> {
        self.tenants.iter().map(|t| t.name).collect()
    }
}

/// The small smoke mix: a few hundred jobs, sizes that stay cheap to
/// plan, suitable for tests and the CI load job.
pub fn small_mix() -> LoadMix {
    LoadMix {
        name: "small",
        tenants: vec![
            TenantProfile {
                name: "free",
                weight: 3.0,
                sizes: vec![256, 384, 512],
                priority: 0,
                deadline_slack: None,
            },
            TenantProfile {
                name: "pro",
                weight: 2.0,
                sizes: vec![512, 768, 1024],
                priority: 1,
                deadline_slack: Some(20.0),
            },
            TenantProfile {
                name: "enterprise",
                weight: 1.0,
                sizes: vec![1024, 2048],
                priority: 2,
                deadline_slack: Some(10.0),
            },
        ],
        arrival_rate: 120.0,
        jobs: 240,
        seed: 42,
    }
}

/// The heterogeneous soak mix: hundreds of concurrent jobs spanning a
/// 16× size range — the workload where FPM-aware placement visibly beats
/// FIFO (small jobs pack onto single devices in parallel, large jobs get
/// speed-proportional splits). The arrival rate is tuned to mild
/// transient overload — queues build and drain, so placement quality
/// shows up in tail latency — without tipping into permanent
/// saturation, where every policy degrades into admission control and
/// the comparison collapses into rejection counts.
pub fn hetero_mix() -> LoadMix {
    LoadMix {
        name: "hetero",
        tenants: vec![
            TenantProfile {
                name: "free",
                weight: 6.0,
                sizes: vec![256, 512, 768],
                priority: 0,
                deadline_slack: None,
            },
            TenantProfile {
                name: "pro",
                weight: 3.0,
                sizes: vec![1024, 1536, 2048],
                priority: 1,
                deadline_slack: Some(30.0),
            },
            TenantProfile {
                name: "enterprise",
                weight: 1.0,
                sizes: vec![3072, 4096],
                priority: 2,
                deadline_slack: Some(15.0),
            },
        ],
        arrival_rate: 48.0,
        jobs: 600,
        seed: 1_000,
    }
}

/// Looks a named mix up (`small`, `hetero`).
pub fn mix_by_name(name: &str) -> Option<LoadMix> {
    match name {
        "small" => Some(small_mix()),
        "hetero" => Some(hetero_mix()),
        _ => None,
    }
}

/// Generates the job stream of a mix: Poisson arrivals, weighted tenant
/// draws, per-tenant uniform size draws. Pure function of the mix.
pub fn generate(mix: &LoadMix) -> Vec<JobSpec> {
    assert!(!mix.tenants.is_empty(), "mix needs tenants");
    assert!(mix.arrival_rate > 0.0, "arrival rate must be positive");
    let mut rng = StdRng::seed_from_u64(mix.seed);
    let total_weight: f64 = mix.tenants.iter().map(|t| t.weight).sum();
    let mut now = 0.0f64;
    let mut jobs = Vec::with_capacity(mix.jobs);
    for id in 0..mix.jobs as u64 {
        // Exponential inter-arrival: -ln(U)/λ with U in (0, 1].
        let u: f64 = 1.0 - rng.random_range(0.0..1.0);
        now += -u.ln() / mix.arrival_rate;
        // Weighted tenant draw.
        let mut pick = rng.random_range(0.0..total_weight);
        let mut tenant = 0;
        for (i, t) in mix.tenants.iter().enumerate() {
            if pick < t.weight {
                tenant = i;
                break;
            }
            pick -= t.weight;
        }
        let profile = &mix.tenants[tenant];
        let n = profile.sizes[rng.random_range(0..profile.sizes.len())];
        // Deadline slack is expressed in units of the job's ideal solo
        // time on a 1 TFLOP/s device — a size-aware budget without
        // consulting the pool (the generator must not depend on it).
        let deadline = profile
            .deadline_slack
            .map(|slack| now + slack * (2.0 * (n as f64).powi(3) / 1e12));
        jobs.push(JobSpec {
            id,
            tenant,
            n,
            priority: profile.priority,
            deadline,
            submit_time: now,
        });
    }
    jobs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let mix = small_mix();
        assert_eq!(generate(&mix), generate(&mix));
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = small_mix();
        let mut b = small_mix();
        a.seed = 1;
        b.seed = 2;
        assert_ne!(generate(&a), generate(&b));
    }

    #[test]
    fn arrivals_are_monotone_and_sized_from_profiles() {
        let mix = hetero_mix();
        let jobs = generate(&mix);
        assert_eq!(jobs.len(), mix.jobs);
        for w in jobs.windows(2) {
            assert!(w[1].submit_time >= w[0].submit_time);
        }
        for j in &jobs {
            let profile = &mix.tenants[j.tenant];
            assert!(profile.sizes.contains(&j.n), "size {} not in profile", j.n);
            assert_eq!(j.priority, profile.priority);
            assert_eq!(j.deadline.is_some(), profile.deadline_slack.is_some());
        }
    }

    #[test]
    fn every_tenant_appears_in_a_long_stream() {
        let jobs = generate(&hetero_mix());
        for t in 0..3 {
            assert!(
                jobs.iter().any(|j| j.tenant == t),
                "tenant {t} never submitted"
            );
        }
    }

    #[test]
    fn mix_lookup_knows_both_names() {
        assert_eq!(mix_by_name("small").unwrap().name, "small");
        assert_eq!(mix_by_name("hetero").unwrap().name, "hetero");
        assert!(mix_by_name("nope").is_none());
    }
}
