//! Placement: which devices a job runs on, under which partition shape,
//! and when — the seat of the FPM-aware scheduling the service exists to
//! demonstrate.
//!
//! Three policies share one planning interface:
//!
//! * **FIFO** — every job takes the whole pool in arrival order, split
//!   into *equal* areas (the CPM assumption: all devices alike). The
//!   naive baseline: heterogeneity hurts it twice, once because the
//!   slowest device gates every job and once because jobs serialize.
//! * **Round-robin** — each job runs whole on one device, cycling
//!   through the pool. Parallel across jobs but speed- and size-blind: a
//!   large job landing on the slowest device stalls its whole lane.
//! * **FPM-aware** — for each job, every device subset is costed with
//!   the pool's functional performance models: areas proportional to
//!   speed-at-assigned-area, per-device compute time `2·a_i·n/s_i(a_i)`,
//!   Hockney broadcast cost from the partition's half-perimeters, and
//!   the subset's current availability. The placement minimizing the
//!   predicted completion instant wins; three-device subsets also pick
//!   the best of the paper's partition shapes.

use std::str::FromStr;
use std::sync::Arc;

use summagen_partition::{
    beaumont_column_layout, proportional_areas, CostSummary, PartitionSpec, Shape, ALL_FOUR_SHAPES,
};
use summagen_platform::{Platform, SpeedFunction};

use crate::job::JobSpec;

/// Scheduling policy selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Policy {
    /// Whole pool, equal split, arrival order.
    Fifo,
    /// One device per job, cycling.
    RoundRobin,
    /// Speed-function-aware subset + shape selection.
    #[default]
    FpmAware,
}

impl Policy {
    /// Stable label for artifacts, metrics, and span records.
    pub fn name(&self) -> &'static str {
        match self {
            Policy::Fifo => "fifo",
            Policy::RoundRobin => "round-robin",
            Policy::FpmAware => "fpm-aware",
        }
    }

    /// The three policies in comparison order (baselines first).
    pub const ALL: [Policy; 3] = [Policy::Fifo, Policy::RoundRobin, Policy::FpmAware];
}

impl FromStr for Policy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "fifo" => Ok(Policy::Fifo),
            "rr" | "round-robin" => Ok(Policy::RoundRobin),
            "fpm" | "fpm-aware" => Ok(Policy::FpmAware),
            other => Err(format!(
                "unknown policy '{other}'; expected fifo, rr, or fpm"
            )),
        }
    }
}

/// One device of the shared pool, with its availability horizon.
pub struct PoolDevice {
    /// Human-readable name (from the platform's device spec).
    pub name: &'static str,
    /// The device's functional performance model.
    pub speed: Arc<dyn SpeedFunction>,
    /// Virtual instant the device finishes everything dispatched to it.
    pub busy_until: f64,
    /// Total virtual seconds of dispatched occupancy, for utilization.
    pub busy_seconds: f64,
}

/// The shared device pool every job is placed onto.
pub struct DevicePool {
    devices: Vec<PoolDevice>,
    /// Hockney latency of the pool's links, seconds.
    pub alpha: f64,
    /// Hockney reciprocal bandwidth, seconds/byte.
    pub beta: f64,
    rr_cursor: usize,
    /// Per-device schedulability, set by the quarantine layer before
    /// each dispatch round. All-true without quarantine.
    eligible: Vec<bool>,
}

impl DevicePool {
    /// Builds a pool from a platform's abstract processors and a Hockney
    /// link model.
    pub fn from_platform(platform: &Platform, alpha: f64, beta: f64) -> Self {
        let devices: Vec<PoolDevice> = platform
            .processors
            .iter()
            .map(|p| PoolDevice {
                name: p.spec.name,
                speed: Arc::clone(&p.speed),
                busy_until: 0.0,
                busy_seconds: 0.0,
            })
            .collect();
        let eligible = vec![true; devices.len()];
        Self {
            devices,
            alpha,
            beta,
            rr_cursor: 0,
            eligible,
        }
    }

    /// Number of devices.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// Whether the pool is empty (it never is — platforms require at
    /// least one processor).
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// The devices, in pool order.
    pub fn devices(&self) -> &[PoolDevice] {
        &self.devices
    }

    /// The earliest instant all devices of `subset` are free.
    pub fn available_at(&self, subset: &[usize]) -> f64 {
        subset
            .iter()
            .map(|&d| self.devices[d].busy_until)
            .fold(0.0, f64::max)
    }

    /// Marks `subset` occupied until `finish`, accounting the busy time.
    pub fn occupy(&mut self, subset: &[usize], start: f64, finish: f64) {
        for &d in subset {
            self.devices[d].busy_until = finish;
            self.devices[d].busy_seconds += finish - start;
        }
    }

    /// Truncates a previous occupancy of `subset` from `old_finish` back
    /// to `new_finish` — the preemption path freeing devices at a panel
    /// boundary. The busy accounting gives back the unexecuted tail.
    pub fn release(&mut self, subset: &[usize], new_finish: f64, old_finish: f64) {
        debug_assert!(new_finish <= old_finish);
        for &d in subset {
            if self.devices[d].busy_until == old_finish {
                self.devices[d].busy_until = new_finish;
            }
            self.devices[d].busy_seconds -= old_finish - new_finish;
        }
    }

    /// Sets the per-device schedulability mask (quarantine). The mask
    /// length must equal the pool size.
    pub fn set_eligible(&mut self, mask: &[bool]) {
        assert_eq!(mask.len(), self.devices.len());
        self.eligible.copy_from_slice(mask);
    }

    /// The schedulable device indices. Fail-open: if quarantine has
    /// opened every breaker at once, the whole pool is offered — a
    /// scheduler with zero devices would deadlock the event loop, and a
    /// uniformly-failing pool has nothing better to offer anyway.
    pub fn eligible_devices(&self) -> Vec<usize> {
        let elig: Vec<usize> = (0..self.devices.len())
            .filter(|&d| self.eligible[d])
            .collect();
        if elig.is_empty() {
            (0..self.devices.len()).collect()
        } else {
            elig
        }
    }

    /// Speeds of a subset evaluated at the given areas.
    fn speeds_at(&self, subset: &[usize], areas: &[f64]) -> Vec<f64> {
        subset
            .iter()
            .zip(areas)
            .map(|(&d, &a)| self.devices[d].speed.flops(a))
            .collect()
    }
}

/// A planned placement: where and when a job (or batch) would run.
#[derive(Debug, Clone, PartialEq)]
pub struct Placement {
    /// Pool indices of the chosen devices.
    pub devices: Vec<usize>,
    /// Partition shape of the placement.
    pub shape: Shape,
    /// Relative speeds of the chosen devices at their assigned areas —
    /// what the real executor re-partitions from on recovery.
    pub rel_speeds: Vec<f64>,
    /// Earliest start (max of `now` and the subset's availability).
    pub start: f64,
    /// Estimated service time of one job of the planned size, seconds.
    pub duration: f64,
}

impl Placement {
    /// Predicted completion instant of a single job.
    pub fn finish(&self) -> f64 {
        self.start + self.duration
    }
}

/// Estimated service time of an `n × n` multiply on `subset` with the
/// given per-device areas: max per-device compute time plus the Hockney
/// broadcast estimate of the partition — `CostSummary::analyze` on the
/// exact spec the placement would use.
fn estimate(pool: &DevicePool, spec: &PartitionSpec, subset: &[usize]) -> f64 {
    let speeds: Vec<&dyn SpeedFunction> = subset
        .iter()
        .map(|&d| pool.devices[d].speed.as_ref())
        .collect();
    CostSummary::analyze(spec, &speeds, pool.alpha, pool.beta).est_total_time
}

/// Builds the partition spec a subset would run under: the requested
/// paper shape for three devices (the shapes are three-processor
/// constructions), Beaumont's column layout otherwise.
fn subset_spec(shape: Shape, n: usize, areas: &[f64]) -> PartitionSpec {
    if areas.len() == 3 {
        shape.build(n, areas)
    } else {
        beaumont_column_layout(n, &areas.iter().map(|&a| a.max(1.0)).collect::<Vec<_>>())
    }
}

/// FPM-proportional areas for `subset`: speeds are evaluated at an equal
/// split first, then areas are made proportional to those speeds and the
/// speeds re-evaluated once at the assigned areas — one fixed-point
/// refinement, deterministic and close enough for placement ranking.
fn fpm_areas(pool: &DevicePool, subset: &[usize], n: usize) -> Vec<f64> {
    let equal = vec![(n * n) as f64 / subset.len() as f64; subset.len()];
    let s0 = pool.speeds_at(subset, &equal);
    let a1 = proportional_areas(n, &s0);
    let s1 = pool.speeds_at(subset, &a1);
    proportional_areas(n, &s1)
}

/// Estimated service time of an `n × n` job on an arbitrary device
/// subset under FPM-proportional areas — what the fault model re-costs a
/// shrink-and-retry attempt with after a device drops out of a placement.
pub fn service_time(pool: &DevicePool, subset: &[usize], n: usize) -> f64 {
    let areas = fpm_areas(pool, subset, n);
    let spec = subset_spec(Shape::OneDRectangular, n, &areas);
    estimate(pool, &spec, subset)
}

/// Plans where the next job would run under `policy`, *without* mutating
/// the pool. `now` is the scheduler's current virtual instant.
pub fn plan(policy: Policy, pool: &mut DevicePool, job: &JobSpec, now: f64) -> Placement {
    match policy {
        Policy::Fifo => plan_fifo(pool, job, now),
        Policy::RoundRobin => plan_round_robin(pool, job, now),
        Policy::FpmAware => plan_fpm(pool, job, now),
    }
}

/// Commits a placement: advances the round-robin cursor. (Pool occupancy
/// is committed separately once the batch size is known.)
pub fn commit(policy: Policy, pool: &mut DevicePool) {
    if policy == Policy::RoundRobin {
        pool.rr_cursor = (pool.rr_cursor + 1) % pool.devices.len();
    }
}

fn plan_fifo(pool: &DevicePool, job: &JobSpec, now: f64) -> Placement {
    let subset: Vec<usize> = pool.eligible_devices();
    let n = job.n;
    let equal = vec![(n * n) as f64 / subset.len() as f64; subset.len()];
    let shape = Shape::OneDRectangular;
    let spec = subset_spec(shape, n, &equal);
    let duration = estimate(pool, &spec, &subset);
    let rel_speeds = vec![1.0; subset.len()];
    Placement {
        start: pool.available_at(&subset).max(now),
        devices: subset,
        shape,
        rel_speeds,
        duration,
    }
}

fn plan_round_robin(pool: &DevicePool, job: &JobSpec, now: f64) -> Placement {
    // First eligible device at or after the cursor — quarantined lanes
    // are skipped but the cursor still advances one step per commit, so
    // the cycling order is stable when devices return.
    let len = pool.devices.len();
    let d = (0..len)
        .map(|i| (pool.rr_cursor + i) % len)
        .find(|&d| pool.eligible[d])
        .unwrap_or(pool.rr_cursor % len);
    let n = job.n;
    let area = (n * n) as f64;
    let spec = subset_spec(Shape::OneDRectangular, n, &[area]);
    let duration = estimate(pool, &spec, &[d]);
    Placement {
        start: pool.available_at(&[d]).max(now),
        devices: vec![d],
        shape: Shape::OneDRectangular,
        rel_speeds: vec![1.0],
        duration,
    }
}

/// Every non-empty subset of `0..len`, singletons first, then by size —
/// the candidate order also serves as the deterministic tie-break.
fn subsets(len: usize) -> Vec<Vec<usize>> {
    assert!(len <= 16, "pool too large for exhaustive subsets");
    let mut all: Vec<Vec<usize>> = (1u32..(1 << len))
        .map(|mask| (0..len).filter(|d| mask & (1 << d) != 0).collect())
        .collect();
    all.sort_by_key(|s| (s.len(), s.clone()));
    all
}

fn plan_fpm(pool: &DevicePool, job: &JobSpec, now: f64) -> Placement {
    let n = job.n;
    let eligible = pool.eligible_devices();
    let mut best: Option<Placement> = None;
    for positions in subsets(eligible.len()) {
        let subset: Vec<usize> = positions.iter().map(|&p| eligible[p]).collect();
        let areas = fpm_areas(pool, &subset, n);
        let speeds = pool.speeds_at(&subset, &areas);
        // Candidate shapes: the four paper layouts for three devices,
        // the column layout otherwise (it covers any count).
        let shapes: &[Shape] = if subset.len() == 3 {
            &ALL_FOUR_SHAPES
        } else {
            &[Shape::OneDRectangular]
        };
        let start = pool.available_at(&subset).max(now);
        for &shape in shapes {
            let spec = subset_spec(shape, n, &areas);
            let duration = estimate(pool, &spec, &subset);
            let cand = Placement {
                devices: subset.clone(),
                shape,
                rel_speeds: speeds.clone(),
                start,
                duration,
            };
            // Strictly-less comparison keeps the first (smallest-subset,
            // lexicographically-first, earliest-shape) candidate on ties
            // — fully deterministic.
            if best.as_ref().is_none_or(|b| cand.finish() < b.finish()) {
                best = Some(cand);
            }
        }
    }
    best.expect("pool has at least one device")
}

#[cfg(test)]
mod tests {
    use super::*;
    use summagen_platform::profile::hclserver1;

    fn pool() -> DevicePool {
        // hclserver1: AbsCPU (0.575 TF), AbsGPU (1.15 TF), AbsPhi
        // (0.5175 TF) — heterogeneity factor ~2.2.
        DevicePool::from_platform(&hclserver1(), 1e-5, 4e-10)
    }

    fn job(n: usize) -> JobSpec {
        JobSpec {
            id: 0,
            tenant: 0,
            n,
            priority: 0,
            deadline: None,
            submit_time: 0.0,
        }
    }

    #[test]
    fn policy_parses_and_names_round_trip() {
        for p in Policy::ALL {
            assert_eq!(Policy::from_str(p.name()).unwrap(), p);
        }
        assert_eq!(Policy::from_str("rr").unwrap(), Policy::RoundRobin);
        assert_eq!(Policy::from_str("fpm").unwrap(), Policy::FpmAware);
        assert!(Policy::from_str("lifo").is_err());
    }

    #[test]
    fn fifo_takes_the_whole_pool() {
        let mut p = pool();
        let placement = plan(Policy::Fifo, &mut p, &job(1024), 0.0);
        assert_eq!(placement.devices, vec![0, 1, 2]);
        assert!(placement.duration > 0.0);
    }

    #[test]
    fn round_robin_cycles_devices() {
        let mut p = pool();
        let a = plan(Policy::RoundRobin, &mut p, &job(512), 0.0);
        commit(Policy::RoundRobin, &mut p);
        let b = plan(Policy::RoundRobin, &mut p, &job(512), 0.0);
        commit(Policy::RoundRobin, &mut p);
        let c = plan(Policy::RoundRobin, &mut p, &job(512), 0.0);
        commit(Policy::RoundRobin, &mut p);
        let d = plan(Policy::RoundRobin, &mut p, &job(512), 0.0);
        assert_eq!(a.devices, vec![0]);
        assert_eq!(b.devices, vec![1]);
        assert_eq!(c.devices, vec![2]);
        assert_eq!(d.devices, vec![0]);
    }

    #[test]
    fn fpm_beats_fifo_on_service_time_for_large_jobs() {
        // With an empty pool, the FPM placement of a large job must be at
        // least as fast as FIFO's equal split: proportional areas cannot
        // lose to equal areas under the same model.
        let mut p = pool();
        let fifo = plan(Policy::Fifo, &mut p, &job(8192), 0.0);
        let fpm = plan(Policy::FpmAware, &mut p, &job(8192), 0.0);
        assert!(
            fpm.finish() <= fifo.finish() + 1e-12,
            "fpm {} vs fifo {}",
            fpm.finish(),
            fifo.finish()
        );
    }

    #[test]
    fn fpm_prefers_a_busy_fast_device_over_an_idle_slow_one_when_worth_it() {
        let mut p = pool();
        // Occupy the slow devices far into the future; the GPU frees soon.
        p.occupy(&[0], 0.0, 50.0);
        p.occupy(&[2], 0.0, 50.0);
        p.occupy(&[1], 0.0, 0.001);
        let placement = plan(Policy::FpmAware, &mut p, &job(4096), 0.0);
        assert_eq!(placement.devices, vec![1], "expected the lone GPU");
        assert!(placement.start >= 0.001);
    }

    #[test]
    fn fpm_placement_is_deterministic() {
        let mut p1 = pool();
        let mut p2 = pool();
        let a = plan(Policy::FpmAware, &mut p1, &job(2048), 0.0);
        let b = plan(Policy::FpmAware, &mut p2, &job(2048), 0.0);
        assert_eq!(a, b);
    }

    #[test]
    fn subsets_enumerates_all_and_orders_by_size() {
        let s = subsets(3);
        assert_eq!(s.len(), 7);
        assert_eq!(s[0], vec![0]);
        assert_eq!(s[6], vec![0, 1, 2]);
        assert!(s.windows(2).all(|w| w[0].len() <= w[1].len()));
    }

    #[test]
    fn occupy_accounts_busy_time() {
        let mut p = pool();
        p.occupy(&[0, 1], 1.0, 3.5);
        assert_eq!(p.available_at(&[0]), 3.5);
        assert_eq!(p.available_at(&[2]), 0.0);
        assert_eq!(p.devices()[0].busy_seconds, 2.5);
    }

    #[test]
    fn release_gives_back_the_unexecuted_tail() {
        let mut p = pool();
        p.occupy(&[0, 1], 0.0, 10.0);
        p.release(&[0, 1], 4.0, 10.0);
        assert_eq!(p.available_at(&[0, 1]), 4.0);
        assert_eq!(p.devices()[0].busy_seconds, 4.0);
        assert_eq!(p.devices()[1].busy_seconds, 4.0);
    }

    #[test]
    fn quarantined_devices_are_skipped_by_every_policy() {
        let mut p = pool();
        p.set_eligible(&[true, false, true]);
        let fifo = plan(Policy::Fifo, &mut p, &job(1024), 0.0);
        assert_eq!(fifo.devices, vec![0, 2]);
        let fpm = plan(Policy::FpmAware, &mut p, &job(4096), 0.0);
        assert!(!fpm.devices.contains(&1), "fpm placed on quarantined GPU");
        // Round-robin cursor 0 → device 0; advancing past the
        // quarantined device 1 lands on 2.
        let a = plan(Policy::RoundRobin, &mut p, &job(512), 0.0);
        commit(Policy::RoundRobin, &mut p);
        let b = plan(Policy::RoundRobin, &mut p, &job(512), 0.0);
        assert_eq!(a.devices, vec![0]);
        assert_eq!(b.devices, vec![2]);
    }

    #[test]
    fn all_quarantined_fails_open_to_the_whole_pool() {
        let mut p = pool();
        p.set_eligible(&[false, false, false]);
        assert_eq!(p.eligible_devices(), vec![0, 1, 2]);
        let fifo = plan(Policy::Fifo, &mut p, &job(1024), 0.0);
        assert_eq!(fifo.devices, vec![0, 1, 2]);
    }
}
