//! Property tests for the multi-tenant service: the three invariants the
//! subsystem is built on, checked over randomized loads rather than the
//! hand-picked mixes of the unit tests.
//!
//! * Admission is *bounded*: no interleaving of offers and takes ever
//!   pushes the queue past its capacity, a tenant past its quota, or an
//!   oversized job into the queue — and every rejection is the typed
//!   reason the offer actually hit.
//! * Jobs are *conserved*: under any fault rate the service either
//!   completes or explicitly fails every admitted job — accepted +
//!   rejected always equals submitted, with no duplicates.
//! * Runs are *deterministic*: the same (mix seed, fault seed, policy)
//!   triple reproduces the schedule digest exactly.
//!
//! The degradation layer adds four more:
//!
//! * Preempt/resume is *bit-identical*: stopping the checksum-protected
//!   executor at any panel boundary and resuming from the parked
//!   k-prefix reproduces the uninterrupted product to the bit.
//! * Degraded runs still *conserve* jobs: with admission, preemption,
//!   quarantine, and brownout all armed, accepted + rejected still
//!   equals submitted and the digest is still reproducible.
//! * Deadlines are *typed*: every finished job with a deadline carries
//!   a Met/Missed verdict consistent with its finish time — no job is
//!   ever silently late.
//! * The quarantine breaker is a *sound state machine*: opens are
//!   monotone, backoff doubles up to the cap, and an open device is
//!   never eligible before its interval ends.

use proptest::prelude::*;

use summagen_comm::HockneyModel;
use summagen_core::{multiply_abft_prefix, panel_boundaries, AbftOptions, ExecutionMode};
use summagen_matrix::random_matrix;
use summagen_partition::ALL_FOUR_SHAPES;
use summagen_platform::profile::hclserver1;
use summagen_service::{
    generate, small_mix, AdmissionConfig, CircuitBreaker, CircuitState, DeadlineVerdict,
    DegradeConfig, DevicePool, FaultProfile, GemmService, JobQueue, Policy, QuarantineConfig,
    Rejection, ServiceConfig,
};

fn service(policy: Policy, faults: FaultProfile, admission: AdmissionConfig) -> GemmService {
    let pool = DevicePool::from_platform(&hclserver1(), 1e-5, 4e-10);
    GemmService::new(
        pool,
        ServiceConfig {
            policy,
            faults,
            admission,
            ..ServiceConfig::default()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random offer/take interleavings against random bounds: the queue
    /// never exceeds capacity, no tenant exceeds its quota, and every
    /// rejection names the constraint that was actually binding.
    #[test]
    fn admission_never_exceeds_bounds(
        seed in 0u64..1_000,
        capacity in 1usize..12,
        quota in 1usize..6,
        max_n in 200usize..900,
        drain_stride in 2usize..5,
    ) {
        let config = AdmissionConfig {
            queue_capacity: capacity,
            per_tenant_quota: quota,
            max_n,
        };
        let mut queue = JobQueue::new(config);
        let mut mix = small_mix();
        mix.seed = seed;
        mix.jobs = 80;
        for (i, job) in generate(&mix).into_iter().enumerate() {
            let tenant = job.tenant;
            let n = job.n;
            let depth_before = queue.tenant_depth(tenant);
            let len_before = queue.len();
            match queue.offer(job) {
                Ok(()) => {
                    prop_assert!(n <= max_n);
                    prop_assert_eq!(queue.len(), len_before + 1);
                }
                Err(Rejection::TooLarge { .. }) => prop_assert!(n > max_n),
                Err(Rejection::QuotaExceeded { .. }) => {
                    prop_assert!(n <= max_n);
                    prop_assert!(depth_before >= quota);
                }
                Err(Rejection::QueueFull { .. }) => {
                    prop_assert!(n <= max_n);
                    prop_assert!(depth_before < quota);
                    prop_assert_eq!(len_before, capacity);
                }
                Err(
                    rej @ (Rejection::DeadlineInfeasible { .. }
                    | Rejection::Shed { .. }
                    | Rejection::Duplicate { .. }),
                ) => {
                    // Those rejections belong to the service's
                    // degradation/durability layers, never to the
                    // bounded queue.
                    prop_assert!(false, "queue produced a service-layer rejection: {rej:?}");
                }
            }
            prop_assert!(queue.len() <= capacity);
            for t in 0..3 {
                prop_assert!(queue.tenant_depth(t) <= quota);
            }
            if i % drain_stride == 0 && !queue.is_empty() {
                let take_at = i % queue.len();
                let took = queue.take(take_at);
                // Taking releases the tenant's quota slot.
                prop_assert!(queue.tenant_depth(took.tenant) < quota);
            }
        }
        prop_assert!(queue.peak_depth() <= capacity);
    }

    /// Job conservation under seeded faults: every submitted job is
    /// accounted for exactly once — as a completed record, a failed
    /// record, or a typed rejection. Faults may shrink placements and
    /// retry, but nothing is silently dropped.
    #[test]
    fn every_accepted_job_completes_or_fails(
        mix_seed in 0u64..500,
        fault_seed in 0u64..500,
        fail_permille in 0u32..350,
        policy_idx in 0usize..3,
    ) {
        let mut mix = small_mix();
        mix.seed = mix_seed;
        mix.jobs = 60;
        let jobs = generate(&mix);
        let faults = FaultProfile {
            fail_permille: fail_permille as u16,
            seed: fault_seed,
            ..FaultProfile::default()
        };
        let mut svc = service(Policy::ALL[policy_idx], faults, AdmissionConfig::default());
        let report = svc.run(jobs.clone());
        prop_assert_eq!(
            report.records.len() + report.rejections.len(),
            jobs.len(),
            "jobs lost or invented"
        );
        let mut ids: Vec<u64> = report
            .records
            .iter()
            .map(|r| r.spec.id)
            .chain(report.rejections.iter().map(|(spec, _)| spec.id))
            .collect();
        ids.sort_unstable();
        let mut want: Vec<u64> = jobs.iter().map(|j| j.id).collect();
        want.sort_unstable();
        prop_assert_eq!(ids, want, "ids must partition exactly");
        for r in &report.records {
            // Whatever happened, it finished after it started and the
            // outcome is explicit.
            prop_assert!(r.finish_time >= r.start_time);
            prop_assert!(!r.devices.is_empty() || r.outcome.label() == "failed");
        }
        if fail_permille == 0 {
            prop_assert_eq!(report.failed(), 0);
        }
    }

    /// Same (mix seed, fault seed, policy) → bit-identical schedule:
    /// the digest covers every placement, retry, and rejection.
    #[test]
    fn same_seed_load_runs_are_deterministic(
        mix_seed in 0u64..500,
        fault_seed in 0u64..500,
        fail_permille in 0u32..200,
        policy_idx in 0usize..3,
    ) {
        let mut mix = small_mix();
        mix.seed = mix_seed;
        mix.jobs = 40;
        let faults = FaultProfile {
            fail_permille: fail_permille as u16,
            seed: fault_seed,
            ..FaultProfile::default()
        };
        let policy = Policy::ALL[policy_idx];
        let run = |jobs: Vec<_>| {
            service(policy, faults, AdmissionConfig::default()).run(jobs)
        };
        let a = run(generate(&mix));
        let b = run(generate(&mix));
        prop_assert_eq!(a.schedule_digest, b.schedule_digest);
        prop_assert_eq!(a.makespan, b.makespan);
        prop_assert_eq!(a.records.len(), b.records.len());
    }

    /// Preempting the checksum-protected executor at *any* panel
    /// boundary and resuming from the parked k-prefix yields a product
    /// bit-identical to the uninterrupted run. This is the contract the
    /// service's checkpoint preemption rests on: a preempted job's
    /// remaining work is a pure continuation, not a recomputation.
    #[test]
    fn preempt_resume_is_bit_identical(
        shape_idx in 0usize..4,
        n in 18usize..40,
        mat_seed in 0u64..10_000,
        boundary_sel in 0usize..16,
        s0 in 1u32..4,
        s1 in 1u32..4,
        s2 in 1u32..4,
    ) {
        let shape = ALL_FOUR_SHAPES[shape_idx];
        let speeds = [f64::from(s0), f64::from(s1), f64::from(s2)];
        let a = random_matrix(n, n, mat_seed.wrapping_mul(2).wrapping_add(1));
        let b = random_matrix(n, n, mat_seed.wrapping_mul(2).wrapping_add(2));
        let abft = AbftOptions::default();
        let run = |resume: Option<&_>, stop_k| {
            multiply_abft_prefix(
                shape,
                &speeds,
                &a,
                &b,
                ExecutionMode::Real,
                HockneyModel::intra_node(),
                &abft,
                resume,
                stop_k,
            )
        };
        let whole = run(None, n).expect("uninterrupted run");
        prop_assert_eq!(whole.k, n);
        let interior: Vec<usize> = panel_boundaries(shape, n, &speeds)
            .into_iter()
            .filter(|&k| k > 0 && k < n)
            .collect();
        prop_assume!(!interior.is_empty());
        let boundary = interior[boundary_sel % interior.len()];
        let parked = run(None, boundary).expect("prefix run");
        prop_assert_eq!(parked.k, boundary);
        let resumed = run(Some(&parked), n).expect("resumed run");
        prop_assert_eq!(resumed.k, n);
        for (i, (got, want)) in resumed
            .c
            .as_slice()
            .iter()
            .zip(whole.c.as_slice())
            .enumerate()
        {
            prop_assert_eq!(
                got.to_bits(),
                want.to_bits(),
                "element {} differs after resume at k={}: {} vs {}",
                i, boundary, got, want
            );
        }
    }

    /// Job conservation survives the full degradation stack: with
    /// deadline admission, preemption, quarantine, and brownout all
    /// armed under overload and faults, accepted + rejected still
    /// equals submitted with no duplicate ids — and the run is still
    /// reproducible from its seeds.
    #[test]
    fn degraded_runs_conserve_jobs_and_stay_deterministic(
        mix_seed in 0u64..500,
        fault_seed in 0u64..500,
        fail_permille in 0u32..350,
        rate_scale in 1u32..6,
    ) {
        let mut mix = small_mix();
        mix.seed = mix_seed;
        mix.jobs = 60;
        mix.arrival_rate *= f64::from(rate_scale);
        let jobs = generate(&mix);
        let faults = FaultProfile {
            fail_permille: fail_permille as u16,
            seed: fault_seed,
            ..FaultProfile::default()
        };
        let run = || {
            let pool = DevicePool::from_platform(&hclserver1(), 1e-5, 4e-10);
            GemmService::new(
                pool,
                ServiceConfig {
                    policy: Policy::FpmAware,
                    faults,
                    degrade: DegradeConfig::standard(),
                    ..ServiceConfig::default()
                },
            )
            .run(jobs.clone())
        };
        let report = run();
        prop_assert_eq!(
            report.records.len() + report.rejections.len(),
            jobs.len(),
            "jobs lost or invented under degradation"
        );
        let mut ids: Vec<u64> = report
            .records
            .iter()
            .map(|r| r.spec.id)
            .chain(report.rejections.iter().map(|(spec, _)| spec.id))
            .collect();
        ids.sort_unstable();
        let mut want: Vec<u64> = jobs.iter().map(|j| j.id).collect();
        want.sort_unstable();
        prop_assert_eq!(ids, want, "ids must partition exactly");
        let again = run();
        prop_assert_eq!(report.schedule_digest, again.schedule_digest);
        prop_assert_eq!(report.preemptions, again.preemptions);
        prop_assert_eq!(report.shed(), again.shed());
        prop_assert_eq!(&report.quarantine_events, &again.quarantine_events);
    }

    /// Every finished job's deadline verdict is consistent with its
    /// finish time: jobs without a deadline report `NoDeadline`, jobs
    /// with one report `Met` or `Missed { late_by }` matching the
    /// clock — a late job is never silently late.
    #[test]
    fn deadline_verdicts_match_finish_times(
        mix_seed in 0u64..500,
        fault_seed in 0u64..500,
        fail_permille in 0u32..300,
        degrade_on in (0u32..2).prop_map(|b| b == 1),
    ) {
        let mut mix = small_mix();
        mix.seed = mix_seed;
        mix.jobs = 60;
        let jobs = generate(&mix);
        prop_assume!(jobs.iter().any(|j| j.deadline.is_some()));
        let faults = FaultProfile {
            fail_permille: fail_permille as u16,
            seed: fault_seed,
            ..FaultProfile::default()
        };
        let degrade = if degrade_on {
            DegradeConfig::standard()
        } else {
            DegradeConfig::default()
        };
        let pool = DevicePool::from_platform(&hclserver1(), 1e-5, 4e-10);
        let report = GemmService::new(
            pool,
            ServiceConfig {
                policy: Policy::FpmAware,
                faults,
                degrade,
                ..ServiceConfig::default()
            },
        )
        .run(jobs);
        for r in &report.records {
            match (r.spec.deadline, r.deadline) {
                (None, DeadlineVerdict::NoDeadline) => {}
                (Some(d), DeadlineVerdict::Met) => {
                    prop_assert!(r.finish_time <= d + 1e-9, "Met but late: {r:?}");
                }
                (Some(d), DeadlineVerdict::Missed { late_by }) => {
                    prop_assert!(r.finish_time > d, "Missed but on time: {r:?}");
                    prop_assert!(
                        (late_by - (r.finish_time - d)).abs() < 1e-9,
                        "late_by inconsistent: {r:?}"
                    );
                }
                (spec, verdict) => {
                    prop_assert!(false, "verdict {verdict:?} for deadline {spec:?}");
                }
            }
        }
    }

    /// The circuit breaker under arbitrary blame/success sequences:
    /// opens only on blamed failures, backoff is exactly
    /// `base * 2^(opens-1)` capped at the max, an open device is never
    /// eligible before its interval ends, and eligibility always means
    /// not-open.
    #[test]
    fn circuit_breaker_is_a_sound_state_machine(
        outcomes in proptest::collection::vec((0u32..2).prop_map(|b| b == 1), 1..120),
        threshold in 1u32..5,
        base_scale in 1u32..5,
        step in 1u32..40,
    ) {
        let config = QuarantineConfig {
            failure_threshold: threshold,
            base_backoff: f64::from(base_scale),
            max_backoff: 3.0 * f64::from(base_scale),
        };
        let mut breaker = CircuitBreaker::new(config);
        let mut now = 0.0;
        for &failed in &outcomes {
            now += f64::from(step) * 0.1;
            let was_open = breaker.state(now) == CircuitState::Open;
            let opens_before = breaker.opens();
            let transition = if failed {
                breaker.record_failure(now)
            } else {
                breaker.record_success(now)
            };
            match transition {
                Some(t) if t.to == CircuitState::Open => {
                    prop_assert!(failed, "opened on a success");
                    prop_assert!(!was_open, "opened while already open");
                    prop_assert_eq!(breaker.opens(), opens_before + 1);
                    let expected = (config.base_backoff
                        * 2f64.powi(breaker.opens() as i32 - 1))
                    .min(config.max_backoff);
                    prop_assert!(
                        (t.open_until - now - expected).abs() < 1e-9,
                        "backoff {} != expected {}",
                        t.open_until - now,
                        expected
                    );
                    prop_assert!(!breaker.eligible(now), "eligible while open");
                }
                Some(t) => {
                    prop_assert_eq!(t.to, CircuitState::Closed);
                    prop_assert!(!failed, "closed on a failure");
                    prop_assert_eq!(t.from, CircuitState::HalfOpen);
                }
                None => {}
            }
            prop_assert_eq!(breaker.opens(), opens_before + u32::from(failed && !was_open && transition.is_some()));
            // Eligibility is exactly "not open", and an open breaker
            // stays ineligible until its interval ends.
            let open_now = breaker.state(now) == CircuitState::Open;
            prop_assert_eq!(breaker.eligible(now), !open_now);
            if open_now {
                prop_assert!(now < breaker.open_until());
                prop_assert!(
                    breaker.open_until() - now <= config.max_backoff + 1e-9,
                    "open interval exceeds the backoff cap"
                );
            }
        }
    }
}
