//! Property tests for the multi-tenant service: the three invariants the
//! subsystem is built on, checked over randomized loads rather than the
//! hand-picked mixes of the unit tests.
//!
//! * Admission is *bounded*: no interleaving of offers and takes ever
//!   pushes the queue past its capacity, a tenant past its quota, or an
//!   oversized job into the queue — and every rejection is the typed
//!   reason the offer actually hit.
//! * Jobs are *conserved*: under any fault rate the service either
//!   completes or explicitly fails every admitted job — accepted +
//!   rejected always equals submitted, with no duplicates.
//! * Runs are *deterministic*: the same (mix seed, fault seed, policy)
//!   triple reproduces the schedule digest exactly.

use proptest::prelude::*;

use summagen_platform::profile::hclserver1;
use summagen_service::{
    generate, small_mix, AdmissionConfig, DevicePool, FaultProfile, GemmService, JobQueue, Policy,
    Rejection, ServiceConfig,
};

fn service(policy: Policy, faults: FaultProfile, admission: AdmissionConfig) -> GemmService {
    let pool = DevicePool::from_platform(&hclserver1(), 1e-5, 4e-10);
    GemmService::new(
        pool,
        ServiceConfig {
            policy,
            faults,
            admission,
            ..ServiceConfig::default()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random offer/take interleavings against random bounds: the queue
    /// never exceeds capacity, no tenant exceeds its quota, and every
    /// rejection names the constraint that was actually binding.
    #[test]
    fn admission_never_exceeds_bounds(
        seed in 0u64..1_000,
        capacity in 1usize..12,
        quota in 1usize..6,
        max_n in 200usize..900,
        drain_stride in 2usize..5,
    ) {
        let config = AdmissionConfig {
            queue_capacity: capacity,
            per_tenant_quota: quota,
            max_n,
        };
        let mut queue = JobQueue::new(config);
        let mut mix = small_mix();
        mix.seed = seed;
        mix.jobs = 80;
        for (i, job) in generate(&mix).into_iter().enumerate() {
            let tenant = job.tenant;
            let n = job.n;
            let depth_before = queue.tenant_depth(tenant);
            let len_before = queue.len();
            match queue.offer(job) {
                Ok(()) => {
                    prop_assert!(n <= max_n);
                    prop_assert_eq!(queue.len(), len_before + 1);
                }
                Err(Rejection::TooLarge { .. }) => prop_assert!(n > max_n),
                Err(Rejection::QuotaExceeded { .. }) => {
                    prop_assert!(n <= max_n);
                    prop_assert!(depth_before >= quota);
                }
                Err(Rejection::QueueFull { .. }) => {
                    prop_assert!(n <= max_n);
                    prop_assert!(depth_before < quota);
                    prop_assert_eq!(len_before, capacity);
                }
            }
            prop_assert!(queue.len() <= capacity);
            for t in 0..3 {
                prop_assert!(queue.tenant_depth(t) <= quota);
            }
            if i % drain_stride == 0 && !queue.is_empty() {
                let take_at = i % queue.len();
                let took = queue.take(take_at);
                // Taking releases the tenant's quota slot.
                prop_assert!(queue.tenant_depth(took.tenant) < quota);
            }
        }
        prop_assert!(queue.peak_depth() <= capacity);
    }

    /// Job conservation under seeded faults: every submitted job is
    /// accounted for exactly once — as a completed record, a failed
    /// record, or a typed rejection. Faults may shrink placements and
    /// retry, but nothing is silently dropped.
    #[test]
    fn every_accepted_job_completes_or_fails(
        mix_seed in 0u64..500,
        fault_seed in 0u64..500,
        fail_permille in 0u32..350,
        policy_idx in 0usize..3,
    ) {
        let mut mix = small_mix();
        mix.seed = mix_seed;
        mix.jobs = 60;
        let jobs = generate(&mix);
        let faults = FaultProfile {
            fail_permille: fail_permille as u16,
            seed: fault_seed,
            ..FaultProfile::default()
        };
        let mut svc = service(Policy::ALL[policy_idx], faults, AdmissionConfig::default());
        let report = svc.run(jobs.clone());
        prop_assert_eq!(
            report.records.len() + report.rejections.len(),
            jobs.len(),
            "jobs lost or invented"
        );
        let mut ids: Vec<u64> = report
            .records
            .iter()
            .map(|r| r.spec.id)
            .chain(report.rejections.iter().map(|(spec, _)| spec.id))
            .collect();
        ids.sort_unstable();
        let mut want: Vec<u64> = jobs.iter().map(|j| j.id).collect();
        want.sort_unstable();
        prop_assert_eq!(ids, want, "ids must partition exactly");
        for r in &report.records {
            // Whatever happened, it finished after it started and the
            // outcome is explicit.
            prop_assert!(r.finish_time >= r.start_time);
            prop_assert!(!r.devices.is_empty() || r.outcome.label() == "failed");
        }
        if fail_permille == 0 {
            prop_assert_eq!(report.failed(), 0);
        }
    }

    /// Same (mix seed, fault seed, policy) → bit-identical schedule:
    /// the digest covers every placement, retry, and rejection.
    #[test]
    fn same_seed_load_runs_are_deterministic(
        mix_seed in 0u64..500,
        fault_seed in 0u64..500,
        fail_permille in 0u32..200,
        policy_idx in 0usize..3,
    ) {
        let mut mix = small_mix();
        mix.seed = mix_seed;
        mix.jobs = 40;
        let faults = FaultProfile {
            fail_permille: fail_permille as u16,
            seed: fault_seed,
            ..FaultProfile::default()
        };
        let policy = Policy::ALL[policy_idx];
        let run = |jobs: Vec<_>| {
            service(policy, faults, AdmissionConfig::default()).run(jobs)
        };
        let a = run(generate(&mix));
        let b = run(generate(&mix));
        prop_assert_eq!(a.schedule_digest, b.schedule_digest);
        prop_assert_eq!(a.makespan, b.makespan);
        prop_assert_eq!(a.records.len(), b.records.len());
    }
}
