//! Panelled SummaGen: a memory-bounded, pipelined variant.
//!
//! The paper's SummaGen gathers *all* required `A` rows and `B` columns
//! into `WA`/`WB` before computing — simple, but `WA` alone holds up to
//! `n²` elements per rank. This variant iterates over the sub-partition
//! grid's `k`-dimension one grid column at a time (like SUMMA's panel
//! loop): for panel `t`, ranks gather only the `A` blocks `(bi, t)` and
//! `B` blocks `(t, bj)` they need, then accumulate
//! `C(bi, bj) += A(bi, t) · B(t, bj)` for every owned sub-partition.
//!
//! Communication volume is identical to the one-shot algorithm (the same
//! blocks travel over the same row/column communicators), but peak
//! working memory per rank drops from `O(h·n + n·w)` to
//! `O((h + w) · max_t width_t)`, and communication overlaps computation
//! across panels — the natural next step the paper's Section VII
//! contemplates for large problem sizes.
//!
//! This variant uses the infallible collective API: it is not wired into
//! fault injection or [`crate::multiply_with_recovery`], and its
//! `expect`/`unwrap` calls assert the same partition-validation
//! invariants documented in [`crate::stages`] (every cell has an owner,
//! owners hold their blocks, participants belong to their own
//! row/column communicators).

use summagen_comm::{Communicator, CostModel, Payload, Universe, ZeroCost};
use summagen_matrix::{gemm_blocked, DenseMatrix, GemmKernel};
use summagen_partition::PartitionSpec;

use crate::executor::RunResult;
use crate::rankdata::{assemble, distribute, RankMatrices};

/// Multiplies `A × B` with the panelled SummaGen variant (free
/// communication).
pub fn multiply_panelled(
    spec: &PartitionSpec,
    a: &DenseMatrix,
    b: &DenseMatrix,
    kernel: GemmKernel,
) -> RunResult {
    multiply_panelled_with_cost(spec, a, b, kernel, ZeroCost)
}

/// [`multiply_panelled`] with a communication cost model.
pub fn multiply_panelled_with_cost(
    spec: &PartitionSpec,
    a: &DenseMatrix,
    b: &DenseMatrix,
    kernel: GemmKernel,
    cost: impl CostModel,
) -> RunResult {
    let rank_data = distribute(spec, a, b);
    let universe = Universe::new(spec.nprocs, cost);
    let results = universe.run(|comm| {
        let rank = comm.rank();
        let blocks = run_rank_panelled(&comm, spec, rank, &rank_data[rank], kernel);
        (blocks, comm.clock_snapshot(), comm.traffic())
    });

    let mut blocks = Vec::with_capacity(spec.nprocs);
    let mut clocks = Vec::with_capacity(spec.nprocs);
    let mut traffic = Vec::with_capacity(spec.nprocs);
    for (b, c, t) in results {
        blocks.push(b);
        clocks.push(c);
        traffic.push(t);
    }
    let c = assemble(spec, &blocks);
    let exec_time = clocks.iter().map(|c| c.now).fold(0.0, f64::max);
    let comp_time = clocks.iter().map(|c| c.comp_time).fold(0.0, f64::max);
    let comm_time = clocks.iter().map(|c| c.comm_time).fold(0.0, f64::max);
    RunResult {
        c,
        clocks,
        traffic,
        exec_time,
        comp_time,
        comm_time,
        recovery: None,
    }
}

/// Peak working-set size (elements of `WA`+`WB`-equivalents) per rank for
/// the one-shot algorithm vs the panelled variant — the memory saving
/// that motivates panelling. Returns `(one_shot, panelled)` maxima over
/// ranks.
pub fn peak_workspace_elems(spec: &PartitionSpec) -> (usize, usize) {
    let n = spec.n;
    let mut one_shot_max = 0;
    let mut panelled_max = 0;
    for rank in 0..spec.nprocs {
        let rows: usize = (0..spec.grid_rows)
            .filter(|&bi| spec.row_contains(rank, bi))
            .map(|bi| spec.heights[bi])
            .sum();
        let cols: usize = (0..spec.grid_cols)
            .filter(|&bj| spec.col_contains(rank, bj))
            .map(|bj| spec.widths[bj])
            .sum();
        one_shot_max = one_shot_max.max(rows * n + n * cols);
        let max_panel = spec.widths.iter().copied().max().unwrap_or(0);
        panelled_max = panelled_max.max(rows * max_panel + max_panel * cols);
    }
    (one_shot_max, panelled_max)
}

/// Simulated-time panelled SummaGen: the panel schedule with phantom
/// payloads and device-model compute times. Communication of later panels
/// overlaps other ranks' computation of earlier ones, which is the
/// pipelining benefit this variant buys on top of the memory saving.
pub fn simulate_panelled(
    spec: &PartitionSpec,
    platform: &summagen_platform::Platform,
    cost: impl CostModel,
) -> crate::simulate::SimReport {
    assert!(platform.len() >= spec.nprocs, "platform too small");
    let areas = spec.areas();
    let universe = Universe::new(spec.nprocs, cost);
    let results = universe.run(|comm| {
        let rank = comm.rank();
        let proc = &platform.processors[rank];
        let area = areas[rank] as f64;
        for t in 0..spec.grid_cols {
            let kb = spec.widths[t];
            if let Some(m) = comm.metrics() {
                m.panel_steps.inc();
            }
            // A blocks (bi, t).
            for bi in 0..spec.grid_rows {
                if !spec.row_contains(rank, bi) {
                    continue;
                }
                let participants: Vec<usize> = (0..spec.nprocs)
                    .filter(|&p| spec.row_contains(p, bi))
                    .collect();
                if participants.len() > 1 {
                    let mut row_comm = comm
                        .subgroup(&participants, (1 << 22) + (t * spec.grid_rows + bi) as u64)
                        .unwrap();
                    let owner = spec.owner(bi, t);
                    let root = participants.iter().position(|&p| p == owner).unwrap();
                    row_comm.bcast(
                        root,
                        Payload::Phantom {
                            elems: spec.heights[bi] * kb,
                        },
                    );
                }
            }
            // B slices for the panel's k-range.
            let (k0, k1) = (spec.col_offset(t), spec.col_offset(t) + kb);
            for bj in 0..spec.grid_cols {
                if !spec.col_contains(rank, bj) {
                    continue;
                }
                let participants: Vec<usize> = (0..spec.nprocs)
                    .filter(|&p| spec.col_contains(p, bj))
                    .collect();
                for bi_b in 0..spec.grid_rows {
                    let r0 = spec.row_offset(bi_b);
                    let r1 = r0 + spec.heights[bi_b];
                    let (lo, hi) = (r0.max(k0), r1.min(k1));
                    if lo >= hi || participants.len() == 1 {
                        continue;
                    }
                    let label =
                        (1 << 23) + ((t * spec.grid_rows + bi_b) * spec.grid_cols + bj) as u64;
                    let mut col_comm = comm.subgroup(&participants, label).unwrap();
                    let owner = spec.owner(bi_b, bj);
                    let root = participants.iter().position(|&p| p == owner).unwrap();
                    col_comm.bcast(
                        root,
                        Payload::Phantom {
                            elems: (hi - lo) * spec.widths[bj],
                        },
                    );
                }
            }
            // Compute the panel's contribution for every owned block.
            for blk in spec.blocks_of(rank) {
                comm.advance_compute(proc.dgemm_time(blk.rows, kb, blk.cols, area));
            }
        }
        (comm.clock_snapshot(), comm.traffic())
    });
    let clocks: Vec<_> = results.iter().map(|r| r.0).collect();
    let traffic: Vec<_> = results.iter().map(|r| r.1).collect();
    let n = spec.n;
    crate::simulate::SimReport {
        n,
        exec_time: clocks.iter().map(|c| c.now).fold(0.0, f64::max),
        comp_time: clocks.iter().map(|c| c.comp_time).fold(0.0, f64::max),
        comm_time: clocks.iter().map(|c| c.comm_time).fold(0.0, f64::max),
        clocks,
        traffic,
        total_flops: 2.0 * (n as f64).powi(3),
        energy: None,
    }
}

fn run_rank_panelled(
    comm: &Communicator,
    spec: &PartitionSpec,
    rank: usize,
    data: &RankMatrices,
    kernel: GemmKernel,
) -> Vec<(summagen_partition::ProcBlock, DenseMatrix)> {
    let n = spec.n;
    // Output blocks, zero-initialized, accumulated across panels.
    let mut out: Vec<(summagen_partition::ProcBlock, DenseMatrix)> = spec
        .blocks_of(rank)
        .into_iter()
        .map(|blk| {
            let m = DenseMatrix::zeros(blk.rows, blk.cols);
            (blk, m)
        })
        .collect();

    // Panel `t` covers the k-range of grid *column* `t` of `A`. Because
    // the grid's row cuts (which partition `B`'s k-dimension) need not
    // align with its column cuts, the matching `B` rows are gathered as
    // *slices* of the overlapping `B` blocks — same total bytes, panel-
    // sized staging.
    for t in 0..spec.grid_cols {
        let k0 = spec.col_offset(t);
        let kb = spec.widths[t];
        let k1 = k0 + kb;
        if let Some(m) = comm.metrics() {
            m.panel_steps.inc();
        }

        // --- Gather the A blocks (bi, t) for rows this rank occupies.
        let mut a_panel: Vec<Option<DenseMatrix>> = vec![None; spec.grid_rows];
        for (bi, panel_slot) in a_panel.iter_mut().enumerate() {
            if !spec.row_contains(rank, bi) {
                continue;
            }
            let participants: Vec<usize> = (0..spec.nprocs)
                .filter(|&p| spec.row_contains(p, bi))
                .collect();
            let owner = spec.owner(bi, t);
            let h = spec.heights[bi];
            let blk_data = if participants.len() == 1 {
                data.a_block(bi, t)
                    .expect("missing own A block")
                    .as_slice()
                    .to_vec()
            } else {
                let mut row_comm = comm
                    .subgroup(&participants, (1 << 22) + (t * spec.grid_rows + bi) as u64)
                    .expect("missing from row communicator");
                let root = participants.iter().position(|&p| p == owner).unwrap();
                let payload = if owner == rank {
                    Payload::F64(
                        data.a_block(bi, t)
                            .expect("missing own A block")
                            .as_slice()
                            .to_vec(),
                    )
                } else {
                    Payload::F64(Vec::new())
                };
                row_comm.bcast(root, payload).into_f64()
            };
            *panel_slot = Some(DenseMatrix::from_vec(h, kb, blk_data));
        }

        // --- Gather the B rows [k0, k1) for columns this rank occupies.
        let mut b_panel: Vec<Option<DenseMatrix>> = vec![None; spec.grid_cols];
        for (bj, panel_slot) in b_panel.iter_mut().enumerate() {
            if !spec.col_contains(rank, bj) {
                continue;
            }
            let w = spec.widths[bj];
            let mut panel = DenseMatrix::zeros(kb, w);
            let participants: Vec<usize> = (0..spec.nprocs)
                .filter(|&p| spec.col_contains(p, bj))
                .collect();
            for bi_b in 0..spec.grid_rows {
                let r0 = spec.row_offset(bi_b);
                let r1 = r0 + spec.heights[bi_b];
                let (lo, hi) = (r0.max(k0), r1.min(k1));
                if lo >= hi {
                    continue; // block does not overlap this panel
                }
                let owner = spec.owner(bi_b, bj);
                let rows = hi - lo;
                let slice_data = if participants.len() == 1 {
                    data.b_block(bi_b, bj)
                        .expect("missing own B block")
                        .submatrix(lo - r0, 0, rows, w)
                        .as_slice()
                        .to_vec()
                } else {
                    let label =
                        (1 << 23) + ((t * spec.grid_rows + bi_b) * spec.grid_cols + bj) as u64;
                    let mut col_comm = comm
                        .subgroup(&participants, label)
                        .expect("missing from column communicator");
                    let root = participants.iter().position(|&p| p == owner).unwrap();
                    let payload = if owner == rank {
                        Payload::F64(
                            data.b_block(bi_b, bj)
                                .expect("missing own B block")
                                .submatrix(lo - r0, 0, rows, w)
                                .as_slice()
                                .to_vec(),
                        )
                    } else {
                        Payload::F64(Vec::new())
                    };
                    col_comm.bcast(root, payload).into_f64()
                };
                panel.set_submatrix(lo - k0, 0, &DenseMatrix::from_vec(rows, w, slice_data));
            }
            *panel_slot = Some(panel);
        }

        // --- Accumulate the panel's contribution to every owned block.
        for (blk, cmat) in &mut out {
            let ap = a_panel[blk.block_i]
                .as_ref()
                .expect("A panel block missing for owned row");
            let bp = b_panel[blk.block_j]
                .as_ref()
                .expect("B panel block missing for owned column");
            debug_assert_eq!(ap.cols(), bp.rows());
            match kernel {
                GemmKernel::Naive => summagen_matrix::gemm_naive(
                    blk.rows,
                    blk.cols,
                    kb,
                    1.0,
                    ap.as_slice(),
                    kb.max(1),
                    bp.as_slice(),
                    blk.cols.max(1),
                    1.0,
                    cmat.as_mut_slice(),
                    blk.cols.max(1),
                ),
                _ => gemm_blocked(
                    blk.rows,
                    blk.cols,
                    kb,
                    1.0,
                    ap.as_slice(),
                    kb.max(1),
                    bp.as_slice(),
                    blk.cols.max(1),
                    1.0,
                    cmat.as_mut_slice(),
                    blk.cols.max(1),
                ),
            }
        }
        let _ = n;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::{multiply, ExecutionMode};
    use summagen_matrix::{approx_eq, gemm_tolerance, random_matrix};
    use summagen_partition::{proportional_areas, ALL_FOUR_SHAPES};

    #[test]
    fn panelled_matches_one_shot_for_all_shapes() {
        let n = 40;
        let areas = proportional_areas(n, &[1.0, 2.0, 0.9]);
        let a = random_matrix(n, n, 1);
        let b = random_matrix(n, n, 2);
        for shape in ALL_FOUR_SHAPES {
            let spec = shape.build(n, &areas);
            let one_shot = multiply(&spec, &a, &b, ExecutionMode::Real);
            let panelled = multiply_panelled(&spec, &a, &b, GemmKernel::Blocked);
            assert!(
                approx_eq(&one_shot.c, &panelled.c, gemm_tolerance(n) * 100.0),
                "{} differs",
                shape.name()
            );
        }
    }

    #[test]
    fn panelled_communication_volume_equals_one_shot() {
        // Same blocks over the same communicators: total traffic must
        // match the one-shot algorithm exactly.
        let n = 32;
        let areas = proportional_areas(n, &[1.0, 2.0, 0.9]);
        let a = random_matrix(n, n, 3);
        let b = random_matrix(n, n, 4);
        for shape in ALL_FOUR_SHAPES {
            let spec = shape.build(n, &areas);
            let one_shot = multiply(&spec, &a, &b, ExecutionMode::Real);
            let panelled = multiply_panelled(&spec, &a, &b, GemmKernel::Blocked);
            let total = |r: &RunResult| r.traffic.iter().map(|t| t.bytes_sent).sum::<u64>();
            assert_eq!(total(&one_shot), total(&panelled), "{}", shape.name());
        }
    }

    #[test]
    fn panelled_needs_much_less_workspace() {
        let n = 25_600;
        let areas = proportional_areas(n, &[1.0, 2.0, 0.9]);
        let spec = summagen_partition::Shape::SquareCorner.build(n, &areas);
        let (one_shot, panelled) = peak_workspace_elems(&spec);
        // The saving factor is max-panel-width / n; for the square-corner
        // grid the widest panel is the big square's side (~0.51 n).
        assert!(
            (panelled as f64) < 0.6 * one_shot as f64,
            "panelled {panelled} vs one-shot {one_shot}"
        );
    }

    #[test]
    fn simulated_panelled_total_traffic_matches_one_shot() {
        use summagen_platform::profile::hclserver1;
        let n = 12_288;
        let areas = proportional_areas(n, &[1.0, 2.0, 0.9]);
        let spec = summagen_partition::Shape::SquareRectangle.build(n, &areas);
        let platform = hclserver1();
        let link = summagen_comm::HockneyModel::intra_node();
        let one_shot = crate::simulate::simulate(&spec, &platform, link);
        let panelled = simulate_panelled(&spec, &platform, link);
        let bytes =
            |r: &crate::simulate::SimReport| r.traffic.iter().map(|t| t.bytes_sent).sum::<u64>();
        assert_eq!(bytes(&one_shot), bytes(&panelled));
        // Pipelining can only help or tie the end-to-end time (modulo
        // tiny extra latencies from the additional messages).
        assert!(
            panelled.exec_time <= one_shot.exec_time * 1.05,
            "panelled {} vs one-shot {}",
            panelled.exec_time,
            one_shot.exec_time
        );
    }

    #[test]
    fn panelled_single_processor() {
        let n = 16;
        let spec = PartitionSpec::new(vec![0], vec![n], vec![n], 1);
        let a = random_matrix(n, n, 5);
        let b = random_matrix(n, n, 6);
        let r = multiply_panelled(&spec, &a, &b, GemmKernel::Blocked);
        let want = multiply(&spec, &a, &b, ExecutionMode::Real);
        assert!(approx_eq(&r.c, &want.c, 1e-10));
    }

    #[test]
    fn panelled_handles_nonsquare_grids() {
        // Grid 1x3 (1D): k-panels iterate max(grid_rows, grid_cols) = 3
        // but only t = 0 contributes (grid_rows = 1).
        let n = 24;
        let areas = proportional_areas(n, &[1.0, 1.0, 1.0]);
        let spec = summagen_partition::Shape::OneDRectangular.build(n, &areas);
        let a = random_matrix(n, n, 7);
        let b = random_matrix(n, n, 8);
        let r = multiply_panelled(&spec, &a, &b, GemmKernel::Blocked);
        let want = multiply(&spec, &a, &b, ExecutionMode::Real);
        assert!(approx_eq(&r.c, &want.c, 1e-10));
    }
}
