//! Simulated-time SummaGen runs at paper scale.
//!
//! The communication schedule is *executed* (threads, communicators,
//! broadcasts — with phantom payloads), so virtual times emerge from the
//! actual message pattern of the algorithm, while local DGEMMs advance each
//! rank's clock by the device-model execution time. This is how every
//! figure of the evaluation section is regenerated: the matrices for
//! N = 38 416 would occupy ~35 GB and ~10¹³ flops, far beyond a test
//! machine, but their *schedule* is cheap to execute.

use std::sync::Arc;

use summagen_comm::{ClockSnapshot, CostModel, EventSink, TrafficStats, Universe};
use summagen_partition::PartitionSpec;
use summagen_platform::energy::{EnergyMeter, MeterReading, PowerModel};
use summagen_platform::Platform;

use crate::stages::{horizontal_a, local_compute, vertical_b, StageData};

/// The outcome of a simulated-time run.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Matrix size.
    pub n: usize,
    /// Parallel execution time (max over ranks), seconds.
    pub exec_time: f64,
    /// Max over ranks of computation time (Figures 6b / 7b).
    pub comp_time: f64,
    /// Max over ranks of communication time (Figures 6c / 7c).
    pub comm_time: f64,
    /// Per-rank clock snapshots.
    pub clocks: Vec<ClockSnapshot>,
    /// Per-rank traffic counters.
    pub traffic: Vec<TrafficStats>,
    /// Total flops of the multiplication (`2·n³`).
    pub total_flops: f64,
    /// Optional energy reading (present when run via
    /// [`simulate_with_energy`]).
    pub energy: Option<MeterReading>,
}

impl SimReport {
    /// Achieved performance in FLOP/s (`2n³ / exec_time`) — the quantity
    /// the paper reports as TFLOPs.
    pub fn achieved_flops(&self) -> f64 {
        if self.exec_time == 0.0 {
            0.0
        } else {
            self.total_flops / self.exec_time
        }
    }
}

/// Runs SummaGen in simulated time on the given platform.
///
/// Rank `i` executes on `platform.processors[i]`; its local DGEMM times
/// come from the processor's speed function evaluated at the rank's total
/// partition area (the paper's `A(Z) / s(A(Z))` convention), and message
/// costs from `hockney`.
///
/// # Panics
/// Panics if the platform has fewer processors than the spec.
pub fn simulate(spec: &PartitionSpec, platform: &Platform, cost: impl CostModel) -> SimReport {
    simulate_observed(spec, platform, cost, None, None)
}

/// Like [`simulate`], additionally reporting every runtime event (sends,
/// receives, collectives, per-block GEMMs, stages) to `sink` — typically
/// a `summagen_trace::TraceRecorder`, whose finished trace yields Perfetto
/// timelines and the schedule's critical path.
pub fn simulate_instrumented(
    spec: &PartitionSpec,
    platform: &Platform,
    cost: impl CostModel,
    sink: Arc<dyn EventSink>,
) -> SimReport {
    simulate_observed(spec, platform, cost, Some(sink), None)
}

/// Like [`simulate`], with both observability channels optional: an event
/// sink for per-event spans and/or a [`summagen_comm::RuntimeMetrics`]
/// bundle whose counters and histograms (message volume, collective
/// latencies, panel steps, virtual GEMM throughput) aggregate across the
/// whole run. Either can be `None`; with both `None` this is exactly
/// [`simulate`].
pub fn simulate_observed(
    spec: &PartitionSpec,
    platform: &Platform,
    cost: impl CostModel,
    sink: Option<Arc<dyn EventSink>>,
    metrics: Option<Arc<summagen_comm::RuntimeMetrics>>,
) -> SimReport {
    simulate_observed_on(
        spec,
        platform,
        cost,
        sink,
        metrics,
        summagen_comm::Backend::Channel,
    )
}

/// Like [`simulate_observed`], running the universe over an explicit
/// transport [`summagen_comm::Backend`]. Virtual time is backend-blind,
/// so the reports are bit-identical across backends — which is exactly
/// what makes this useful: `bench --backend tcp` exercises the framed
/// loopback wire under the same workload the channel baselines recorded.
pub fn simulate_observed_on(
    spec: &PartitionSpec,
    platform: &Platform,
    cost: impl CostModel,
    sink: Option<Arc<dyn EventSink>>,
    metrics: Option<Arc<summagen_comm::RuntimeMetrics>>,
    backend: summagen_comm::Backend,
) -> SimReport {
    assert!(
        platform.len() >= spec.nprocs,
        "platform has {} processors, spec wants {}",
        platform.len(),
        spec.nprocs
    );
    let areas = spec.areas();
    let mut universe = Universe::new(spec.nprocs, cost).with_backend(backend);
    if let Some(sink) = sink {
        universe = universe.with_event_sink(sink);
    }
    if let Some(metrics) = metrics {
        universe = universe.with_metrics(metrics);
    }
    let results = universe.run(|comm| {
        let rank = comm.rank();
        let mut state = StageData::Phantom;
        // No faults are injected on simulation runs, so a stage error here
        // is a runtime bug: fail loudly rather than report bogus timings.
        horizontal_a(&comm, spec, rank, &mut state).expect("horizontal A stage failed");
        vertical_b(&comm, spec, rank, &mut state).expect("vertical B stage failed");
        let proc = &platform.processors[rank];
        let area = areas[rank] as f64;
        let (_, flops) = local_compute(&comm, spec, rank, &mut state, |blk| {
            proc.dgemm_time(blk.rows, spec.n, blk.cols, area)
        });
        (comm.clock_snapshot(), comm.traffic(), flops)
    });

    let clocks: Vec<ClockSnapshot> = results.iter().map(|r| r.0).collect();
    let traffic: Vec<TrafficStats> = results.iter().map(|r| r.1).collect();
    let n = spec.n;
    SimReport {
        n,
        exec_time: clocks.iter().map(|c| c.now).fold(0.0, f64::max),
        comp_time: clocks.iter().map(|c| c.comp_time).fold(0.0, f64::max),
        comm_time: clocks.iter().map(|c| c.comm_time).fold(0.0, f64::max),
        clocks,
        traffic,
        total_flops: 2.0 * (n as f64).powi(3),
        energy: None,
    }
}

/// Like [`simulate`], additionally recording per-rank event timelines
/// (compute / communicate / wait intervals in virtual time) — the raw
/// material for Gantt charts and exact energy metering.
pub fn simulate_traced(
    spec: &PartitionSpec,
    platform: &Platform,
    cost: impl CostModel,
) -> (SimReport, Vec<Vec<summagen_comm::TraceEvent>>) {
    assert!(
        platform.len() >= spec.nprocs,
        "platform has {} processors, spec wants {}",
        platform.len(),
        spec.nprocs
    );
    let areas = spec.areas();
    let universe = Universe::new(spec.nprocs, cost).traced(true);
    let results = universe.run(|comm| {
        let rank = comm.rank();
        let mut state = StageData::Phantom;
        horizontal_a(&comm, spec, rank, &mut state).expect("horizontal A stage failed");
        vertical_b(&comm, spec, rank, &mut state).expect("vertical B stage failed");
        let proc = &platform.processors[rank];
        let area = areas[rank] as f64;
        local_compute(&comm, spec, rank, &mut state, |blk| {
            proc.dgemm_time(blk.rows, spec.n, blk.cols, area)
        });
        (
            comm.clock_snapshot(),
            comm.traffic(),
            comm.trace_snapshot().expect("tracing enabled"),
        )
    });

    let clocks: Vec<ClockSnapshot> = results.iter().map(|r| r.0).collect();
    let traffic: Vec<TrafficStats> = results.iter().map(|r| r.1).collect();
    let timelines: Vec<Vec<summagen_comm::TraceEvent>> = results.into_iter().map(|r| r.2).collect();
    let n = spec.n;
    let report = SimReport {
        n,
        exec_time: clocks.iter().map(|c| c.now).fold(0.0, f64::max),
        comp_time: clocks.iter().map(|c| c.comp_time).fold(0.0, f64::max),
        comm_time: clocks.iter().map(|c| c.comm_time).fold(0.0, f64::max),
        clocks,
        traffic,
        total_flops: 2.0 * (n as f64).powi(3),
        energy: None,
    };
    (report, timelines)
}

/// Meters a traced run with the WattsUp-style sampler applied to the
/// *actual* per-rank timelines (idle gaps and all), rather than the
/// busy-first approximation of [`simulate_with_energy`].
pub fn metered_energy_from_timelines(
    timelines: &[Vec<summagen_comm::TraceEvent>],
    power: &PowerModel,
    exec_time: f64,
) -> summagen_platform::energy::MeterReading {
    use summagen_comm::TraceKind;
    let intervals: Vec<Vec<(f64, f64, bool)>> = timelines
        .iter()
        .map(|tl| {
            tl.iter()
                .map(|e| (e.start, e.end, e.kind == TraceKind::Compute))
                .collect()
        })
        .collect();
    EnergyMeter::default().sample_intervals(power, &intervals, exec_time)
}

/// Like [`simulate`], additionally metering the run with the paper's
/// WattsUp-style 1 Hz meter and Equation 5.
pub fn simulate_with_energy(
    spec: &PartitionSpec,
    platform: &Platform,
    cost: impl CostModel,
    power: &PowerModel,
) -> SimReport {
    let mut report = simulate(spec, platform, cost);
    let comp: Vec<f64> = report.clocks.iter().map(|c| c.comp_time).collect();
    let comm: Vec<f64> = report.clocks.iter().map(|c| c.comm_time).collect();
    let reading = EnergyMeter::default().sample_run(power, &comp, &comm, report.exec_time);
    report.energy = Some(reading);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use summagen_comm::HockneyModel;
    use summagen_partition::{proportional_areas, Shape, ALL_FOUR_SHAPES};
    use summagen_platform::device::{HASWELL_E5_2670V3, NVIDIA_K40C, XEON_PHI_3120P};
    use summagen_platform::energy::hclserver1_power_model;
    use summagen_platform::profile::hclserver1;
    use summagen_platform::speed::ConstantSpeed;
    use summagen_platform::{AbstractProcessor, DeviceSpec, Platform};

    fn constant_platform(speeds: &[f64]) -> Platform {
        let specs: [DeviceSpec; 3] = [HASWELL_E5_2670V3, NVIDIA_K40C, XEON_PHI_3120P];
        Platform::new(
            speeds
                .iter()
                .enumerate()
                .map(|(i, &s)| {
                    AbstractProcessor::new(specs[i % 3].clone(), Arc::new(ConstantSpeed::new(s)))
                })
                .collect(),
            230.0,
        )
    }

    fn intra_node() -> HockneyModel {
        HockneyModel::intra_node()
    }

    #[test]
    fn comp_time_matches_analytic_for_cpm() {
        // Balanced areas on constant speeds: comp time = 2*a*n/s.
        let n = 1024;
        let speeds = [1.0e12, 2.0e12, 0.9e12];
        let areas = proportional_areas(n, &[1.0, 2.0, 0.9]);
        let spec = Shape::BlockRectangle.build(n, &areas);
        let platform = constant_platform(&speeds);
        let report = simulate(&spec, &platform, intra_node());
        // Analytic expectation: per-processor sum over its blocks of
        // 2·h·n·w / (s · aspect_efficiency(h, w)), then the max.
        let expect: f64 = (0..3)
            .map(|proc| {
                spec.blocks_of(proc)
                    .iter()
                    .map(|b| {
                        2.0 * b.rows as f64 * n as f64 * b.cols as f64
                            / (speeds[proc]
                                * summagen_platform::device::aspect_efficiency(b.rows, b.cols))
                    })
                    .sum::<f64>()
            })
            .fold(0.0, f64::max);
        let rel = (report.comp_time - expect).abs() / expect;
        assert!(rel < 1e-9, "comp {} vs analytic {expect}", report.comp_time);
    }

    #[test]
    fn simulated_time_is_deterministic() {
        let n = 2048;
        let areas = proportional_areas(n, &[1.0, 2.0, 0.9]);
        let spec = Shape::SquareCorner.build(n, &areas);
        let platform = hclserver1();
        let a = simulate(&spec, &platform, intra_node());
        let b = simulate(&spec, &platform, intra_node());
        assert_eq!(a.exec_time, b.exec_time);
        assert_eq!(a.comm_time, b.comm_time);
        assert_eq!(a.comp_time, b.comp_time);
    }

    #[test]
    fn four_shapes_tie_under_cpm_at_paper_scale() {
        // Section VI-A: with constant relative speeds the four shapes have
        // (nearly) equal execution times.
        let n = 30_720;
        let areas = proportional_areas(n, &[1.0, 2.0, 0.9]);
        let platform = constant_platform(&[0.475e12, 0.95e12, 0.4275e12]);
        let times: Vec<f64> = ALL_FOUR_SHAPES
            .iter()
            .map(|s| simulate(&s.build(n, &areas), &platform, intra_node()).exec_time)
            .collect();
        let spread = summagen_platform::stats::percent_spread(&times);
        assert!(spread < 10.0, "shape spread {spread}% times {times:?}");
    }

    #[test]
    fn computation_dominates_communication_at_paper_scale() {
        let n = 30_720;
        let areas = proportional_areas(n, &[1.0, 2.0, 0.9]);
        let spec = Shape::SquareRectangle.build(n, &areas);
        let report = simulate(&spec, &hclserver1(), intra_node());
        assert!(
            report.comp_time > 5.0 * report.comm_time,
            "comp {} comm {}",
            report.comp_time,
            report.comm_time
        );
    }

    #[test]
    fn achieved_flops_below_platform_plateau() {
        let n = 30_720;
        let areas = proportional_areas(n, &[1.0, 2.0, 0.9]);
        let spec = Shape::SquareRectangle.build(n, &areas);
        let report = simulate(&spec, &hclserver1(), intra_node());
        let tflops = report.achieved_flops() / 1e12;
        // Between 50 % and 90 % of the 2.5 TFLOPs peak.
        assert!((1.25..2.25).contains(&tflops), "achieved {tflops} TFLOPs");
    }

    #[test]
    fn energy_reading_present_and_positive() {
        let n = 25_600;
        let areas = proportional_areas(n, &[1.0, 2.0, 0.9]);
        let spec = Shape::SquareCorner.build(n, &areas);
        let report = simulate_with_energy(
            &spec,
            &hclserver1(),
            intra_node(),
            &hclserver1_power_model(),
        );
        let e = report.energy.unwrap();
        assert!(e.dynamic_energy_j > 0.0);
        assert!(e.total_energy_j > e.dynamic_energy_j);
    }

    #[test]
    fn traced_run_matches_untraced_times() {
        let n = 8_192;
        let areas = proportional_areas(n, &[1.0, 2.0, 0.9]);
        let spec = Shape::SquareCorner.build(n, &areas);
        let platform = hclserver1();
        let plain = simulate(&spec, &platform, intra_node());
        let (traced, timelines) = simulate_traced(&spec, &platform, intra_node());
        assert_eq!(plain.exec_time, traced.exec_time);
        assert_eq!(timelines.len(), 3);
        // Per-rank timeline durations reconcile with the clock categories.
        use summagen_comm::TraceKind;
        for (tl, clk) in timelines.iter().zip(&traced.clocks) {
            let comp: f64 = tl
                .iter()
                .filter(|e| e.kind == TraceKind::Compute)
                .map(|e| e.duration())
                .sum();
            assert!((comp - clk.comp_time).abs() < 1e-9);
            let comm: f64 = tl
                .iter()
                .filter(|e| e.kind != TraceKind::Compute)
                .map(|e| e.duration())
                .sum();
            assert!((comm - clk.comm_time).abs() < 1e-9);
        }
    }

    #[test]
    fn timeline_energy_close_to_busy_first_approximation() {
        let n = 25_600;
        let areas = proportional_areas(n, &[1.0, 2.0, 0.9]);
        let spec = Shape::BlockRectangle.build(n, &areas);
        let platform = hclserver1();
        let power = hclserver1_power_model();
        let approx = simulate_with_energy(&spec, &platform, intra_node(), &power)
            .energy
            .unwrap();
        let (report, timelines) = simulate_traced(&spec, &platform, intra_node());
        let exact = metered_energy_from_timelines(&timelines, &power, report.exec_time);
        let rel =
            (exact.dynamic_energy_j - approx.dynamic_energy_j).abs() / approx.dynamic_energy_j;
        assert!(rel < 0.05, "timeline vs approx energy differ by {rel}");
    }

    #[test]
    fn metered_run_populates_metrics_without_changing_times() {
        let n = 8_192;
        let areas = proportional_areas(n, &[1.0, 2.0, 0.9]);
        let spec = Shape::SquareCorner.build(n, &areas);
        let platform = hclserver1();
        let plain = simulate(&spec, &platform, intra_node());
        let metrics = summagen_comm::RuntimeMetrics::fresh();
        let metered =
            simulate_observed(&spec, &platform, intra_node(), None, Some(metrics.clone()));
        assert_eq!(plain.exec_time, metered.exec_time);
        // One virtual GEMM record per owned sub-partition; flops match the
        // report's total.
        let blocks: usize = (0..spec.nprocs).map(|r| spec.blocks_of(r).len()).sum();
        assert_eq!(metrics.gemm.ops.get(), blocks as u64);
        let flops = metrics.gemm.flops.get() as f64;
        let rel = (flops - metered.total_flops).abs() / metered.total_flops;
        assert!(
            rel < 0.05,
            "metric flops {flops} vs {}",
            metered.total_flops
        );
        // Message accounting agrees with the traffic counters.
        let sent: u64 = metered.traffic.iter().map(|t| t.bytes_sent).sum();
        assert_eq!(metrics.send_bytes.get(), sent);
        assert!(metrics.send_msgs.get() > 0);
        // The plain 3-stage schedule has no panel loop.
        assert_eq!(metrics.panel_steps.get(), 0);
    }

    #[test]
    fn larger_problems_take_longer() {
        let platform = hclserver1();
        let mut last = 0.0;
        for &n in &[4096usize, 8192, 16_384] {
            let areas = proportional_areas(n, &[1.0, 2.0, 0.9]);
            let spec = Shape::BlockRectangle.build(n, &areas);
            let t = simulate(&spec, &platform, intra_node()).exec_time;
            assert!(t > last, "n={n}: {t} !> {last}");
            last = t;
        }
    }

    #[test]
    fn traffic_scales_with_problem_size() {
        let platform = hclserver1();
        let vol = |n: usize| {
            let areas = proportional_areas(n, &[1.0, 2.0, 0.9]);
            let spec = Shape::OneDRectangular.build(n, &areas);
            let r = simulate(&spec, &platform, intra_node());
            r.traffic.iter().map(|t| t.bytes_sent).sum::<u64>()
        };
        let v1 = vol(2048);
        let v2 = vol(4096);
        // Communication volume grows ~quadratically with n.
        let ratio = v2 as f64 / v1 as f64;
        assert!((3.0..5.0).contains(&ratio), "ratio {ratio}");
    }
}
