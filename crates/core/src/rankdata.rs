//! Distribution of the global matrices to ranks and re-assembly of `C`.
//!
//! The paper partitions `A`, `B` and `C` identically: processor `i` owns
//! the elements of all three matrices inside its sub-partitions. These
//! helpers carve a global matrix into per-rank block sets and put the
//! computed `C` blocks back together.

use summagen_matrix::DenseMatrix;
use summagen_partition::{PartitionSpec, ProcBlock};

/// One rank's share of the input matrices.
#[derive(Debug, Clone, PartialEq)]
pub struct RankMatrices {
    /// Owned sub-partitions of `A`, in grid row-major order.
    pub a_blocks: Vec<(ProcBlock, DenseMatrix)>,
    /// Owned sub-partitions of `B`, in grid row-major order.
    pub b_blocks: Vec<(ProcBlock, DenseMatrix)>,
}

impl RankMatrices {
    /// Looks up the owned `A` block at grid position `(bi, bj)`.
    pub fn a_block(&self, bi: usize, bj: usize) -> Option<&DenseMatrix> {
        self.a_blocks
            .iter()
            .find(|(b, _)| b.block_i == bi && b.block_j == bj)
            .map(|(_, m)| m)
    }

    /// Looks up the owned `B` block at grid position `(bi, bj)`.
    pub fn b_block(&self, bi: usize, bj: usize) -> Option<&DenseMatrix> {
        self.b_blocks
            .iter()
            .find(|(b, _)| b.block_i == bi && b.block_j == bj)
            .map(|(_, m)| m)
    }
}

/// Splits global `A` and `B` into per-rank block sets according to `spec`.
///
/// # Panics
/// Panics if the matrices are not `n × n` for the spec's `n`.
pub fn distribute(spec: &PartitionSpec, a: &DenseMatrix, b: &DenseMatrix) -> Vec<RankMatrices> {
    assert_eq!((a.rows(), a.cols()), (spec.n, spec.n), "A shape mismatch");
    assert_eq!((b.rows(), b.cols()), (spec.n, spec.n), "B shape mismatch");
    (0..spec.nprocs)
        .map(|proc| {
            let blocks = spec.blocks_of(proc);
            RankMatrices {
                a_blocks: blocks
                    .iter()
                    .map(|&blk| (blk, a.submatrix(blk.row, blk.col, blk.rows, blk.cols)))
                    .collect(),
                b_blocks: blocks
                    .iter()
                    .map(|&blk| (blk, b.submatrix(blk.row, blk.col, blk.rows, blk.cols)))
                    .collect(),
            }
        })
        .collect()
}

/// Reassembles the global `C` from per-rank computed blocks.
///
/// # Panics
/// Panics if the blocks do not exactly tile the matrix.
pub fn assemble(spec: &PartitionSpec, per_rank: &[Vec<(ProcBlock, DenseMatrix)>]) -> DenseMatrix {
    let mut c = DenseMatrix::zeros(spec.n, spec.n);
    let mut covered = 0usize;
    for blocks in per_rank {
        for (blk, m) in blocks {
            assert_eq!((m.rows(), m.cols()), (blk.rows, blk.cols), "block shape");
            c.set_submatrix(blk.row, blk.col, m);
            covered += blk.rows * blk.cols;
        }
    }
    assert_eq!(covered, spec.n * spec.n, "blocks do not tile the matrix");
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use summagen_matrix::deterministic_matrix;

    fn fig1a() -> PartitionSpec {
        PartitionSpec::new(
            vec![0, 1, 1, 1, 1, 1, 1, 1, 2],
            vec![9, 3, 4],
            vec![9, 3, 4],
            3,
        )
    }

    #[test]
    fn distribute_gives_each_rank_its_blocks() {
        let spec = fig1a();
        let a = deterministic_matrix(16, 16);
        let b = deterministic_matrix(16, 16);
        let ranks = distribute(&spec, &a, &b);
        assert_eq!(ranks.len(), 3);
        assert_eq!(ranks[0].a_blocks.len(), 1);
        assert_eq!(ranks[1].a_blocks.len(), 7);
        assert_eq!(ranks[2].a_blocks.len(), 1);
        // Block content matches the source window.
        let (blk, m) = &ranks[2].a_blocks[0];
        assert_eq!((blk.row, blk.col), (12, 12));
        assert_eq!(*m, a.submatrix(12, 12, 4, 4));
    }

    #[test]
    fn block_lookup_by_grid_position() {
        let spec = fig1a();
        let a = deterministic_matrix(16, 16);
        let ranks = distribute(&spec, &a, &a);
        assert!(ranks[0].a_block(0, 0).is_some());
        assert!(ranks[0].a_block(1, 1).is_none());
        assert!(ranks[1].b_block(1, 1).is_some());
    }

    #[test]
    fn assemble_inverts_distribute() {
        let spec = fig1a();
        let a = deterministic_matrix(16, 16);
        let ranks = distribute(&spec, &a, &a);
        let blocks: Vec<_> = ranks.into_iter().map(|r| r.a_blocks).collect();
        let rebuilt = assemble(&spec, &blocks);
        assert_eq!(rebuilt, a);
    }

    #[test]
    #[should_panic(expected = "A shape mismatch")]
    fn distribute_rejects_wrong_shape() {
        let spec = fig1a();
        let a = deterministic_matrix(8, 8);
        distribute(&spec, &a, &a);
    }

    #[test]
    #[should_panic(expected = "do not tile")]
    fn assemble_rejects_missing_blocks() {
        let spec = fig1a();
        let a = deterministic_matrix(16, 16);
        let ranks = distribute(&spec, &a, &a);
        // Drop rank 2's block.
        let blocks: Vec<_> = ranks[..2].iter().map(|r| r.a_blocks.clone()).collect();
        assemble(&spec, &blocks);
    }
}
