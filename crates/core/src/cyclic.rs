//! Block-cyclic distribution and SUMMA over it — the Elemental-style
//! baseline from the paper's related work (Section III-E: "support for
//! different matrix distributions including block-cyclic distribution").
//!
//! The matrix is tiled into `nb × nb` blocks; block `(bi, bj)` lives on
//! processor `(bi mod pr, bj mod pc)` of a `pr × pc` grid. Each rank
//! stores its blocks packed into one contiguous local matrix.

use summagen_comm::{ClockSnapshot, CostModel, Payload, TrafficStats, Universe, ZeroCost};
use summagen_matrix::{gemm_blocked, DenseMatrix};

/// A 2D block-cyclic distribution descriptor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockCyclic {
    /// Block (tile) edge.
    pub nb: usize,
    /// Process grid rows.
    pub pr: usize,
    /// Process grid columns.
    pub pc: usize,
}

impl BlockCyclic {
    /// Creates a descriptor.
    ///
    /// # Panics
    /// Panics if any parameter is zero.
    pub fn new(nb: usize, pr: usize, pc: usize) -> Self {
        assert!(nb > 0 && pr > 0 && pc > 0, "invalid descriptor");
        Self { nb, pr, pc }
    }

    /// Number of processes.
    pub fn nprocs(&self) -> usize {
        self.pr * self.pc
    }

    /// Owner of tile `(bi, bj)`.
    pub fn owner(&self, bi: usize, bj: usize) -> usize {
        (bi % self.pr) * self.pc + (bj % self.pc)
    }

    /// Number of tile rows/columns for an `n × n` matrix.
    pub fn tiles(&self, n: usize) -> usize {
        n.div_ceil(self.nb)
    }

    /// Size (rows or cols) of tile index `t` for matrix size `n`.
    pub fn tile_extent(&self, n: usize, t: usize) -> usize {
        let start = t * self.nb;
        self.nb.min(n - start)
    }

    /// Global tile indices along one dimension owned by grid coordinate
    /// `g` out of `parts`.
    fn owned_tiles(&self, n: usize, g: usize, parts: usize) -> Vec<usize> {
        (0..self.tiles(n)).filter(|t| t % parts == g).collect()
    }

    /// Local matrix shape of processor `proc` for an `n × n` matrix.
    pub fn local_shape(&self, n: usize, proc: usize) -> (usize, usize) {
        let (pi, pj) = (proc / self.pc, proc % self.pc);
        let rows: usize = self
            .owned_tiles(n, pi, self.pr)
            .iter()
            .map(|&t| self.tile_extent(n, t))
            .sum();
        let cols: usize = self
            .owned_tiles(n, pj, self.pc)
            .iter()
            .map(|&t| self.tile_extent(n, t))
            .sum();
        (rows, cols)
    }

    /// Packs the blocks of `m` owned by `proc` into one contiguous local
    /// matrix (tiles concatenated in global order).
    pub fn local_part(&self, m: &DenseMatrix, proc: usize) -> DenseMatrix {
        let n = m.rows();
        assert_eq!(m.cols(), n, "square matrices only");
        let (pi, pj) = (proc / self.pc, proc % self.pc);
        let row_tiles = self.owned_tiles(n, pi, self.pr);
        let col_tiles = self.owned_tiles(n, pj, self.pc);
        let (lr, lc) = self.local_shape(n, proc);
        let mut out = DenseMatrix::zeros(lr, lc);
        let mut r = 0;
        for &ti in &row_tiles {
            let h = self.tile_extent(n, ti);
            let mut c = 0;
            for &tj in &col_tiles {
                let w = self.tile_extent(n, tj);
                out.set_submatrix(r, c, &m.submatrix(ti * self.nb, tj * self.nb, h, w));
                c += w;
            }
            r += h;
        }
        out
    }

    /// Reassembles a global matrix from all ranks' local parts.
    ///
    /// # Panics
    /// Panics if `parts.len() != nprocs()` or shapes disagree.
    pub fn assemble(&self, n: usize, parts: &[DenseMatrix]) -> DenseMatrix {
        assert_eq!(parts.len(), self.nprocs(), "part count");
        let mut out = DenseMatrix::zeros(n, n);
        for (proc, local) in parts.iter().enumerate() {
            let (pi, pj) = (proc / self.pc, proc % self.pc);
            assert_eq!(
                (local.rows(), local.cols()),
                self.local_shape(n, proc),
                "local shape of proc {proc}"
            );
            let mut r = 0;
            for &ti in &self.owned_tiles(n, pi, self.pr) {
                let h = self.tile_extent(n, ti);
                let mut c = 0;
                for &tj in &self.owned_tiles(n, pj, self.pc) {
                    let w = self.tile_extent(n, tj);
                    out.set_submatrix(ti * self.nb, tj * self.nb, &local.submatrix(r, c, h, w));
                    c += w;
                }
                r += h;
            }
        }
        out
    }
}

/// SUMMA over a block-cyclic distribution (Elemental-style): one panel
/// per tile column/row, broadcast along process rows/columns, rank-`kb`
/// local updates into the packed local `C`.
pub fn summa_cyclic_multiply(
    a: &DenseMatrix,
    b: &DenseMatrix,
    dist: BlockCyclic,
) -> (DenseMatrix, Vec<ClockSnapshot>, Vec<TrafficStats>) {
    summa_cyclic_multiply_with_cost(a, b, dist, ZeroCost)
}

/// [`summa_cyclic_multiply`] with a communication cost model.
pub fn summa_cyclic_multiply_with_cost(
    a: &DenseMatrix,
    b: &DenseMatrix,
    dist: BlockCyclic,
    cost: impl CostModel,
) -> (DenseMatrix, Vec<ClockSnapshot>, Vec<TrafficStats>) {
    let n = a.rows();
    assert_eq!((a.rows(), a.cols()), (n, n), "A must be square");
    assert_eq!((b.rows(), b.cols()), (n, n), "B must be square");
    let p = dist.nprocs();
    let universe = Universe::new(p, cost);

    let results = universe.run(|comm| {
        let rank = comm.rank();
        let (pi, pj) = (rank / dist.pc, rank % dist.pc);
        let a_local = dist.local_part(a, rank);
        let b_local = dist.local_part(b, rank);
        let (lr, lc) = dist.local_shape(n, rank);
        let mut c_local = DenseMatrix::zeros(lr, lc);

        let row_members: Vec<usize> = (0..dist.pc).map(|j| pi * dist.pc + j).collect();
        let col_members: Vec<usize> = (0..dist.pr).map(|i| i * dist.pc + pj).collect();
        let mut row_comm = comm.subgroup(&row_members, 7_000 + pi as u64).unwrap();
        let mut col_comm = comm.subgroup(&col_members, 8_000 + pj as u64).unwrap();

        for bk in 0..dist.tiles(n) {
            let kb = dist.tile_extent(n, bk);
            // A panel: my local rows x tile column bk, owned by proc
            // column bk % pc; its local column offset is the position of
            // bk among that column's owned tiles.
            let a_owner_col = bk % dist.pc;
            let a_payload = if pj == a_owner_col {
                let local_col_idx = bk / dist.pc;
                let col_off: usize = (0..local_col_idx)
                    .map(|i| dist.tile_extent(n, i * dist.pc + a_owner_col))
                    .sum();
                Payload::F64(a_local.submatrix(0, col_off, lr, kb).as_slice().to_vec())
            } else {
                Payload::F64(Vec::new())
            };
            let a_panel = row_comm.bcast(a_owner_col, a_payload).into_f64();

            // B panel: tile row bk x my local columns, owned by proc row
            // bk % pr.
            let b_owner_row = bk % dist.pr;
            let b_payload = if pi == b_owner_row {
                let local_row_idx = bk / dist.pr;
                let row_off: usize = (0..local_row_idx)
                    .map(|i| dist.tile_extent(n, i * dist.pr + b_owner_row))
                    .sum();
                Payload::F64(b_local.submatrix(row_off, 0, kb, lc).as_slice().to_vec())
            } else {
                Payload::F64(Vec::new())
            };
            let b_panel = col_comm.bcast(b_owner_row, b_payload).into_f64();

            gemm_blocked(
                lr,
                lc,
                kb,
                1.0,
                &a_panel,
                kb.max(1),
                &b_panel,
                lc.max(1),
                1.0,
                c_local.as_mut_slice(),
                lc.max(1),
            );
        }
        (c_local, comm.clock_snapshot(), comm.traffic())
    });

    let mut parts = Vec::with_capacity(p);
    let mut clocks = Vec::with_capacity(p);
    let mut traffic = Vec::with_capacity(p);
    for (c_local, clk, tr) in results {
        parts.push(c_local);
        clocks.push(clk);
        traffic.push(tr);
    }
    (dist.assemble(n, &parts), clocks, traffic)
}

#[cfg(test)]
mod tests {
    use super::*;
    use summagen_matrix::{approx_eq, gemm_naive, gemm_tolerance, random_matrix};

    fn reference(a: &DenseMatrix, b: &DenseMatrix) -> DenseMatrix {
        let n = a.rows();
        let mut c = DenseMatrix::zeros(n, n);
        gemm_naive(
            n,
            n,
            n,
            1.0,
            a.as_slice(),
            n,
            b.as_slice(),
            n,
            0.0,
            c.as_mut_slice(),
            n,
        );
        c
    }

    #[test]
    fn owner_is_cyclic() {
        let d = BlockCyclic::new(4, 2, 3);
        assert_eq!(d.owner(0, 0), 0);
        assert_eq!(d.owner(0, 3), 0);
        assert_eq!(d.owner(1, 0), 3);
        assert_eq!(d.owner(2, 4), 1);
        assert_eq!(d.nprocs(), 6);
    }

    #[test]
    fn tile_extent_handles_remainders() {
        let d = BlockCyclic::new(4, 2, 2);
        assert_eq!(d.tiles(10), 3);
        assert_eq!(d.tile_extent(10, 0), 4);
        assert_eq!(d.tile_extent(10, 2), 2);
    }

    #[test]
    fn local_shapes_cover_the_matrix() {
        let d = BlockCyclic::new(3, 2, 3);
        let n = 14;
        let total: usize = (0..d.nprocs())
            .map(|p| {
                let (r, c) = d.local_shape(n, p);
                r * c
            })
            .sum();
        assert_eq!(total, n * n);
    }

    #[test]
    fn distribute_assemble_roundtrip() {
        for (n, nb, pr, pc) in [
            (12usize, 2, 2, 2),
            (13, 3, 2, 3),
            (16, 5, 3, 2),
            (9, 4, 1, 2),
        ] {
            let d = BlockCyclic::new(nb, pr, pc);
            let m = random_matrix(n, n, 42);
            let parts: Vec<DenseMatrix> = (0..d.nprocs()).map(|p| d.local_part(&m, p)).collect();
            assert_eq!(d.assemble(n, &parts), m, "n={n} nb={nb} {pr}x{pc}");
        }
    }

    #[test]
    fn summa_cyclic_correct() {
        for (n, nb, pr, pc) in [
            (16usize, 4, 2, 2),
            (18, 3, 2, 3),
            (20, 6, 2, 2),
            (15, 4, 3, 1),
        ] {
            let a = random_matrix(n, n, 1);
            let b = random_matrix(n, n, 2);
            let d = BlockCyclic::new(nb, pr, pc);
            let (c, _, _) = summa_cyclic_multiply(&a, &b, d);
            assert!(
                approx_eq(&c, &reference(&a, &b), gemm_tolerance(n) * 100.0),
                "n={n} nb={nb} grid {pr}x{pc}"
            );
        }
    }

    #[test]
    fn summa_cyclic_single_process() {
        let n = 10;
        let a = random_matrix(n, n, 3);
        let b = random_matrix(n, n, 4);
        let (c, _, traffic) = summa_cyclic_multiply(&a, &b, BlockCyclic::new(4, 1, 1));
        assert!(approx_eq(&c, &reference(&a, &b), gemm_tolerance(n) * 100.0));
        assert_eq!(traffic[0].msgs_sent, 0);
    }

    #[test]
    fn cyclic_distribution_balances_load_better_than_block() {
        // With nb much smaller than n/p, every processor's local area is
        // within one tile row/column of the ideal n²/p.
        let d = BlockCyclic::new(2, 2, 2);
        let n = 32;
        let ideal = (n * n / 4) as f64;
        for p in 0..4 {
            let (r, c) = d.local_shape(n, p);
            let frac = (r * c) as f64 / ideal;
            assert!((0.9..1.1).contains(&frac), "proc {p}: {frac}");
        }
    }

    #[test]
    fn hockney_cost_produces_comm_time() {
        use summagen_comm::HockneyModel;
        let n = 16;
        let a = random_matrix(n, n, 5);
        let b = random_matrix(n, n, 6);
        let (_, clocks, _) = summa_cyclic_multiply_with_cost(
            &a,
            &b,
            BlockCyclic::new(4, 2, 2),
            HockneyModel::intra_node(),
        );
        assert!(clocks.iter().all(|c| c.comm_time > 0.0));
    }
}
