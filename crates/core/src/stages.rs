//! The three SummaGen stages (Figures 2, 3 and 4 of the paper),
//! generalized to arbitrary grids and processor counts.
//!
//! # Panic policy
//!
//! Communication failures (a peer dying mid-broadcast, a timeout, a typed
//! payload mismatch) are *expected* at this layer and surface as
//! [`summagen_comm::CommError`] through the `CommResult` return values.
//! The remaining `expect`s in this module assert structural invariants
//! that [`PartitionSpec`] validation establishes before any stage runs —
//! every grid cell has exactly one owner, an owner's blocks exist in its
//! [`RankMatrices`], and a row/column participant is always a member of
//! the communicator built from its own participant list. Violating one of
//! these is a partitioner bug, not a runtime condition, so they panic.

use summagen_comm::{CommResult, Communicator, Payload, SpanKind, StageLabel};
use summagen_matrix::{copy_block, DenseMatrix, GemmKernel, GemmObserver};
use summagen_partition::{PartitionSpec, ProcBlock};

use crate::rankdata::RankMatrices;

/// Label space separating row communicators from column communicators.
const ROW_LABEL_BASE: u64 = 1 << 20;
const COL_LABEL_BASE: u64 = 1 << 21;

/// Working storage of one rank during a real-numeric run: `WA` holds the
/// needed sub-partition rows of `A` (local rows × n) and `WB` the needed
/// sub-partition columns of `B` (n × local cols).
pub(crate) struct Workspace {
    /// WA buffer, row-major with leading dimension `n`.
    pub wa: Vec<f64>,
    /// Local row offset of each grid row in WA (None = not needed).
    pub wa_row_off: Vec<Option<usize>>,
    /// WB buffer, row-major with leading dimension `wb_width`.
    pub wb: Vec<f64>,
    /// Local column offset of each grid column in WB (None = not needed).
    pub wb_col_off: Vec<Option<usize>>,
    /// Total width of WB.
    pub wb_width: usize,
}

impl Workspace {
    /// Allocates working matrices sized for `rank`'s participation.
    pub fn for_rank(spec: &PartitionSpec, rank: usize) -> Self {
        let n = spec.n;
        let mut wa_row_off = vec![None; spec.grid_rows];
        let mut local_rows = 0;
        for (bi, off) in wa_row_off.iter_mut().enumerate() {
            if spec.row_contains(rank, bi) {
                *off = Some(local_rows);
                local_rows += spec.heights[bi];
            }
        }
        let mut wb_col_off = vec![None; spec.grid_cols];
        let mut local_cols = 0;
        for (bj, off) in wb_col_off.iter_mut().enumerate() {
            if spec.col_contains(rank, bj) {
                *off = Some(local_cols);
                local_cols += spec.widths[bj];
            }
        }
        Self {
            wa: vec![0.0; local_rows * n],
            wa_row_off,
            wb: vec![0.0; n * local_cols],
            wb_col_off,
            wb_width: local_cols,
        }
    }
}

/// Per-rank execution state threaded through the three stages.
pub(crate) enum StageData<'a> {
    /// Real numeric execution with materialized blocks and workspaces.
    Real {
        data: &'a RankMatrices,
        ws: Workspace,
        kernel: GemmKernel,
    },
    /// Size-only execution: no element data moves or is stored.
    Phantom,
}

/// The sorted list of processors owning at least one sub-partition in grid
/// row `bi`.
fn row_participants(spec: &PartitionSpec, bi: usize) -> Vec<usize> {
    (0..spec.nprocs)
        .filter(|&p| spec.row_contains(p, bi))
        .collect()
}

/// The sorted list of processors owning at least one sub-partition in grid
/// column `bj`.
fn col_participants(spec: &PartitionSpec, bj: usize) -> Vec<usize> {
    (0..spec.nprocs)
        .filter(|&p| spec.col_contains(p, bj))
        .collect()
}

/// Stage 1 (Fig. 2): horizontal communications of `A`. After this call,
/// every rank holds (or, in phantom mode, has paid the communication cost
/// for) all `A` elements of every sub-partition row it participates in.
///
/// Returns `Err` if a broadcast fails — typically because a participating
/// rank died mid-stage, surfaced as [`summagen_comm::CommError::PeerFailed`].
pub(crate) fn horizontal_a(
    comm: &Communicator,
    spec: &PartitionSpec,
    rank: usize,
    state: &mut StageData<'_>,
) -> CommResult<()> {
    let stage_start = comm.tracing_enabled().then(|| comm.now());
    for bi in 0..spec.grid_rows {
        if !spec.row_contains(rank, bi) {
            continue;
        }
        let participants = row_participants(spec, bi);
        if participants.len() == 1 {
            // Special case (Fig. 2 line 8): the whole row is ours — copy
            // locally, no communication.
            if let StageData::Real { data, ws, .. } = state {
                for bj in 0..spec.grid_cols {
                    let blk = owned_block(spec, bi, bj);
                    let m = data.a_block(bi, bj).expect("missing own A block");
                    stash_wa(spec, ws, &blk, m.as_slice());
                }
            }
            continue;
        }
        let mut row_comm = comm
            .subgroup(&participants, ROW_LABEL_BASE + bi as u64)
            .expect("participant missing from its row communicator");
        for bj in 0..spec.grid_cols {
            let owner = spec.owner(bi, bj);
            let root = participants
                .iter()
                .position(|&p| p == owner)
                .expect("owner not in row communicator");
            let blk = owned_block(spec, bi, bj);
            let payload = match state {
                StageData::Real { data, .. } if owner == rank => Payload::F64(
                    data.a_block(bi, bj)
                        .expect("missing own A block")
                        .as_slice()
                        .to_vec(),
                ),
                StageData::Real { .. } => Payload::F64(Vec::new()),
                StageData::Phantom => Payload::Phantom { elems: blk.area() },
            };
            let received = row_comm.try_bcast(root, payload)?;
            if let StageData::Real { ws, .. } = state {
                stash_wa(spec, ws, &blk, &received.try_into_f64()?);
            }
        }
    }
    if let Some(t0) = stage_start {
        comm.emit(
            t0,
            comm.now(),
            SpanKind::Stage {
                stage: StageLabel::HorizontalA,
            },
        );
    }
    Ok(())
}

/// Stage 2 (Fig. 3): vertical communications of `B`, symmetric to stage 1
/// over sub-partition columns.
pub(crate) fn vertical_b(
    comm: &Communicator,
    spec: &PartitionSpec,
    rank: usize,
    state: &mut StageData<'_>,
) -> CommResult<()> {
    let stage_start = comm.tracing_enabled().then(|| comm.now());
    for bj in 0..spec.grid_cols {
        if !spec.col_contains(rank, bj) {
            continue;
        }
        let participants = col_participants(spec, bj);
        if participants.len() == 1 {
            if let StageData::Real { data, ws, .. } = state {
                for bi in 0..spec.grid_rows {
                    let blk = owned_block(spec, bi, bj);
                    let m = data.b_block(bi, bj).expect("missing own B block");
                    stash_wb(spec, ws, &blk, m.as_slice());
                }
            }
            continue;
        }
        let mut col_comm = comm
            .subgroup(&participants, COL_LABEL_BASE + bj as u64)
            .expect("participant missing from its column communicator");
        for bi in 0..spec.grid_rows {
            let owner = spec.owner(bi, bj);
            let root = participants
                .iter()
                .position(|&p| p == owner)
                .expect("owner not in column communicator");
            let blk = owned_block(spec, bi, bj);
            let payload = match state {
                StageData::Real { data, .. } if owner == rank => Payload::F64(
                    data.b_block(bi, bj)
                        .expect("missing own B block")
                        .as_slice()
                        .to_vec(),
                ),
                StageData::Real { .. } => Payload::F64(Vec::new()),
                StageData::Phantom => Payload::Phantom { elems: blk.area() },
            };
            let received = col_comm.try_bcast(root, payload)?;
            if let StageData::Real { ws, .. } = state {
                stash_wb(spec, ws, &blk, &received.try_into_f64()?);
            }
        }
    }
    if let Some(t0) = stage_start {
        comm.emit(
            t0,
            comm.now(),
            SpanKind::Stage {
                stage: StageLabel::VerticalB,
            },
        );
    }
    Ok(())
}

/// Stage 3 (Fig. 4): local computations, one DGEMM per owned sub-partition
/// (`height × n` times `n × width`). Returns the computed `C` blocks (empty
/// in phantom mode) and the total flops performed.
pub(crate) fn local_compute(
    comm: &Communicator,
    spec: &PartitionSpec,
    rank: usize,
    state: &mut StageData<'_>,
    block_compute_seconds: impl Fn(&ProcBlock) -> f64,
) -> (Vec<(ProcBlock, DenseMatrix)>, f64) {
    let n = spec.n;
    let tracing = comm.tracing_enabled();
    let metrics = comm.metrics();
    let observing = tracing || metrics.is_some();
    let stage_start = tracing.then(|| comm.now());
    // Captures the kernel's wall-clock duration so the trace can carry
    // both clock domains on one GEMM span.
    struct NsProbe(std::cell::Cell<u64>);
    impl GemmObserver for NsProbe {
        fn on_gemm(&self, _m: usize, _n: usize, _k: usize, elapsed_ns: u64) {
            self.0.set(elapsed_ns);
        }
    }
    // One observer feeding both consumers: the probe (trace spans want the
    // latest kernel_ns) and, when metered, the wall-clock GEMM histograms.
    struct Fanout<'a> {
        probe: &'a NsProbe,
        telemetry: Option<&'a summagen_metrics::GemmTelemetry>,
    }
    impl GemmObserver for Fanout<'_> {
        fn on_gemm(&self, m: usize, n: usize, k: usize, elapsed_ns: u64) {
            self.probe.on_gemm(m, n, k, elapsed_ns);
            if let Some(t) = self.telemetry {
                t.on_gemm(m, n, k, elapsed_ns);
            }
        }
    }
    let probe = NsProbe(std::cell::Cell::new(0));
    let fanout = Fanout {
        probe: &probe,
        telemetry: metrics.map(|m| &m.gemm),
    };
    let mut out = Vec::new();
    let mut total_flops = 0.0;
    for blk in spec.blocks_of(rank) {
        let flops = 2.0 * blk.rows as f64 * blk.cols as f64 * n as f64;
        total_flops += flops;
        probe.0.set(0);
        match state {
            StageData::Real { ws, kernel, .. } => {
                let a_off = ws.wa_row_off[blk.block_i].expect("WA row missing") * n;
                let b_off = ws.wb_col_off[blk.block_j].expect("WB column missing");
                let mut c = DenseMatrix::zeros(blk.rows, blk.cols);
                kernel.run_observed(
                    blk.rows,
                    blk.cols,
                    n,
                    1.0,
                    &ws.wa[a_off..],
                    n,
                    &ws.wb[b_off..],
                    ws.wb_width,
                    0.0,
                    c.as_mut_slice(),
                    blk.cols,
                    observing.then_some(&fanout as &dyn GemmObserver),
                );
                out.push((blk, c));
            }
            StageData::Phantom => {}
        }
        let gemm_start = observing.then(|| comm.now());
        comm.advance_compute(block_compute_seconds(&blk));
        if let Some(t0) = gemm_start {
            let t1 = comm.now();
            if tracing {
                comm.emit(
                    t0,
                    t1,
                    SpanKind::Gemm {
                        m: blk.rows,
                        n: blk.cols,
                        k: n,
                        flops,
                        kernel_ns: probe.0.get(),
                    },
                );
            }
            if let Some(m) = metrics {
                m.gemm.record_virtual(flops, t1 - t0);
            }
        }
    }
    if let Some(t0) = stage_start {
        comm.emit(
            t0,
            comm.now(),
            SpanKind::Stage {
                stage: StageLabel::LocalCompute,
            },
        );
    }
    (out, total_flops)
}

/// The block descriptor at grid position `(bi, bj)` regardless of owner.
fn owned_block(spec: &PartitionSpec, bi: usize, bj: usize) -> ProcBlock {
    ProcBlock {
        block_i: bi,
        block_j: bj,
        row: spec.row_offset(bi),
        col: spec.col_offset(bj),
        rows: spec.heights[bi],
        cols: spec.widths[bj],
    }
}

/// Stores an `A` block (row-major `blk.rows × blk.cols`) into WA.
fn stash_wa(spec: &PartitionSpec, ws: &mut Workspace, blk: &ProcBlock, src: &[f64]) {
    let n = spec.n;
    let local = ws.wa_row_off[blk.block_i].expect("WA row missing");
    let dst_start = local * n + blk.col;
    copy_block(
        &mut ws.wa[dst_start..],
        n,
        src,
        blk.cols,
        blk.rows,
        blk.cols,
    );
}

/// Stores a `B` block into WB.
fn stash_wb(_spec: &PartitionSpec, ws: &mut Workspace, blk: &ProcBlock, src: &[f64]) {
    let local = ws.wb_col_off[blk.block_j].expect("WB column missing");
    let dst_start = blk.row * ws.wb_width + local;
    copy_block(
        &mut ws.wb[dst_start..],
        ws.wb_width,
        src,
        blk.cols,
        blk.rows,
        blk.cols,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig1a() -> PartitionSpec {
        PartitionSpec::new(
            vec![0, 1, 1, 1, 1, 1, 1, 1, 2],
            vec![9, 3, 4],
            vec![9, 3, 4],
            3,
        )
    }

    #[test]
    fn participants_for_fig1a() {
        let s = fig1a();
        assert_eq!(row_participants(&s, 0), vec![0, 1]);
        assert_eq!(row_participants(&s, 1), vec![1]);
        assert_eq!(row_participants(&s, 2), vec![1, 2]);
        assert_eq!(col_participants(&s, 0), vec![0, 1]);
        assert_eq!(col_participants(&s, 2), vec![1, 2]);
    }

    #[test]
    fn workspace_sizes_match_participation() {
        let s = fig1a();
        // Rank 0 participates in grid row 0 (9 rows) and column 0 (9 cols).
        let ws = Workspace::for_rank(&s, 0);
        assert_eq!(ws.wa.len(), 9 * 16);
        assert_eq!(ws.wb.len(), 16 * 9);
        assert_eq!(ws.wa_row_off, vec![Some(0), None, None]);
        assert_eq!(ws.wb_col_off, vec![Some(0), None, None]);
        // Rank 1 participates everywhere.
        let ws1 = Workspace::for_rank(&s, 1);
        assert_eq!(ws1.wa.len(), 16 * 16);
        assert_eq!(ws1.wb_width, 16);
        // Rank 2: row 2 (4 rows), column 2 (4 cols).
        let ws2 = Workspace::for_rank(&s, 2);
        assert_eq!(ws2.wa.len(), 4 * 16);
        assert_eq!(ws2.wb_col_off, vec![None, None, Some(0)]);
    }

    #[test]
    fn owned_block_positions() {
        let s = fig1a();
        let b = owned_block(&s, 2, 1);
        assert_eq!((b.row, b.col, b.rows, b.cols), (12, 9, 4, 3));
    }
}
