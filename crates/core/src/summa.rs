//! Classic SUMMA (van de Geijn & Watts) on a 2D processor grid — the
//! homogeneous rectangular baseline from the paper's related work
//! (Section III-D / the Elemental library).
//!
//! Matrices are block-distributed over a `pr × pc` grid; the product is
//! accumulated in panels of width `nb`: for each panel, the owning
//! processor column broadcasts its slice of `A` along processor rows, the
//! owning processor row broadcasts its slice of `B` along processor
//! columns, and every processor runs a rank-`nb` update on its local `C`
//! block. Unlike SummaGen's one-shot gather, SUMMA pipelines many small
//! broadcasts — comparing the two on the same virtual platform is the
//! baseline ablation in `benches/ablations.rs` and `reproduce summa`.

use std::sync::Arc;

use summagen_comm::{
    ClockSnapshot, CostModel, EventSink, HockneyModel, SpanKind, StageLabel, TrafficStats,
    Universe, ZeroCost,
};
use summagen_matrix::{gemm_blocked, DenseMatrix};
use summagen_platform::Platform;

/// Outcome of a classic SUMMA run.
#[derive(Debug, Clone)]
pub struct SummaResult {
    /// The assembled product (real mode) — always present here since the
    /// numeric entry point assembles it.
    pub c: DenseMatrix,
    /// Per-rank clock snapshots.
    pub clocks: Vec<ClockSnapshot>,
    /// Per-rank traffic.
    pub traffic: Vec<TrafficStats>,
    /// Max over ranks of final virtual time.
    pub exec_time: f64,
}

/// Block boundaries for distributing `n` items over `parts` processors:
/// returns `parts + 1` offsets.
fn offsets(n: usize, parts: usize) -> Vec<usize> {
    (0..=parts).map(|i| i * n / parts).collect()
}

/// Multiplies `A × B` with classic SUMMA on a `pr × pc` grid using panel
/// width `nb`, with free communication.
///
/// # Panics
/// Panics unless `A`/`B` are square and of equal size, `pr·pc ≥ 1`, and
/// `n ≥ max(pr, pc)`.
pub fn summa_multiply(
    a: &DenseMatrix,
    b: &DenseMatrix,
    pr: usize,
    pc: usize,
    nb: usize,
) -> SummaResult {
    summa_multiply_with_cost(a, b, pr, pc, nb, ZeroCost)
}

/// [`summa_multiply`] with a communication cost model for the virtual
/// clocks.
pub fn summa_multiply_with_cost(
    a: &DenseMatrix,
    b: &DenseMatrix,
    pr: usize,
    pc: usize,
    nb: usize,
    cost: impl CostModel,
) -> SummaResult {
    let n = a.rows();
    assert_eq!((a.rows(), a.cols()), (n, n), "A must be square");
    assert_eq!((b.rows(), b.cols()), (n, n), "B must be square");
    assert!(pr >= 1 && pc >= 1, "grid must be non-empty");
    assert!(n >= pr && n >= pc, "matrix too small for the grid");
    assert!(nb >= 1, "panel width must be positive");

    let p = pr * pc;
    let rows = offsets(n, pr);
    let cols = offsets(n, pc);
    let universe = Universe::new(p, cost);

    let results = universe.run(|comm| {
        let rank = comm.rank();
        let (pi, pj) = (rank / pc, rank % pc);
        let (r0, r1) = (rows[pi], rows[pi + 1]);
        let (c0, c1) = (cols[pj], cols[pj + 1]);
        let (mr, mc) = (r1 - r0, c1 - c0);

        // Row communicator (same pi) and column communicator (same pj).
        let row_members: Vec<usize> = (0..pc).map(|j| pi * pc + j).collect();
        let col_members: Vec<usize> = (0..pr).map(|i| i * pc + pj).collect();
        let mut row_comm = comm
            .subgroup(&row_members, 1_000 + pi as u64)
            .expect("rank missing from its row");
        let mut col_comm = comm
            .subgroup(&col_members, 2_000 + pj as u64)
            .expect("rank missing from its column");

        // Local blocks.
        let a_local = a.submatrix(r0, c0, mr, mc);
        let b_local = b.submatrix(r0, c0, mr, mc);
        let mut c_local = DenseMatrix::zeros(mr, mc);

        // Panel loop: panels never straddle an owner boundary.
        let mut k0 = 0;
        while k0 < n {
            if let Some(m) = comm.metrics() {
                m.panel_steps.inc();
            }
            // Owner column of A panel / owner row of B panel.
            let jk = cols.partition_point(|&c| c <= k0) - 1;
            let ik = rows.partition_point(|&r| r <= k0) - 1;
            let kb = nb.min(cols[jk + 1] - k0).min(rows[ik + 1] - k0).min(n - k0);

            // A panel: my rows × columns k0..k0+kb, owned by (pi, jk).
            let a_panel = {
                let payload = if pj == jk {
                    a_local
                        .submatrix(0, k0 - cols[jk], mr, kb)
                        .as_slice()
                        .to_vec()
                } else {
                    Vec::new()
                };
                row_comm
                    .bcast(jk, summagen_comm::Payload::F64(payload))
                    .into_f64()
            };
            // B panel: rows k0..k0+kb × my columns, owned by (ik, pj).
            let b_panel = {
                let payload = if pi == ik {
                    b_local
                        .submatrix(k0 - rows[ik], 0, kb, mc)
                        .as_slice()
                        .to_vec()
                } else {
                    Vec::new()
                };
                col_comm
                    .bcast(ik, summagen_comm::Payload::F64(payload))
                    .into_f64()
            };

            // Rank-kb update: C_local += A_panel (mr x kb) * B_panel (kb x mc).
            gemm_blocked(
                mr,
                mc,
                kb,
                1.0,
                &a_panel,
                kb,
                &b_panel,
                mc,
                1.0,
                c_local.as_mut_slice(),
                mc,
            );
            k0 += kb;
        }

        ((r0, c0, c_local), comm.clock_snapshot(), comm.traffic())
    });

    let mut c = DenseMatrix::zeros(n, n);
    let mut clocks = Vec::with_capacity(p);
    let mut traffic = Vec::with_capacity(p);
    for ((r0, c0, blk), clk, tr) in results {
        c.set_submatrix(r0, c0, &blk);
        clocks.push(clk);
        traffic.push(tr);
    }
    let exec_time = clocks.iter().map(|c| c.now).fold(0.0, f64::max);
    SummaResult {
        c,
        clocks,
        traffic,
        exec_time,
    }
}

/// Simulated-time classic SUMMA at paper scale: executes the same panel
/// schedule with phantom payloads, timing local updates with the device
/// model (rank `i` on `platform.processors[i]`).
pub fn summa_simulate(
    n: usize,
    pr: usize,
    pc: usize,
    nb: usize,
    platform: &Platform,
    hockney: HockneyModel,
) -> (f64, Vec<ClockSnapshot>) {
    summa_simulate_with_sink(n, pr, pc, nb, platform, hockney, None)
}

/// Like [`summa_simulate`], additionally reporting every runtime event to
/// `sink`, with one `summa-panel` stage span per panel-loop iteration —
/// the pipelined schedule becomes directly comparable to SummaGen's
/// three-stage traces in Perfetto.
pub fn summa_simulate_instrumented(
    n: usize,
    pr: usize,
    pc: usize,
    nb: usize,
    platform: &Platform,
    hockney: HockneyModel,
    sink: Arc<dyn EventSink>,
) -> (f64, Vec<ClockSnapshot>) {
    summa_simulate_with_sink(n, pr, pc, nb, platform, hockney, Some(sink))
}

fn summa_simulate_with_sink(
    n: usize,
    pr: usize,
    pc: usize,
    nb: usize,
    platform: &Platform,
    hockney: HockneyModel,
    sink: Option<Arc<dyn EventSink>>,
) -> (f64, Vec<ClockSnapshot>) {
    let p = pr * pc;
    assert!(platform.len() >= p, "platform too small for the grid");
    assert!(n >= pr && n >= pc && nb >= 1, "bad geometry");
    let rows = offsets(n, pr);
    let cols = offsets(n, pc);
    let mut universe = Universe::new(p, hockney);
    if let Some(sink) = sink {
        universe = universe.with_event_sink(sink);
    }
    let clocks = universe.run(|comm| {
        let rank = comm.rank();
        let (pi, pj) = (rank / pc, rank % pc);
        let (mr, mc) = (rows[pi + 1] - rows[pi], cols[pj + 1] - cols[pj]);
        let row_members: Vec<usize> = (0..pc).map(|j| pi * pc + j).collect();
        let col_members: Vec<usize> = (0..pr).map(|i| i * pc + pj).collect();
        let mut row_comm = comm.subgroup(&row_members, 1_000 + pi as u64).unwrap();
        let mut col_comm = comm.subgroup(&col_members, 2_000 + pj as u64).unwrap();
        let proc = &platform.processors[rank];
        let area = (mr * mc) as f64;
        let tracing = comm.tracing_enabled();

        let mut k0 = 0;
        while k0 < n {
            if let Some(m) = comm.metrics() {
                m.panel_steps.inc();
            }
            let panel_start = tracing.then(|| comm.now());
            let jk = cols.partition_point(|&c| c <= k0) - 1;
            let ik = rows.partition_point(|&r| r <= k0) - 1;
            let kb = nb.min(cols[jk + 1] - k0).min(rows[ik + 1] - k0).min(n - k0);
            row_comm.bcast(jk, summagen_comm::Payload::Phantom { elems: mr * kb });
            col_comm.bcast(ik, summagen_comm::Payload::Phantom { elems: kb * mc });
            let gemm_start = tracing.then(|| comm.now());
            comm.advance_compute(proc.dgemm_time(mr, kb, mc, area));
            if let Some(t0) = gemm_start {
                comm.emit(
                    t0,
                    comm.now(),
                    SpanKind::Gemm {
                        m: mr,
                        n: mc,
                        k: kb,
                        flops: 2.0 * mr as f64 * mc as f64 * kb as f64,
                        kernel_ns: 0,
                    },
                );
            }
            if let Some(t0) = panel_start {
                comm.emit(
                    t0,
                    comm.now(),
                    SpanKind::Stage {
                        stage: StageLabel::SummaPanel,
                    },
                );
            }
            k0 += kb;
        }
        comm.clock_snapshot()
    });
    let exec = clocks.iter().map(|c| c.now).fold(0.0, f64::max);
    (exec, clocks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use summagen_matrix::{approx_eq, gemm_naive, gemm_tolerance, random_matrix};

    fn reference(a: &DenseMatrix, b: &DenseMatrix) -> DenseMatrix {
        let n = a.rows();
        let mut c = DenseMatrix::zeros(n, n);
        gemm_naive(
            n,
            n,
            n,
            1.0,
            a.as_slice(),
            n,
            b.as_slice(),
            n,
            0.0,
            c.as_mut_slice(),
            n,
        );
        c
    }

    #[test]
    fn summa_2x2_correct() {
        let n = 32;
        let a = random_matrix(n, n, 1);
        let b = random_matrix(n, n, 2);
        let r = summa_multiply(&a, &b, 2, 2, 8);
        assert!(approx_eq(
            &r.c,
            &reference(&a, &b),
            gemm_tolerance(n) * 100.0
        ));
    }

    #[test]
    fn summa_rect_grids_and_odd_sizes() {
        for (n, pr, pc, nb) in [
            (30usize, 3, 2, 4),
            (25, 1, 5, 7),
            (17, 2, 2, 16),
            (40, 4, 1, 3),
        ] {
            let a = random_matrix(n, n, 10);
            let b = random_matrix(n, n, 11);
            let r = summa_multiply(&a, &b, pr, pc, nb);
            assert!(
                approx_eq(&r.c, &reference(&a, &b), gemm_tolerance(n) * 100.0),
                "n={n} grid {pr}x{pc} nb={nb}"
            );
        }
    }

    #[test]
    fn summa_single_processor() {
        let n = 16;
        let a = random_matrix(n, n, 3);
        let b = random_matrix(n, n, 4);
        let r = summa_multiply(&a, &b, 1, 1, 4);
        assert!(approx_eq(
            &r.c,
            &reference(&a, &b),
            gemm_tolerance(n) * 100.0
        ));
        assert_eq!(r.traffic[0].msgs_sent, 0);
    }

    #[test]
    fn panel_width_does_not_change_result() {
        let n = 24;
        let a = random_matrix(n, n, 5);
        let b = random_matrix(n, n, 6);
        let r1 = summa_multiply(&a, &b, 2, 2, 1);
        let r2 = summa_multiply(&a, &b, 2, 2, 12);
        assert!(approx_eq(&r1.c, &r2.c, 1e-10));
    }

    #[test]
    fn narrower_panels_mean_more_messages() {
        let n = 32;
        let a = random_matrix(n, n, 7);
        let b = random_matrix(n, n, 8);
        let wide = summa_multiply(&a, &b, 2, 2, 16);
        let narrow = summa_multiply(&a, &b, 2, 2, 2);
        let msgs = |r: &SummaResult| r.traffic.iter().map(|t| t.msgs_sent).sum::<u64>();
        assert!(msgs(&narrow) > msgs(&wide));
    }

    #[test]
    fn simulated_summa_runs_at_paper_scale() {
        use summagen_platform::profile::hclserver1;
        // 3 abstract processors in a 1x3 grid (degenerate but valid).
        let (exec, clocks) =
            summa_simulate(8_192, 1, 3, 512, &hclserver1(), HockneyModel::intra_node());
        assert!(exec > 0.0);
        assert_eq!(clocks.len(), 3);
        assert!(clocks.iter().all(|c| c.comp_time > 0.0));
    }

    #[test]
    fn hockney_clocks_advance() {
        let n = 24;
        let a = random_matrix(n, n, 9);
        let b = random_matrix(n, n, 10);
        let r = summa_multiply_with_cost(&a, &b, 2, 2, 6, HockneyModel::intra_node());
        assert!(r.exec_time > 0.0);
        assert!(r.clocks.iter().all(|c| c.comm_time > 0.0));
    }
}
