//! ABFT checksum-protected SummaGen with panel-boundary checkpointing.
//!
//! This is the panelled variant of [`crate::panelled`] hardened against
//! *silent data corruption* with Huang–Abraham algorithm-based fault
//! tolerance, plus checkpoint/restart so recovery does not recompute the
//! whole product:
//!
//! * **Wire protection** — every broadcast panel travels *fully
//!   checksummed* (an extra row of column sums and an extra column of row
//!   sums). Receivers verify the residuals before using a panel; a single
//!   corrupted element is located by its (row, column) residual pair and
//!   corrected in place, so a flipped element in a broadcast never reaches
//!   the GEMM.
//! * **Accumulator protection** — the product encoding `C̃ = Ã·B̃` keeps a
//!   checksum row on `A` panels and a checksum column on `B` panels, which
//!   makes every local `C` accumulator fully checksummed. The linear
//!   invariant survives panel accumulation, so after each panel step every
//!   rank re-verifies its blocks and corrects single-element damage (e.g.
//!   a memory fault between panel steps).
//! * **Escalation** — corruption the residuals cannot localize (two or
//!   more damaged elements) is *detected but uncorrectable*: the rank
//!   returns [`CommError::DataCorruption`], which
//!   [`RankFailure::crashed_ranks`] treats as an own-cause crash, so
//!   [`multiply_abft`] drops the device and re-partitions over the
//!   survivors exactly like [`crate::multiply_with_recovery`].
//! * **Checkpointing** — every `checkpoint_interval` completed (and
//!   verified) panel steps, ranks snapshot their `C` data blocks into a
//!   host-side store. A checkpoint is valid once *all* ranks have written
//!   it; it is assembled into the global `C` prefix, which is
//!   partition-independent (`C` after `k` columns equals
//!   `A[:, :k] · B[:k, :]` no matter how the survivors are re-partitioned).
//!   Retries restore the newest checkpoint and execute only the remaining
//!   k-range — including a *partial* first panel when the survivor
//!   partition's panel boundaries do not align with the checkpoint.
//!
//! The zero-fault protected path is **bit-identical** to
//! [`crate::multiply_panelled`]: augmentation appends checksum rows and
//! columns without touching the data region, and the widened GEMM
//! accumulates each data element in exactly the same k-order as the
//! unprotected kernel.
//!
//! Verification, correction, checkpoint, and rollback work is charged to
//! the virtual clock (per-element costs in [`AbftOptions`]) and emitted as
//! [`SpanKind::Abft`] leaf spans, so the resilience overhead is visible in
//! Perfetto timelines and the critical-path decomposition.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use summagen_comm::{
    AbftLabel, CommError, Communicator, CostModel, EventSink, FaultPlan, Payload, RankFailure,
    SpanKind, Universe,
};
use summagen_matrix::{
    abft_tolerance, augment_a, augment_b, verify_and_correct, AbftVerdict, DenseMatrix, GemmKernel,
};
use summagen_partition::{PartitionSpec, ProcBlock, Shape};

use crate::executor::{
    cause_counts, survivor_spec, ExecutionMode, RecoveryError, RecoveryOptions, RecoveryReport,
    RunResult,
};
use crate::rankdata::{distribute, RankMatrices};

/// Knobs for the checksum-protected executor.
#[derive(Debug, Clone)]
pub struct AbftOptions {
    /// Write a checkpoint after every this-many completed panel steps
    /// (the final step is never checkpointed — the result is about to be
    /// returned anyway). Use `usize::MAX` to disable checkpointing.
    pub checkpoint_interval: usize,
    /// Virtual seconds charged per element scanned by a residual
    /// verification pass (~one add per element).
    pub verify_cost: f64,
    /// Virtual seconds charged per element written to a checkpoint
    /// snapshot (memcpy-rate).
    pub checkpoint_cost: f64,
    /// Virtual seconds charged per element restored from a checkpoint on
    /// a resumed attempt.
    pub rollback_cost: f64,
    /// Virtual seconds charged per multiply-add of the protected GEMM.
    /// Defaults to 0 to match the unprotected real path (which charges no
    /// compute time); set nonzero in checkpoint studies so the recompute
    /// cost of a restart is visible on the virtual clock.
    pub gemm_cost: f64,
    /// Host-memory budget for retained checkpoint snapshots, in bytes.
    /// When assembled prefixes exceed it, the oldest boundaries are
    /// evicted first; the newest is always kept (it is the resume
    /// point). The budget bounds the *retained* set — every capture is
    /// still counted in [`AbftReport::checkpoints`] and in the
    /// `summagen_abft_checkpoints_total` counter.
    pub checkpoint_budget_bytes: usize,
}

impl Default for AbftOptions {
    fn default() -> Self {
        Self {
            checkpoint_interval: 2,
            // ~5 Gelem/s residual scan, ~1 GB/s effective snapshot and
            // restore rates: small against GEMM but nonzero, so resumed
            // attempts show recompute time proportional to the panels
            // they actually re-execute.
            verify_cost: 2e-10,
            checkpoint_cost: 1e-9,
            rollback_cost: 1e-9,
            gemm_cost: 0.0,
            // 256 MiB: four 2048² f64 prefixes — far above anything the
            // tests or benches retain, so eviction only fires when a
            // caller opts into a tighter bound.
            checkpoint_budget_bytes: 256 << 20,
        }
    }
}

/// What the ABFT machinery observed over a [`multiply_abft`] run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AbftReport {
    /// Total executions performed (1 = no failure observed).
    pub attempts: usize,
    /// Corruption events detected (corrected + uncorrectable).
    pub detected: u64,
    /// Single-element corruptions located and corrected in place.
    pub corrected: u64,
    /// Corruption events the residuals could not localize; each one ended
    /// its attempt with [`CommError::DataCorruption`].
    pub uncorrectable: u64,
    /// Complete (all-ranks) checkpoints captured across the run —
    /// distinct panel boundaries assembled, whether still retained or
    /// since evicted by the byte budget.
    pub checkpoints: usize,
    /// Checkpoint snapshots evicted to stay within
    /// [`AbftOptions::checkpoint_budget_bytes`].
    pub checkpoints_evicted: usize,
    /// First panel index the successful attempt executed (0 = from
    /// scratch).
    pub resume_step: usize,
    /// k-prefix of `C` restored from a checkpoint by the successful
    /// attempt (0 = from scratch).
    pub resume_k: usize,
    /// Panel steps in the successful attempt's plan.
    pub panels_total: usize,
    /// Panel steps the successful attempt actually executed.
    pub panels_executed: usize,
    /// Fraction of the k-dimension the successful attempt executed:
    /// 1.0 for a from-scratch run or full restart, `(n - resume_k) / n`
    /// when a checkpoint was restored.
    pub recompute_fraction: f64,
}

/// A [`RunResult`] plus the [`AbftReport`] describing the protection
/// activity behind it.
#[derive(Debug, Clone)]
pub struct AbftRunResult {
    /// The numeric outcome (the `c` field carries the verified product).
    pub run: RunResult,
    /// Detection/correction/checkpoint accounting.
    pub abft: AbftReport,
}

/// Per-rank ABFT counters, aggregated by the driver.
#[derive(Debug, Clone, Copy, Default)]
struct AbftStats {
    detected: u64,
    corrected: u64,
    first_panel: u64,
    panels_executed: u64,
    checkpoints_written: u64,
}

/// Host-side checkpoint store shared by the ranks of one attempt.
///
/// Ranks deposit their verified `C` data blocks at panel boundaries; once
/// every rank has written a boundary the store assembles the blocks into
/// the global `C` prefix and promotes it to `completed`. Incomplete
/// boundaries (some rank died first) are discarded with the attempt.
///
/// The store is bounded: assembled prefixes are accounted by their host
/// footprint (8 bytes per element, plus pending deposits awaiting
/// assembly), and when the completed set exceeds
/// [`AbftOptions::checkpoint_budget_bytes`] the oldest boundaries are
/// evicted. The newest boundary is never evicted — it is what a resumed
/// attempt rolls back to.
struct CheckpointStore {
    nprocs: usize,
    n: usize,
    budget_bytes: usize,
    inner: Mutex<StoreInner>,
}

/// One rank's deposit at a boundary: its local `C` blocks with placement.
type RankDeposit = Vec<(ProcBlock, DenseMatrix)>;

#[derive(Default)]
struct StoreInner {
    pending: BTreeMap<usize, Vec<Option<RankDeposit>>>,
    completed: Vec<(usize, DenseMatrix)>,
    /// Distinct boundaries assembled over the store's lifetime — the
    /// capture set survives eviction.
    captured: BTreeSet<usize>,
    /// Completed prefixes dropped to stay within the byte budget.
    evicted: usize,
}

/// Host bytes held by one dense matrix (f64 payload).
fn matrix_bytes(m: &DenseMatrix) -> usize {
    m.rows() * m.cols() * std::mem::size_of::<f64>()
}

fn deposit_bytes(d: &RankDeposit) -> usize {
    d.iter().map(|(_, m)| matrix_bytes(m)).sum()
}

/// Evicts oldest-boundary entries from a sorted-or-not completed list
/// until the retained bytes fit `budget`, always keeping the newest
/// (largest-k) entry. Returns how many entries were dropped.
fn evict_to_budget(completed: &mut Vec<(usize, DenseMatrix)>, budget: usize) -> usize {
    let mut dropped = 0;
    while completed.len() > 1
        && completed
            .iter()
            .map(|(_, c)| matrix_bytes(c))
            .sum::<usize>()
            > budget
    {
        let oldest = completed
            .iter()
            .enumerate()
            .min_by_key(|(_, (k, _))| *k)
            .map(|(i, _)| i)
            .unwrap();
        completed.remove(oldest);
        dropped += 1;
    }
    dropped
}

impl CheckpointStore {
    fn new(nprocs: usize, n: usize, budget_bytes: usize) -> Self {
        Self {
            nprocs,
            n,
            budget_bytes,
            inner: Mutex::new(StoreInner::default()),
        }
    }

    fn write(&self, k_prefix: usize, rank: usize, blocks: RankDeposit) {
        let mut inner = self.inner.lock().unwrap();
        let nprocs = self.nprocs;
        let complete = {
            let entry = inner
                .pending
                .entry(k_prefix)
                .or_insert_with(|| vec![None; nprocs]);
            entry[rank] = Some(blocks);
            entry.iter().all(Option::is_some)
        };
        if complete {
            let per_rank = inner.pending.remove(&k_prefix).unwrap();
            let mut c = DenseMatrix::zeros(self.n, self.n);
            for blocks in per_rank.into_iter().flatten() {
                for (blk, m) in blocks {
                    c.set_submatrix(blk.row, blk.col, &m);
                }
            }
            inner.completed.push((k_prefix, c));
            inner.captured.insert(k_prefix);
            let budget = self.budget_bytes;
            let dropped = evict_to_budget(&mut inner.completed, budget);
            inner.evicted += dropped;
        }
    }

    /// Host bytes currently held: assembled prefixes plus pending
    /// per-rank deposits awaiting the rest of their boundary.
    fn bytes(&self) -> usize {
        let inner = self.inner.lock().unwrap();
        let done: usize = inner.completed.iter().map(|(_, c)| matrix_bytes(c)).sum();
        let pending: usize = inner
            .pending
            .values()
            .flat_map(|slots| slots.iter().flatten())
            .map(deposit_bytes)
            .sum();
        done + pending
    }

    /// Distinct boundaries assembled over the store's lifetime
    /// (eviction does not subtract).
    fn captured_boundaries(&self) -> Vec<usize> {
        self.inner
            .lock()
            .unwrap()
            .captured
            .iter()
            .copied()
            .collect()
    }

    /// Completed prefixes dropped to stay within the byte budget.
    fn evicted(&self) -> usize {
        self.inner.lock().unwrap().evicted
    }

    fn take_completed(&self) -> Vec<(usize, DenseMatrix)> {
        std::mem::take(&mut self.inner.lock().unwrap().completed)
    }
}

/// Wire encoding of an `A` panel slice: checksum row (column sums, kept
/// for the product encoding) plus a transit checksum column (row sums,
/// stripped after verification).
fn transit_a(slice: &DenseMatrix) -> DenseMatrix {
    augment_b(&augment_a(slice))
}

/// Wire encoding of a `B` panel slice: checksum column (row sums, kept
/// for the product encoding) plus a transit checksum row (column sums,
/// stripped after verification).
fn transit_b(slice: &DenseMatrix) -> DenseMatrix {
    augment_a(&augment_b(slice))
}

/// Largest absolute value in the data region (all but the last row and
/// column) of a fully-checksummed matrix — the scale residual tolerances
/// are anchored to.
fn data_scale(m: &DenseMatrix) -> f64 {
    let (h, w) = (m.rows() - 1, m.cols() - 1);
    let mut s = 0.0f64;
    for i in 0..h {
        for j in 0..w {
            s = s.max(m.get(i, j).abs());
        }
    }
    s
}

/// Recomputes the checksum row/column of an augmented matrix from its
/// data region — used when a block is restored from a checkpoint (the
/// snapshot stores only verified data).
fn refresh_checksums(c: &mut DenseMatrix) {
    let (h, w) = (c.rows() - 1, c.cols() - 1);
    for i in 0..h {
        let s: f64 = (0..w).map(|j| c.get(i, j)).sum();
        c.set(i, w, s);
    }
    for j in 0..w {
        let s: f64 = (0..h).map(|i| c.get(i, j)).sum();
        c.set(h, j, s);
    }
    let corner: f64 = (0..h).map(|i| c.get(i, w)).sum();
    c.set(h, w, corner);
}

/// Verifies (and if possible corrects) one received transit panel,
/// charging the scan to the virtual clock and emitting Abft spans.
fn verify_received(
    comm: &Communicator,
    m: &mut DenseMatrix,
    step: usize,
    opts: &AbftOptions,
    stats: &mut AbftStats,
) -> Result<(), CommError> {
    let elems = (m.rows() * m.cols()) as u64;
    let start = comm.now();
    comm.advance_compute(opts.verify_cost * elems as f64);
    let tol = abft_tolerance(m.rows().max(m.cols()), data_scale(m));
    let verdict = verify_and_correct(m, tol);
    comm.emit(
        start,
        comm.now(),
        SpanKind::Abft {
            op: AbftLabel::Verify,
            step: step as u64,
            elems,
        },
    );
    if let Some(m) = comm.metrics() {
        m.abft_verifies.inc();
    }
    match verdict {
        AbftVerdict::Clean => Ok(()),
        AbftVerdict::Corrected { .. } => {
            stats.detected += 1;
            stats.corrected += 1;
            if let Some(m) = comm.metrics() {
                m.abft_corrections.inc();
            }
            let cs = comm.now();
            comm.advance_compute(opts.verify_cost);
            comm.emit(
                cs,
                comm.now(),
                SpanKind::Abft {
                    op: AbftLabel::Correct,
                    step: step as u64,
                    elems: 1,
                },
            );
            Ok(())
        }
        AbftVerdict::Uncorrectable { .. } => {
            stats.detected += 1;
            Err(CommError::DataCorruption {
                rank: comm.global_rank(),
                step: step as u64,
            })
        }
    }
}

/// The per-rank protected panel loop. Mirrors
/// [`crate::panelled::multiply_panelled`]'s gather structure (same
/// subgroup labels, same block traffic) with checksummed payloads,
/// per-step verification, and checkpoint writes. `resume_k` is the
/// k-prefix already present in `resume_c`; panels fully covered by it are
/// skipped and the first overlapping panel executes partially.
#[allow(clippy::too_many_arguments)]
fn run_rank_abft(
    comm: &Communicator,
    spec: &PartitionSpec,
    rank: usize,
    data: &RankMatrices,
    kernel: GemmKernel,
    opts: &AbftOptions,
    resume_k: usize,
    resume_c: Option<&DenseMatrix>,
    stop_k: usize,
    store: &CheckpointStore,
) -> Result<(Vec<(ProcBlock, DenseMatrix)>, AbftStats), CommError> {
    let mut stats = AbftStats::default();
    let total_panels = spec.grid_cols;

    // Augmented accumulators: data region plus a checksum row and column,
    // maintained across panel accumulation by the Ã·B̃ encoding.
    let mut out: Vec<(ProcBlock, DenseMatrix)> = spec
        .blocks_of(rank)
        .into_iter()
        .map(|blk| {
            let mut m = DenseMatrix::zeros(blk.rows + 1, blk.cols + 1);
            if let Some(c0) = resume_c {
                m.set_submatrix(0, 0, &c0.submatrix(blk.row, blk.col, blk.rows, blk.cols));
                refresh_checksums(&mut m);
            }
            (blk, m)
        })
        .collect();

    if resume_k > 0 {
        let elems: u64 = out.iter().map(|(b, _)| (b.rows * b.cols) as u64).sum();
        let first = (0..total_panels)
            .take_while(|&t| spec.col_offset(t) + spec.widths[t] <= resume_k)
            .count();
        let start = comm.now();
        comm.advance_compute(opts.rollback_cost * elems as f64);
        comm.emit(
            start,
            comm.now(),
            SpanKind::Abft {
                op: AbftLabel::Rollback,
                step: first as u64,
                elems,
            },
        );
        if let Some(m) = comm.metrics() {
            m.abft_rollbacks.inc();
        }
    }

    for t in 0..total_panels {
        let k0 = spec.col_offset(t);
        let k1 = k0 + spec.widths[t];
        if k0 >= stop_k {
            break; // preemption horizon reached: a clean k-prefix stop
        }
        let lo = k0.max(resume_k);
        if lo >= k1 {
            continue; // panel fully covered by the restored checkpoint
        }
        if stats.panels_executed == 0 {
            stats.first_panel = t as u64;
        }
        stats.panels_executed += 1;
        if let Some(m) = comm.metrics() {
            m.panel_steps.inc();
        }
        let kb = k1 - lo;

        // --- Gather the A blocks (bi, t), column-sliced to [lo, k1).
        let mut a_panel: Vec<Option<DenseMatrix>> = vec![None; spec.grid_rows];
        for (bi, slot) in a_panel.iter_mut().enumerate() {
            if !spec.row_contains(rank, bi) {
                continue;
            }
            let participants: Vec<usize> = (0..spec.nprocs)
                .filter(|&p| spec.row_contains(p, bi))
                .collect();
            let owner = spec.owner(bi, t);
            let h = spec.heights[bi];
            let own_slice = || {
                data.a_block(bi, t)
                    .expect("missing own A block")
                    .submatrix(0, lo - k0, h, kb)
            };
            let transit = if participants.len() == 1 {
                transit_a(&own_slice())
            } else {
                let mut row_comm = comm
                    .subgroup(&participants, (1 << 22) + (t * spec.grid_rows + bi) as u64)
                    .expect("missing from row communicator");
                let root = participants.iter().position(|&p| p == owner).unwrap();
                let payload = if owner == rank {
                    Payload::F64(transit_a(&own_slice()).as_slice().to_vec())
                } else {
                    Payload::F64(Vec::new())
                };
                let raw = row_comm.try_bcast(root, payload)?.try_into_f64()?;
                let mut m = DenseMatrix::from_vec(h + 1, kb + 1, raw);
                if owner != rank {
                    verify_received(comm, &mut m, t, opts, &mut stats)?;
                }
                m
            };
            // Keep the product encoding Ã (data + checksum row); the
            // transit checksum column has done its job.
            *slot = Some(transit.submatrix(0, 0, h + 1, kb));
        }

        // --- Gather the B rows [lo, k1), with the product checksum column.
        let mut b_panel: Vec<Option<DenseMatrix>> = vec![None; spec.grid_cols];
        for (bj, slot) in b_panel.iter_mut().enumerate() {
            if !spec.col_contains(rank, bj) {
                continue;
            }
            let w = spec.widths[bj];
            let mut panel = DenseMatrix::zeros(kb, w + 1);
            let participants: Vec<usize> = (0..spec.nprocs)
                .filter(|&p| spec.col_contains(p, bj))
                .collect();
            for bi_b in 0..spec.grid_rows {
                let r0 = spec.row_offset(bi_b);
                let r1 = r0 + spec.heights[bi_b];
                let (slo, shi) = (r0.max(lo), r1.min(k1));
                if slo >= shi {
                    continue; // block does not overlap this panel
                }
                let rows = shi - slo;
                let owner = spec.owner(bi_b, bj);
                let own_slice = || {
                    data.b_block(bi_b, bj)
                        .expect("missing own B block")
                        .submatrix(slo - r0, 0, rows, w)
                };
                let transit = if participants.len() == 1 {
                    transit_b(&own_slice())
                } else {
                    let label =
                        (1 << 23) + ((t * spec.grid_rows + bi_b) * spec.grid_cols + bj) as u64;
                    let mut col_comm = comm
                        .subgroup(&participants, label)
                        .expect("missing from column communicator");
                    let root = participants.iter().position(|&p| p == owner).unwrap();
                    let payload = if owner == rank {
                        Payload::F64(transit_b(&own_slice()).as_slice().to_vec())
                    } else {
                        Payload::F64(Vec::new())
                    };
                    let raw = col_comm.try_bcast(root, payload)?.try_into_f64()?;
                    let mut m = DenseMatrix::from_vec(rows + 1, w + 1, raw);
                    if owner != rank {
                        verify_received(comm, &mut m, t, opts, &mut stats)?;
                    }
                    m
                };
                // Strip the transit checksum row; rows keep their row-sum
                // entries, so the assembled panel is B̃ directly.
                panel.set_submatrix(slo - lo, 0, &transit.submatrix(0, 0, rows, w + 1));
            }
            *slot = Some(panel);
        }

        // --- Accumulate C̃(bi, bj) += Ã(bi, t) · B̃(t, bj). The widened
        // dims do not perturb data elements: each c[i][j] with i,j in the
        // data region sees exactly the unprotected kernel's k-order.
        for (blk, cmat) in &mut out {
            let ap = a_panel[blk.block_i]
                .as_ref()
                .expect("A panel block missing for owned row");
            let bp = b_panel[blk.block_j]
                .as_ref()
                .expect("B panel block missing for owned column");
            debug_assert_eq!(ap.cols(), bp.rows());
            let (m, nc) = (blk.rows + 1, blk.cols + 1);
            match kernel {
                GemmKernel::Naive => summagen_matrix::gemm_naive(
                    m,
                    nc,
                    kb,
                    1.0,
                    ap.as_slice(),
                    kb.max(1),
                    bp.as_slice(),
                    nc,
                    1.0,
                    cmat.as_mut_slice(),
                    nc,
                ),
                _ => summagen_matrix::gemm_blocked(
                    m,
                    nc,
                    kb,
                    1.0,
                    ap.as_slice(),
                    kb.max(1),
                    bp.as_slice(),
                    nc,
                    1.0,
                    cmat.as_mut_slice(),
                    nc,
                ),
            }
            if opts.gemm_cost > 0.0 {
                comm.advance_compute(opts.gemm_cost * (m * nc * kb) as f64);
            }
        }

        // --- Injected memory faults on the local accumulators ("a rank's
        // local block between panel steps").
        let corruptions = comm.block_corruptions(t as u64);
        if !corruptions.is_empty() {
            let total: u64 = out.iter().map(|(_, c)| c.as_slice().len() as u64).sum();
            for (elem, delta) in corruptions {
                if total == 0 {
                    break;
                }
                let mut idx = elem % total;
                for (_, c) in &mut out {
                    let len = c.as_slice().len() as u64;
                    if idx < len {
                        c.as_mut_slice()[idx as usize] += delta;
                        break;
                    }
                    idx -= len;
                }
            }
        }

        // --- Verify every owned accumulator at the panel boundary.
        let c_elems: u64 = out.iter().map(|(_, c)| c.as_slice().len() as u64).sum();
        let start = comm.now();
        comm.advance_compute(opts.verify_cost * c_elems as f64);
        let mut corrections = 0u64;
        let mut uncorrectable = false;
        for (_, cmat) in &mut out {
            let tol = abft_tolerance(cmat.rows().max(cmat.cols()), data_scale(cmat));
            match verify_and_correct(cmat, tol) {
                AbftVerdict::Clean => {}
                AbftVerdict::Corrected { .. } => {
                    stats.detected += 1;
                    stats.corrected += 1;
                    corrections += 1;
                }
                AbftVerdict::Uncorrectable { .. } => {
                    stats.detected += 1;
                    uncorrectable = true;
                }
            }
        }
        comm.emit(
            start,
            comm.now(),
            SpanKind::Abft {
                op: AbftLabel::Verify,
                step: t as u64,
                elems: c_elems,
            },
        );
        if let Some(m) = comm.metrics() {
            m.abft_verifies.inc();
            m.abft_corrections.add(corrections);
        }
        if corrections > 0 {
            let cs = comm.now();
            comm.advance_compute(opts.verify_cost * corrections as f64);
            comm.emit(
                cs,
                comm.now(),
                SpanKind::Abft {
                    op: AbftLabel::Correct,
                    step: t as u64,
                    elems: corrections,
                },
            );
        }
        if uncorrectable {
            return Err(CommError::DataCorruption {
                rank: comm.global_rank(),
                step: t as u64,
            });
        }

        // --- Checkpoint the verified data blocks at the boundary.
        if opts.checkpoint_interval > 0
            && opts.checkpoint_interval != usize::MAX
            && (t + 1) % opts.checkpoint_interval == 0
            && t + 1 < total_panels
        {
            let data_elems: u64 = out.iter().map(|(b, _)| (b.rows * b.cols) as u64).sum();
            let start = comm.now();
            comm.advance_compute(opts.checkpoint_cost * data_elems as f64);
            let blocks: Vec<(ProcBlock, DenseMatrix)> = out
                .iter()
                .map(|(b, c)| (*b, c.submatrix(0, 0, b.rows, b.cols)))
                .collect();
            store.write(k1, rank, blocks);
            comm.emit(
                start,
                comm.now(),
                SpanKind::Abft {
                    op: AbftLabel::Checkpoint,
                    step: t as u64,
                    elems: data_elems,
                },
            );
            if let Some(m) = comm.metrics() {
                m.abft_checkpoints.inc();
                m.checkpoint_bytes.set(store.bytes() as f64);
            }
            stats.checkpoints_written += 1;
        }
    }

    // Strip the checksums; the data region is returned bit-for-bit.
    let blocks = out
        .into_iter()
        .map(|(b, c)| {
            let d = c.submatrix(0, 0, b.rows, b.cols);
            (b, d)
        })
        .collect();
    Ok((blocks, stats))
}

/// One fallible protected attempt over a fixed partition.
#[allow(clippy::too_many_arguments)]
fn try_run_abft(
    spec: &PartitionSpec,
    a: &DenseMatrix,
    b: &DenseMatrix,
    kernel: GemmKernel,
    cost: impl CostModel,
    faults: Option<FaultPlan>,
    link: Option<summagen_comm::LinkPlan>,
    heartbeat: Option<summagen_comm::HeartbeatConfig>,
    recv_timeout: Duration,
    sink: Option<Arc<dyn EventSink>>,
    metrics: Option<Arc<summagen_comm::RuntimeMetrics>>,
    backend: summagen_comm::Backend,
    opts: &AbftOptions,
    resume: Option<(usize, Arc<DenseMatrix>)>,
    stop_k: usize,
    store: &CheckpointStore,
) -> Result<(RunResult, Vec<AbftStats>), RankFailure> {
    let rank_data = distribute(spec, a, b);
    let mut universe = Universe::new(spec.nprocs, cost)
        .recv_timeout(recv_timeout)
        .with_backend(backend);
    if let Some(plan) = faults {
        universe = universe.with_faults(plan);
    }
    if let Some(plan) = link {
        universe = universe.with_link_plan(plan);
    }
    if let Some(hb) = heartbeat {
        universe = universe.with_heartbeat(hb);
    }
    if let Some(sink) = sink {
        universe = universe.with_event_sink(sink);
    }
    if let Some(metrics) = metrics {
        universe = universe.with_metrics(metrics);
    }
    let resume_k = resume.as_ref().map_or(0, |(k, _)| *k);
    let resume_c = resume.map(|(_, c)| c);
    let results = universe.try_run(|comm| {
        let rank = comm.rank();
        let (blocks, stats) = run_rank_abft(
            &comm,
            spec,
            rank,
            &rank_data[rank],
            kernel,
            opts,
            resume_k,
            resume_c.as_deref(),
            stop_k,
            store,
        )?;
        Ok((blocks, stats, comm.clock_snapshot(), comm.traffic()))
    })?;

    let mut blocks = Vec::with_capacity(spec.nprocs);
    let mut stats = Vec::with_capacity(spec.nprocs);
    let mut clocks = Vec::with_capacity(spec.nprocs);
    let mut traffic = Vec::with_capacity(spec.nprocs);
    for (b, s, c, t) in results {
        blocks.push(b);
        stats.push(s);
        clocks.push(c);
        traffic.push(t);
    }
    let c = crate::rankdata::assemble(spec, &blocks);
    let exec_time = clocks.iter().map(|c| c.now).fold(0.0, f64::max);
    let comp_time = clocks.iter().map(|c| c.comp_time).fold(0.0, f64::max);
    let comm_time = clocks.iter().map(|c| c.comm_time).fold(0.0, f64::max);
    Ok((
        RunResult {
            c,
            clocks,
            traffic,
            exec_time,
            comp_time,
            comm_time,
            recovery: None,
        },
        stats,
    ))
}

/// Multiplies `A × B` with the checksum-protected, checkpointed SummaGen
/// executor, recovering from crashes *and* uncorrectable data corruption
/// by shrinking over the surviving devices and resuming from the newest
/// complete checkpoint.
///
/// Fault handling composes [`crate::multiply_with_recovery`]'s
/// shrink-and-retry policy with the ABFT layer: single-element corruption
/// (in a broadcast panel or a local accumulator) is corrected in place
/// and never fails the attempt; uncorrectable corruption crashes the
/// detecting rank with [`CommError::DataCorruption`], dropping its device.
/// Each retry charges `opts.retry_backoff` virtual seconds and restores
/// the newest checkpoint, so the recompute cost visible on the virtual
/// clock is proportional to the panels since the last checkpoint rather
/// than the whole plan.
#[allow(clippy::too_many_arguments)]
pub fn multiply_abft(
    shape: Shape,
    rel_speeds: &[f64],
    a: &DenseMatrix,
    b: &DenseMatrix,
    mode: ExecutionMode,
    cost: impl CostModel + Clone,
    attempt_faults: &[FaultPlan],
    opts: &RecoveryOptions,
    abft: &AbftOptions,
) -> Result<AbftRunResult, RecoveryError> {
    multiply_abft_inner(
        shape,
        rel_speeds,
        a,
        b,
        mode,
        cost,
        attempt_faults,
        opts,
        abft,
        None,
        None,
    )
}

/// [`multiply_abft`] reporting every runtime event — including the ABFT
/// verify/correct/checkpoint/rollback spans — to `sink`. Only the
/// successful attempt's spans end up in the sink's final trace windows
/// coherently; failed attempts contribute their partial spans too, which
/// is often exactly what a post-mortem wants.
#[allow(clippy::too_many_arguments)]
pub fn multiply_abft_traced(
    shape: Shape,
    rel_speeds: &[f64],
    a: &DenseMatrix,
    b: &DenseMatrix,
    mode: ExecutionMode,
    cost: impl CostModel + Clone,
    attempt_faults: &[FaultPlan],
    opts: &RecoveryOptions,
    abft: &AbftOptions,
    sink: Arc<dyn EventSink>,
) -> Result<AbftRunResult, RecoveryError> {
    multiply_abft_inner(
        shape,
        rel_speeds,
        a,
        b,
        mode,
        cost,
        attempt_faults,
        opts,
        abft,
        Some(sink),
        None,
    )
}

/// [`multiply_abft`] with both observability channels optional: an event
/// sink for per-event spans and/or a metrics bundle for aggregate
/// counters and histograms (ABFT verifies/corrections/checkpoints/
/// rollbacks, panel steps, GEMM throughput, comm volume). Either can be
/// `None`; with both `None` this is exactly [`multiply_abft`].
#[allow(clippy::too_many_arguments)]
pub fn multiply_abft_observed(
    shape: Shape,
    rel_speeds: &[f64],
    a: &DenseMatrix,
    b: &DenseMatrix,
    mode: ExecutionMode,
    cost: impl CostModel + Clone,
    attempt_faults: &[FaultPlan],
    opts: &RecoveryOptions,
    abft: &AbftOptions,
    sink: Option<Arc<dyn EventSink>>,
    metrics: Option<Arc<summagen_comm::RuntimeMetrics>>,
) -> Result<AbftRunResult, RecoveryError> {
    multiply_abft_inner(
        shape,
        rel_speeds,
        a,
        b,
        mode,
        cost,
        attempt_faults,
        opts,
        abft,
        sink,
        metrics,
    )
}

#[allow(clippy::too_many_arguments)]
fn multiply_abft_inner(
    shape: Shape,
    rel_speeds: &[f64],
    a: &DenseMatrix,
    b: &DenseMatrix,
    mode: ExecutionMode,
    cost: impl CostModel + Clone,
    attempt_faults: &[FaultPlan],
    opts: &RecoveryOptions,
    abft: &AbftOptions,
    sink: Option<Arc<dyn EventSink>>,
    metrics: Option<Arc<summagen_comm::RuntimeMetrics>>,
) -> Result<AbftRunResult, RecoveryError> {
    assert!(!rel_speeds.is_empty(), "need at least one device");
    assert!(opts.max_attempts > 0, "need at least one attempt");
    assert_eq!(a.rows(), b.rows(), "A and B must share dimension n");
    // The explicit bundle wins; otherwise any bundle carried by the
    // recovery options (the path `reproduce soak` uses) is installed.
    let metrics = metrics.or_else(|| opts.metrics.clone());
    let n = a.rows();

    let mut devices: Vec<usize> = (0..rel_speeds.len()).collect();
    let mut failed_devices: Vec<usize> = Vec::new();
    let mut causes: BTreeMap<String, usize> = BTreeMap::new();
    let mut completed: Vec<(usize, DenseMatrix)> = Vec::new();
    let mut captured_boundaries: BTreeSet<usize> = BTreeSet::new();
    let mut checkpoints_evicted = 0usize;
    let mut uncorrectable = 0u64;
    let mut announced_failures = 0usize;
    let mut detected_failures = 0usize;
    let mut max_detection_latency = 0.0f64;
    let mut attempt = 0;
    loop {
        attempt += 1;
        let speeds: Vec<f64> = devices.iter().map(|&d| rel_speeds[d]).collect();
        let spec = survivor_spec(shape, n, &speeds);
        let store = CheckpointStore::new(spec.nprocs, n, abft.checkpoint_budget_bytes);
        let resume = completed.last().map(|(k, c)| (*k, Arc::new(c.clone())));
        let resume_k = resume.as_ref().map_or(0, |(k, _)| *k);
        let faults = attempt_faults
            .get(attempt - 1)
            .filter(|p| !p.is_empty())
            .cloned();
        let outcome = try_run_abft(
            &spec,
            a,
            b,
            mode.kernel(),
            cost.clone(),
            faults,
            opts.link_plan.clone(),
            opts.heartbeat,
            opts.recv_timeout,
            sink.clone(),
            metrics.clone(),
            opts.backend,
            abft,
            resume,
            usize::MAX,
            &store,
        );
        // Harvest complete checkpoints whether the attempt lived or died:
        // snapshots written before a crash are exactly what the next
        // attempt resumes from. The harvested set is held to the same
        // byte budget as the in-attempt store — oldest boundaries go
        // first, the newest (the resume point) is never dropped.
        captured_boundaries.extend(store.captured_boundaries());
        checkpoints_evicted += store.evicted();
        for (k, c) in store.take_completed() {
            if !completed.iter().any(|(ck, _)| *ck == k) {
                completed.push((k, c));
            }
        }
        completed.sort_by_key(|(k, _)| *k);
        checkpoints_evicted += evict_to_budget(&mut completed, abft.checkpoint_budget_bytes);
        if let Some(m) = &metrics {
            m.checkpoint_bytes.set(
                completed
                    .iter()
                    .map(|(_, c)| matrix_bytes(c))
                    .sum::<usize>() as f64,
            );
        }
        match outcome {
            Ok((mut run, stats)) => {
                let backoff_time = (attempt - 1) as f64 * opts.retry_backoff;
                run.exec_time += backoff_time;
                let recompute_fraction = (n - resume_k) as f64 / n.max(1) as f64;
                if attempt > 1 {
                    let area = (n * n) as f64;
                    run.recovery = Some(RecoveryReport {
                        attempts: attempt,
                        failed_devices: failed_devices.clone(),
                        surviving_devices: devices.clone(),
                        final_loads: spec.areas().iter().map(|&a| a as f64 / area).collect(),
                        backoff_time,
                        failure_causes: cause_counts(&causes),
                        recompute_fraction,
                        announced_failures,
                        detected_failures,
                        max_detection_latency,
                    });
                }
                let report = AbftReport {
                    attempts: attempt,
                    detected: stats.iter().map(|s| s.detected).sum::<u64>() + uncorrectable,
                    corrected: stats.iter().map(|s| s.corrected).sum(),
                    uncorrectable,
                    checkpoints: captured_boundaries.len(),
                    checkpoints_evicted,
                    resume_step: stats.iter().map(|s| s.first_panel).max().unwrap_or(0) as usize,
                    resume_k,
                    panels_total: spec.grid_cols,
                    panels_executed: stats.iter().map(|s| s.panels_executed).max().unwrap_or(0)
                        as usize,
                    recompute_fraction,
                };
                return Ok(AbftRunResult { run, abft: report });
            }
            Err(failure) => {
                for fr in &failure.failed {
                    let label = fr.cause.kind_label();
                    *causes.entry(label.to_string()).or_default() += 1;
                    if label == "data-corruption" {
                        uncorrectable += 1;
                    }
                    if let summagen_comm::FailureCause::DetectedHang {
                        detection_latency, ..
                    } = &fr.cause
                    {
                        detected_failures += 1;
                        max_detection_latency = max_detection_latency.max(*detection_latency);
                    } else {
                        announced_failures += 1;
                    }
                }
                if attempt >= opts.max_attempts {
                    return Err(RecoveryError::AttemptsExhausted {
                        attempts: attempt,
                        last: failure,
                    });
                }
                let mut roots = failure.crashed_ranks();
                if roots.is_empty() {
                    // A peer behind an exhausted link fails identically on
                    // replay — shrink it out (see `multiply_with_recovery`).
                    roots = failure.unreachable_peers();
                }
                if roots.is_empty() {
                    continue; // pure timeout: retry the same device set
                }
                let mut dropped: Vec<usize> = roots.iter().map(|&r| devices[r]).collect();
                devices.retain(|d| !dropped.contains(d));
                failed_devices.append(&mut dropped);
                if devices.is_empty() {
                    return Err(RecoveryError::AllDevicesFailed { attempts: attempt });
                }
            }
        }
    }
}

/// A partition-independent k-prefix snapshot of `C`: the product after
/// `k` columns of the inner dimension, `C = A[:, :k] · B[:k, :]`.
///
/// This is the same object the [`CheckpointStore`] assembles at panel
/// boundaries, surfaced as a value so callers *outside* the executor —
/// the service's preemption path — can stop a multiply at a boundary,
/// park the prefix, run something more urgent, and resume later.
/// Because the prefix is partition-independent, the resuming run does
/// not even need the same device set; with the *same* (shape, speeds)
/// it is bit-identical to the uninterrupted run (see
/// [`multiply_abft_prefix`]).
#[derive(Debug, Clone)]
pub struct PanelCheckpoint {
    /// Columns of the inner dimension already accumulated into `c`.
    pub k: usize,
    /// The `n × n` prefix product (full matrix, partial accumulation).
    pub c: DenseMatrix,
}

/// The legal stop/resume points of a `(shape, n, rel_speeds)` run: the
/// exclusive k-prefix after each panel of the partition the executor
/// would build, ending with `n` itself. Preempting at any of these (and
/// only these) keeps the within-panel GEMM accumulation unsplit, which
/// is what makes a preempt/resume cycle bit-identical to the
/// uninterrupted run.
pub fn panel_boundaries(shape: Shape, n: usize, rel_speeds: &[f64]) -> Vec<usize> {
    let spec = survivor_spec(shape, n, rel_speeds);
    (0..spec.grid_cols)
        .map(|t| spec.col_offset(t) + spec.widths[t])
        .collect()
}

/// Runs the checksum-protected executor from `resume` (or from scratch)
/// up to the panel boundary `stop_k`, returning the accumulated
/// k-prefix of `C` as a [`PanelCheckpoint`].
///
/// One fault-free attempt over the full device set — this is the
/// preemption primitive, not the recovery loop: the service calls it to
/// execute a *segment* of a job between preemption points, and chains
/// segments by feeding each returned checkpoint into the next call.
/// `stop_k == n` (or anything `>= n`) runs to completion, so
/// `prefix(None, b) → prefix(ckpt, n)` with any boundary `b` from
/// [`panel_boundaries`] produces a `C` bit-identical to the single-call
/// run — asserted by the preempt/resume property tests.
///
/// # Panics
/// Panics if `stop_k < n` is not one of the partition's panel
/// boundaries, or if `resume.k >= stop_k` (an empty segment).
#[allow(clippy::too_many_arguments)]
pub fn multiply_abft_prefix(
    shape: Shape,
    rel_speeds: &[f64],
    a: &DenseMatrix,
    b: &DenseMatrix,
    mode: ExecutionMode,
    cost: impl CostModel,
    abft: &AbftOptions,
    resume: Option<&PanelCheckpoint>,
    stop_k: usize,
) -> Result<PanelCheckpoint, RecoveryError> {
    assert!(!rel_speeds.is_empty(), "need at least one device");
    assert_eq!(a.rows(), b.rows(), "A and B must share dimension n");
    let n = a.rows();
    let stop_k = stop_k.min(n);
    let spec = survivor_spec(shape, n, rel_speeds);
    assert!(
        stop_k == n || panel_boundaries(shape, n, rel_speeds).contains(&stop_k),
        "stop_k {stop_k} is not a panel boundary of the partition"
    );
    let resume_k = resume.map_or(0, |c| c.k);
    assert!(resume_k < stop_k, "segment [{resume_k}, {stop_k}) is empty");
    let store = CheckpointStore::new(spec.nprocs, n, abft.checkpoint_budget_bytes);
    let defaults = RecoveryOptions::default();
    let (run, _stats) = try_run_abft(
        &spec,
        a,
        b,
        mode.kernel(),
        cost,
        None,
        None,
        None,
        defaults.recv_timeout,
        None,
        None,
        defaults.backend,
        abft,
        resume.map(|c| (c.k, Arc::new(c.c.clone()))),
        stop_k,
        &store,
    )
    .map_err(|last| RecoveryError::AttemptsExhausted { attempts: 1, last })?;
    Ok(PanelCheckpoint {
        k: stop_k,
        c: run.c,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multiply_panelled;
    use summagen_comm::ZeroCost;
    use summagen_matrix::{approx_eq, gemm_naive, random_matrix};
    use summagen_partition::{proportional_areas, ALL_FOUR_SHAPES};

    const SPEEDS: [f64; 3] = [1.0, 2.0, 0.9];

    fn reference(a: &DenseMatrix, b: &DenseMatrix) -> DenseMatrix {
        let n = a.rows();
        let mut c = DenseMatrix::zeros(n, n);
        gemm_naive(
            n,
            n,
            n,
            1.0,
            a.as_slice(),
            n,
            b.as_slice(),
            n,
            0.0,
            c.as_mut_slice(),
            n,
        );
        c
    }

    fn fast_opts() -> RecoveryOptions {
        RecoveryOptions {
            max_attempts: 4,
            retry_backoff: 0.25,
            recv_timeout: Duration::from_millis(500),
            ..Default::default()
        }
    }

    #[test]
    fn zero_fault_protected_run_is_bit_identical_to_panelled() {
        let n = 24;
        let a = random_matrix(n, n, 31);
        let b = random_matrix(n, n, 32);
        let areas = proportional_areas(n, &SPEEDS);
        for shape in ALL_FOUR_SHAPES {
            let spec = shape.build(n, &areas);
            let plain = multiply_panelled(&spec, &a, &b, GemmKernel::Blocked);
            let protected = multiply_abft(
                shape,
                &SPEEDS,
                &a,
                &b,
                ExecutionMode::RealWith(GemmKernel::Blocked),
                ZeroCost,
                &[],
                &fast_opts(),
                &AbftOptions::default(),
            )
            .expect("fault-free protected run succeeds");
            assert_eq!(protected.abft.attempts, 1);
            assert_eq!(protected.abft.detected, 0);
            assert_eq!(protected.abft.resume_k, 0);
            assert!((protected.abft.recompute_fraction - 1.0).abs() < 1e-12);
            for (x, y) in plain.c.as_slice().iter().zip(protected.run.c.as_slice()) {
                assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "{}: protected path drifted from unprotected bits",
                    shape.name()
                );
            }
        }
    }

    #[test]
    fn observed_run_counts_verifies_checkpoints_and_corrections() {
        let n = 24;
        let a = random_matrix(n, n, 41);
        let b = random_matrix(n, n, 42);
        let plan = FaultPlan::new().corrupt_block(2, 1, 5, 3.0);
        let metrics = summagen_comm::RuntimeMetrics::fresh();
        let res = multiply_abft_observed(
            summagen_partition::Shape::SquareCorner,
            &SPEEDS,
            &a,
            &b,
            ExecutionMode::Real,
            ZeroCost,
            &[plan],
            &fast_opts(),
            &AbftOptions::default(),
            None,
            Some(metrics.clone()),
        )
        .expect("corrected run succeeds");
        assert!(approx_eq(&res.run.c, &reference(&a, &b), 1e-9));
        // The registry agrees with the run's own report.
        assert!(metrics.abft_verifies.get() > 0);
        assert_eq!(metrics.abft_corrections.get(), res.abft.corrected);
        // Every rank writes its blocks at each completed boundary.
        assert_eq!(
            metrics.abft_checkpoints.get() as usize,
            res.abft.checkpoints * SPEEDS.len()
        );
        assert_eq!(metrics.abft_rollbacks.get(), 0);
        assert!(metrics.panel_steps.get() > 0);
    }

    #[test]
    fn wire_corruption_in_broadcast_panel_is_corrected() {
        // OneDRectangular puts all three ranks in one grid row, so every
        // panel's A block is broadcast root→peers. Corrupt the first
        // message on the 0→1 link: rank 1's transit verification must
        // locate and fix the element before the GEMM consumes it.
        let n = 24;
        let a = random_matrix(n, n, 33);
        let b = random_matrix(n, n, 34);
        let plan = FaultPlan::new().corrupt_message(0, 1, 0, 7, 5.0);
        let res = multiply_abft(
            summagen_partition::Shape::OneDRectangular,
            &[1.0, 1.0, 1.0],
            &a,
            &b,
            ExecutionMode::Real,
            ZeroCost,
            &[plan],
            &fast_opts(),
            &AbftOptions::default(),
        )
        .expect("corrected run succeeds without recovery");
        assert_eq!(res.abft.attempts, 1, "correction must not trigger retry");
        assert!(res.abft.corrected >= 1, "report: {:?}", res.abft);
        assert_eq!(res.abft.corrected, res.abft.detected);
        assert!(approx_eq(&res.run.c, &reference(&a, &b), 1e-9));
        assert!(res.run.recovery.is_none());
    }

    #[test]
    fn block_corruption_between_panels_is_corrected() {
        let n = 24;
        let a = random_matrix(n, n, 35);
        let b = random_matrix(n, n, 36);
        let plan = FaultPlan::new().corrupt_block(2, 1, 5, 3.0);
        let res = multiply_abft(
            summagen_partition::Shape::SquareCorner,
            &SPEEDS,
            &a,
            &b,
            ExecutionMode::Real,
            ZeroCost,
            &[plan],
            &fast_opts(),
            &AbftOptions::default(),
        )
        .expect("corrected run succeeds");
        assert_eq!(res.abft.attempts, 1);
        assert!(res.abft.corrected >= 1);
        assert_eq!(res.abft.uncorrectable, 0);
        assert!(approx_eq(&res.run.c, &reference(&a, &b), 1e-9));
    }

    #[test]
    fn multi_element_corruption_escalates_to_recovery() {
        // Two simultaneous flips in one accumulator produce residuals on
        // two rows and two columns: uncorrectable. The detecting rank
        // must crash with DataCorruption, its device is dropped, and the
        // retry resumes from the checkpoint written at the first panel
        // boundary.
        let n = 24;
        let a = random_matrix(n, n, 37);
        let b = random_matrix(n, n, 38);
        let plan = FaultPlan::new()
            .corrupt_block(2, 1, 3, 1.0)
            .corrupt_block(2, 1, 110, 1.0);
        let abft = AbftOptions {
            checkpoint_interval: 1,
            ..AbftOptions::default()
        };
        let res = multiply_abft(
            summagen_partition::Shape::OneDRectangular,
            &[1.0, 1.0, 1.0],
            &a,
            &b,
            ExecutionMode::Real,
            ZeroCost,
            &[plan],
            &fast_opts(),
            &abft,
        )
        .expect("recovery absorbs the uncorrectable corruption");
        assert_eq!(res.abft.attempts, 2);
        assert!(res.abft.uncorrectable >= 1);
        assert!(res.abft.detected >= res.abft.uncorrectable);
        let rec = res.run.recovery.as_ref().expect("a retry happened");
        assert!(
            rec.failure_causes
                .iter()
                .any(|(label, count)| label == "data-corruption" && *count >= 1),
            "causes: {:?}",
            rec.failure_causes
        );
        // The first panel boundary was checkpointed before the step-1
        // corruption killed the attempt, so the retry resumes mid-plan.
        assert!(res.abft.resume_k > 0, "report: {:?}", res.abft);
        assert!(res.abft.recompute_fraction < 1.0);
        assert!((rec.recompute_fraction - res.abft.recompute_fraction).abs() < 1e-12);
        assert!(approx_eq(&res.run.c, &reference(&a, &b), 1e-9));
    }

    #[test]
    fn checkpoint_resume_beats_full_restart() {
        // Kill rank 1 late in attempt 1. With checkpointing the retry
        // resumes from the last boundary; without it the retry recomputes
        // the whole plan. Both must be correct, and the checkpointed run
        // must show strictly less virtual time and fewer executed panels.
        let n = 24;
        let a = random_matrix(n, n, 39);
        let b = random_matrix(n, n, 40);
        // Rank 1's p2p ops: recv (panel 0), send, send (panel 1 root),
        // recv (panel 2) — op 3 kills it after the panel-1 boundary
        // checkpoint is complete on every rank.
        let plan = FaultPlan::new().kill_rank(1, 3);
        let run = |interval: usize| {
            multiply_abft(
                summagen_partition::Shape::OneDRectangular,
                &[1.0, 1.0, 1.0],
                &a,
                &b,
                ExecutionMode::Real,
                ZeroCost,
                std::slice::from_ref(&plan),
                &fast_opts(),
                &AbftOptions {
                    checkpoint_interval: interval,
                    // Make recompute visible on the virtual clock.
                    gemm_cost: 1e-9,
                    ..AbftOptions::default()
                },
            )
            .expect("recovery succeeds")
        };
        let checkpointed = run(1);
        let scratch = run(usize::MAX);
        for res in [&checkpointed, &scratch] {
            assert_eq!(res.abft.attempts, 2);
            assert!(approx_eq(&res.run.c, &reference(&a, &b), 1e-9));
        }
        assert!(checkpointed.abft.resume_k > 0);
        assert_eq!(
            checkpointed.abft.resume_step,
            checkpointed.abft.panels_total - checkpointed.abft.panels_executed
        );
        assert_eq!(scratch.abft.resume_k, 0);
        assert_eq!(scratch.abft.checkpoints, 0);
        assert!((scratch.abft.recompute_fraction - 1.0).abs() < 1e-12);
        assert!(checkpointed.abft.recompute_fraction < 1.0);
        assert!(
            checkpointed.abft.panels_executed < scratch.abft.panels_executed,
            "checkpointed {:?} vs scratch {:?}",
            checkpointed.abft,
            scratch.abft
        );
        assert!(
            checkpointed.run.exec_time < scratch.run.exec_time,
            "virtual recompute time must shrink: {} vs {}",
            checkpointed.run.exec_time,
            scratch.run.exec_time
        );
    }

    #[test]
    fn single_device_protected_run_works() {
        let n = 16;
        let a = random_matrix(n, n, 41);
        let b = random_matrix(n, n, 42);
        let res = multiply_abft(
            summagen_partition::Shape::OneDRectangular,
            &[1.0],
            &a,
            &b,
            ExecutionMode::Real,
            ZeroCost,
            &[],
            &fast_opts(),
            &AbftOptions::default(),
        )
        .expect("single-device run succeeds");
        assert!(approx_eq(&res.run.c, &reference(&a, &b), 1e-9));
        assert_eq!(res.run.traffic[0].msgs_sent, 0);
    }

    #[test]
    fn corruption_of_checksum_entries_is_absorbed() {
        // Hitting a transit checksum entry (last row/col of the wire
        // panel) must be corrected without touching data.
        let n = 24;
        let a = random_matrix(n, n, 43);
        let b = random_matrix(n, n, 44);
        // elem index far into the payload lands via modulo; pick the very
        // last transit element (the checksum corner) of a 25x9 panel.
        let plan = FaultPlan::new().corrupt_message(0, 1, 0, 224, -2.5);
        let res = multiply_abft(
            summagen_partition::Shape::OneDRectangular,
            &[1.0, 1.0, 1.0],
            &a,
            &b,
            ExecutionMode::Real,
            ZeroCost,
            &[plan],
            &fast_opts(),
            &AbftOptions::default(),
        )
        .expect("checksum-entry corruption is absorbed");
        assert_eq!(res.abft.attempts, 1);
        assert!(approx_eq(&res.run.c, &reference(&a, &b), 1e-9));
    }

    #[test]
    fn checkpoint_store_evicts_oldest_boundary_first() {
        let n = 8;
        let prefix_bytes = n * n * std::mem::size_of::<f64>();
        // Budget fits exactly one assembled prefix.
        let store = CheckpointStore::new(1, n, prefix_bytes);
        let deposit = || {
            vec![(
                ProcBlock {
                    block_i: 0,
                    block_j: 0,
                    row: 0,
                    col: 0,
                    rows: n,
                    cols: n,
                },
                DenseMatrix::zeros(n, n),
            )]
        };
        store.write(2, 0, deposit());
        assert_eq!(store.bytes(), prefix_bytes);
        store.write(4, 0, deposit());
        store.write(6, 0, deposit());
        // Two evictions; only the newest boundary is retained.
        assert_eq!(store.evicted(), 2);
        assert_eq!(store.bytes(), prefix_bytes);
        assert_eq!(store.captured_boundaries(), vec![2, 4, 6]);
        let kept = store.take_completed();
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].0, 6, "the newest boundary survives eviction");
    }

    #[test]
    fn checkpoint_store_never_evicts_its_only_snapshot() {
        let n = 8;
        // Budget smaller than a single prefix: the sole snapshot stays
        // (it is the resume point) even though it exceeds the budget.
        let store = CheckpointStore::new(1, n, 1);
        store.write(
            4,
            0,
            vec![(
                ProcBlock {
                    block_i: 0,
                    block_j: 0,
                    row: 0,
                    col: 0,
                    rows: n,
                    cols: n,
                },
                DenseMatrix::zeros(n, n),
            )],
        );
        assert_eq!(store.evicted(), 0);
        assert_eq!(store.take_completed().len(), 1);
    }

    #[test]
    fn tight_checkpoint_budget_preserves_the_result_and_the_capture_count() {
        // Every-panel checkpointing under a one-prefix budget: eviction
        // fires, the capture count still reports every boundary, the
        // retained bytes respect the budget, and the product is exact.
        let n = 24;
        let a = random_matrix(n, n, 51);
        let b = random_matrix(n, n, 52);
        let budget = n * n * std::mem::size_of::<f64>();
        let abft = AbftOptions {
            checkpoint_interval: 1,
            checkpoint_budget_bytes: budget,
            ..AbftOptions::default()
        };
        let metrics = summagen_comm::RuntimeMetrics::fresh();
        let res = multiply_abft_observed(
            summagen_partition::Shape::OneDRectangular,
            &[1.0, 1.0, 1.0],
            &a,
            &b,
            ExecutionMode::Real,
            ZeroCost,
            &[],
            &fast_opts(),
            &abft,
            None,
            Some(metrics.clone()),
        )
        .expect("fault-free run succeeds under a tight budget");
        assert!(approx_eq(&res.run.c, &reference(&a, &b), 1e-9));
        assert!(
            res.abft.checkpoints >= 2,
            "need multiple boundaries to exercise eviction: {:?}",
            res.abft
        );
        assert!(
            res.abft.checkpoints_evicted >= res.abft.checkpoints - 1,
            "all but the newest retained snapshot must be evicted: {:?}",
            res.abft
        );
        let gauge = metrics.checkpoint_bytes.get();
        assert!(
            gauge <= budget as f64,
            "retained bytes {gauge} exceed budget {budget}"
        );

        // The default (large) budget evicts nothing and reports the same
        // capture count.
        let unbounded = multiply_abft(
            summagen_partition::Shape::OneDRectangular,
            &[1.0, 1.0, 1.0],
            &a,
            &b,
            ExecutionMode::Real,
            ZeroCost,
            &[],
            &fast_opts(),
            &AbftOptions {
                checkpoint_interval: 1,
                ..AbftOptions::default()
            },
        )
        .expect("fault-free run succeeds");
        assert_eq!(unbounded.abft.checkpoints_evicted, 0);
        assert_eq!(unbounded.abft.checkpoints, res.abft.checkpoints);
        for (x, y) in unbounded.run.c.as_slice().iter().zip(res.run.c.as_slice()) {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "eviction must not perturb the numerics"
            );
        }
    }
}
