//! Running SummaGen end-to-end on real matrices.

use summagen_comm::{ClockSnapshot, CostModel, HockneyModel, TrafficStats, Universe, ZeroCost};
use summagen_matrix::{DenseMatrix, GemmKernel};
use summagen_partition::PartitionSpec;

use crate::rankdata::{assemble, distribute};
use crate::stages::{horizontal_a, local_compute, vertical_b, StageData, Workspace};

/// How local computations execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecutionMode {
    /// Real numeric execution with the given kernel.
    #[default]
    Real,
    /// Real numeric execution with an explicit kernel choice.
    RealWith(GemmKernel),
}

impl ExecutionMode {
    fn kernel(&self) -> GemmKernel {
        match self {
            ExecutionMode::Real => GemmKernel::default(),
            ExecutionMode::RealWith(k) => *k,
        }
    }
}

/// The outcome of a numeric SummaGen run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// The assembled product `C = A × B`.
    pub c: DenseMatrix,
    /// Per-rank virtual-clock snapshots.
    pub clocks: Vec<ClockSnapshot>,
    /// Per-rank traffic counters.
    pub traffic: Vec<TrafficStats>,
    /// Parallel execution time: max over ranks of final virtual time.
    pub exec_time: f64,
    /// Max over ranks of attributed computation time.
    pub comp_time: f64,
    /// Max over ranks of attributed communication time.
    pub comm_time: f64,
}

/// Multiplies `A × B` with SummaGen under the given partition, with free
/// communication (pure correctness run).
///
/// ```
/// use summagen_core::{multiply, ExecutionMode};
/// use summagen_matrix::{random_matrix, DenseMatrix};
/// use summagen_partition::{proportional_areas, Shape};
///
/// let n = 32;
/// let areas = proportional_areas(n, &[1.0, 2.0, 0.9]);
/// let spec = Shape::SquareCorner.build(n, &areas);
/// let a = DenseMatrix::identity(n);
/// let b = random_matrix(n, n, 7);
/// let result = multiply(&spec, &a, &b, ExecutionMode::Real);
/// // I × B = B, computed across three rank threads.
/// assert!(summagen_matrix::approx_eq(&result.c, &b, 1e-12));
/// ```
pub fn multiply(
    spec: &PartitionSpec,
    a: &DenseMatrix,
    b: &DenseMatrix,
    mode: ExecutionMode,
) -> RunResult {
    run_real(spec, a, b, mode, ZeroCost)
}

/// Multiplies `A × B` with SummaGen, pricing communication with a Hockney
/// model so the virtual clocks report realistic times.
pub fn multiply_with_cost(
    spec: &PartitionSpec,
    a: &DenseMatrix,
    b: &DenseMatrix,
    mode: ExecutionMode,
    cost: HockneyModel,
) -> RunResult {
    run_real(spec, a, b, mode, cost)
}

fn run_real(
    spec: &PartitionSpec,
    a: &DenseMatrix,
    b: &DenseMatrix,
    mode: ExecutionMode,
    cost: impl CostModel,
) -> RunResult {
    let rank_data = distribute(spec, a, b);
    let universe = Universe::new(spec.nprocs, cost);
    let results = universe.run(|comm| {
        let rank = comm.rank();
        let mut state = StageData::Real {
            data: &rank_data[rank],
            ws: Workspace::for_rank(spec, rank),
            kernel: mode.kernel(),
        };
        horizontal_a(&comm, spec, rank, &mut state);
        vertical_b(&comm, spec, rank, &mut state);
        // Real runs do not model device speeds: computation advances the
        // clock by zero (timing studies use `simulate`).
        let (blocks, _flops) = local_compute(&comm, spec, rank, &mut state, |_| 0.0);
        (blocks, comm.clock_snapshot(), comm.traffic())
    });

    let mut blocks = Vec::with_capacity(spec.nprocs);
    let mut clocks = Vec::with_capacity(spec.nprocs);
    let mut traffic = Vec::with_capacity(spec.nprocs);
    for (b, c, t) in results {
        blocks.push(b);
        clocks.push(c);
        traffic.push(t);
    }
    let c = assemble(spec, &blocks);
    let exec_time = clocks.iter().map(|c| c.now).fold(0.0, f64::max);
    let comp_time = clocks.iter().map(|c| c.comp_time).fold(0.0, f64::max);
    let comm_time = clocks.iter().map(|c| c.comm_time).fold(0.0, f64::max);
    RunResult {
        c,
        clocks,
        traffic,
        exec_time,
        comp_time,
        comm_time,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use summagen_matrix::{approx_eq, gemm_naive, gemm_tolerance, random_matrix};
    use summagen_partition::{proportional_areas, Shape, ALL_FOUR_SHAPES};

    fn reference(a: &DenseMatrix, b: &DenseMatrix) -> DenseMatrix {
        let n = a.rows();
        let mut c = DenseMatrix::zeros(n, n);
        gemm_naive(
            n,
            n,
            n,
            1.0,
            a.as_slice(),
            n,
            b.as_slice(),
            n,
            0.0,
            c.as_mut_slice(),
            n,
        );
        c
    }

    fn fig1a() -> PartitionSpec {
        PartitionSpec::new(
            vec![0, 1, 1, 1, 1, 1, 1, 1, 2],
            vec![9, 3, 4],
            vec![9, 3, 4],
            3,
        )
    }

    #[test]
    fn fig1a_produces_correct_product() {
        let a = random_matrix(16, 16, 1);
        let b = random_matrix(16, 16, 2);
        let res = multiply(&fig1a(), &a, &b, ExecutionMode::Real);
        assert!(approx_eq(&res.c, &reference(&a, &b), gemm_tolerance(16) * 100.0));
    }

    #[test]
    fn all_four_shapes_produce_correct_products() {
        let n = 48;
        let a = random_matrix(n, n, 3);
        let b = random_matrix(n, n, 4);
        let want = reference(&a, &b);
        let areas = proportional_areas(n, &[1.0, 2.0, 0.9]);
        for shape in ALL_FOUR_SHAPES {
            let spec = shape.build(n, &areas);
            let res = multiply(&spec, &a, &b, ExecutionMode::Real);
            assert!(
                approx_eq(&res.c, &want, gemm_tolerance(n) * 100.0),
                "{} wrong",
                shape.name()
            );
        }
    }

    #[test]
    fn extension_shapes_produce_correct_products() {
        let n = 40;
        let a = random_matrix(n, n, 5);
        let b = random_matrix(n, n, 6);
        let want = reference(&a, &b);
        let areas = proportional_areas(n, &[2.0, 1.0, 0.5]);
        for shape in [Shape::RectangleCorner, Shape::LRectangle] {
            let spec = shape.build(n, &areas);
            let res = multiply(&spec, &a, &b, ExecutionMode::Real);
            assert!(
                approx_eq(&res.c, &want, gemm_tolerance(n) * 100.0),
                "{} wrong",
                shape.name()
            );
        }
    }

    #[test]
    fn identity_times_identity() {
        let n = 32;
        let id = DenseMatrix::identity(n);
        let areas = proportional_areas(n, &[1.0, 1.0, 1.0]);
        let spec = Shape::SquareCorner.build(n, &areas);
        let res = multiply(&spec, &id, &id, ExecutionMode::Real);
        assert!(approx_eq(&res.c, &id, 1e-12));
    }

    #[test]
    fn single_processor_partition_works() {
        let n = 20;
        let spec = PartitionSpec::new(vec![0], vec![n], vec![n], 1);
        let a = random_matrix(n, n, 7);
        let b = random_matrix(n, n, 8);
        let res = multiply(&spec, &a, &b, ExecutionMode::Real);
        assert!(approx_eq(&res.c, &reference(&a, &b), gemm_tolerance(n) * 100.0));
        // One rank => no messages at all.
        assert_eq!(res.traffic[0].msgs_sent, 0);
    }

    #[test]
    fn many_processor_one_d_partition() {
        let n = 60;
        let areas: Vec<f64> = vec![600.0; 6];
        let spec = Shape::OneDRectangular.build(n, &areas);
        let a = random_matrix(n, n, 9);
        let b = random_matrix(n, n, 10);
        let res = multiply(&spec, &a, &b, ExecutionMode::Real);
        assert!(approx_eq(&res.c, &reference(&a, &b), gemm_tolerance(n) * 100.0));
    }

    #[test]
    fn hockney_cost_produces_nonzero_comm_time() {
        let n = 32;
        let areas = proportional_areas(n, &[1.0, 2.0, 0.9]);
        let spec = Shape::SquareRectangle.build(n, &areas);
        let a = random_matrix(n, n, 11);
        let b = random_matrix(n, n, 12);
        let res = multiply_with_cost(
            &spec,
            &a,
            &b,
            ExecutionMode::Real,
            HockneyModel {
                alpha: 1e-5,
                beta: 1e-9,
            },
        );
        assert!(res.comm_time > 0.0);
        assert!(res.exec_time >= res.comm_time);
        assert!(approx_eq(&res.c, &reference(&a, &b), gemm_tolerance(n) * 100.0));
        // Every rank moved some bytes.
        for t in &res.traffic {
            assert!(t.bytes_sent + t.bytes_recv > 0);
        }
    }

    #[test]
    fn all_kernels_agree_through_summagen() {
        let n = 36;
        let areas = proportional_areas(n, &[1.0, 1.5, 0.7]);
        let spec = Shape::BlockRectangle.build(n, &areas);
        let a = random_matrix(n, n, 13);
        let b = random_matrix(n, n, 14);
        let want = reference(&a, &b);
        for kernel in [GemmKernel::Naive, GemmKernel::Blocked, GemmKernel::Parallel] {
            let res = multiply(&spec, &a, &b, ExecutionMode::RealWith(kernel));
            assert!(approx_eq(&res.c, &want, gemm_tolerance(n) * 100.0));
        }
    }

    #[test]
    fn beaumont_layout_runs_through_summagen() {
        let n = 50;
        let spec = summagen_partition::beaumont_column_layout(n, &[1.0, 2.0, 0.9, 1.5]);
        let a = random_matrix(n, n, 15);
        let b = random_matrix(n, n, 16);
        let res = multiply(&spec, &a, &b, ExecutionMode::Real);
        assert!(approx_eq(&res.c, &reference(&a, &b), gemm_tolerance(n) * 100.0));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use summagen_matrix::{approx_eq, gemm_naive, gemm_tolerance, random_matrix};
    use summagen_partition::{proportional_areas, ALL_FOUR_SHAPES};

    fn reference(a: &DenseMatrix, b: &DenseMatrix) -> DenseMatrix {
        let n = a.rows();
        let mut c = DenseMatrix::zeros(n, n);
        gemm_naive(
            n, n, n, 1.0,
            a.as_slice(), n,
            b.as_slice(), n,
            0.0,
            c.as_mut_slice(), n,
        );
        c
    }

    /// A random valid partition spec: random grid cuts and random owners
    /// (repaired so every processor owns something).
    fn random_spec(n: usize, p: usize, seed: u64) -> PartitionSpec {
        use rand::prelude::*;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let cuts = |total: usize, parts: usize, rng: &mut rand::rngs::StdRng| -> Vec<usize> {
            // parts-1 distinct interior cut points.
            let mut points: Vec<usize> = (1..total).collect();
            points.shuffle(rng);
            let mut chosen: Vec<usize> = points.into_iter().take(parts - 1).collect();
            chosen.sort_unstable();
            let mut sizes = Vec::with_capacity(parts);
            let mut prev = 0;
            for c in chosen {
                sizes.push(c - prev);
                prev = c;
            }
            sizes.push(total - prev);
            sizes
        };
        let gr = rng.random_range(1..=4.min(n));
        let gc = rng.random_range(1..=4.min(n));
        let heights = cuts(n, gr, &mut rng);
        let widths = cuts(n, gc, &mut rng);
        let cells = gr * gc;
        let p = p.min(cells);
        let mut owners: Vec<usize> = (0..cells).map(|_| rng.random_range(0..p)).collect();
        // Repair: give each processor at least one cell.
        for proc in 0..p {
            if !owners.contains(&proc) {
                let idx = rng.random_range(0..cells);
                owners[idx] = proc;
            }
        }
        // Second repair pass in case repairs overwrote each other.
        for proc in 0..p {
            if !owners.contains(&proc) {
                let victim = owners
                    .iter()
                    .position(|&o| owners.iter().filter(|&&x| x == o).count() > 1)
                    .unwrap();
                owners[victim] = proc;
            }
        }
        PartitionSpec::new(owners, heights, widths, p)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// SummaGen computes the correct product for *arbitrary* valid
        /// partition specs — not just the four named shapes.
        #[test]
        fn arbitrary_specs_are_correct(n in 8usize..40, p in 1usize..5, seed in 0u64..10_000) {
            let spec = random_spec(n, p, seed);
            let a = random_matrix(n, n, seed.wrapping_add(1));
            let b = random_matrix(n, n, seed.wrapping_add(2));
            let res = multiply(&spec, &a, &b, ExecutionMode::Real);
            prop_assert!(approx_eq(&res.c, &reference(&a, &b), gemm_tolerance(n) * 100.0));
        }

        /// The four shapes are correct across random sizes and area mixes.
        #[test]
        fn shapes_correct_across_sizes(
            n in 9usize..48,
            s0 in 0.2f64..4.0,
            s1 in 0.2f64..4.0,
            s2 in 0.2f64..4.0,
        ) {
            let areas = proportional_areas(n, &[s0, s1, s2]);
            let a = random_matrix(n, n, 21);
            let b = random_matrix(n, n, 22);
            let want = reference(&a, &b);
            for shape in ALL_FOUR_SHAPES {
                let spec = shape.build(n, &areas);
                let res = multiply(&spec, &a, &b, ExecutionMode::Real);
                prop_assert!(
                    approx_eq(&res.c, &want, gemm_tolerance(n) * 100.0),
                    "{} wrong at n={n}", shape.name()
                );
            }
        }
    }
}
