//! Running SummaGen end-to-end on real matrices, with optional recovery
//! from rank failures.

use std::fmt;
use std::sync::Arc;
use std::time::Duration;

use summagen_comm::{
    Backend, ClockSnapshot, CostModel, EventSink, FailureCause, FaultPlan, HeartbeatConfig,
    HockneyModel, LinkPlan, RankFailure, TrafficStats, Universe, ZeroCost, DEFAULT_RECV_TIMEOUT,
};
use summagen_matrix::{DenseMatrix, GemmKernel};
use summagen_partition::{beaumont_column_layout, proportional_areas, PartitionSpec, Shape};

use crate::rankdata::{assemble, distribute};
use crate::stages::{horizontal_a, local_compute, vertical_b, StageData, Workspace};

/// How local computations execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecutionMode {
    /// Real numeric execution with the given kernel.
    #[default]
    Real,
    /// Real numeric execution with an explicit kernel choice.
    RealWith(GemmKernel),
}

impl ExecutionMode {
    pub(crate) fn kernel(&self) -> GemmKernel {
        match self {
            ExecutionMode::Real => GemmKernel::default(),
            ExecutionMode::RealWith(k) => *k,
        }
    }
}

/// The outcome of a numeric SummaGen run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// The assembled product `C = A × B`.
    pub c: DenseMatrix,
    /// Per-rank virtual-clock snapshots.
    pub clocks: Vec<ClockSnapshot>,
    /// Per-rank traffic counters.
    pub traffic: Vec<TrafficStats>,
    /// Parallel execution time: max over ranks of final virtual time.
    pub exec_time: f64,
    /// Max over ranks of attributed computation time.
    pub comp_time: f64,
    /// Max over ranks of attributed communication time.
    pub comm_time: f64,
    /// Populated by [`multiply_with_recovery`] when at least one retry was
    /// needed; `None` for undisturbed runs.
    pub recovery: Option<RecoveryReport>,
}

/// Multiplies `A × B` with SummaGen under the given partition, with free
/// communication (pure correctness run).
///
/// # Panics
///
/// Panics if any rank fails (a bug in the worker closure, not an expected
/// condition — no faults are injected on this path). Callers that need to
/// handle failure as a value should use [`multiply_with_recovery`].
///
/// ```
/// use summagen_core::{multiply, ExecutionMode};
/// use summagen_matrix::{random_matrix, DenseMatrix};
/// use summagen_partition::{proportional_areas, Shape};
///
/// let n = 32;
/// let areas = proportional_areas(n, &[1.0, 2.0, 0.9]);
/// let spec = Shape::SquareCorner.build(n, &areas);
/// let a = DenseMatrix::identity(n);
/// let b = random_matrix(n, n, 7);
/// let result = multiply(&spec, &a, &b, ExecutionMode::Real);
/// // I × B = B, computed across three rank threads.
/// assert!(summagen_matrix::approx_eq(&result.c, &b, 1e-12));
/// ```
pub fn multiply(
    spec: &PartitionSpec,
    a: &DenseMatrix,
    b: &DenseMatrix,
    mode: ExecutionMode,
) -> RunResult {
    run_real(spec, a, b, mode, ZeroCost)
}

/// Multiplies `A × B` with SummaGen, pricing communication with a Hockney
/// model so the virtual clocks report realistic times.
pub fn multiply_with_cost(
    spec: &PartitionSpec,
    a: &DenseMatrix,
    b: &DenseMatrix,
    mode: ExecutionMode,
    cost: HockneyModel,
) -> RunResult {
    run_real(spec, a, b, mode, cost)
}

/// Like [`multiply_with_cost`] but reporting every runtime event — sends,
/// receives, collectives, per-block GEMMs (with measured kernel times),
/// stages — to `sink`. Use a `summagen_trace::TraceRecorder` as the sink
/// to get Perfetto export and critical-path analysis of the real run.
///
/// # Panics
/// Panics if any rank fails, like [`multiply`].
pub fn multiply_traced(
    spec: &PartitionSpec,
    a: &DenseMatrix,
    b: &DenseMatrix,
    mode: ExecutionMode,
    cost: impl CostModel,
    sink: Arc<dyn EventSink>,
) -> RunResult {
    try_run_real(
        spec,
        a,
        b,
        mode,
        cost,
        None,
        None,
        None,
        None,
        DEFAULT_RECV_TIMEOUT,
        Some(sink),
        Backend::Channel,
    )
    .unwrap_or_else(|failure| panic!("rank panicked: {failure}"))
}

fn run_real(
    spec: &PartitionSpec,
    a: &DenseMatrix,
    b: &DenseMatrix,
    mode: ExecutionMode,
    cost: impl CostModel,
) -> RunResult {
    try_run_real(
        spec,
        a,
        b,
        mode,
        cost,
        None,
        None,
        None,
        None,
        DEFAULT_RECV_TIMEOUT,
        None,
        Backend::Channel,
    )
    .unwrap_or_else(|failure| panic!("rank panicked: {failure}"))
}

/// One fallible execution attempt: runs the three stages under `try_run`,
/// so a dying rank surfaces as `Err(RankFailure)` instead of a panic or a
/// silent hang.
#[allow(clippy::too_many_arguments)]
fn try_run_real(
    spec: &PartitionSpec,
    a: &DenseMatrix,
    b: &DenseMatrix,
    mode: ExecutionMode,
    cost: impl CostModel,
    faults: Option<FaultPlan>,
    link: Option<LinkPlan>,
    heartbeat: Option<HeartbeatConfig>,
    metrics: Option<Arc<summagen_metrics::RuntimeMetrics>>,
    recv_timeout: Duration,
    sink: Option<Arc<dyn EventSink>>,
    backend: Backend,
) -> Result<RunResult, RankFailure> {
    let rank_data = distribute(spec, a, b);
    let mut universe = Universe::new(spec.nprocs, cost)
        .recv_timeout(recv_timeout)
        .with_backend(backend);
    if let Some(plan) = faults {
        universe = universe.with_faults(plan);
    }
    if let Some(plan) = link {
        universe = universe.with_link_plan(plan);
    }
    if let Some(hb) = heartbeat {
        universe = universe.with_heartbeat(hb);
    }
    if let Some(m) = metrics {
        universe = universe.with_metrics(m);
    }
    if let Some(sink) = sink {
        universe = universe.with_event_sink(sink);
    }
    let results = universe.try_run(|comm| {
        let rank = comm.rank();
        let mut state = StageData::Real {
            data: &rank_data[rank],
            ws: Workspace::for_rank(spec, rank),
            kernel: mode.kernel(),
        };
        horizontal_a(&comm, spec, rank, &mut state)?;
        vertical_b(&comm, spec, rank, &mut state)?;
        // Real runs do not model device speeds: computation advances the
        // clock by zero (timing studies use `simulate`).
        let (blocks, _flops) = local_compute(&comm, spec, rank, &mut state, |_| 0.0);
        Ok((blocks, comm.clock_snapshot(), comm.traffic()))
    })?;

    let mut blocks = Vec::with_capacity(spec.nprocs);
    let mut clocks = Vec::with_capacity(spec.nprocs);
    let mut traffic = Vec::with_capacity(spec.nprocs);
    for (b, c, t) in results {
        blocks.push(b);
        clocks.push(c);
        traffic.push(t);
    }
    let c = assemble(spec, &blocks);
    let exec_time = clocks.iter().map(|c| c.now).fold(0.0, f64::max);
    let comp_time = clocks.iter().map(|c| c.comp_time).fold(0.0, f64::max);
    let comm_time = clocks.iter().map(|c| c.comm_time).fold(0.0, f64::max);
    Ok(RunResult {
        c,
        clocks,
        traffic,
        exec_time,
        comp_time,
        comm_time,
        recovery: None,
    })
}

/// Policy knobs for [`multiply_with_recovery`].
#[derive(Debug, Clone)]
pub struct RecoveryOptions {
    /// Maximum number of executions (the first try plus retries).
    pub max_attempts: usize,
    /// Virtual-clock seconds charged per retry, modelling failure
    /// detection plus restart of the surviving ranks.
    pub retry_backoff: f64,
    /// Receive timeout applied to every attempt. Tests injecting faults
    /// should use milliseconds so deadlocks resolve quickly.
    pub recv_timeout: Duration,
    /// Lossy-link plan applied to every attempt: sends go through the
    /// seeded transport (retransmission, duplicate suppression, in-order
    /// reassembly), and any configured silent hangs fire. `None` (the
    /// default) runs on perfectly reliable links.
    pub link_plan: Option<LinkPlan>,
    /// Heartbeat failure-detector configuration applied to every
    /// attempt. Required to recover from *silent* hangs — without it a
    /// hung rank only surfaces as a receive timeout at its peers.
    pub heartbeat: Option<HeartbeatConfig>,
    /// Aggregate-metrics bundle shared by every attempt: transport
    /// delivery/retransmit/duplicate counters, heartbeat ticks and
    /// suspicion latencies accumulate here across retries. `None` (the
    /// default) skips metrics entirely.
    pub metrics: Option<Arc<summagen_metrics::RuntimeMetrics>>,
    /// Wire between ranks for every attempt: in-process channels (the
    /// default, bit-identical to the historical runtime) or loopback
    /// TCP. Each attempt gets a fresh transport, so TCP fault injectors
    /// (refused connects, resets, stalls) re-fire per attempt.
    pub backend: Backend,
}

impl Default for RecoveryOptions {
    fn default() -> Self {
        Self {
            max_attempts: 3,
            retry_backoff: 0.5,
            recv_timeout: DEFAULT_RECV_TIMEOUT,
            link_plan: None,
            heartbeat: None,
            metrics: None,
            backend: Backend::Channel,
        }
    }
}

/// What [`multiply_with_recovery`] did to complete a run.
#[derive(Debug, Clone)]
pub struct RecoveryReport {
    /// Total executions performed (1 = no failure observed).
    pub attempts: usize,
    /// Device indices (into the caller's `rel_speeds`) dropped after they
    /// were identified as failure root causes.
    pub failed_devices: Vec<usize>,
    /// Device indices that performed the successful attempt.
    pub surviving_devices: Vec<usize>,
    /// Fraction of the `C` area each surviving device computed in the
    /// successful attempt (sums to 1).
    pub final_loads: Vec<f64>,
    /// Virtual seconds added to `exec_time` by retry backoff.
    pub backoff_time: f64,
    /// Failure causes observed across the failed attempts, keyed by
    /// [`summagen_comm::FailureCause::kind_label`] and sorted by label.
    /// Every abnormal rank of every failed attempt contributes one count,
    /// so victims (`peer-failed`, `timeout`) appear alongside root causes.
    pub failure_causes: Vec<(String, usize)>,
    /// Fraction of the plan's k-dimension the successful attempt had to
    /// execute: always 1.0 here (full restart). The checkpointed
    /// executor ([`crate::multiply_abft`]) reports less when it resumes
    /// mid-plan, which makes the two recovery styles comparable from
    /// artifacts.
    pub recompute_fraction: f64,
    /// Abnormal ranks across failed attempts whose death was *announced*
    /// — a panic, injected kill, or typed error posted a death notice.
    pub announced_failures: usize,
    /// Abnormal ranks across failed attempts whose death was *detected*
    /// by heartbeat suspicion (silent hangs): nobody announced anything,
    /// the watchdog noticed the silence.
    pub detected_failures: usize,
    /// Largest heartbeat detection latency observed across detected
    /// failures, wall-clock seconds (0 when nothing was detected).
    pub max_detection_latency: f64,
}

/// Collapses a cause tally into the sorted `(label, count)` form stored
/// in [`RecoveryReport::failure_causes`].
pub(crate) fn cause_counts(
    tally: &std::collections::BTreeMap<String, usize>,
) -> Vec<(String, usize)> {
    tally.iter().map(|(k, v)| (k.clone(), *v)).collect()
}

/// Why [`multiply_with_recovery`] gave up.
#[derive(Debug)]
pub enum RecoveryError {
    /// The attempt budget ran out; `last` is the terminal failure.
    AttemptsExhausted {
        /// Executions performed.
        attempts: usize,
        /// The failure that ended the final attempt.
        last: RankFailure,
    },
    /// Every device was identified as a failure root cause.
    AllDevicesFailed {
        /// Executions performed.
        attempts: usize,
    },
}

impl fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoveryError::AttemptsExhausted { attempts, last } => {
                write!(f, "recovery gave up after {attempts} attempts: {last}")
            }
            RecoveryError::AllDevicesFailed { attempts } => {
                write!(f, "all devices failed after {attempts} attempts")
            }
        }
    }
}

impl std::error::Error for RecoveryError {}

/// Builds a partition for the surviving device set: the requested paper
/// shape while three devices remain (the shapes are three-processor
/// constructions), otherwise Beaumont's column-based layout, which handles
/// any processor count including one.
pub(crate) fn survivor_spec(shape: Shape, n: usize, speeds: &[f64]) -> PartitionSpec {
    if speeds.len() == 3 {
        shape.build(n, &proportional_areas(n, speeds))
    } else {
        beaumont_column_layout(n, speeds)
    }
}

/// Multiplies `A × B` with SummaGen, recovering from rank failures by
/// re-partitioning over the surviving devices — the ULFM-style
/// shrink-and-retry strategy.
///
/// Each attempt `i` runs under `attempt_faults[i]` (attempts past the end
/// of the slice run fault-free; pass `&[]` for a fully undisturbed run).
/// When an attempt fails:
///
/// * *crashed* ranks (per [`RankFailure::crashed_ranks`]: panicked,
///   kill-injected, or named dead by a peer — excluding ranks that merely
///   starved on a timeout) map back to devices, which are removed from
///   the pool before the matrix is re-partitioned over the survivors;
/// * if nobody crashed but a rank reported a peer `Unreachable` (the
///   transport exhausted its wire budget against it), the *blamed* peer's
///   device is shrunk out — a dead link fails identically on replay;
/// * failures identifying no crashed rank (timeouts, dropped messages)
///   retry the same device set unchanged;
/// * every retry charges `opts.retry_backoff` virtual seconds, added to
///   the final `exec_time` (the failed attempt's own clocks are lost with
///   its universe).
///
/// On success, `RunResult::recovery` is `Some` iff at least one retry
/// happened. Errors only when the attempt budget is exhausted or no
/// devices remain.
#[allow(clippy::too_many_arguments)]
pub fn multiply_with_recovery(
    shape: Shape,
    rel_speeds: &[f64],
    a: &DenseMatrix,
    b: &DenseMatrix,
    mode: ExecutionMode,
    cost: impl CostModel + Clone,
    attempt_faults: &[FaultPlan],
    opts: &RecoveryOptions,
) -> Result<RunResult, RecoveryError> {
    assert!(!rel_speeds.is_empty(), "need at least one device");
    assert!(opts.max_attempts > 0, "need at least one attempt");
    assert_eq!(a.rows(), b.rows(), "A and B must share dimension n");
    let n = a.rows();

    let mut devices: Vec<usize> = (0..rel_speeds.len()).collect();
    let mut failed_devices: Vec<usize> = Vec::new();
    let mut causes: std::collections::BTreeMap<String, usize> = std::collections::BTreeMap::new();
    let mut announced_failures = 0usize;
    let mut detected_failures = 0usize;
    let mut max_detection_latency = 0.0f64;
    let mut attempt = 0;
    loop {
        attempt += 1;
        let speeds: Vec<f64> = devices.iter().map(|&d| rel_speeds[d]).collect();
        let spec = survivor_spec(shape, n, &speeds);
        let faults = attempt_faults
            .get(attempt - 1)
            .filter(|p| !p.is_empty())
            .cloned();
        match try_run_real(
            &spec,
            a,
            b,
            mode,
            cost.clone(),
            faults,
            opts.link_plan.clone(),
            opts.heartbeat,
            opts.metrics.clone(),
            opts.recv_timeout,
            None,
            opts.backend,
        ) {
            Ok(mut result) => {
                let backoff_time = (attempt - 1) as f64 * opts.retry_backoff;
                result.exec_time += backoff_time;
                if attempt > 1 {
                    let area = (n * n) as f64;
                    result.recovery = Some(RecoveryReport {
                        attempts: attempt,
                        failed_devices: failed_devices.clone(),
                        surviving_devices: devices.clone(),
                        final_loads: spec.areas().iter().map(|&a| a as f64 / area).collect(),
                        backoff_time,
                        failure_causes: cause_counts(&causes),
                        // Full restart: the retry recomputed everything.
                        recompute_fraction: 1.0,
                        announced_failures,
                        detected_failures,
                        max_detection_latency,
                    });
                }
                return Ok(result);
            }
            Err(failure) => {
                for fr in &failure.failed {
                    *causes.entry(fr.cause.kind_label().to_string()).or_default() += 1;
                    if let FailureCause::DetectedHang {
                        detection_latency, ..
                    } = &fr.cause
                    {
                        detected_failures += 1;
                        max_detection_latency = max_detection_latency.max(*detection_latency);
                    } else {
                        announced_failures += 1;
                    }
                }
                if attempt >= opts.max_attempts {
                    return Err(RecoveryError::AttemptsExhausted {
                        attempts: attempt,
                        last: failure,
                    });
                }
                let mut roots = failure.crashed_ranks();
                if roots.is_empty() {
                    // Nobody crashed outright, but a peer that exhausted
                    // the transport's wire budget sits behind a dead link:
                    // replaying the same device set replays the same
                    // exhaustion, so shrink the blamed peer out instead.
                    roots = failure.unreachable_peers();
                }
                if roots.is_empty() {
                    // Timeouts without an identified crash: nothing to
                    // shrink, so retry the same device set.
                    continue;
                }
                let mut dropped: Vec<usize> = roots.iter().map(|&r| devices[r]).collect();
                devices.retain(|d| !dropped.contains(d));
                failed_devices.append(&mut dropped);
                if devices.is_empty() {
                    return Err(RecoveryError::AllDevicesFailed { attempts: attempt });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use summagen_matrix::{approx_eq, gemm_naive, gemm_tolerance, random_matrix};
    use summagen_partition::{proportional_areas, Shape, ALL_FOUR_SHAPES};

    fn reference(a: &DenseMatrix, b: &DenseMatrix) -> DenseMatrix {
        let n = a.rows();
        let mut c = DenseMatrix::zeros(n, n);
        gemm_naive(
            n,
            n,
            n,
            1.0,
            a.as_slice(),
            n,
            b.as_slice(),
            n,
            0.0,
            c.as_mut_slice(),
            n,
        );
        c
    }

    fn fig1a() -> PartitionSpec {
        PartitionSpec::new(
            vec![0, 1, 1, 1, 1, 1, 1, 1, 2],
            vec![9, 3, 4],
            vec![9, 3, 4],
            3,
        )
    }

    #[test]
    fn fig1a_produces_correct_product() {
        let a = random_matrix(16, 16, 1);
        let b = random_matrix(16, 16, 2);
        let res = multiply(&fig1a(), &a, &b, ExecutionMode::Real);
        assert!(approx_eq(
            &res.c,
            &reference(&a, &b),
            gemm_tolerance(16) * 100.0
        ));
    }

    #[test]
    fn all_four_shapes_produce_correct_products() {
        let n = 48;
        let a = random_matrix(n, n, 3);
        let b = random_matrix(n, n, 4);
        let want = reference(&a, &b);
        let areas = proportional_areas(n, &[1.0, 2.0, 0.9]);
        for shape in ALL_FOUR_SHAPES {
            let spec = shape.build(n, &areas);
            let res = multiply(&spec, &a, &b, ExecutionMode::Real);
            assert!(
                approx_eq(&res.c, &want, gemm_tolerance(n) * 100.0),
                "{} wrong",
                shape.name()
            );
        }
    }

    #[test]
    fn extension_shapes_produce_correct_products() {
        let n = 40;
        let a = random_matrix(n, n, 5);
        let b = random_matrix(n, n, 6);
        let want = reference(&a, &b);
        let areas = proportional_areas(n, &[2.0, 1.0, 0.5]);
        for shape in [Shape::RectangleCorner, Shape::LRectangle] {
            let spec = shape.build(n, &areas);
            let res = multiply(&spec, &a, &b, ExecutionMode::Real);
            assert!(
                approx_eq(&res.c, &want, gemm_tolerance(n) * 100.0),
                "{} wrong",
                shape.name()
            );
        }
    }

    #[test]
    fn identity_times_identity() {
        let n = 32;
        let id = DenseMatrix::identity(n);
        let areas = proportional_areas(n, &[1.0, 1.0, 1.0]);
        let spec = Shape::SquareCorner.build(n, &areas);
        let res = multiply(&spec, &id, &id, ExecutionMode::Real);
        assert!(approx_eq(&res.c, &id, 1e-12));
    }

    #[test]
    fn single_processor_partition_works() {
        let n = 20;
        let spec = PartitionSpec::new(vec![0], vec![n], vec![n], 1);
        let a = random_matrix(n, n, 7);
        let b = random_matrix(n, n, 8);
        let res = multiply(&spec, &a, &b, ExecutionMode::Real);
        assert!(approx_eq(
            &res.c,
            &reference(&a, &b),
            gemm_tolerance(n) * 100.0
        ));
        // One rank => no messages at all.
        assert_eq!(res.traffic[0].msgs_sent, 0);
    }

    #[test]
    fn many_processor_one_d_partition() {
        let n = 60;
        let areas: Vec<f64> = vec![600.0; 6];
        let spec = Shape::OneDRectangular.build(n, &areas);
        let a = random_matrix(n, n, 9);
        let b = random_matrix(n, n, 10);
        let res = multiply(&spec, &a, &b, ExecutionMode::Real);
        assert!(approx_eq(
            &res.c,
            &reference(&a, &b),
            gemm_tolerance(n) * 100.0
        ));
    }

    #[test]
    fn hockney_cost_produces_nonzero_comm_time() {
        let n = 32;
        let areas = proportional_areas(n, &[1.0, 2.0, 0.9]);
        let spec = Shape::SquareRectangle.build(n, &areas);
        let a = random_matrix(n, n, 11);
        let b = random_matrix(n, n, 12);
        let res = multiply_with_cost(
            &spec,
            &a,
            &b,
            ExecutionMode::Real,
            HockneyModel {
                alpha: 1e-5,
                beta: 1e-9,
            },
        );
        assert!(res.comm_time > 0.0);
        assert!(res.exec_time >= res.comm_time);
        assert!(approx_eq(
            &res.c,
            &reference(&a, &b),
            gemm_tolerance(n) * 100.0
        ));
        // Every rank moved some bytes.
        for t in &res.traffic {
            assert!(t.bytes_sent + t.bytes_recv > 0);
        }
    }

    #[test]
    fn all_kernels_agree_through_summagen() {
        let n = 36;
        let areas = proportional_areas(n, &[1.0, 1.5, 0.7]);
        let spec = Shape::BlockRectangle.build(n, &areas);
        let a = random_matrix(n, n, 13);
        let b = random_matrix(n, n, 14);
        let want = reference(&a, &b);
        for kernel in [GemmKernel::Naive, GemmKernel::Blocked, GemmKernel::Parallel] {
            let res = multiply(&spec, &a, &b, ExecutionMode::RealWith(kernel));
            assert!(approx_eq(&res.c, &want, gemm_tolerance(n) * 100.0));
        }
    }

    #[test]
    fn beaumont_layout_runs_through_summagen() {
        let n = 50;
        let spec = summagen_partition::beaumont_column_layout(n, &[1.0, 2.0, 0.9, 1.5]);
        let a = random_matrix(n, n, 15);
        let b = random_matrix(n, n, 16);
        let res = multiply(&spec, &a, &b, ExecutionMode::Real);
        assert!(approx_eq(
            &res.c,
            &reference(&a, &b),
            gemm_tolerance(n) * 100.0
        ));
    }

    fn fast_opts() -> RecoveryOptions {
        RecoveryOptions {
            max_attempts: 3,
            retry_backoff: 0.25,
            recv_timeout: Duration::from_millis(500),
            ..Default::default()
        }
    }

    #[test]
    fn undisturbed_recovery_run_reports_no_recovery() {
        let n = 32;
        let a = random_matrix(n, n, 21);
        let b = random_matrix(n, n, 22);
        let res = multiply_with_recovery(
            Shape::SquareCorner,
            &[1.0, 2.0, 0.9],
            &a,
            &b,
            ExecutionMode::Real,
            ZeroCost,
            &[],
            &fast_opts(),
        )
        .expect("fault-free run succeeds");
        assert!(res.recovery.is_none());
        assert!(approx_eq(
            &res.c,
            &reference(&a, &b),
            gemm_tolerance(n) * 100.0
        ));
    }

    #[test]
    fn recovery_drops_killed_rank_and_repartitions() {
        let n = 32;
        let a = random_matrix(n, n, 23);
        let b = random_matrix(n, n, 24);
        let plan = FaultPlan::new().kill_rank(1, 2);
        let res = multiply_with_recovery(
            Shape::SquareCorner,
            &[1.0, 2.0, 0.9],
            &a,
            &b,
            ExecutionMode::Real,
            ZeroCost,
            &[plan],
            &fast_opts(),
        )
        .expect("recovery succeeds after dropping the dead rank");
        let rep = res.recovery.as_ref().expect("a retry happened");
        assert_eq!(rep.attempts, 2);
        assert_eq!(rep.failed_devices, vec![1]);
        assert_eq!(rep.surviving_devices, vec![0, 2]);
        assert_eq!(rep.final_loads.len(), 2);
        assert!((rep.final_loads.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!((rep.backoff_time - 0.25).abs() < 1e-12);
        // The killed rank contributes an injected-kill count; survivors
        // that resigned appear as victims. Full restart => fraction 1.
        assert!(rep
            .failure_causes
            .iter()
            .any(|(label, count)| label == "injected-kill" && *count == 1));
        assert!((rep.recompute_fraction - 1.0).abs() < 1e-12);
        assert!(res.exec_time >= 0.25);
        assert!(approx_eq(
            &res.c,
            &reference(&a, &b),
            gemm_tolerance(n) * 100.0
        ));
    }

    #[test]
    fn recovery_survives_cascading_failures_down_to_one_device() {
        let n = 30;
        let a = random_matrix(n, n, 25);
        let b = random_matrix(n, n, 26);
        // Attempt 1 kills rank 0 (3 devices), attempt 2 kills rank 1 of
        // the shrunken 2-device universe.
        let faults = vec![
            FaultPlan::new().kill_rank(0, 1),
            FaultPlan::new().kill_rank(1, 1),
        ];
        let res = multiply_with_recovery(
            Shape::BlockRectangle,
            &[1.0, 2.0, 0.9],
            &a,
            &b,
            ExecutionMode::Real,
            ZeroCost,
            &faults,
            &fast_opts(),
        )
        .expect("recovery succeeds on the last surviving device");
        let rep = res.recovery.as_ref().expect("retries happened");
        assert_eq!(rep.attempts, 3);
        assert_eq!(rep.failed_devices, vec![0, 2]);
        assert_eq!(rep.surviving_devices, vec![1]);
        assert_eq!(rep.final_loads, vec![1.0]);
        assert!(approx_eq(
            &res.c,
            &reference(&a, &b),
            gemm_tolerance(n) * 100.0
        ));
    }

    #[test]
    fn recovery_exhausts_attempt_budget_with_typed_error() {
        let n = 24;
        let a = random_matrix(n, n, 27);
        let b = random_matrix(n, n, 28);
        // Kill a rank on every attempt the budget allows.
        let faults = vec![
            FaultPlan::new().kill_rank(0, 0),
            FaultPlan::new().kill_rank(0, 0),
        ];
        let opts = RecoveryOptions {
            max_attempts: 2,
            ..fast_opts()
        };
        let err = multiply_with_recovery(
            Shape::SquareCorner,
            &[1.0, 2.0, 0.9],
            &a,
            &b,
            ExecutionMode::Real,
            ZeroCost,
            &faults,
            &opts,
        )
        .expect_err("budget of 2 cannot absorb 2 failing attempts");
        match err {
            RecoveryError::AttemptsExhausted { attempts, last } => {
                assert_eq!(attempts, 2);
                assert_eq!(last.root_failed_ranks(), vec![0]);
            }
            other => panic!("expected AttemptsExhausted, got {other}"),
        }
    }

    #[test]
    fn recovery_retries_same_devices_after_pure_timeout() {
        let n = 24;
        let a = random_matrix(n, n, 29);
        let b = random_matrix(n, n, 30);
        // Drop rank 0's first broadcast panel: the receivers time out
        // without an identified culprit, so attempt 2 reuses all three
        // devices and succeeds.
        let faults = vec![FaultPlan::new().drop_message(0, 1, 0)];
        let opts = RecoveryOptions {
            max_attempts: 2,
            retry_backoff: 0.25,
            recv_timeout: Duration::from_millis(200),
            ..Default::default()
        };
        let res = multiply_with_recovery(
            Shape::SquareCorner,
            &[1.0, 2.0, 0.9],
            &a,
            &b,
            ExecutionMode::Real,
            ZeroCost,
            &faults,
            &opts,
        )
        .expect("retry after timeout succeeds");
        let rep = res.recovery.as_ref().expect("a retry happened");
        assert_eq!(rep.attempts, 2);
        assert!(rep.failed_devices.is_empty());
        assert_eq!(rep.surviving_devices, vec![0, 1, 2]);
        assert!(approx_eq(
            &res.c,
            &reference(&a, &b),
            gemm_tolerance(n) * 100.0
        ));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use summagen_matrix::{approx_eq, gemm_naive, gemm_tolerance, random_matrix};
    use summagen_partition::{proportional_areas, ALL_FOUR_SHAPES};

    fn reference(a: &DenseMatrix, b: &DenseMatrix) -> DenseMatrix {
        let n = a.rows();
        let mut c = DenseMatrix::zeros(n, n);
        gemm_naive(
            n,
            n,
            n,
            1.0,
            a.as_slice(),
            n,
            b.as_slice(),
            n,
            0.0,
            c.as_mut_slice(),
            n,
        );
        c
    }

    /// A random valid partition spec: random grid cuts and random owners
    /// (repaired so every processor owns something).
    fn random_spec(n: usize, p: usize, seed: u64) -> PartitionSpec {
        use rand::prelude::*;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let cuts = |total: usize, parts: usize, rng: &mut rand::rngs::StdRng| -> Vec<usize> {
            // parts-1 distinct interior cut points.
            let mut points: Vec<usize> = (1..total).collect();
            points.shuffle(rng);
            let mut chosen: Vec<usize> = points.into_iter().take(parts - 1).collect();
            chosen.sort_unstable();
            let mut sizes = Vec::with_capacity(parts);
            let mut prev = 0;
            for c in chosen {
                sizes.push(c - prev);
                prev = c;
            }
            sizes.push(total - prev);
            sizes
        };
        let gr = rng.random_range(1..=4.min(n));
        let gc = rng.random_range(1..=4.min(n));
        let heights = cuts(n, gr, &mut rng);
        let widths = cuts(n, gc, &mut rng);
        let cells = gr * gc;
        let p = p.min(cells);
        let mut owners: Vec<usize> = (0..cells).map(|_| rng.random_range(0..p)).collect();
        // Repair: give each processor at least one cell.
        for proc in 0..p {
            if !owners.contains(&proc) {
                let idx = rng.random_range(0..cells);
                owners[idx] = proc;
            }
        }
        // Second repair pass in case repairs overwrote each other.
        for proc in 0..p {
            if !owners.contains(&proc) {
                let victim = owners
                    .iter()
                    .position(|&o| owners.iter().filter(|&&x| x == o).count() > 1)
                    .unwrap();
                owners[victim] = proc;
            }
        }
        PartitionSpec::new(owners, heights, widths, p)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// SummaGen computes the correct product for *arbitrary* valid
        /// partition specs — not just the four named shapes.
        #[test]
        fn arbitrary_specs_are_correct(n in 8usize..40, p in 1usize..5, seed in 0u64..10_000) {
            let spec = random_spec(n, p, seed);
            let a = random_matrix(n, n, seed.wrapping_add(1));
            let b = random_matrix(n, n, seed.wrapping_add(2));
            let res = multiply(&spec, &a, &b, ExecutionMode::Real);
            prop_assert!(approx_eq(&res.c, &reference(&a, &b), gemm_tolerance(n) * 100.0));
        }

        /// The four shapes are correct across random sizes and area mixes.
        #[test]
        fn shapes_correct_across_sizes(
            n in 9usize..48,
            s0 in 0.2f64..4.0,
            s1 in 0.2f64..4.0,
            s2 in 0.2f64..4.0,
        ) {
            let areas = proportional_areas(n, &[s0, s1, s2]);
            let a = random_matrix(n, n, 21);
            let b = random_matrix(n, n, 22);
            let want = reference(&a, &b);
            for shape in ALL_FOUR_SHAPES {
                let spec = shape.build(n, &areas);
                let res = multiply(&spec, &a, &b, ExecutionMode::Real);
                prop_assert!(
                    approx_eq(&res.c, &want, gemm_tolerance(n) * 100.0),
                    "{} wrong at n={n}", shape.name()
                );
            }
        }
    }
}
