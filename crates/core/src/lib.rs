//! SummaGen — parallel matrix-matrix multiplication over non-rectangular
//! partitions, the paper's core contribution.
//!
//! Like SUMMA, the algorithm has three stages (Section IV):
//!
//! 1. **Horizontal communications of `A`** — every processor gathers, into
//!    its working matrix `WA`, all sub-partition rows of `A` in which it
//!    owns at least one sub-partition (broadcasts within per-row
//!    communicators; rows wholly owned by one processor are copied locally
//!    without communication).
//! 2. **Vertical communications of `B`** — symmetric, into `WB`, over
//!    per-column communicators.
//! 3. **Local computations** — one DGEMM per owned sub-partition
//!    (`height × n` by `n × width`), accumulating exactly the processor's
//!    own partition of `C`; computing per sub-partition avoids the
//!    redundant work a blanket `WA × WB` would do.
//!
//! Two execution modes share this code path:
//!
//! * [`ExecutionMode::Real`] — matrices are materialized and multiplied
//!   with the kernels from `summagen-matrix`; the result is verified
//!   against a sequential reference in the tests.
//! * [`ExecutionMode::Simulated`] — payloads are phantom (size-only) and
//!   local DGEMM advances the rank's virtual clock by the device-model
//!   time from `summagen-platform`. This is how the paper-scale
//!   experiments (N up to 38 416) run.

pub mod abft;
pub mod caps;
pub mod commopt;
pub mod cyclic;
pub mod executor;
pub mod panelled;
pub mod rankdata;
pub mod simulate;
pub mod stages;
pub mod summa;

pub use abft::{
    multiply_abft, multiply_abft_observed, multiply_abft_prefix, multiply_abft_traced,
    panel_boundaries, AbftOptions, AbftReport, AbftRunResult, PanelCheckpoint,
};
pub use caps::{caps_multiply, caps_multiply_with_cost, CapsResult};
pub use commopt::{
    cannon_multiply, cannon_multiply_with_cost, summa25d_multiply, summa25d_multiply_with_cost,
    GridRunResult,
};
pub use cyclic::{summa_cyclic_multiply, summa_cyclic_multiply_with_cost, BlockCyclic};
pub use executor::{
    multiply, multiply_traced, multiply_with_cost, multiply_with_recovery, ExecutionMode,
    RecoveryError, RecoveryOptions, RecoveryReport, RunResult,
};
pub use panelled::{
    multiply_panelled, multiply_panelled_with_cost, peak_workspace_elems, simulate_panelled,
};
pub use rankdata::{assemble, distribute, RankMatrices};
pub use simulate::{
    metered_energy_from_timelines, simulate, simulate_instrumented, simulate_observed,
    simulate_observed_on, simulate_traced, simulate_with_energy, SimReport,
};
pub use summa::{
    summa_multiply, summa_multiply_with_cost, summa_simulate, summa_simulate_instrumented,
    SummaResult,
};
