//! Parallel Strassen à la CAPS (Ballard et al., reference [23] of the
//! paper's related work): a **BFS step** distributes Strassen's seven
//! half-size products over seven processor groups, each of which solves
//! its product sequentially (a **DFS step** — here the sequential
//! Strassen from `summagen-matrix`); the quadrants of `C` are then
//! combined from the seven results.
//!
//! This implementation supports `p = 7` ranks (one BFS level), which is
//! enough to exercise the communication pattern the paper cites: unlike
//! SUMMA-family algorithms, processors are arranged in a *hierarchy*, not
//! a grid, and no assumptions are made about the network topology.

use summagen_comm::{ClockSnapshot, CostModel, Payload, TrafficStats, Universe, ZeroCost};
use summagen_matrix::{strassen_multiply, DenseMatrix};

/// Result of a CAPS-style parallel Strassen run.
#[derive(Debug, Clone)]
pub struct CapsResult {
    /// The product.
    pub c: DenseMatrix,
    /// Per-rank clocks.
    pub clocks: Vec<ClockSnapshot>,
    /// Per-rank traffic.
    pub traffic: Vec<TrafficStats>,
}

fn quad(m: &DenseMatrix, qi: usize, qj: usize) -> DenseMatrix {
    let h = m.rows() / 2;
    m.submatrix(qi * h, qj * h, h, h)
}

fn madd(a: &DenseMatrix, b: &DenseMatrix) -> DenseMatrix {
    summagen_matrix::add(a, b)
}

fn msub(a: &DenseMatrix, b: &DenseMatrix) -> DenseMatrix {
    summagen_matrix::sub(a, b)
}

/// Multiplies `A × B` with one BFS level of parallel Strassen over 7
/// ranks. Rank 0 holds the inputs, scatters the seven operand pairs,
/// gathers the seven products and assembles `C`.
///
/// # Panics
/// Panics unless the matrices are square with even size ≥ 2.
pub fn caps_multiply(a: &DenseMatrix, b: &DenseMatrix) -> CapsResult {
    caps_multiply_with_cost(a, b, ZeroCost)
}

/// [`caps_multiply`] with a communication cost model.
pub fn caps_multiply_with_cost(
    a: &DenseMatrix,
    b: &DenseMatrix,
    cost: impl CostModel,
) -> CapsResult {
    let n = a.rows();
    assert_eq!((a.rows(), a.cols()), (n, n), "A must be square");
    assert_eq!((b.rows(), b.cols()), (n, n), "B must be square");
    assert!(n >= 2 && n.is_multiple_of(2), "need even n >= 2 (got {n})");
    let h = n / 2;

    let universe = Universe::new(7, cost);
    let results = universe.run(|comm| {
        let rank = comm.rank();
        // Rank 0 prepares the seven (L_i, R_i) operand pairs.
        let (l, r) = if rank == 0 {
            let a11 = quad(a, 0, 0);
            let a12 = quad(a, 0, 1);
            let a21 = quad(a, 1, 0);
            let a22 = quad(a, 1, 1);
            let b11 = quad(b, 0, 0);
            let b12 = quad(b, 0, 1);
            let b21 = quad(b, 1, 0);
            let b22 = quad(b, 1, 1);
            let pairs: Vec<(DenseMatrix, DenseMatrix)> = vec![
                (madd(&a11, &a22), madd(&b11, &b22)), // M1
                (madd(&a21, &a22), b11.clone()),      // M2
                (a11.clone(), msub(&b12, &b22)),      // M3
                (a22.clone(), msub(&b21, &b11)),      // M4
                (madd(&a11, &a12), b22.clone()),      // M5
                (msub(&a21, &a11), madd(&b11, &b12)), // M6
                (msub(&a12, &a22), madd(&b21, &b22)), // M7
            ];
            // Keep pair 0 locally; ship the rest.
            for (i, (li, ri)) in pairs.iter().enumerate().skip(1) {
                comm.send(i, 100, Payload::F64(li.as_slice().to_vec()));
                comm.send(i, 101, Payload::F64(ri.as_slice().to_vec()));
            }
            (pairs[0].0.clone(), pairs[0].1.clone())
        } else {
            let l = DenseMatrix::from_vec(h, h, comm.recv(0, 100).into_f64());
            let r = DenseMatrix::from_vec(h, h, comm.recv(0, 101).into_f64());
            (l, r)
        };

        // DFS step: sequential Strassen on the half-size product.
        let m = strassen_multiply(&l, &r);

        // Gather the products at rank 0.
        if rank != 0 {
            comm.send(0, 102, Payload::F64(m.as_slice().to_vec()));
            (None, comm.clock_snapshot(), comm.traffic())
        } else {
            let mut ms = vec![m];
            for i in 1..7 {
                ms.push(DenseMatrix::from_vec(h, h, comm.recv(i, 102).into_f64()));
            }
            let c11 = madd(&msub(&madd(&ms[0], &ms[3]), &ms[4]), &ms[6]);
            let c12 = madd(&ms[2], &ms[4]);
            let c21 = madd(&ms[1], &ms[3]);
            let c22 = madd(&madd(&msub(&ms[0], &ms[1]), &ms[2]), &ms[5]);
            let mut c = DenseMatrix::zeros(n, n);
            c.set_submatrix(0, 0, &c11);
            c.set_submatrix(0, h, &c12);
            c.set_submatrix(h, 0, &c21);
            c.set_submatrix(h, h, &c22);
            (Some(c), comm.clock_snapshot(), comm.traffic())
        }
    });

    let mut c = None;
    let mut clocks = Vec::with_capacity(7);
    let mut traffic = Vec::with_capacity(7);
    for (cm, clk, tr) in results {
        if let Some(cm) = cm {
            c = Some(cm);
        }
        clocks.push(clk);
        traffic.push(tr);
    }
    CapsResult {
        c: c.expect("rank 0 produced no result"),
        clocks,
        traffic,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use summagen_comm::HockneyModel;
    use summagen_matrix::{approx_eq, gemm_naive, gemm_tolerance, random_matrix};

    fn reference(a: &DenseMatrix, b: &DenseMatrix) -> DenseMatrix {
        let n = a.rows();
        let mut c = DenseMatrix::zeros(n, n);
        gemm_naive(
            n,
            n,
            n,
            1.0,
            a.as_slice(),
            n,
            b.as_slice(),
            n,
            0.0,
            c.as_mut_slice(),
            n,
        );
        c
    }

    #[test]
    fn caps_correct_on_various_sizes() {
        for n in [2usize, 16, 50, 128] {
            let a = random_matrix(n, n, 1);
            let b = random_matrix(n, n, 2);
            let r = caps_multiply(&a, &b);
            assert!(
                approx_eq(&r.c, &reference(&a, &b), gemm_tolerance(n) * 1e4),
                "n = {n}"
            );
        }
    }

    #[test]
    fn each_worker_ships_one_quadrant_product() {
        let n = 64;
        let a = random_matrix(n, n, 3);
        let b = random_matrix(n, n, 4);
        let r = caps_multiply(&a, &b);
        let quad_bytes = (n / 2 * n / 2 * 8) as u64;
        for rank in 1..7 {
            assert_eq!(r.traffic[rank].bytes_sent, quad_bytes, "rank {rank}");
            assert_eq!(r.traffic[rank].bytes_recv, 2 * quad_bytes);
        }
        // Root sends 6 operand pairs.
        assert_eq!(r.traffic[0].bytes_sent, 12 * quad_bytes);
    }

    #[test]
    #[should_panic(expected = "even n")]
    fn caps_rejects_odd_sizes() {
        let a = random_matrix(7, 7, 1);
        caps_multiply(&a, &a);
    }

    #[test]
    fn caps_with_cost_model_produces_times() {
        let n = 32;
        let a = random_matrix(n, n, 5);
        let b = random_matrix(n, n, 6);
        let r = caps_multiply_with_cost(&a, &b, HockneyModel::intra_node());
        assert!(r.clocks.iter().all(|c| c.comm_time > 0.0));
        assert!(approx_eq(&r.c, &reference(&a, &b), gemm_tolerance(n) * 1e4));
    }
}
