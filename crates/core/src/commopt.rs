//! Communication-optimal baselines from the paper's related work
//! (Section III-D): Cannon's algorithm on a 2D torus and the 2.5D
//! algorithm of Solomonik & Demmel with `c`-fold replication.
//!
//! Both assume a *homogeneous* processor grid — exactly the assumption
//! SummaGen's heterogeneity-aware partitions drop — so they serve as the
//! baselines against which the non-rectangular layouts are compared on
//! the simulated heterogeneous node.

use summagen_comm::{ClockSnapshot, CostModel, Payload, TrafficStats, Universe, ZeroCost};
use summagen_matrix::{gemm_blocked, DenseMatrix};

/// Result of a Cannon or 2.5D run.
#[derive(Debug, Clone)]
pub struct GridRunResult {
    /// The assembled product.
    pub c: DenseMatrix,
    /// Per-rank clock snapshots.
    pub clocks: Vec<ClockSnapshot>,
    /// Per-rank traffic.
    pub traffic: Vec<TrafficStats>,
    /// Max over ranks of final virtual time.
    pub exec_time: f64,
}

/// Cannon's algorithm on a `q × q` torus.
///
/// # Panics
/// Panics unless `A`/`B` are square `n × n` with `q | n` and `q ≥ 1`.
pub fn cannon_multiply(a: &DenseMatrix, b: &DenseMatrix, q: usize) -> GridRunResult {
    cannon_multiply_with_cost(a, b, q, ZeroCost)
}

/// [`cannon_multiply`] with a communication cost model.
pub fn cannon_multiply_with_cost(
    a: &DenseMatrix,
    b: &DenseMatrix,
    q: usize,
    cost: impl CostModel,
) -> GridRunResult {
    let n = a.rows();
    assert_eq!((a.rows(), a.cols()), (n, n), "A must be square");
    assert_eq!((b.rows(), b.cols()), (n, n), "B must be square");
    assert!(q >= 1, "grid must be non-empty");
    assert_eq!(n % q, 0, "Cannon needs q | n (n = {n}, q = {q})");
    let nb = n / q;
    let p = q * q;
    let universe = Universe::new(p, cost);

    let results = universe.run(|comm| {
        let rank = comm.rank();
        let (i, j) = (rank / q, rank % q);
        // Initial alignment: this rank starts with A_{i,(j+i) mod q} and
        // B_{(i+j) mod q, j} — fetched locally from the global inputs
        // (the skew communication is folded into the distribution, as in
        // most Cannon formulations).
        let mut a_blk = a.submatrix(i * nb, ((j + i) % q) * nb, nb, nb);
        let mut b_blk = b.submatrix(((i + j) % q) * nb, j * nb, nb, nb);
        let mut c_blk = DenseMatrix::zeros(nb, nb);

        for step in 0..q {
            gemm_blocked(
                nb,
                nb,
                nb,
                1.0,
                a_blk.as_slice(),
                nb,
                b_blk.as_slice(),
                nb,
                1.0,
                c_blk.as_mut_slice(),
                nb,
            );
            if step + 1 == q || q == 1 {
                break;
            }
            // Shift A left along the row, B up along the column.
            let left = i * q + (j + q - 1) % q;
            let right = i * q + (j + 1) % q;
            let up = ((i + q - 1) % q) * q + j;
            let down = ((i + 1) % q) * q + j;
            let tag_a = 10_000 + step as u64;
            let tag_b = 20_000 + step as u64;
            comm.send(left, tag_a, Payload::F64(a_blk.as_slice().to_vec()));
            comm.send(up, tag_b, Payload::F64(b_blk.as_slice().to_vec()));
            a_blk = DenseMatrix::from_vec(nb, nb, comm.recv(right, tag_a).into_f64());
            b_blk = DenseMatrix::from_vec(nb, nb, comm.recv(down, tag_b).into_f64());
        }
        ((i, j, c_blk), comm.clock_snapshot(), comm.traffic())
    });

    assemble_grid(n, nb, results)
}

fn assemble_grid(
    n: usize,
    nb: usize,
    results: Vec<((usize, usize, DenseMatrix), ClockSnapshot, TrafficStats)>,
) -> GridRunResult {
    let mut c = DenseMatrix::zeros(n, n);
    let mut clocks = Vec::with_capacity(results.len());
    let mut traffic = Vec::with_capacity(results.len());
    for ((i, j, blk), clk, tr) in results {
        c.set_submatrix(i * nb, j * nb, &blk);
        clocks.push(clk);
        traffic.push(tr);
    }
    let exec_time = clocks.iter().map(|c| c.now).fold(0.0, f64::max);
    GridRunResult {
        c,
        clocks,
        traffic,
        exec_time,
    }
}

/// The 2.5D algorithm: `c` replicated layers of a `q × q` grid
/// (`p = c·q²` ranks). Each layer performs `q/c` Cannon steps from a
/// layer-specific starting skew; partial `C` blocks are summed across
/// layers at the end. `c = 1` degenerates to Cannon.
///
/// # Panics
/// Panics unless `q | n`, `c | q` (each layer gets an equal share of the
/// steps) and `c ≥ 1`.
pub fn summa25d_multiply(a: &DenseMatrix, b: &DenseMatrix, q: usize, c: usize) -> GridRunResult {
    summa25d_multiply_with_cost(a, b, q, c, ZeroCost)
}

/// [`summa25d_multiply`] with a communication cost model.
pub fn summa25d_multiply_with_cost(
    a: &DenseMatrix,
    b: &DenseMatrix,
    q: usize,
    c: usize,
    cost: impl CostModel,
) -> GridRunResult {
    let n = a.rows();
    assert_eq!((a.rows(), a.cols()), (n, n), "A must be square");
    assert_eq!((b.rows(), b.cols()), (n, n), "B must be square");
    assert!(q >= 1 && c >= 1, "bad grid");
    assert_eq!(n % q, 0, "2.5D needs q | n");
    assert_eq!(q % c, 0, "2.5D needs c | q");
    let nb = n / q;
    let steps_per_layer = q / c;
    let p = c * q * q;
    let universe = Universe::new(p, cost);

    let results = universe.run(|comm| {
        let rank = comm.rank();
        let k = rank / (q * q);
        let i = (rank / q) % q;
        let j = rank % q;

        // Layer 0 owns the inputs; it broadcasts A_ij and B_ij through the
        // replication fibre (all ranks with the same (i, j)).
        let fibre: Vec<usize> = (0..c).map(|l| l * q * q + i * q + j).collect();
        let (mut a_blk, mut b_blk);
        if c > 1 {
            let mut fibre_comm = comm
                .subgroup(&fibre, 5_000 + (i * q + j) as u64)
                .expect("rank missing from its fibre");
            let a_payload = if k == 0 {
                Payload::F64(a.submatrix(i * nb, j * nb, nb, nb).as_slice().to_vec())
            } else {
                Payload::F64(Vec::new())
            };
            let b_payload = if k == 0 {
                Payload::F64(b.submatrix(i * nb, j * nb, nb, nb).as_slice().to_vec())
            } else {
                Payload::F64(Vec::new())
            };
            let a_data = fibre_comm.bcast(0, a_payload).into_f64();
            let b_data = fibre_comm.bcast(0, b_payload).into_f64();
            a_blk = DenseMatrix::from_vec(nb, nb, a_data);
            b_blk = DenseMatrix::from_vec(nb, nb, b_data);
        } else {
            a_blk = a.submatrix(i * nb, j * nb, nb, nb);
            b_blk = b.submatrix(i * nb, j * nb, nb, nb);
        }

        // Layer-local skew to this layer's starting offset: rotate A left
        // within the row by `(i + k·q/c) mod q` and B up within the
        // column by `(j + k·q/c) mod q`, so step `s` of this layer
        // multiplies `A_{i,t} B_{t,j}` with `t = i + j + k·q/c + s`.
        let shift_a = (i + k * steps_per_layer) % q;
        if shift_a != 0 {
            let dst_a = k * q * q + i * q + (j + q - shift_a) % q;
            let src_a = k * q * q + i * q + (j + shift_a) % q;
            comm.send(dst_a, 30_000, Payload::F64(a_blk.as_slice().to_vec()));
            a_blk = DenseMatrix::from_vec(nb, nb, comm.recv(src_a, 30_000).into_f64());
        }
        let shift_b = (j + k * steps_per_layer) % q;
        if shift_b != 0 {
            let dst_b = k * q * q + ((i + q - shift_b) % q) * q + j;
            let src_b = k * q * q + ((i + shift_b) % q) * q + j;
            comm.send(dst_b, 31_000, Payload::F64(b_blk.as_slice().to_vec()));
            b_blk = DenseMatrix::from_vec(nb, nb, comm.recv(src_b, 31_000).into_f64());
        }

        let mut c_blk = DenseMatrix::zeros(nb, nb);
        for step in 0..steps_per_layer {
            gemm_blocked(
                nb,
                nb,
                nb,
                1.0,
                a_blk.as_slice(),
                nb,
                b_blk.as_slice(),
                nb,
                1.0,
                c_blk.as_mut_slice(),
                nb,
            );
            if step + 1 == steps_per_layer || q == 1 {
                break;
            }
            let left = k * q * q + i * q + (j + q - 1) % q;
            let right = k * q * q + i * q + (j + 1) % q;
            let up = k * q * q + ((i + q - 1) % q) * q + j;
            let down = k * q * q + ((i + 1) % q) * q + j;
            let tag_a = 40_000 + step as u64;
            let tag_b = 50_000 + step as u64;
            comm.send(left, tag_a, Payload::F64(a_blk.as_slice().to_vec()));
            comm.send(up, tag_b, Payload::F64(b_blk.as_slice().to_vec()));
            a_blk = DenseMatrix::from_vec(nb, nb, comm.recv(right, tag_a).into_f64());
            b_blk = DenseMatrix::from_vec(nb, nb, comm.recv(down, tag_b).into_f64());
        }

        // Sum partial C blocks across the fibre onto layer 0.
        if c > 1 {
            let mut fibre_comm = comm
                .subgroup(&fibre, 6_000 + (i * q + j) as u64)
                .expect("rank missing from its fibre");
            let gathered = fibre_comm.gather(0, Payload::F64(c_blk.as_slice().to_vec()));
            if let Some(parts) = gathered {
                let mut acc = vec![0.0; nb * nb];
                for part in parts {
                    for (x, y) in acc.iter_mut().zip(part.into_f64()) {
                        *x += y;
                    }
                }
                c_blk = DenseMatrix::from_vec(nb, nb, acc);
            }
        }
        (
            (
                i,
                j,
                if k == 0 {
                    c_blk
                } else {
                    DenseMatrix::zeros(0, 0)
                },
            ),
            comm.clock_snapshot(),
            comm.traffic(),
        )
    });

    // Only layer-0 blocks carry data.
    let mut c_mat = DenseMatrix::zeros(n, n);
    let mut clocks = Vec::with_capacity(p);
    let mut traffic = Vec::with_capacity(p);
    for ((i, j, blk), clk, tr) in results {
        if blk.rows() == nb {
            c_mat.set_submatrix(i * nb, j * nb, &blk);
        }
        clocks.push(clk);
        traffic.push(tr);
    }
    let exec_time = clocks.iter().map(|c| c.now).fold(0.0, f64::max);
    GridRunResult {
        c: c_mat,
        clocks,
        traffic,
        exec_time,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use summagen_comm::HockneyModel;
    use summagen_matrix::{approx_eq, gemm_naive, gemm_tolerance, random_matrix};

    fn reference(a: &DenseMatrix, b: &DenseMatrix) -> DenseMatrix {
        let n = a.rows();
        let mut c = DenseMatrix::zeros(n, n);
        gemm_naive(
            n,
            n,
            n,
            1.0,
            a.as_slice(),
            n,
            b.as_slice(),
            n,
            0.0,
            c.as_mut_slice(),
            n,
        );
        c
    }

    #[test]
    fn cannon_correct_on_various_grids() {
        for (n, q) in [(24usize, 1), (24, 2), (24, 3), (32, 4), (30, 5)] {
            let a = random_matrix(n, n, 1);
            let b = random_matrix(n, n, 2);
            let r = cannon_multiply(&a, &b, q);
            assert!(
                approx_eq(&r.c, &reference(&a, &b), gemm_tolerance(n) * 100.0),
                "n={n} q={q}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "q | n")]
    fn cannon_rejects_indivisible_size() {
        let a = random_matrix(10, 10, 1);
        cannon_multiply(&a, &a, 3);
    }

    #[test]
    fn cannon_traffic_is_balanced() {
        let n = 32;
        let a = random_matrix(n, n, 3);
        let b = random_matrix(n, n, 4);
        let r = cannon_multiply(&a, &b, 4);
        let bytes: Vec<u64> = r.traffic.iter().map(|t| t.bytes_sent).collect();
        let max = *bytes.iter().max().unwrap();
        let min = *bytes.iter().min().unwrap();
        assert_eq!(
            max, min,
            "Cannon load should be perfectly balanced: {bytes:?}"
        );
        // Each rank ships 2 blocks per step for q-1 steps.
        assert_eq!(max, (2 * (4 - 1) * 8 * 8 * 8) as u64);
    }

    #[test]
    fn two_five_d_matches_cannon_when_c_is_one() {
        let n = 24;
        let a = random_matrix(n, n, 5);
        let b = random_matrix(n, n, 6);
        let r1 = cannon_multiply(&a, &b, 3);
        let r2 = summa25d_multiply(&a, &b, 3, 1);
        assert!(approx_eq(&r1.c, &r2.c, 1e-10));
    }

    #[test]
    fn two_five_d_correct_with_replication() {
        for (n, q, c) in [(16usize, 2, 2), (24, 4, 2), (32, 4, 4), (36, 6, 3)] {
            let a = random_matrix(n, n, 7);
            let b = random_matrix(n, n, 8);
            let r = summa25d_multiply(&a, &b, q, c);
            assert!(
                approx_eq(&r.c, &reference(&a, &b), gemm_tolerance(n) * 100.0),
                "n={n} q={q} c={c}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "c | q")]
    fn two_five_d_rejects_bad_replication() {
        let a = random_matrix(12, 12, 1);
        summa25d_multiply(&a, &a, 2, 4);
    }

    #[test]
    fn replication_reduces_average_traffic_per_rank() {
        // Same q: with c = 2, each layer does half the Cannon steps, so
        // the average per-rank traffic drops (the classic 2.5D bandwidth
        // saving), at the price of the initial broadcast and the final
        // reduction and of using c times more processors.
        let n = 48;
        let a = random_matrix(n, n, 9);
        let b = random_matrix(n, n, 10);
        let cannon = cannon_multiply(&a, &b, 4);
        let rep = summa25d_multiply(&a, &b, 4, 2);
        let avg_sent = |r: &GridRunResult| {
            r.traffic.iter().map(|t| t.bytes_sent).sum::<u64>() as f64 / r.traffic.len() as f64
        };
        assert!(
            avg_sent(&rep) < avg_sent(&cannon),
            "2.5D {} vs Cannon {}",
            avg_sent(&rep),
            avg_sent(&cannon)
        );
    }

    #[test]
    fn hockney_costs_produce_time_profile() {
        let n = 24;
        let a = random_matrix(n, n, 11);
        let b = random_matrix(n, n, 12);
        let r = cannon_multiply_with_cost(&a, &b, 2, HockneyModel::intra_node());
        assert!(r.exec_time > 0.0);
        assert!(r.clocks.iter().all(|c| c.comm_time > 0.0));
    }
}
