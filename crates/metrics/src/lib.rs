//! Aggregate performance metrics for the SummaGen runtime.
//!
//! Where `summagen-trace` records *individual* events (every send, every
//! GEMM, with timestamps), this crate maintains the *aggregate* layer a
//! long-running service exposes: monotonic counters, gauges, and
//! log-linear histograms with quantile estimation, collected into a
//! [`MetricsRegistry`] and rendered in Prometheus text exposition format.
//!
//! Design constraints, in order:
//!
//! * **Wait-free hot path.** Every rank of the thread runtime records into
//!   the same handles concurrently. [`Counter::add`] and
//!   [`Histogram::observe`] are single `fetch_add`s on relaxed atomics —
//!   no locks, no CAS loops, no allocation. The registry's lock is taken
//!   only at registration and snapshot time, never per observation.
//! * **Zero cost when off.** The runtime carries an
//!   `Option<Arc<RuntimeMetrics>>`; with `None` every instrumentation
//!   hook is one branch, mirroring the trace crate's `EventSink` gating.
//! * **Dependency-free.** Like the span vocabulary in `summagen-comm`,
//!   this crate sits below every other crate in the workspace so the comm
//!   runtime, the matrix kernels, and the algorithm layers can all record
//!   into one registry without dependency cycles.
//!
//! Histograms are log-linear: each power-of-two octave is split into
//! [`HIST_SUBDIVISIONS`] equal-width sub-buckets, so quantile estimates
//! carry a bounded relative error (≤ 1/[`HIST_SUBDIVISIONS`], ~6%)
//! across twenty decades of magnitude — the scheme HdrHistogram and
//! DDSketch-style aggregators use.
//!
//! The conventional handle bundle the runtime is instrumented with lives
//! in [`RuntimeMetrics`]; the Prometheus renderer in [`prometheus`].

pub mod prometheus;
pub mod registry;
pub mod runtime;

pub use registry::{
    bucket_upper, Counter, FamilySnapshot, Gauge, Histogram, HistogramSnapshot, MetricKind,
    MetricsRegistry, SeriesSnapshot, SeriesValue, HIST_BUCKETS, HIST_MAX_EXP, HIST_MIN_EXP,
    HIST_SUBDIVISIONS,
};
pub use runtime::{GemmTelemetry, RuntimeMetrics};
