//! The conventional metric bundle the SummaGen runtime is instrumented
//! with.
//!
//! [`RuntimeMetrics`] pre-registers every hot-path handle once so the
//! comm layer, the GEMM kernels, and the ABFT executor record through
//! plain `Arc` field accesses — the registry lock is never touched after
//! construction. Install it with `Universe::with_metrics`; layers above
//! comm reach it through `Communicator::metrics()`.

use std::sync::Arc;

use crate::registry::{Counter, Gauge, Histogram, MetricsRegistry};

/// GEMM telemetry in both clock domains: the *virtual* (cost-model) side
/// every simulated or real run advances, and the *wall-clock* side only a
/// real kernel invocation produces.
pub struct GemmTelemetry {
    /// Kernel invocations (or phantom stand-ins).
    pub ops: Arc<Counter>,
    /// Total floating-point operations (`2·m·n·k` per GEMM).
    pub flops: Arc<Counter>,
    /// Per-GEMM virtual duration, seconds.
    pub virtual_seconds: Arc<Histogram>,
    /// Per-GEMM virtual throughput, GFLOP/s.
    pub virtual_gflops: Arc<Histogram>,
    /// Per-GEMM wall-clock kernel duration, seconds (real runs only).
    pub kernel_seconds: Arc<Histogram>,
    /// Per-GEMM wall-clock throughput, GFLOP/s (real runs only).
    pub kernel_gflops: Arc<Histogram>,
}

impl GemmTelemetry {
    fn register(reg: &MetricsRegistry) -> Self {
        Self {
            ops: reg.counter(
                "summagen_gemm_ops_total",
                "GEMM kernel invocations (including phantom stand-ins).",
            ),
            flops: reg.counter(
                "summagen_gemm_flops_total",
                "Floating-point operations performed (2*m*n*k per GEMM).",
            ),
            virtual_seconds: reg.histogram(
                "summagen_gemm_virtual_seconds",
                "Per-GEMM duration on the virtual (cost-model) clock.",
            ),
            virtual_gflops: reg.histogram(
                "summagen_gemm_virtual_gflops",
                "Per-GEMM throughput on the virtual clock, GFLOP/s.",
            ),
            kernel_seconds: reg.histogram(
                "summagen_gemm_kernel_seconds",
                "Per-GEMM wall-clock kernel duration (real runs only).",
            ),
            kernel_gflops: reg.histogram(
                "summagen_gemm_kernel_gflops",
                "Per-GEMM wall-clock throughput, GFLOP/s (real runs only).",
            ),
        }
    }

    /// Records one GEMM's virtual-clock cost: bumps `ops`/`flops` and the
    /// virtual duration/throughput distributions.
    pub fn record_virtual(&self, flops: f64, seconds: f64) {
        self.ops.inc();
        self.flops.add(flops as u64);
        self.virtual_seconds.observe(seconds);
        if seconds > 0.0 {
            self.virtual_gflops.observe(flops / seconds / 1e9);
        }
    }

    /// Records one real kernel invocation's wall-clock duration. The
    /// `summagen-matrix` crate implements its `GemmObserver` trait for
    /// this type, so a telemetry handle can be passed straight to
    /// `GemmKernel::run_observed`.
    pub fn record_kernel(&self, m: usize, n: usize, k: usize, elapsed_ns: u64) {
        self.kernel_seconds.observe(elapsed_ns as f64 / 1e9);
        if elapsed_ns > 0 {
            let flops = 2.0 * m as f64 * n as f64 * k as f64;
            self.kernel_gflops.observe(flops / elapsed_ns as f64);
        }
    }
}

/// Pre-registered handles for every runtime hot path. All fields are
/// public: instrumentation sites record directly, tests and exporters
/// read directly.
pub struct RuntimeMetrics {
    registry: Arc<MetricsRegistry>,

    /// Point-to-point messages sent (including inside collectives).
    pub send_msgs: Arc<Counter>,
    /// Wire bytes pushed by sends.
    pub send_bytes: Arc<Counter>,
    /// Sender-side link occupation per message, virtual seconds.
    pub send_seconds: Arc<Histogram>,

    /// Point-to-point messages received.
    pub recv_msgs: Arc<Counter>,
    /// Wire bytes received.
    pub recv_bytes: Arc<Counter>,
    /// Receiver-side blocked time per message, virtual seconds.
    pub recv_wait_seconds: Arc<Histogram>,

    /// Completed broadcasts (per participating rank).
    pub bcast_ops: Arc<Counter>,
    /// Payload bytes delivered by broadcasts (per participating rank).
    pub bcast_bytes: Arc<Counter>,
    /// Broadcast duration per participant, virtual seconds.
    pub bcast_seconds: Arc<Histogram>,
    /// Completed gathers (per participating rank).
    pub gather_ops: Arc<Counter>,
    /// Gather duration per participant, virtual seconds.
    pub gather_seconds: Arc<Histogram>,
    /// Completed scatters (per participating rank).
    pub scatter_ops: Arc<Counter>,
    /// Scatter duration per participant, virtual seconds.
    pub scatter_seconds: Arc<Histogram>,
    /// Completed barriers (per participating rank).
    pub barrier_ops: Arc<Counter>,
    /// Barrier duration per participant, virtual seconds.
    pub barrier_seconds: Arc<Histogram>,

    /// Wire packets delivered by the lossy-link transport (first copies
    /// only; duplicates are counted separately).
    pub transport_delivered: Arc<Counter>,
    /// Retransmissions performed after a wire-level drop.
    pub transport_retransmits: Arc<Counter>,
    /// Extra copies injected by wire-level duplication.
    pub transport_duplicates: Arc<Counter>,
    /// Duplicate packets suppressed by the receiver's sequence cursor.
    pub transport_dup_dropped: Arc<Counter>,
    /// TCP backend: connections successfully established.
    pub tcp_connects: Arc<Counter>,
    /// TCP backend: connect attempts retried under backoff (refused or
    /// transiently failing dials).
    pub tcp_connect_retries: Arc<Counter>,
    /// TCP backend: transparent reconnects after a dropped connection
    /// (each includes one frame resend).
    pub tcp_reconnects: Arc<Counter>,
    /// TCP backend: injected mid-stream connection resets.
    pub tcp_resets: Arc<Counter>,
    /// TCP backend: injected socket stalls.
    pub tcp_stalls: Arc<Counter>,

    /// Heartbeats emitted by live ranks.
    pub heartbeats: Arc<Counter>,
    /// Ranks declared dead by the failure detector (vs announced deaths).
    pub suspicions: Arc<Counter>,
    /// Silence observed at suspicion time, wall-clock seconds (the
    /// detector's detection latency).
    pub detection_seconds: Arc<Histogram>,

    /// SUMMA panel steps executed (per rank per panel).
    pub panel_steps: Arc<Counter>,
    /// GEMM telemetry, both clock domains.
    pub gemm: GemmTelemetry,

    /// ABFT checksum verification scans.
    pub abft_verifies: Arc<Counter>,
    /// Single-element corrections applied.
    pub abft_corrections: Arc<Counter>,
    /// Checkpoints written at panel boundaries.
    pub abft_checkpoints: Arc<Counter>,
    /// Checkpoint restores (rollbacks) performed.
    pub abft_rollbacks: Arc<Counter>,
    /// Host bytes currently held by retained checkpoint snapshots
    /// (assembled prefixes plus pending per-rank deposits).
    pub checkpoint_bytes: Arc<Gauge>,
}

impl RuntimeMetrics {
    /// Registers the full bundle in `registry` and returns a shared
    /// handle. Idempotent per registry: registering twice yields handles
    /// to the same underlying metrics.
    pub fn register(registry: &Arc<MetricsRegistry>) -> Arc<Self> {
        let reg = registry.as_ref();
        let coll_ops = |op: &str| {
            reg.counter_with(
                "summagen_comm_collectives_total",
                "Completed collective operations per participating rank.",
                &[("op", op)],
            )
        };
        Arc::new(Self {
            send_msgs: reg.counter(
                "summagen_comm_sends_total",
                "Point-to-point messages sent (including inside collectives).",
            ),
            send_bytes: reg.counter(
                "summagen_comm_send_bytes_total",
                "Wire bytes pushed by point-to-point sends.",
            ),
            send_seconds: reg.histogram(
                "summagen_comm_send_seconds",
                "Sender-side link occupation per message, virtual seconds.",
            ),
            recv_msgs: reg.counter(
                "summagen_comm_recvs_total",
                "Point-to-point messages received.",
            ),
            recv_bytes: reg.counter("summagen_comm_recv_bytes_total", "Wire bytes received."),
            recv_wait_seconds: reg.histogram(
                "summagen_comm_recv_wait_seconds",
                "Receiver-side blocked time per message, virtual seconds.",
            ),
            bcast_ops: coll_ops("bcast"),
            bcast_bytes: reg.counter(
                "summagen_comm_bcast_bytes_total",
                "Payload bytes delivered by broadcasts, per participating rank.",
            ),
            bcast_seconds: reg.histogram_with(
                "summagen_comm_collective_seconds",
                "Collective duration per participating rank, virtual seconds.",
                &[("op", "bcast")],
            ),
            gather_ops: coll_ops("gather"),
            gather_seconds: reg.histogram_with(
                "summagen_comm_collective_seconds",
                "Collective duration per participating rank, virtual seconds.",
                &[("op", "gather")],
            ),
            scatter_ops: coll_ops("scatter"),
            scatter_seconds: reg.histogram_with(
                "summagen_comm_collective_seconds",
                "Collective duration per participating rank, virtual seconds.",
                &[("op", "scatter")],
            ),
            barrier_ops: coll_ops("barrier"),
            barrier_seconds: reg.histogram_with(
                "summagen_comm_collective_seconds",
                "Collective duration per participating rank, virtual seconds.",
                &[("op", "barrier")],
            ),
            transport_delivered: reg.counter(
                "summagen_transport_delivered_total",
                "Wire packets delivered by the lossy-link transport (first copies).",
            ),
            transport_retransmits: reg.counter(
                "summagen_transport_retransmits_total",
                "Retransmissions performed after a wire-level drop.",
            ),
            transport_duplicates: reg.counter(
                "summagen_transport_duplicates_total",
                "Extra packet copies injected by wire-level duplication.",
            ),
            transport_dup_dropped: reg.counter(
                "summagen_transport_dup_dropped_total",
                "Duplicate packets suppressed by the receiver's sequence cursor.",
            ),
            tcp_connects: reg.counter(
                "summagen_tcp_connects_total",
                "TCP backend connections successfully established.",
            ),
            tcp_connect_retries: reg.counter(
                "summagen_tcp_connect_retries_total",
                "TCP backend connect attempts retried under backoff.",
            ),
            tcp_reconnects: reg.counter(
                "summagen_tcp_reconnects_total",
                "TCP backend transparent reconnects after a dropped connection.",
            ),
            tcp_resets: reg.counter(
                "summagen_tcp_resets_total",
                "Injected mid-stream TCP connection resets.",
            ),
            tcp_stalls: reg.counter("summagen_tcp_stalls_total", "Injected TCP socket stalls."),
            heartbeats: reg.counter(
                "summagen_heartbeats_total",
                "Heartbeats emitted by live ranks.",
            ),
            suspicions: reg.counter(
                "summagen_suspicions_total",
                "Ranks declared dead by the heartbeat failure detector.",
            ),
            detection_seconds: reg.histogram(
                "summagen_detection_seconds",
                "Silence observed at suspicion time (detection latency), wall seconds.",
            ),
            panel_steps: reg.counter(
                "summagen_core_panel_steps_total",
                "SUMMA panel steps executed, per rank per panel.",
            ),
            gemm: GemmTelemetry::register(reg),
            abft_verifies: reg.counter(
                "summagen_abft_verifies_total",
                "ABFT checksum verification scans.",
            ),
            abft_corrections: reg.counter(
                "summagen_abft_corrections_total",
                "ABFT single-element corrections applied.",
            ),
            abft_checkpoints: reg.counter(
                "summagen_abft_checkpoints_total",
                "ABFT checkpoints written at panel boundaries.",
            ),
            abft_rollbacks: reg.counter(
                "summagen_abft_rollbacks_total",
                "ABFT checkpoint restores (rollbacks) performed.",
            ),
            checkpoint_bytes: reg.gauge(
                "summagen_abft_checkpoint_bytes",
                "Host bytes held by retained checkpoint snapshots.",
            ),
            registry: Arc::clone(registry),
        })
    }

    /// A bundle on a private fresh registry — the common case for a
    /// single instrumented run.
    pub fn fresh() -> Arc<Self> {
        Self::register(&Arc::new(MetricsRegistry::new()))
    }

    /// The registry this bundle records into (for export or for
    /// registering additional metrics alongside).
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// The (ops counter, duration histogram) pair for a collective,
    /// keyed by its lower-case label (`"bcast"`, `"gather"`, `"scatter"`,
    /// `"barrier"`).
    pub fn collective(&self, label: &str) -> Option<(&Counter, &Histogram)> {
        match label {
            "bcast" => Some((&self.bcast_ops, &self.bcast_seconds)),
            "gather" => Some((&self.gather_ops, &self.gather_seconds)),
            "scatter" => Some((&self.scatter_ops, &self.scatter_seconds)),
            "barrier" => Some((&self.barrier_ops, &self.barrier_seconds)),
            _ => None,
        }
    }

    /// Renders the backing registry as Prometheus text exposition.
    pub fn render_prometheus(&self) -> String {
        crate::prometheus::render(&self.registry)
    }
}

impl std::fmt::Debug for RuntimeMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RuntimeMetrics")
            .field("send_msgs", &self.send_msgs.get())
            .field("recv_msgs", &self.recv_msgs.get())
            .field("panel_steps", &self.panel_steps.get())
            .field("gemm_ops", &self.gemm.ops.get())
            .field("abft_verifies", &self.abft_verifies.get())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_is_idempotent_per_registry() {
        let reg = Arc::new(MetricsRegistry::new());
        let a = RuntimeMetrics::register(&reg);
        let b = RuntimeMetrics::register(&reg);
        a.send_msgs.add(3);
        b.send_msgs.add(4);
        assert_eq!(a.send_msgs.get(), 7);
    }

    #[test]
    fn collective_lookup_covers_all_ops() {
        let m = RuntimeMetrics::fresh();
        for op in ["bcast", "gather", "scatter", "barrier"] {
            let (ops, secs) = m.collective(op).expect(op);
            ops.inc();
            secs.observe(0.25);
        }
        assert!(m.collective("allreduce").is_none());
        assert_eq!(m.bcast_ops.get(), 1);
        assert_eq!(m.barrier_seconds.count(), 1);
    }

    #[test]
    fn gemm_virtual_and_kernel_domains_are_separate() {
        let m = RuntimeMetrics::fresh();
        m.gemm.record_virtual(2.0e9, 1.0);
        m.gemm.record_kernel(100, 100, 100, 1_000_000);
        assert_eq!(m.gemm.ops.get(), 1); // kernel recording does not double-count ops
        assert_eq!(m.gemm.flops.get(), 2_000_000_000);
        assert_eq!(m.gemm.virtual_seconds.count(), 1);
        assert_eq!(m.gemm.kernel_seconds.count(), 1);
        // 2e6 flops in 1e6 ns = 2 GFLOP/s.
        assert!(m.gemm.kernel_gflops.quantile(0.5) >= 2.0);
    }

    #[test]
    fn prometheus_render_includes_runtime_families() {
        let m = RuntimeMetrics::fresh();
        m.send_msgs.inc();
        m.send_seconds.observe(1e-4);
        let text = m.render_prometheus();
        assert!(text.contains("summagen_comm_sends_total 1"));
        assert!(text.contains("# TYPE summagen_comm_send_seconds histogram"));
        assert!(text.contains("summagen_comm_collectives_total{op=\"bcast\"} 0"));
    }
}
