//! Prometheus text exposition (version 0.0.4) rendering.
//!
//! [`render`] snapshots a [`MetricsRegistry`] and produces the plain-text
//! format every Prometheus-compatible scraper understands:
//!
//! ```text
//! # HELP summagen_comm_sends_total Point-to-point messages sent.
//! # TYPE summagen_comm_sends_total counter
//! summagen_comm_sends_total 42
//! ```
//!
//! Histograms are exposed with cumulative `_bucket{le="..."}` series. The
//! internal layout has ~1000 fine-grained buckets; only the occupied ones
//! are emitted (plus the mandatory `+Inf`), which keeps the exposition
//! compact without losing any information — cumulative counts at omitted
//! bounds are recoverable from the neighbouring emitted bounds.

use crate::registry::{bucket_upper, FamilySnapshot, MetricsRegistry, SeriesValue};

/// Formats an f64 the way Prometheus expects (`+Inf` for infinity).
fn fmt_f64(v: f64) -> String {
    if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

fn series_name(name: &str, suffix: &str, labels: &str, extra: Option<(&str, &str)>) -> String {
    let mut all = String::new();
    if !labels.is_empty() {
        all.push_str(labels);
    }
    if let Some((k, v)) = extra {
        if !all.is_empty() {
            all.push(',');
        }
        all.push_str(&format!("{k}=\"{v}\""));
    }
    if all.is_empty() {
        format!("{name}{suffix}")
    } else {
        format!("{name}{suffix}{{{all}}}")
    }
}

fn render_family(out: &mut String, fam: &FamilySnapshot) {
    let type_str = match fam.kind {
        crate::MetricKind::Counter => "counter",
        crate::MetricKind::Gauge => "gauge",
        crate::MetricKind::Histogram => "histogram",
    };
    out.push_str(&format!("# HELP {} {}\n", fam.name, fam.help));
    out.push_str(&format!("# TYPE {} {}\n", fam.name, type_str));
    for s in &fam.series {
        match &s.value {
            SeriesValue::Counter(v) => {
                out.push_str(&series_name(&fam.name, "", &s.labels, None));
                out.push_str(&format!(" {v}\n"));
            }
            SeriesValue::Gauge(v) => {
                out.push_str(&series_name(&fam.name, "", &s.labels, None));
                out.push_str(&format!(" {}\n", fmt_f64(*v)));
            }
            SeriesValue::Histogram(h) => {
                let mut cum = 0u64;
                for (i, &c) in h.buckets.iter().enumerate() {
                    cum += c;
                    if c > 0 && i < h.buckets.len() - 1 {
                        let le = fmt_f64(bucket_upper(i));
                        out.push_str(&series_name(
                            &fam.name,
                            "_bucket",
                            &s.labels,
                            Some(("le", &le)),
                        ));
                        out.push_str(&format!(" {cum}\n"));
                    }
                }
                out.push_str(&series_name(
                    &fam.name,
                    "_bucket",
                    &s.labels,
                    Some(("le", "+Inf")),
                ));
                out.push_str(&format!(" {cum}\n"));
                out.push_str(&series_name(&fam.name, "_sum", &s.labels, None));
                out.push_str(&format!(" {}\n", fmt_f64(h.sum)));
                out.push_str(&series_name(&fam.name, "_count", &s.labels, None));
                out.push_str(&format!(" {}\n", h.count));
            }
        }
    }
}

/// Renders the registry's current state as Prometheus text exposition.
pub fn render(registry: &MetricsRegistry) -> String {
    let mut out = String::new();
    for fam in registry.snapshot() {
        render_family(&mut out, &fam);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_counter_gauge_and_histogram() {
        let reg = MetricsRegistry::new();
        reg.counter("req_total", "requests served").add(7);
        reg.gauge("temp_celsius", "temperature").set(21.5);
        let h = reg.histogram("lat_seconds", "latency");
        h.observe(0.001);
        h.observe(0.002);
        h.observe(0.100);
        let text = render(&reg);
        assert!(text.contains("# TYPE req_total counter"));
        assert!(text.contains("req_total 7"));
        assert!(text.contains("# TYPE temp_celsius gauge"));
        assert!(text.contains("temp_celsius 21.5"));
        assert!(text.contains("# TYPE lat_seconds histogram"));
        assert!(text.contains("lat_seconds_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("lat_seconds_count 3"));
        // Cumulative bucket counts are non-decreasing in le order.
        let cums: Vec<u64> = text
            .lines()
            .filter(|l| l.starts_with("lat_seconds_bucket"))
            .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
            .collect();
        assert!(cums.windows(2).all(|w| w[0] <= w[1]), "{cums:?}");
    }

    #[test]
    fn labelled_series_merge_le_correctly() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram_with("coll_seconds", "collective latency", &[("op", "bcast")]);
        h.observe(0.5);
        let text = render(&reg);
        assert!(
            text.contains("coll_seconds_bucket{op=\"bcast\",le=\"+Inf\"} 1"),
            "{text}"
        );
        assert!(text.contains("coll_seconds_count{op=\"bcast\"} 1"));
    }

    #[test]
    fn empty_registry_renders_empty() {
        assert_eq!(render(&MetricsRegistry::new()), "");
    }

    #[test]
    fn hostile_label_values_round_trip_escaped() {
        // A tenant name with a backslash, an embedded quote, and a
        // newline must stay inside its quotes: one sample line, the
        // escape sequences literal, and no raw quote or line break
        // leaking into the exposition grammar.
        let reg = MetricsRegistry::new();
        let hostile = "acme\\corp\"x\"\ninjected_total 99";
        reg.counter_with("jobs_total", "jobs", &[("tenant", hostile)])
            .add(3);
        let text = render(&reg);
        let samples: Vec<&str> = text.lines().filter(|l| !l.starts_with('#')).collect();
        assert_eq!(samples.len(), 1, "{text}");
        assert_eq!(
            samples[0],
            "jobs_total{tenant=\"acme\\\\corp\\\"x\\\"\\ninjected_total 99\"} 3"
        );
        // Unescaping the label value recovers the original name exactly.
        let start = samples[0].find("tenant=\"").unwrap() + "tenant=\"".len();
        let end = samples[0].rfind("\"}").unwrap();
        let unescaped = samples[0][start..end]
            .replace("\\n", "\n")
            .replace("\\\"", "\"")
            .replace("\\\\", "\\");
        assert_eq!(unescaped, hostile);
    }
}
