//! Metric primitives and the name-keyed registry.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Sub-buckets per power-of-two octave (must be a power of two). 16
/// sub-buckets bound the relative quantization error of a quantile
/// estimate at 1/16 = 6.25%.
pub const HIST_SUBDIVISIONS: usize = 16;
const HIST_SUB_BITS: u32 = HIST_SUBDIVISIONS.trailing_zeros();

/// Smallest tracked binary exponent: values below 2⁻⁴⁰ (~9·10⁻¹³ —
/// sub-picosecond durations, sub-GFLOP/s throughputs) land in the
/// underflow bucket.
pub const HIST_MIN_EXP: i32 = -40;

/// Largest tracked binary exponent: values at or above 2²⁴ (~1.7·10⁷)
/// land in the overflow bucket.
pub const HIST_MAX_EXP: i32 = 23;

const HIST_OCTAVES: usize = (HIST_MAX_EXP - HIST_MIN_EXP + 1) as usize;

/// Total bucket count: underflow + octaves × subdivisions + overflow.
pub const HIST_BUCKETS: usize = HIST_OCTAVES * HIST_SUBDIVISIONS + 2;

/// Fixed-point scale for the histogram running sum: one unit = 1 nano-unit
/// of the observed quantity. A single `fetch_add` keeps `observe`
/// wait-free where a CAS loop on f64 bits would spin under contention.
const SUM_SCALE: f64 = 1e9;

/// A monotonically increasing counter. `add` is a single relaxed
/// `fetch_add` — safe to call from every rank thread concurrently.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Increments by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increments by `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A point-in-time value (f64 bits in an atomic). Last writer wins.
#[derive(Debug, Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Maps a positive finite value to its bucket index from its IEEE-754
/// bit pattern: the (unbiased) exponent selects the octave, the top
/// mantissa bits the linear sub-bucket. No floating-point math, no
/// branches beyond the range clamps.
fn bucket_index(v: f64) -> usize {
    if v.is_nan() || v <= 0.0 {
        return 0;
    }
    if v.is_infinite() {
        return HIST_BUCKETS - 1;
    }
    let bits = v.to_bits();
    let exp = ((bits >> 52) & 0x7ff) as i32 - 1023;
    if exp < HIST_MIN_EXP {
        return 0; // includes all subnormals
    }
    if exp > HIST_MAX_EXP {
        return HIST_BUCKETS - 1;
    }
    let sub = ((bits >> (52 - HIST_SUB_BITS)) & (HIST_SUBDIVISIONS as u64 - 1)) as usize;
    1 + (exp - HIST_MIN_EXP) as usize * HIST_SUBDIVISIONS + sub
}

/// Inclusive upper bound of bucket `idx` (`+Inf` for the overflow
/// bucket). Bounds are strictly increasing across indices.
pub fn bucket_upper(idx: usize) -> f64 {
    if idx == 0 {
        return (HIST_MIN_EXP as f64).exp2();
    }
    if idx >= HIST_BUCKETS - 1 {
        return f64::INFINITY;
    }
    let i = idx - 1;
    let octave = HIST_MIN_EXP + (i / HIST_SUBDIVISIONS) as i32;
    let sub = i % HIST_SUBDIVISIONS;
    (octave as f64).exp2() * (1.0 + (sub + 1) as f64 / HIST_SUBDIVISIONS as f64)
}

/// A log-linear histogram: fixed bucket layout, per-bucket atomic counts,
/// wait-free `observe`, and quantile estimation with bounded relative
/// error (one sub-bucket width, ≤ 6.25%).
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_fp: AtomicU64,
}

impl Histogram {
    pub(crate) fn new() -> Self {
        Self {
            buckets: (0..HIST_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_fp: AtomicU64::new(0),
        }
    }

    /// Records one observation. NaN and non-positive values land in the
    /// underflow bucket (they still count) and contribute zero to the sum.
    pub fn observe(&self, v: f64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        if v.is_finite() && v > 0.0 {
            self.sum_fp
                .fetch_add((v * SUM_SCALE) as u64, Ordering::Relaxed);
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all (positive, finite) observations.
    pub fn sum(&self) -> f64 {
        self.sum_fp.load(Ordering::Relaxed) as f64 / SUM_SCALE
    }

    /// Estimates the `q`-quantile (`q` in [0, 1]) as the upper bound of
    /// the bucket containing the target rank — a conservative (never
    /// under-reporting) estimate within one sub-bucket width of the true
    /// value. Returns 0 for an empty histogram; use [`Self::try_quantile`]
    /// when "no observations" must be distinguishable from "all zero".
    pub fn quantile(&self, q: f64) -> f64 {
        self.try_quantile(q).unwrap_or(0.0)
    }

    /// [`Self::quantile`], but `None` for an empty histogram instead of
    /// a fabricated 0 — an empty window has no p95, and reporting one
    /// as 0 reads as "infinitely fast" to alerting math.
    pub fn try_quantile(&self, q: f64) -> Option<f64> {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        try_quantile_from_buckets(&counts, q)
    }

    /// Copies out the raw per-bucket counts (index `i` bounded above by
    /// [`bucket_upper`]`(i)`).
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// A consistent-enough copy for export (individual loads are relaxed;
    /// a snapshot taken concurrently with observations may be mid-update
    /// by a few counts, which is the usual Prometheus contract).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count(),
            sum: self.sum(),
            buckets: self.bucket_counts(),
        }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("sum", &self.sum())
            .finish()
    }
}

fn try_quantile_from_buckets(counts: &[u64], q: f64) -> Option<f64> {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return None;
    }
    let target = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
    let mut cum = 0u64;
    for (i, &c) in counts.iter().enumerate() {
        cum += c;
        if cum >= target {
            return Some(bucket_upper(i));
        }
    }
    Some(f64::INFINITY)
}

/// What a registered name holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonic counter.
    Counter,
    /// Point-in-time value.
    Gauge,
    /// Log-linear distribution.
    Histogram,
}

#[derive(Clone)]
enum MetricValue {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl MetricValue {
    fn kind(&self) -> MetricKind {
        match self {
            MetricValue::Counter(_) => MetricKind::Counter,
            MetricValue::Gauge(_) => MetricKind::Gauge,
            MetricValue::Histogram(_) => MetricKind::Histogram,
        }
    }
}

struct Family {
    help: String,
    kind: MetricKind,
    /// Rendered label set (`op="bcast"`, possibly empty) → series.
    series: BTreeMap<String, MetricValue>,
}

/// Get-or-create registry of metric families keyed by name. Handles are
/// `Arc`s: register once at startup, record through the handle on the hot
/// path without touching the registry again.
#[derive(Default)]
pub struct MetricsRegistry {
    families: Mutex<BTreeMap<String, Family>>,
}

/// Renders a label set in Prometheus order-stable form: `k1="v1",k2="v2"`.
/// Values escape backslash, double quote, and newline per the exposition
/// format — a hostile tenant name must not break out of its quotes or
/// smuggle in extra sample lines.
fn render_labels(labels: &[(&str, &str)]) -> String {
    let mut sorted: Vec<_> = labels.to_vec();
    sorted.sort_unstable();
    sorted
        .iter()
        .map(|(k, v)| {
            format!(
                "{k}=\"{}\"",
                v.replace('\\', "\\\\")
                    .replace('"', "\\\"")
                    .replace('\n', "\\n")
            )
        })
        .collect::<Vec<_>>()
        .join(",")
}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name.chars().enumerate().all(|(i, c)| {
            c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit())
        })
}

impl MetricsRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn get_or_insert(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> MetricValue,
    ) -> MetricValue {
        assert!(valid_name(name), "invalid metric name {name:?}");
        let key = render_labels(labels);
        let mut families = self.families.lock().unwrap();
        let value = make();
        let fam = families.entry(name.to_string()).or_insert_with(|| Family {
            help: help.to_string(),
            kind: value.kind(),
            series: BTreeMap::new(),
        });
        assert!(
            fam.kind == value.kind(),
            "metric {name:?} already registered as {:?}, requested {:?}",
            fam.kind,
            value.kind()
        );
        fam.series.entry(key).or_insert(value).clone()
    }

    /// Gets or creates an unlabelled counter.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        self.counter_with(name, help, &[])
    }

    /// Gets or creates a counter with the given label set.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different metric kind
    /// or is not a valid Prometheus metric name.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        match self.get_or_insert(name, help, labels, || {
            MetricValue::Counter(Arc::new(Counter::default()))
        }) {
            MetricValue::Counter(c) => c,
            _ => unreachable!("kind checked by get_or_insert"),
        }
    }

    /// Gets or creates an unlabelled gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        self.gauge_with(name, help, &[])
    }

    /// Gets or creates a gauge with the given label set.
    ///
    /// # Panics
    /// Panics on kind mismatch or invalid name, as for [`Self::counter_with`].
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        match self.get_or_insert(name, help, labels, || {
            MetricValue::Gauge(Arc::new(Gauge::default()))
        }) {
            MetricValue::Gauge(g) => g,
            _ => unreachable!("kind checked by get_or_insert"),
        }
    }

    /// Gets or creates an unlabelled histogram.
    pub fn histogram(&self, name: &str, help: &str) -> Arc<Histogram> {
        self.histogram_with(name, help, &[])
    }

    /// Gets or creates a histogram with the given label set.
    ///
    /// # Panics
    /// Panics on kind mismatch or invalid name, as for [`Self::counter_with`].
    pub fn histogram_with(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
    ) -> Arc<Histogram> {
        match self.get_or_insert(name, help, labels, || {
            MetricValue::Histogram(Arc::new(Histogram::new()))
        }) {
            MetricValue::Histogram(h) => h,
            _ => unreachable!("kind checked by get_or_insert"),
        }
    }

    /// Snapshots every family, sorted by name, for export.
    pub fn snapshot(&self) -> Vec<FamilySnapshot> {
        let families = self.families.lock().unwrap();
        families
            .iter()
            .map(|(name, fam)| FamilySnapshot {
                name: name.clone(),
                help: fam.help.clone(),
                kind: fam.kind,
                series: fam
                    .series
                    .iter()
                    .map(|(labels, value)| SeriesSnapshot {
                        labels: labels.clone(),
                        value: match value {
                            MetricValue::Counter(c) => SeriesValue::Counter(c.get()),
                            MetricValue::Gauge(g) => SeriesValue::Gauge(g.get()),
                            MetricValue::Histogram(h) => SeriesValue::Histogram(h.snapshot()),
                        },
                    })
                    .collect(),
            })
            .collect()
    }
}

/// One metric family (a name, its help text, and every label-series).
#[derive(Debug, Clone)]
pub struct FamilySnapshot {
    /// Family name.
    pub name: String,
    /// Help text.
    pub help: String,
    /// Kind shared by every series of the family.
    pub kind: MetricKind,
    /// Series sorted by rendered label set.
    pub series: Vec<SeriesSnapshot>,
}

/// One series of a family.
#[derive(Debug, Clone)]
pub struct SeriesSnapshot {
    /// Rendered label set (`op="bcast"`), empty for unlabelled series.
    pub labels: String,
    /// The captured value.
    pub value: SeriesValue,
}

/// A captured metric value.
#[derive(Debug, Clone)]
pub enum SeriesValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(f64),
    /// Histogram state.
    Histogram(HistogramSnapshot),
}

/// Captured histogram state: raw bucket counts plus count/sum.
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of positive finite observations.
    pub sum: f64,
    /// Raw per-bucket counts (see [`bucket_upper`]).
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Quantile estimate over the captured counts (see
    /// [`Histogram::quantile`]); 0 when the snapshot is empty.
    pub fn quantile(&self, q: f64) -> f64 {
        self.try_quantile(q).unwrap_or(0.0)
    }

    /// [`Self::quantile`], but `None` for an empty snapshot (see
    /// [`Histogram::try_quantile`]).
    pub fn try_quantile(&self, q: f64) -> Option<f64> {
        try_quantile_from_buckets(&self.buckets, q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let c = Counter::default();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn gauge_last_writer_wins() {
        let g = Gauge::default();
        g.set(2.5);
        g.set(-7.25);
        assert_eq!(g.get(), -7.25);
    }

    #[test]
    fn bucket_bounds_are_strictly_increasing() {
        for i in 1..HIST_BUCKETS {
            assert!(
                bucket_upper(i) > bucket_upper(i - 1),
                "bounds not increasing at {i}"
            );
        }
    }

    #[test]
    fn bucket_index_respects_bounds() {
        // Buckets are half-open [lower, upper): every observed value is
        // below its bucket's upper bound and at or above the previous one.
        for &v in &[1e-9, 0.5e-3, 1.0, 1.5, 3.25, 1000.0, 123456.0] {
            let idx = bucket_index(v);
            assert!(v < bucket_upper(idx), "{v} above bound of bucket {idx}");
            assert!(v >= bucket_upper(idx - 1), "{v} below bucket {idx}");
        }
    }

    #[test]
    fn degenerate_values_land_in_edge_buckets() {
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(-1.0), 0);
        assert_eq!(bucket_index(f64::NAN), 0);
        assert_eq!(bucket_index(1e-300), 0);
        assert_eq!(bucket_index(f64::INFINITY), HIST_BUCKETS - 1);
        assert_eq!(bucket_index(1e30), HIST_BUCKETS - 1);
    }

    #[test]
    fn histogram_quantiles_bound_relative_error() {
        let h = Histogram::new();
        // 1000 samples spread over three decades.
        for i in 1..=1000u64 {
            h.observe(i as f64 * 1e-3);
        }
        assert_eq!(h.count(), 1000);
        let sum = h.sum();
        assert!((sum - 500.5).abs() / 500.5 < 1e-6, "sum {sum}");
        for &(q, exact) in &[(0.5, 0.5), (0.95, 0.95), (0.99, 0.99)] {
            let est = h.quantile(q);
            assert!(est >= exact, "p{q} estimate {est} under-reports {exact}");
            assert!(
                est <= exact * (1.0 + 1.0 / HIST_SUBDIVISIONS as f64) + 1e-12,
                "p{q} estimate {est} beyond one sub-bucket of {exact}"
            );
        }
    }

    #[test]
    fn empty_histogram_quantile_is_zero() {
        assert_eq!(Histogram::new().quantile(0.99), 0.0);
    }

    #[test]
    fn empty_histogram_try_quantile_is_none_until_observed() {
        // Regression: an empty window must be distinguishable from an
        // all-zero one — the legacy `quantile` keeps returning 0, but
        // `try_quantile` says "no data" on both the live histogram and
        // its snapshot.
        let h = Histogram::new();
        assert_eq!(h.try_quantile(0.95), None);
        assert_eq!(h.snapshot().try_quantile(0.95), None);
        assert_eq!(h.snapshot().quantile(0.95), 0.0);
        h.observe(2.5);
        let p95 = h.try_quantile(0.95).expect("one observation suffices");
        assert!(p95 >= 2.5);
        assert_eq!(h.snapshot().try_quantile(0.95), Some(p95));
    }

    #[test]
    fn registry_returns_same_handle_for_same_name() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("x_total", "a counter");
        let b = reg.counter("x_total", "a counter");
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn labelled_series_are_distinct() {
        let reg = MetricsRegistry::new();
        let a = reg.counter_with("ops_total", "ops", &[("op", "bcast")]);
        let b = reg.counter_with("ops_total", "ops", &[("op", "gather")]);
        a.add(3);
        b.add(5);
        assert_eq!(a.get(), 3);
        assert_eq!(b.get(), 5);
        let snap = reg.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].series.len(), 2);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_collision_panics() {
        let reg = MetricsRegistry::new();
        reg.counter("x_total", "a counter");
        reg.gauge("x_total", "now a gauge?");
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn invalid_name_rejected() {
        MetricsRegistry::new().counter("bad name!", "nope");
    }

    #[test]
    fn concurrent_observations_are_not_lost() {
        let reg = Arc::new(MetricsRegistry::new());
        let c = reg.counter("hits_total", "hits");
        let h = reg.histogram("lat_seconds", "latency");
        std::thread::scope(|s| {
            for t in 0..8 {
                let (c, h) = (Arc::clone(&c), Arc::clone(&h));
                s.spawn(move || {
                    for i in 0..10_000u64 {
                        c.inc();
                        h.observe((t * 10_000 + i) as f64 * 1e-6);
                    }
                });
            }
        });
        assert_eq!(c.get(), 80_000);
        assert_eq!(h.count(), 80_000);
        assert_eq!(h.bucket_counts().iter().sum::<u64>(), 80_000);
    }
}
