//! Aggregation over a [`RecordedTrace`]: per-rank busy/idle/comm
//! fractions, per-link byte volumes, and the critical path through the
//! happens-before DAG.
//!
//! Only *leaf* spans (`Send`, `Recv`, `Gemm` — see
//! [`SpanKind::is_leaf`]) enter the accounting; `Collective` and `Stage`
//! spans enclose leaves and would double-count. The happens-before
//! edges are (a) program order within a rank (spans are recorded in
//! order, each at its end time) and (b) the cross-rank edge from each
//! `Send` to the `Recv` carrying the same `(src, seq)`.

use std::collections::BTreeMap;

use summagen_comm::span::{SpanKind, SpanRecord};

use crate::recorder::RecordedTrace;

/// Time accounting for one rank.
#[derive(Debug, Clone, PartialEq)]
pub struct RankMetrics {
    /// Universe-global rank.
    pub rank: usize,
    /// Virtual seconds in GEMM leaf spans.
    pub comp_time: f64,
    /// Virtual seconds in send/recv leaf spans.
    pub comm_time: f64,
    /// Virtual seconds in ABFT leaf spans (verify/correct/checkpoint/
    /// rollback) — the per-rank resilience overhead.
    pub abft_time: f64,
    /// `makespan − comp − comm − abft`, clamped at zero.
    pub idle_time: f64,
    /// Total floating-point operations across the rank's GEMM spans.
    pub gemm_flops: f64,
    /// Number of leaf spans recorded for the rank.
    pub leaf_spans: usize,
}

impl RankMetrics {
    /// Fraction of the makespan spent computing (0 when makespan is 0).
    pub fn comp_fraction(&self, makespan: f64) -> f64 {
        if makespan > 0.0 {
            self.comp_time / makespan
        } else {
            0.0
        }
    }
}

/// Traffic on one directed rank-to-rank link, summed over the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkVolume {
    /// Sending global rank.
    pub src: usize,
    /// Receiving global rank.
    pub dst: usize,
    /// Total wire bytes pushed onto the link (dropped messages
    /// included — the sender paid for them).
    pub bytes: u64,
    /// Message count.
    pub msgs: u64,
}

/// The aggregate view of a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceMetrics {
    /// Latest leaf end time over all ranks (0 for an empty trace).
    pub makespan: f64,
    /// Per-rank accounting, indexed by rank.
    pub per_rank: Vec<RankMetrics>,
    /// Per-link volumes, sorted by `(src, dst)`.
    pub links: Vec<LinkVolume>,
    /// Spans lost to ring-buffer overwrite (non-zero means the
    /// accounting below is a lower bound).
    pub dropped: u64,
}

/// Computes per-rank and per-link metrics from a finished trace.
pub fn metrics(trace: &RecordedTrace) -> TraceMetrics {
    let makespan = trace
        .iter()
        .filter(|ts| ts.record.kind.is_leaf())
        .map(|ts| ts.record.end)
        .fold(0.0_f64, f64::max);
    let mut links: BTreeMap<(usize, usize), (u64, u64)> = BTreeMap::new();
    let mut per_rank = Vec::with_capacity(trace.nranks);
    for (rank, spans) in trace.spans.iter().enumerate() {
        let mut m = RankMetrics {
            rank,
            comp_time: 0.0,
            comm_time: 0.0,
            abft_time: 0.0,
            idle_time: 0.0,
            gemm_flops: 0.0,
            leaf_spans: 0,
        };
        for ts in spans {
            let r = &ts.record;
            match &r.kind {
                SpanKind::Send { dst, bytes, .. } => {
                    m.comm_time += r.duration();
                    m.leaf_spans += 1;
                    let e = links.entry((r.rank, *dst)).or_insert((0, 0));
                    e.0 += bytes;
                    e.1 += 1;
                }
                SpanKind::Recv { .. } => {
                    m.comm_time += r.duration();
                    m.leaf_spans += 1;
                }
                SpanKind::Gemm { flops, .. } => {
                    m.comp_time += r.duration();
                    m.gemm_flops += flops;
                    m.leaf_spans += 1;
                }
                SpanKind::Abft { .. } => {
                    m.abft_time += r.duration();
                    m.leaf_spans += 1;
                }
                // Retransmissions are extra wire time on the sender:
                // they count as communication but carry no payload bytes
                // (the link table tracks logical traffic, not ARQ
                // overhead).
                SpanKind::Retransmit { .. } => {
                    m.comm_time += r.duration();
                    m.leaf_spans += 1;
                }
                // On a schedule timeline each "rank" is a pool device and
                // Sched spans are its dispatched occupancy, so they count
                // as compute: idle_time then reads as device idleness.
                SpanKind::Sched { .. } => {
                    m.comp_time += r.duration();
                    m.leaf_spans += 1;
                }
                _ => {}
            }
        }
        m.idle_time = (makespan - m.comp_time - m.comm_time - m.abft_time).max(0.0);
        per_rank.push(m);
    }
    TraceMetrics {
        makespan,
        per_rank,
        links: links
            .into_iter()
            .map(|((src, dst), (bytes, msgs))| LinkVolume {
                src,
                dst,
                bytes,
                msgs,
            })
            .collect(),
        dropped: trace.dropped,
    }
}

/// One link of the critical path.
#[derive(Debug, Clone, PartialEq)]
pub struct CpSegment {
    /// Rank the event ran on.
    pub rank: usize,
    /// Virtual start.
    pub start: f64,
    /// Virtual end.
    pub end: f64,
    /// Event class: `"send"`, `"recv"`, or `"gemm"`.
    pub kind: &'static str,
    /// Human-readable description of the event.
    pub detail: String,
}

/// The chain of leaf events bounding the makespan.
#[derive(Debug, Clone, PartialEq)]
pub struct CriticalPath {
    /// End time of the last event — the schedule's makespan.
    pub makespan: f64,
    /// The chain, earliest first.
    pub segments: Vec<CpSegment>,
    /// Non-overlapping virtual seconds of the path spent in GEMMs.
    pub comp_time: f64,
    /// Non-overlapping virtual seconds spent in sends/recvs.
    pub comm_time: f64,
    /// Makespan not covered by any path segment.
    pub idle_time: f64,
}

impl CriticalPath {
    /// Renders the path as a fixed-width table (for the `reproduce
    /// trace` report).
    pub fn table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "critical path: {} segments, makespan {:.6}s (comp {:.6}s, comm {:.6}s, idle {:.6}s)\n",
            self.segments.len(),
            self.makespan,
            self.comp_time,
            self.comm_time,
            self.idle_time,
        ));
        out.push_str(&format!(
            "{:>6} {:>5} {:>14} {:>14} {:>12}  {}\n",
            "#", "rank", "start(s)", "end(s)", "dur(ms)", "event"
        ));
        for (i, seg) in self.segments.iter().enumerate() {
            out.push_str(&format!(
                "{:>6} {:>5} {:>14.9} {:>14.9} {:>12.6}  {}\n",
                i,
                seg.rank,
                seg.start,
                seg.end,
                (seg.end - seg.start) * 1e3,
                seg.detail,
            ));
        }
        out
    }
}

fn describe(record: &SpanRecord) -> (&'static str, String) {
    match &record.kind {
        SpanKind::Send {
            dst, bytes, seq, ..
        } => ("send", format!("send -> r{dst} ({bytes} B, seq {seq})")),
        SpanKind::Recv {
            src, bytes, seq, ..
        } => ("recv", format!("recv <- r{src} ({bytes} B, seq {seq})")),
        SpanKind::Gemm { m, n, k, .. } => ("gemm", format!("gemm {m}x{n}x{k}")),
        SpanKind::Abft { op, step, elems } => (
            "abft",
            format!("{} step {step} ({elems} elems)", op.label()),
        ),
        other => ("other", other.label().to_string()),
    }
}

/// Extracts the critical path: starting from the globally latest-ending
/// leaf event, repeatedly walk to the *binding* predecessor — for a
/// `Recv`, the matching `Send` when it finished after the receiver's own
/// previous event (i.e. the wait was for the wire, not for local work);
/// otherwise the rank-local predecessor. Deterministic for a
/// deterministic trace: all tie-breaks use fixed scan orders.
pub fn critical_path(trace: &RecordedTrace) -> CriticalPath {
    // Leaf events per rank, program order (end times non-decreasing).
    let leaves: Vec<Vec<&SpanRecord>> = trace
        .spans
        .iter()
        .map(|spans| {
            spans
                .iter()
                .map(|ts| &ts.record)
                .filter(|r| r.kind.is_leaf())
                .collect()
        })
        .collect();
    // (sender rank, seq) -> program-order index of the Send.
    let mut send_at: BTreeMap<(usize, u64), usize> = BTreeMap::new();
    for (rank, rank_leaves) in leaves.iter().enumerate() {
        for (i, r) in rank_leaves.iter().enumerate() {
            if let SpanKind::Send { seq, .. } = r.kind {
                send_at.insert((rank, seq), i);
            }
        }
    }

    // The path's last event: latest end; ties go to the highest rank's
    // latest event, so a Recv beats the Send that fed it (the Recv is
    // later in happens-before even when virtual ends coincide).
    let mut cursor: Option<(usize, usize)> = None;
    let mut makespan = 0.0_f64;
    for (rank, rank_leaves) in leaves.iter().enumerate() {
        for (i, r) in rank_leaves.iter().enumerate() {
            if cursor.is_none() || r.end >= makespan {
                makespan = r.end;
                cursor = Some((rank, i));
            }
        }
    }

    let mut chain: Vec<(usize, usize)> = Vec::new();
    let total_leaves: usize = leaves.iter().map(Vec::len).sum();
    while let Some((rank, i)) = cursor {
        chain.push((rank, i));
        if chain.len() > total_leaves {
            // A cycle is impossible in a well-formed trace (edges only
            // point backwards in time); bail out rather than spin if the
            // ring dropped the spans that would close the walk.
            break;
        }
        let here = leaves[rank][i];
        let prev_local = i.checked_sub(1).map(|j| (rank, j));
        cursor = match here.kind {
            SpanKind::Recv { src, seq, .. } => match send_at.get(&(src, seq)) {
                Some(&si) => {
                    let sender_end = leaves[src][si].end;
                    match prev_local {
                        // The wait was bounded by the sender, not by our
                        // own previous event: cross the rank edge.
                        Some((pr, pj)) if leaves[pr][pj].end >= sender_end => Some((pr, pj)),
                        Some(_) | None => Some((src, si)),
                    }
                }
                // Matching send fell off the ring (or predates tracing).
                None => prev_local,
            },
            _ => prev_local,
        };
    }
    chain.reverse();

    let segments: Vec<CpSegment> = chain
        .iter()
        .map(|&(rank, i)| {
            let r = leaves[rank][i];
            let (kind, detail) = describe(r);
            CpSegment {
                rank,
                start: r.start,
                end: r.end,
                kind,
                detail,
            }
        })
        .collect();

    // Decompose the makespan along the path: each segment contributes
    // its non-overlapping part (cross-rank sends overlap the recv wait
    // they feed), gaps count as idle.
    let mut t = 0.0_f64;
    let mut comp = 0.0;
    let mut comm = 0.0;
    let mut idle = 0.0;
    for seg in &segments {
        if seg.start > t {
            idle += seg.start - t;
        }
        let contrib = (seg.end - seg.start.max(t)).max(0.0);
        match seg.kind {
            // ABFT work is rank-local busy time, so it counts with
            // computation rather than the wire.
            "gemm" | "abft" => comp += contrib,
            _ => comm += contrib,
        }
        t = t.max(seg.end);
    }
    idle += (makespan - t).max(0.0);

    CriticalPath {
        makespan,
        segments,
        comp_time: comp,
        comm_time: comm,
        idle_time: idle,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::TraceRecorder;
    use summagen_comm::span::{EventSink, MsgOutcome};

    fn rec(nranks: usize) -> std::sync::Arc<TraceRecorder> {
        TraceRecorder::new(nranks)
    }

    fn send(rank: usize, dst: usize, start: f64, end: f64, seq: u64) -> SpanRecord {
        SpanRecord {
            rank,
            start,
            end,
            kind: SpanKind::Send {
                dst,
                tag: 0,
                bytes: ((end - start) * 1e9) as u64,
                seq,
                outcome: MsgOutcome::Delivered,
            },
        }
    }

    fn recv(rank: usize, src: usize, start: f64, end: f64, seq: u64) -> SpanRecord {
        SpanRecord {
            rank,
            start,
            end,
            kind: SpanKind::Recv {
                src,
                tag: 0,
                bytes: 8,
                seq,
            },
        }
    }

    fn gemm(rank: usize, start: f64, end: f64) -> SpanRecord {
        SpanRecord {
            rank,
            start,
            end,
            kind: SpanKind::Gemm {
                m: 8,
                n: 8,
                k: 8,
                flops: 1024.0,
                kernel_ns: 0,
            },
        }
    }

    fn abft(rank: usize, start: f64, end: f64) -> SpanRecord {
        SpanRecord {
            rank,
            start,
            end,
            kind: SpanKind::Abft {
                op: summagen_comm::span::AbftLabel::Verify,
                step: 0,
                elems: 64,
            },
        }
    }

    #[test]
    fn metrics_accumulate_per_rank_and_link() {
        let r = rec(2);
        r.record(send(0, 1, 0.0, 1.0, 0));
        r.record(recv(1, 0, 0.0, 1.0, 0));
        r.record(gemm(1, 1.0, 3.0));
        let m = metrics(&r.finish());
        assert_eq!(m.makespan, 3.0);
        assert_eq!(m.per_rank[0].comm_time, 1.0);
        assert_eq!(m.per_rank[0].idle_time, 2.0);
        assert_eq!(m.per_rank[1].comp_time, 2.0);
        assert_eq!(m.per_rank[1].gemm_flops, 1024.0);
        assert_eq!(m.links.len(), 1);
        assert_eq!((m.links[0].src, m.links[0].dst, m.links[0].msgs), (0, 1, 1));
    }

    #[test]
    fn abft_spans_count_as_resilience_time_not_idle() {
        let r = rec(1);
        r.record(gemm(0, 0.0, 2.0));
        r.record(abft(0, 2.0, 2.5));
        let m = metrics(&r.finish());
        assert_eq!(m.makespan, 2.5);
        assert_eq!(m.per_rank[0].comp_time, 2.0);
        assert_eq!(m.per_rank[0].abft_time, 0.5);
        assert_eq!(m.per_rank[0].idle_time, 0.0);
        assert_eq!(m.per_rank[0].leaf_spans, 2);
        // And on the critical path it contributes busy time, not comm.
        let cp = critical_path(&r.finish());
        assert_eq!(cp.makespan, 2.5);
        let kinds: Vec<_> = cp.segments.iter().map(|s| s.kind).collect();
        assert_eq!(kinds, vec!["gemm", "abft"]);
        assert!((cp.comp_time - 2.5).abs() < 1e-12);
        assert!(cp.segments[1].detail.contains("abft-verify"));
    }

    #[test]
    fn critical_path_crosses_ranks_through_the_send() {
        // Rank 0: long send feeding rank 1's recv; rank 1 then computes.
        // The path must be send(r0) -> recv(r1) -> gemm(r1).
        let r = rec(2);
        r.record(send(0, 1, 0.0, 2.0, 0));
        r.record(recv(1, 0, 0.0, 2.0, 0));
        r.record(gemm(1, 2.0, 5.0));
        let cp = critical_path(&r.finish());
        assert_eq!(cp.makespan, 5.0);
        let kinds: Vec<_> = cp.segments.iter().map(|s| (s.rank, s.kind)).collect();
        assert_eq!(kinds, vec![(0, "send"), (1, "recv"), (1, "gemm")]);
        // Send occupies [0,2]; the recv wait overlaps it entirely, so
        // comm is 2s (not 4), comp 3s, idle 0.
        assert!((cp.comm_time - 2.0).abs() < 1e-12);
        assert!((cp.comp_time - 3.0).abs() < 1e-12);
        assert!(cp.idle_time.abs() < 1e-12);
        assert!((cp.comp_time + cp.comm_time + cp.idle_time - cp.makespan).abs() < 1e-9);
    }

    #[test]
    fn critical_path_stays_local_when_local_work_dominates() {
        // Rank 1 computes past the sender's finish before receiving: the
        // binding predecessor of its recv is its own gemm.
        let r = rec(2);
        r.record(send(0, 1, 0.0, 1.0, 0));
        r.record(gemm(1, 0.0, 4.0));
        r.record(recv(1, 0, 4.0, 4.0, 0));
        r.record(gemm(1, 4.0, 6.0));
        let cp = critical_path(&r.finish());
        let kinds: Vec<_> = cp.segments.iter().map(|s| (s.rank, s.kind)).collect();
        assert_eq!(
            kinds,
            vec![(1, "gemm"), (1, "recv"), (1, "gemm")],
            "path must not detour through rank 0"
        );
        assert_eq!(cp.makespan, 6.0);
    }

    #[test]
    fn empty_trace_yields_empty_path() {
        let cp = critical_path(&rec(2).finish());
        assert_eq!(cp.makespan, 0.0);
        assert!(cp.segments.is_empty());
        let m = metrics(&rec(2).finish());
        assert_eq!(m.makespan, 0.0);
        assert!(m.links.is_empty());
    }

    #[test]
    fn path_table_mentions_every_segment() {
        let r = rec(2);
        r.record(send(0, 1, 0.0, 2.0, 0));
        r.record(recv(1, 0, 0.0, 2.0, 0));
        let cp = critical_path(&r.finish());
        let table = cp.table();
        assert!(table.contains("critical path"));
        assert!(table.contains("send -> r1"));
        assert!(table.contains("recv <- r0"));
    }
}
