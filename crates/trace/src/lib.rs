//! Structured tracing for the SummaGen runtime: record, aggregate,
//! export.
//!
//! The paper's argument is about *execution shape* — where each
//! processor's time goes between communication and computation under
//! different partition geometries. End-to-end virtual times cannot show
//! that; this crate turns the runtime's span stream (see
//! `summagen_comm::span`) into things that can:
//!
//! * [`TraceRecorder`] — the canonical `EventSink`: one wait-free
//!   single-writer ring buffer per rank, wall-clock stamping, zero
//!   contention between ranks. Install with
//!   `Universe::with_event_sink`, extract a [`RecordedTrace`] with
//!   [`TraceRecorder::finish`] after the run.
//! * [`metrics`] — per-rank busy/idle/comm fractions and per-link byte
//!   volumes ([`TraceMetrics`]).
//! * [`critical_path`] — the chain of leaf events through the
//!   happens-before DAG (program order within a rank, matched
//!   `(sender, seq)` edges across ranks) that bounds the makespan
//!   ([`CriticalPath`]); its end time equals the executor's reported
//!   virtual time.
//! * [`replay`](crate::replay::replay) — causal what-if replay: rescale
//!   the demand of a span class, link, or device ([`Intervention`]) and
//!   re-time the trace through the same happens-before DAG, so "comm
//!   free" or "device 2 twice as fast" get concrete makespans.
//! * [`perfetto_json`] — Chrome/Perfetto trace-event export on the
//!   virtual-clock timebase, two tracks per rank (ops and enclosing
//!   phases).
//! * [`folded_stacks`] — folded-stack flamegraph export (one line per
//!   unique `rank;stage;collective;op` stack, weighted in virtual
//!   nanoseconds) for `flamegraph.pl`, inferno, or speedscope.
//!
//! Clock domains: every span interval is **virtual** time (the Hockney
//! cost model's schedule); each recorded span additionally carries a
//! **wall-clock** stamp ([`TraceSpan::wall_ns`]) for debugging the host
//! run itself. Wall time is excluded from
//! [`RecordedTrace::canonical_bytes`], which is the determinism witness:
//! same shape + same seed ⇒ byte-identical canonical stream.

pub mod analysis;
pub mod flamegraph;
pub mod perfetto;
pub mod recorder;
pub mod replay;
pub mod ring;

pub use analysis::{
    critical_path, metrics, CpSegment, CriticalPath, LinkVolume, RankMetrics, TraceMetrics,
};
pub use flamegraph::folded_stacks;
pub use perfetto::perfetto_json;
pub use recorder::{RecordedTrace, TraceRecorder, TraceSpan, DEFAULT_RING_CAPACITY};
pub use replay::{replay, Intervention, Replay, Target};
pub use ring::RingBuffer;
