//! Folded-stack flamegraph export.
//!
//! Collapses a [`RecordedTrace`] into the `stack;frames weight` text
//! format consumed by Brendan Gregg's `flamegraph.pl`, inferno, and
//! speedscope. Each rank becomes a root frame; enclosing annotation
//! spans (stages, collectives) become intermediate frames by virtual-time
//! interval containment; leaf ops (sends, recvs, GEMMs, ABFT work)
//! become the tips. Weights are **virtual nanoseconds**, so the rendered
//! flame widths reproduce the Hockney-model schedule — where each rank's
//! simulated time went — independent of the host that replayed it.
//!
//! An enclosing frame whose children do not tile it (e.g. the wait
//! inside a collective) keeps the remainder as self time, so frame
//! widths always sum correctly to the parent's duration.

use std::collections::BTreeMap;

use summagen_comm::span::SpanRecord;

use crate::recorder::RecordedTrace;

/// One open enclosing frame during the per-rank sweep.
struct OpenFrame<'a> {
    record: &'a SpanRecord,
    /// Virtual seconds of this frame's *direct* children (nested
    /// enclosers and leaves), for self-time computation.
    covered: f64,
}

fn weight_ns(seconds: f64) -> u64 {
    (seconds * 1e9).round() as u64
}

/// Folds a label into a frame name safe for the folded-stack grammar
/// (no `;`, no whitespace).
fn frame(label: &str) -> String {
    label
        .chars()
        .map(|c| {
            if c == ';' || c.is_whitespace() {
                '_'
            } else {
                c
            }
        })
        .collect()
}

fn add(stacks: &mut BTreeMap<String, u64>, stack: &[String], ns: u64) {
    if ns > 0 {
        *stacks.entry(stack.join(";")).or_insert(0) += ns;
    }
}

/// Collapses `trace` into folded-stack lines (`frame;frame;... weight`),
/// one per unique stack, weighted in virtual nanoseconds and sorted
/// lexicographically (deterministic for identical traces).
///
/// Stacks are `rank_N` → enclosing stage → enclosing collective → leaf
/// op, with nesting inferred from virtual-time interval containment
/// within each rank. Instant events (rank deaths) and zero-duration
/// spans carry no weight and are omitted.
pub fn folded_stacks(trace: &RecordedTrace) -> String {
    let mut stacks: BTreeMap<String, u64> = BTreeMap::new();
    for (rank, spans) in trace.spans.iter().enumerate() {
        fold_rank(rank, spans.iter().map(|ts| &ts.record), &mut stacks);
    }
    let mut out = String::new();
    for (stack, ns) in &stacks {
        out.push_str(stack);
        out.push(' ');
        out.push_str(&ns.to_string());
        out.push('\n');
    }
    out
}

fn fold_rank<'a>(
    rank: usize,
    spans: impl Iterator<Item = &'a SpanRecord>,
    stacks: &mut BTreeMap<String, u64>,
) {
    // Sweep in start order; on ties, longer spans first so enclosers
    // open before the spans they contain, and enclosers beat leaves.
    let mut ordered: Vec<&SpanRecord> = spans.collect();
    ordered.sort_by(|a, b| {
        a.start
            .total_cmp(&b.start)
            .then(b.end.total_cmp(&a.end))
            .then(a.kind.is_leaf().cmp(&b.kind.is_leaf()))
    });

    let root = format!("rank_{rank}");
    let mut open: Vec<OpenFrame> = Vec::new();
    let mut frames: Vec<String> = vec![root];

    let close_until = |open: &mut Vec<OpenFrame>,
                       frames: &mut Vec<String>,
                       stacks: &mut BTreeMap<String, u64>,
                       start: f64,
                       end: f64| {
        while let Some(top) = open.last() {
            // Still containing the incoming interval? Keep it open.
            if start >= top.record.start && end <= top.record.end {
                break;
            }
            let top = open.pop().unwrap();
            let self_time = top.record.duration() - top.covered;
            add(stacks, frames, weight_ns(self_time));
            frames.pop();
        }
    };

    for r in ordered {
        if matches!(r.kind.label(), "rank-death" | "heartbeat" | "slo-alert") {
            // Instant events have no duration to attribute; SLO alert
            // intervals describe the schedule without occupying the
            // device, so folding them in would misnest real work.
            continue;
        }
        close_until(&mut open, &mut frames, stacks, r.start, r.end);
        if let Some(top) = open.last_mut() {
            top.covered += r.duration();
        }
        if r.kind.is_leaf() {
            frames.push(frame(r.kind.label()));
            add(stacks, &frames, weight_ns(r.duration()));
            frames.pop();
        } else {
            frames.push(frame(r.kind.label()));
            open.push(OpenFrame {
                record: r,
                covered: 0.0,
            });
        }
    }
    // Flush whatever is still open at end of trace.
    close_until(&mut open, &mut frames, stacks, f64::INFINITY, f64::INFINITY);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::TraceRecorder;
    use summagen_comm::span::{
        CollectiveOp, EventSink, MsgOutcome, SpanKind, SpanRecord, StageLabel,
    };

    fn span(rank: usize, start: f64, end: f64, kind: SpanKind) -> SpanRecord {
        SpanRecord {
            rank,
            start,
            end,
            kind,
        }
    }

    fn send(rank: usize, start: f64, end: f64) -> SpanRecord {
        span(
            rank,
            start,
            end,
            SpanKind::Send {
                dst: 1,
                tag: 0,
                bytes: 64,
                seq: 0,
                outcome: MsgOutcome::Delivered,
            },
        )
    }

    #[test]
    fn leaves_nest_under_enclosing_stage_and_collective() {
        let rec = TraceRecorder::new(1);
        // Stage [0,10] > collective [1,5] > send [2,3]; gemm [6,9] sits
        // directly under the stage. Spans arrive in end order, as the
        // runtime emits them.
        rec.record(send(0, 2.0, 3.0));
        rec.record(span(
            0,
            1.0,
            5.0,
            SpanKind::Collective {
                op: CollectiveOp::Bcast,
                root: 0,
                comm_size: 3,
            },
        ));
        rec.record(span(
            0,
            6.0,
            9.0,
            SpanKind::Gemm {
                m: 4,
                n: 4,
                k: 4,
                flops: 128.0,
                kernel_ns: 0,
            },
        ));
        rec.record(span(
            0,
            0.0,
            10.0,
            SpanKind::Stage {
                stage: StageLabel::HorizontalA,
            },
        ));
        let folded = folded_stacks(&rec.finish());
        let lines: Vec<&str> = folded.lines().collect();
        assert!(lines.contains(&"rank_0;horizontal-a;bcast;send 1000000000"));
        // Collective self time: 4 s total - 1 s send.
        assert!(lines.contains(&"rank_0;horizontal-a;bcast 3000000000"));
        assert!(lines.contains(&"rank_0;horizontal-a;gemm 3000000000"));
        // Stage self time: 10 - (4 collective + 3 gemm) = 3 s.
        assert!(lines.contains(&"rank_0;horizontal-a 3000000000"));
        assert_eq!(lines.len(), 4);
    }

    #[test]
    fn orphan_leaves_attach_to_the_rank_root() {
        let rec = TraceRecorder::new(2);
        rec.record(send(1, 0.0, 2.0));
        rec.record(send(1, 3.0, 4.0)); // same stack: weights aggregate
        rec.record(span(0, 0.0, 0.0, SpanKind::RankDeath { cause: "panic" }));
        let folded = folded_stacks(&rec.finish());
        assert_eq!(folded, "rank_1;send 3000000000\n");
    }

    #[test]
    fn empty_trace_folds_to_empty_string() {
        let rec = TraceRecorder::new(3);
        assert_eq!(folded_stacks(&rec.finish()), "");
    }

    #[test]
    fn deterministic_across_recording_orders() {
        // Same spans, different arrival order: identical output.
        let a = TraceRecorder::new(1);
        let b = TraceRecorder::new(1);
        let stage = span(
            0,
            0.0,
            4.0,
            SpanKind::Stage {
                stage: StageLabel::LocalCompute,
            },
        );
        let s1 = send(0, 0.0, 1.0);
        let s2 = send(0, 2.0, 3.0);
        for r in [&s1, &s2, &stage] {
            a.record(r.clone());
        }
        for r in [&stage, &s2, &s1] {
            b.record(r.clone());
        }
        assert_eq!(folded_stacks(&a.finish()), folded_stacks(&b.finish()));
    }
}
