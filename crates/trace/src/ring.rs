//! A lock-free single-producer ring buffer for span records.
//!
//! Each rank thread owns exactly one ring (see
//! [`crate::recorder::TraceRecorder`]): only that thread ever writes, so
//! the write path is a plain slot store plus one atomic counter bump —
//! no CAS loops, no locks, nothing that could perturb the schedule being
//! measured. When the ring fills it overwrites the *oldest* entries and
//! counts how many were lost, so a bounded recorder degrades to "most
//! recent window" instead of failing.
//!
//! Readers (`drain`) run only after the producing thread has been joined;
//! the `Release` store on the write counter paired with the reader's
//! `Acquire` load — and, in practice, the stronger happens-before edge
//! the thread join itself provides — makes every written slot visible.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU64, Ordering};

/// Fixed-capacity overwrite-oldest ring written by exactly one thread.
///
/// `Sync` is asserted manually: the safety argument is the single-writer
/// discipline documented on [`RingBuffer::push`] plus join-synchronized
/// reads ([`RingBuffer::drain`]).
pub struct RingBuffer<T> {
    slots: Box<[UnsafeCell<Option<T>>]>,
    /// Total values ever pushed (not an index); `written % capacity` is
    /// the next slot. Stored with `Release` so a reader that `Acquire`s
    /// it sees every slot the count covers.
    written: AtomicU64,
}

// SAFETY: `push` is documented to be called from a single producer
// thread per ring, and `drain` only after that producer has stopped
// (joined). Under that protocol no slot is accessed concurrently.
unsafe impl<T: Send> Sync for RingBuffer<T> {}

impl<T> RingBuffer<T> {
    /// Creates a ring holding at most `capacity` values.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring buffer capacity must be positive");
        let slots: Vec<UnsafeCell<Option<T>>> =
            (0..capacity).map(|_| UnsafeCell::new(None)).collect();
        Self {
            slots: slots.into_boxed_slice(),
            written: AtomicU64::new(0),
        }
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Appends a value, overwriting the oldest entry when full.
    ///
    /// # Safety contract (enforced by the caller, not the compiler)
    /// Must only ever be called from one thread per ring — the recorder
    /// guarantees this by giving each rank its own ring and the comm
    /// layer by emitting a rank's spans only from that rank's thread.
    pub fn push(&self, value: T) {
        let n = self.written.load(Ordering::Relaxed);
        let idx = (n % self.slots.len() as u64) as usize;
        // SAFETY: single-producer discipline (see above) means no other
        // thread reads or writes this slot until after we bump `written`
        // and the producer thread is joined.
        unsafe {
            *self.slots[idx].get() = Some(value);
        }
        self.written.store(n + 1, Ordering::Release);
    }

    /// Total values ever pushed, including any that were overwritten.
    pub fn pushed(&self) -> u64 {
        self.written.load(Ordering::Acquire)
    }

    /// How many values were lost to overwriting.
    pub fn dropped(&self) -> u64 {
        self.pushed().saturating_sub(self.slots.len() as u64)
    }

    /// Clones out the surviving values, oldest first, without consuming
    /// them.
    ///
    /// # Safety contract (enforced by the caller, not the compiler)
    /// Must only be called after the producer thread has stopped pushing
    /// and been joined (the recorder reads traces only after
    /// `Universe::run`/`try_run` returns, which joins every rank thread).
    pub fn snapshot(&self) -> Vec<T>
    where
        T: Clone,
    {
        let n = self.written.load(Ordering::Acquire);
        let cap = self.slots.len() as u64;
        let kept = n.min(cap);
        let mut out = Vec::with_capacity(kept as usize);
        for i in 0..kept {
            let idx = ((n - kept + i) % cap) as usize;
            // SAFETY: quiescence contract above — no concurrent writer.
            if let Some(v) = unsafe { (*self.slots[idx].get()).clone() } {
                out.push(v);
            }
        }
        out
    }

    /// Removes and returns the surviving values, oldest first.
    ///
    /// Requires exclusive access (`&mut self`), which the recorder obtains
    /// only after every producer thread has been joined — that join is the
    /// synchronization point making all writes visible here.
    pub fn drain(&mut self) -> Vec<T> {
        let n = self.written.load(Ordering::Acquire);
        let cap = self.slots.len() as u64;
        let kept = n.min(cap);
        let mut out = Vec::with_capacity(kept as usize);
        for i in 0..kept {
            // Oldest surviving entry is at `n - kept`, then in push order.
            let idx = ((n - kept + i) % cap) as usize;
            // SAFETY: `&mut self` gives exclusive access to every slot.
            if let Some(v) = unsafe { (*self.slots[idx].get()).take() } {
                out.push(v);
            }
        }
        out
    }
}

impl<T> std::fmt::Debug for RingBuffer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RingBuffer")
            .field("capacity", &self.capacity())
            .field("pushed", &self.pushed())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_then_drain_in_order() {
        let mut ring = RingBuffer::new(8);
        for i in 0..5 {
            ring.push(i);
        }
        assert_eq!(ring.pushed(), 5);
        assert_eq!(ring.dropped(), 0);
        assert_eq!(ring.drain(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn overflow_keeps_most_recent_window() {
        let mut ring = RingBuffer::new(4);
        for i in 0..10 {
            ring.push(i);
        }
        assert_eq!(ring.pushed(), 10);
        assert_eq!(ring.dropped(), 6);
        assert_eq!(ring.drain(), vec![6, 7, 8, 9]);
    }

    #[test]
    fn snapshot_does_not_consume() {
        let mut ring = RingBuffer::new(4);
        ring.push(7);
        ring.push(8);
        assert_eq!(ring.snapshot(), vec![7, 8]);
        assert_eq!(ring.snapshot(), vec![7, 8]);
        assert_eq!(ring.drain(), vec![7, 8]);
    }

    #[test]
    fn drain_empties_the_ring() {
        let mut ring = RingBuffer::new(4);
        ring.push(1);
        assert_eq!(ring.drain(), vec![1]);
        assert_eq!(ring.drain(), Vec::<i32>::new());
    }

    #[test]
    fn exact_fill_drops_nothing() {
        let mut ring = RingBuffer::new(3);
        for i in 0..3 {
            ring.push(i);
        }
        assert_eq!(ring.dropped(), 0);
        assert_eq!(ring.drain(), vec![0, 1, 2]);
    }

    #[test]
    fn many_full_wraps_keep_newest_window() {
        // 25 complete revolutions plus a partial one: the survivors must
        // be exactly the last `capacity` values, in push order, with the
        // drop counter accounting for everything else.
        let mut ring = RingBuffer::new(4);
        for i in 0..103 {
            ring.push(i);
        }
        assert_eq!(ring.pushed(), 103);
        assert_eq!(ring.dropped(), 99);
        assert_eq!(ring.snapshot(), vec![99, 100, 101, 102]);
        assert_eq!(ring.drain(), vec![99, 100, 101, 102]);
    }

    #[test]
    fn snapshot_is_stable_across_wraps() {
        let ring = RingBuffer::new(3);
        for i in 0..7 {
            ring.push(i);
            // After every push the snapshot is the newest ≤3 values.
            let expect: Vec<i32> = ((i - 2).max(0)..=i).collect();
            assert_eq!(ring.snapshot(), expect, "after push {i}");
        }
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        RingBuffer::<i32>::new(0);
    }

    #[test]
    fn cross_thread_visibility_after_join() {
        let ring = std::sync::Arc::new(RingBuffer::new(1024));
        let producer = {
            let ring = std::sync::Arc::clone(&ring);
            std::thread::spawn(move || {
                for i in 0..1000 {
                    ring.push(i);
                }
            })
        };
        producer.join().unwrap();
        let mut ring = std::sync::Arc::try_unwrap(ring).unwrap();
        assert_eq!(ring.drain().len(), 1000);
    }
}
