//! Chrome/Perfetto trace-event export.
//!
//! Emits the legacy JSON trace-event format, which
//! [ui.perfetto.dev](https://ui.perfetto.dev) and `chrome://tracing`
//! both load directly. Timestamps are the runtime's *virtual* clock
//! (microseconds), so the rendered timeline is the Hockney-model
//! schedule, not the wall-clock of the host that happened to replay it.
//!
//! Layout: one process (`pid` 0) per trace, two threads per rank —
//! `tid = 2·rank` carries the leaf ops (sends, recvs, GEMMs) and
//! `tid = 2·rank + 1` the enclosing collective/stage annotations, so
//! overlapping annotation spans never distort the op track. Rank deaths
//! are instant events on the op track.

use summagen_comm::span::SpanKind;

use crate::recorder::{RecordedTrace, TraceSpan};

/// Escapes a string for inclusion in a JSON string literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn us(seconds: f64) -> f64 {
    seconds * 1e6
}

fn event_json(ts: &TraceSpan) -> String {
    let r = &ts.record;
    let (tid, cat, args) = match &r.kind {
        SpanKind::Send {
            dst,
            tag,
            bytes,
            seq,
            outcome,
        } => (
            r.rank * 2,
            "comm",
            format!(
                "{{\"dst\":{dst},\"tag\":{tag},\"bytes\":{bytes},\"seq\":{seq},\"outcome\":\"{}\"}}",
                outcome.label()
            ),
        ),
        SpanKind::Recv {
            src,
            tag,
            bytes,
            seq,
        } => (
            r.rank * 2,
            "comm",
            format!("{{\"src\":{src},\"tag\":{tag},\"bytes\":{bytes},\"seq\":{seq}}}"),
        ),
        SpanKind::Gemm {
            m,
            n,
            k,
            flops,
            kernel_ns,
        } => (
            r.rank * 2,
            "compute",
            format!("{{\"m\":{m},\"n\":{n},\"k\":{k},\"flops\":{flops},\"kernel_ns\":{kernel_ns}}}"),
        ),
        SpanKind::Collective {
            op,
            root,
            comm_size,
        } => (
            r.rank * 2 + 1,
            "collective",
            format!(
                "{{\"op\":\"{}\",\"root\":{root},\"comm_size\":{comm_size}}}",
                op.label()
            ),
        ),
        SpanKind::Stage { stage } => (
            r.rank * 2 + 1,
            "stage",
            format!("{{\"stage\":\"{}\"}}", stage.label()),
        ),
        // ABFT resilience work is a leaf op: it shares the op track so
        // verify/checkpoint time visibly tiles against sends and GEMMs.
        SpanKind::Abft { op, step, elems } => (
            r.rank * 2,
            "abft",
            format!("{{\"op\":\"{}\",\"step\":{step},\"elems\":{elems}}}", op.label()),
        ),
        // Retransmissions are leaf comm work: they tile on the op track
        // so the ARQ's cost is visible against first-copy sends.
        SpanKind::Retransmit {
            dst,
            tag,
            seq,
            attempt,
        } => (
            r.rank * 2,
            "comm",
            format!("{{\"dst\":{dst},\"tag\":{tag},\"seq\":{seq},\"attempt\":{attempt}}}"),
        ),
        SpanKind::RankDeath { cause } => {
            // Instant event ("i"), thread-scoped.
            return format!(
                "{{\"name\":\"rank-death\",\"cat\":\"fault\",\"ph\":\"i\",\"s\":\"t\",\
                 \"ts\":{},\"pid\":0,\"tid\":{},\"args\":{{\"cause\":\"{}\"}}}}",
                us(r.start),
                r.rank * 2,
                esc(cause)
            );
        }
        // Scheduler dispatches are leaf occupancy on the op track: on a
        // schedule timeline (one "rank" per pool device) they tile each
        // device's busy time.
        SpanKind::Sched {
            job,
            n,
            batch,
            jobs,
            policy,
        } => (
            r.rank * 2,
            "sched",
            format!(
                "{{\"job\":{job},\"n\":{n},\"batch\":{batch},\"jobs\":{jobs},\"policy\":\"{}\"}}",
                esc(policy)
            ),
        ),
        // Quarantine intervals ride the phases track: they annotate a
        // device's forced idleness and must not tile against the Sched
        // occupancy spans on the op track.
        SpanKind::Quarantine { failures, opens } => (
            r.rank * 2 + 1,
            "quarantine",
            format!("{{\"failures\":{failures},\"opens\":{opens}}}"),
        ),
        // SLO alert intervals also ride the phases track: they annotate
        // the schedule (a tenant's burn windows were hot) without
        // occupying any device.
        SpanKind::SloAlert {
            tenant,
            slo,
            burn_fast,
            burn_slow,
        } => (
            r.rank * 2 + 1,
            "slo",
            format!(
                "{{\"tenant\":{tenant},\"slo\":\"{}\",\"burn_fast\":{burn_fast},\
                 \"burn_slow\":{burn_slow}}}",
                esc(slo)
            ),
        ),
        // Recovery intervals ride the phases track: they annotate the
        // service's downtime window (journal replay + resume) without
        // occupying any device.
        SpanKind::Recover {
            epoch,
            records,
            recovered_jobs,
            torn_bytes,
        } => (
            r.rank * 2 + 1,
            "recover",
            format!(
                "{{\"epoch\":{epoch},\"records\":{records},\"recovered_jobs\":{recovered_jobs},\
                 \"torn_bytes\":{torn_bytes}}}"
            ),
        ),
        SpanKind::Heartbeat { seq } => {
            // Zero-duration liveness tick: an instant event on the
            // phases track, out of the way of real comm/compute spans.
            return format!(
                "{{\"name\":\"heartbeat\",\"cat\":\"liveness\",\"ph\":\"i\",\"s\":\"t\",\
                 \"ts\":{},\"pid\":0,\"tid\":{},\"args\":{{\"seq\":{seq}}}}}",
                us(r.start),
                r.rank * 2 + 1,
            );
        }
    };
    format!(
        "{{\"name\":\"{}\",\"cat\":\"{cat}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
         \"pid\":0,\"tid\":{tid},\"args\":{args}}}",
        esc(r.kind.label()),
        us(r.start),
        us(r.duration()),
    )
}

/// Serializes a trace to a Perfetto-loadable JSON string.
pub fn perfetto_json(trace: &RecordedTrace, title: &str) -> String {
    let mut events: Vec<String> = Vec::with_capacity(trace.len() + 2 * trace.nranks + 1);
    events.push(format!(
        "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\
         \"args\":{{\"name\":\"{}\"}}}}",
        esc(title)
    ));
    for rank in 0..trace.nranks {
        events.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{},\
             \"args\":{{\"name\":\"rank {rank} ops\"}}}}",
            rank * 2
        ));
        events.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{},\
             \"args\":{{\"name\":\"rank {rank} phases\"}}}}",
            rank * 2 + 1
        ));
        // Keep rank tracks in rank order in the Perfetto UI.
        for tid_off in 0..2 {
            events.push(format!(
                "{{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":0,\"tid\":{},\
                 \"args\":{{\"sort_index\":{}}}}}",
                rank * 2 + tid_off,
                rank * 2 + tid_off
            ));
        }
    }
    events.extend(trace.iter().map(event_json));
    format!(
        "{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n{}\n]}}\n",
        events.join(",\n")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::TraceRecorder;
    use summagen_comm::span::{EventSink, MsgOutcome, SpanRecord};

    #[test]
    fn export_contains_tracks_and_events() {
        let rec = TraceRecorder::new(2);
        rec.record(SpanRecord {
            rank: 0,
            start: 0.0,
            end: 1.5e-3,
            kind: SpanKind::Send {
                dst: 1,
                tag: 7,
                bytes: 4096,
                seq: 0,
                outcome: MsgOutcome::Delivered,
            },
        });
        rec.record(SpanRecord {
            rank: 1,
            start: 2.0e-3,
            end: 2.0e-3,
            kind: SpanKind::RankDeath { cause: "panic" },
        });
        rec.record(SpanRecord {
            rank: 0,
            start: 3.0e-3,
            end: 3.1e-3,
            kind: SpanKind::Abft {
                op: summagen_comm::span::AbftLabel::Verify,
                step: 4,
                elems: 256,
            },
        });
        let json = perfetto_json(&rec.finish(), "unit test");
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"name\":\"abft-verify\""));
        assert!(json.contains("\"cat\":\"abft\""));
        assert!(json.contains("\"step\":4"));
        assert!(json.contains("\"name\":\"rank 0 ops\""));
        assert!(json.contains("\"name\":\"rank 1 phases\""));
        // 1.5 ms -> 1500 µs duration on the sender's op track.
        assert!(json.contains("\"dur\":1500"));
        assert!(json.contains("\"bytes\":4096"));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"cause\":\"panic\""));
        // Balanced braces/brackets — cheap structural sanity without a
        // JSON parser dependency.
        let balance = |open: char, close: char| {
            json.chars().filter(|&c| c == open).count()
                == json.chars().filter(|&c| c == close).count()
        };
        assert!(balance('{', '}'));
        assert!(balance('[', ']'));
    }

    #[test]
    fn escaping_handles_quotes() {
        assert_eq!(esc("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn empty_trace_exports_valid_skeleton() {
        // A recorder that saw no events still produces a loadable file:
        // process/thread metadata for every rank, but no duration events.
        let rec = TraceRecorder::new(2);
        let json = perfetto_json(&rec.finish(), "empty run");
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"name\":\"empty run\""));
        assert!(json.contains("\"name\":\"rank 0 ops\""));
        assert!(json.contains("\"name\":\"rank 1 phases\""));
        assert!(!json.contains("\"ph\":\"X\""));
        assert!(!json.contains("\"ph\":\"i\""));
        let balance = |open: char, close: char| {
            json.chars().filter(|&c| c == open).count()
                == json.chars().filter(|&c| c == close).count()
        };
        assert!(balance('{', '}'));
        assert!(balance('[', ']'));
    }
}
