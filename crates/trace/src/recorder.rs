//! The [`TraceRecorder`]: the canonical [`EventSink`] — one lock-free
//! ring per rank, wall-clock stamping, and extraction into a
//! [`RecordedTrace`] once the run has finished.

use std::sync::Arc;
use std::time::Instant;

use summagen_comm::span::{EventSink, SpanKind, SpanRecord};

use crate::ring::RingBuffer;

/// Default per-rank capacity: 64Ki spans ≈ a few MB per rank, far above
/// what any paper-shape run emits.
pub const DEFAULT_RING_CAPACITY: usize = 1 << 16;

/// One recorded span plus its wall-clock stamp.
///
/// The virtual interval lives in [`TraceSpan::record`]; `wall_ns` is when
/// (in real nanoseconds since the recorder was created) the event was
/// *recorded*. Wall time is inherently nondeterministic, which is why it
/// is kept beside — not inside — the canonical event data and excluded
/// from [`RecordedTrace::canonical_bytes`].
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSpan {
    /// The virtual-time event as reported by the runtime.
    pub record: SpanRecord,
    /// Wall-clock nanoseconds since the recorder's epoch.
    pub wall_ns: u64,
}

/// Collects every span of a run into per-rank ring buffers.
///
/// Install with `Universe::with_event_sink(recorder.clone())`, run, then
/// call [`TraceRecorder::finish`]. The record path is wait-free: a slot
/// store and one atomic increment per event (see [`RingBuffer`]); ranks
/// never contend because each writes only its own ring.
pub struct TraceRecorder {
    rings: Vec<RingBuffer<TraceSpan>>,
    epoch: Instant,
}

impl TraceRecorder {
    /// Recorder for `nranks` ranks with the default per-rank capacity.
    pub fn new(nranks: usize) -> Arc<Self> {
        Self::with_capacity(nranks, DEFAULT_RING_CAPACITY)
    }

    /// Recorder with an explicit per-rank ring capacity. When a rank
    /// emits more spans than fit, the oldest are overwritten and counted
    /// in [`RecordedTrace::dropped`].
    pub fn with_capacity(nranks: usize, capacity: usize) -> Arc<Self> {
        assert!(nranks > 0, "recorder needs at least one rank");
        Arc::new(Self {
            rings: (0..nranks).map(|_| RingBuffer::new(capacity)).collect(),
            epoch: Instant::now(),
        })
    }

    /// Number of ranks this recorder covers.
    pub fn nranks(&self) -> usize {
        self.rings.len()
    }

    /// Extracts everything recorded so far into a [`RecordedTrace`].
    ///
    /// Call only after the traced run has returned (`Universe::run` /
    /// `try_run` join every rank thread, which is the synchronization
    /// point the lock-free rings rely on).
    pub fn finish(&self) -> RecordedTrace {
        let spans: Vec<Vec<TraceSpan>> = self.rings.iter().map(|r| r.snapshot()).collect();
        let dropped = self.rings.iter().map(|r| r.dropped()).sum();
        RecordedTrace {
            nranks: self.rings.len(),
            spans,
            dropped,
        }
    }
}

impl EventSink for TraceRecorder {
    fn record(&self, span: SpanRecord) {
        let wall_ns = self.epoch.elapsed().as_nanos() as u64;
        let rank = span.rank;
        assert!(
            rank < self.rings.len(),
            "span from rank {rank} but recorder covers {} ranks",
            self.rings.len()
        );
        self.rings[rank].push(TraceSpan {
            record: span,
            wall_ns,
        });
    }
}

impl std::fmt::Debug for TraceRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceRecorder")
            .field("nranks", &self.rings.len())
            .finish()
    }
}

/// A finished trace: per-rank span lists in program order.
#[derive(Debug, Clone, PartialEq)]
pub struct RecordedTrace {
    /// Number of ranks in the traced universe.
    pub nranks: usize,
    /// `spans[r]` is rank `r`'s events in the order it emitted them
    /// (each span is recorded at its end, so end times are
    /// non-decreasing within a rank).
    pub spans: Vec<Vec<TraceSpan>>,
    /// Spans lost to ring-buffer overwrite, summed over ranks.
    pub dropped: u64,
}

impl RecordedTrace {
    /// Total spans across all ranks.
    pub fn len(&self) -> usize {
        self.spans.iter().map(Vec::len).sum()
    }

    /// Whether no spans were recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.iter().all(Vec::is_empty)
    }

    /// Iterates all spans, rank by rank in program order.
    pub fn iter(&self) -> impl Iterator<Item = &TraceSpan> {
        self.spans.iter().flatten()
    }

    /// The canonical byte serialization of the *deterministic* part of
    /// the trace: rank, virtual start/end (exact `f64` bits), and every
    /// event field except the wall-clock domain (`wall_ns`, and a GEMM's
    /// measured `kernel_ns`). Two runs with the same shape, seed, and
    /// cost model must produce byte-identical output — the determinism
    /// guarantee the fault-injection replay machinery relies on.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 * self.len() + 16);
        push_u64(&mut out, self.nranks as u64);
        for rank_spans in &self.spans {
            push_u64(&mut out, rank_spans.len() as u64);
            for ts in rank_spans {
                let r = &ts.record;
                push_u64(&mut out, r.rank as u64);
                push_u64(&mut out, r.start.to_bits());
                push_u64(&mut out, r.end.to_bits());
                push_kind(&mut out, &r.kind);
            }
        }
        out
    }
}

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_kind(out: &mut Vec<u8>, kind: &SpanKind) {
    match kind {
        SpanKind::Send {
            dst,
            tag,
            bytes,
            seq,
            outcome,
        } => {
            out.push(0);
            push_u64(out, *dst as u64);
            push_u64(out, *tag);
            push_u64(out, *bytes);
            push_u64(out, *seq);
            out.extend_from_slice(outcome.label().as_bytes());
        }
        SpanKind::Recv {
            src,
            tag,
            bytes,
            seq,
        } => {
            out.push(1);
            push_u64(out, *src as u64);
            push_u64(out, *tag);
            push_u64(out, *bytes);
            push_u64(out, *seq);
        }
        SpanKind::Collective {
            op,
            root,
            comm_size,
        } => {
            out.push(2);
            out.extend_from_slice(op.label().as_bytes());
            push_u64(out, *root as u64);
            push_u64(out, *comm_size as u64);
        }
        // kernel_ns is wall-clock domain: deliberately excluded.
        SpanKind::Gemm { m, n, k, flops, .. } => {
            out.push(3);
            push_u64(out, *m as u64);
            push_u64(out, *n as u64);
            push_u64(out, *k as u64);
            push_u64(out, flops.to_bits());
        }
        SpanKind::Stage { stage } => {
            out.push(4);
            out.extend_from_slice(stage.label().as_bytes());
        }
        SpanKind::RankDeath { cause } => {
            out.push(5);
            out.extend_from_slice(cause.as_bytes());
        }
        SpanKind::Abft { op, step, elems } => {
            out.push(6);
            out.extend_from_slice(op.label().as_bytes());
            push_u64(out, *step);
            push_u64(out, *elems);
        }
        SpanKind::Retransmit {
            dst,
            tag,
            seq,
            attempt,
        } => {
            out.push(7);
            push_u64(out, *dst as u64);
            push_u64(out, *tag);
            push_u64(out, *seq);
            push_u64(out, u64::from(*attempt));
        }
        // Heartbeats are wall-clock-paced: their *presence* is
        // deterministic only in aggregate, so only the sequence number
        // participates; traces meant for byte-identical replay should
        // run without a heartbeat detector.
        SpanKind::Heartbeat { seq } => {
            out.push(8);
            push_u64(out, *seq);
        }
        SpanKind::Sched {
            job,
            n,
            batch,
            jobs,
            policy,
        } => {
            out.push(9);
            push_u64(out, *job);
            push_u64(out, *n);
            push_u64(out, *batch);
            push_u64(out, *jobs);
            out.extend_from_slice(policy.as_bytes());
        }
        SpanKind::Quarantine { failures, opens } => {
            out.push(10);
            push_u64(out, *failures);
            push_u64(out, *opens);
        }
        SpanKind::SloAlert {
            tenant,
            slo,
            burn_fast,
            burn_slow,
        } => {
            out.push(11);
            push_u64(out, *tenant);
            out.extend_from_slice(slo.as_bytes());
            push_u64(out, burn_fast.to_bits());
            push_u64(out, burn_slow.to_bits());
        }
        SpanKind::Recover {
            epoch,
            records,
            recovered_jobs,
            torn_bytes,
        } => {
            out.push(12);
            push_u64(out, *epoch);
            push_u64(out, *records);
            push_u64(out, *recovered_jobs);
            push_u64(out, *torn_bytes);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use summagen_comm::span::MsgOutcome;

    fn send_span(rank: usize, start: f64, end: f64, seq: u64) -> SpanRecord {
        SpanRecord {
            rank,
            start,
            end,
            kind: SpanKind::Send {
                dst: 1,
                tag: 0,
                bytes: 80,
                seq,
                outcome: MsgOutcome::Delivered,
            },
        }
    }

    #[test]
    fn records_land_in_the_right_rank_ring() {
        let rec = TraceRecorder::new(3);
        rec.record(send_span(2, 0.0, 1.0, 0));
        rec.record(send_span(0, 0.0, 0.5, 0));
        let trace = rec.finish();
        assert_eq!(trace.spans[0].len(), 1);
        assert_eq!(trace.spans[1].len(), 0);
        assert_eq!(trace.spans[2].len(), 1);
        assert_eq!(trace.len(), 2);
        assert_eq!(trace.dropped, 0);
    }

    #[test]
    fn canonical_bytes_ignore_wall_clock() {
        let a = TraceRecorder::new(1);
        a.record(send_span(0, 0.0, 1.0, 0));
        std::thread::sleep(std::time::Duration::from_millis(2));
        let b = TraceRecorder::new(1);
        b.record(send_span(0, 0.0, 1.0, 0));
        let (ta, tb) = (a.finish(), b.finish());
        assert_ne!(ta.spans[0][0].wall_ns, 0);
        assert_eq!(ta.canonical_bytes(), tb.canonical_bytes());
    }

    #[test]
    fn canonical_bytes_distinguish_different_events() {
        let a = TraceRecorder::new(1);
        a.record(send_span(0, 0.0, 1.0, 0));
        let b = TraceRecorder::new(1);
        b.record(send_span(0, 0.0, 1.0, 1)); // different seq
        assert_ne!(a.finish().canonical_bytes(), b.finish().canonical_bytes());
    }

    #[test]
    fn canonical_bytes_ignore_gemm_kernel_ns() {
        let gemm = |kernel_ns| SpanRecord {
            rank: 0,
            start: 0.0,
            end: 1.0,
            kind: SpanKind::Gemm {
                m: 4,
                n: 4,
                k: 4,
                flops: 128.0,
                kernel_ns,
            },
        };
        let a = TraceRecorder::new(1);
        a.record(gemm(123));
        let b = TraceRecorder::new(1);
        b.record(gemm(456));
        assert_eq!(a.finish().canonical_bytes(), b.finish().canonical_bytes());
    }

    #[test]
    fn canonical_bytes_cover_abft_spans() {
        use summagen_comm::span::AbftLabel;
        let abft = |op, step| SpanRecord {
            rank: 0,
            start: 0.0,
            end: 1.0,
            kind: SpanKind::Abft {
                op,
                step,
                elems: 64,
            },
        };
        let a = TraceRecorder::new(1);
        a.record(abft(AbftLabel::Verify, 2));
        let b = TraceRecorder::new(1);
        b.record(abft(AbftLabel::Verify, 2));
        assert_eq!(a.finish().canonical_bytes(), b.finish().canonical_bytes());
        let c = TraceRecorder::new(1);
        c.record(abft(AbftLabel::Checkpoint, 2));
        assert_ne!(a.finish().canonical_bytes(), c.finish().canonical_bytes());
        let d = TraceRecorder::new(1);
        d.record(abft(AbftLabel::Verify, 3)); // different step
        assert_ne!(a.finish().canonical_bytes(), d.finish().canonical_bytes());
    }

    #[test]
    fn overflow_is_counted() {
        let rec = TraceRecorder::with_capacity(1, 4);
        for i in 0..10 {
            rec.record(send_span(0, i as f64, i as f64 + 1.0, i));
        }
        let trace = rec.finish();
        assert_eq!(trace.spans[0].len(), 4);
        assert_eq!(trace.dropped, 6);
    }

    #[test]
    fn wrapped_recorder_keeps_newest_spans_in_program_order() {
        // Fill a rank's ring 25× past capacity: the surviving window must
        // be the most recent spans, still in emit order, and the trace
        // must remain exportable (canonical bytes, len, iter).
        let rec = TraceRecorder::with_capacity(2, 4);
        for i in 0..103 {
            rec.record(send_span(0, i as f64, i as f64 + 1.0, i));
        }
        rec.record(send_span(1, 0.0, 1.0, 0)); // rank 1 untouched by the wrap
        let trace = rec.finish();
        assert_eq!(trace.dropped, 99);
        assert_eq!(trace.spans[0].len(), 4);
        assert_eq!(trace.spans[1].len(), 1);
        let seqs: Vec<u64> = trace.spans[0]
            .iter()
            .map(|ts| match ts.record.kind {
                SpanKind::Send { seq, .. } => seq,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(seqs, vec![99, 100, 101, 102]);
        assert_eq!(trace.len(), 5);
        assert!(!trace.canonical_bytes().is_empty());
    }
}
