//! Causal what-if replay: re-time a recorded trace under virtual
//! interventions and see what the makespan would have been.
//!
//! The critical path (see [`crate::critical_path`]) explains where the
//! time *went*; this module answers the counterfactual — what if
//! communication were free, or device 2 twice as fast? An
//! [`Intervention`] rescales the *service demand* of every matching leaf
//! span, and [`replay`] re-schedules the whole trace through the same
//! happens-before DAG the critical-path pass walks: program order within
//! a rank, plus the cross-rank edge from each `Send` to the `Recv`
//! carrying the same `(src, seq)`.
//!
//! Demand semantics: a leaf's demand is the part of its duration that is
//! *work*, not waiting. For every leaf except `Recv` that is its full
//! duration. A `Recv` span covers the receiver's blocked wait, which is
//! emergent — in the replay the wait is reproduced by the dependency
//! edge (`recv` cannot finish before the matching `send`), so the
//! recv's own demand is only the tail of its interval past the sender's
//! original finish (delivery/reassembly plus any injected delay).
//! Replaying with no interventions therefore reproduces the recorded
//! schedule: waits re-emerge from the edges, work re-occupies its
//! measured demand.

use std::collections::BTreeMap;

use summagen_comm::span::{SpanKind, SpanRecord};

use crate::recorder::RecordedTrace;

/// Which leaf spans an intervention rescales.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Target {
    /// Every communication leaf: sends, receives, retransmissions.
    Comm,
    /// Every compute leaf: GEMMs (and `Sched` occupancy on schedule
    /// timelines).
    Compute,
    /// Every ABFT resilience leaf.
    Abft,
    /// Communication on one directed link: the `src` rank's sends and
    /// retransmits to `dst`, and the `dst` rank's receives from `src`.
    Link {
        /// Sending global rank.
        src: usize,
        /// Receiving global rank.
        dst: usize,
    },
    /// GEMM spans on one rank — "what if this device were faster".
    DeviceGemm {
        /// The device's global rank.
        rank: usize,
    },
}

impl Target {
    /// Whether `record` is a leaf this target rescales.
    pub fn matches(&self, record: &SpanRecord) -> bool {
        match (self, &record.kind) {
            (Target::Comm, SpanKind::Send { .. })
            | (Target::Comm, SpanKind::Recv { .. })
            | (Target::Comm, SpanKind::Retransmit { .. })
            | (Target::Compute, SpanKind::Gemm { .. })
            | (Target::Compute, SpanKind::Sched { .. })
            | (Target::Abft, SpanKind::Abft { .. }) => true,
            (Target::Link { src, dst }, SpanKind::Send { dst: d, .. })
            | (Target::Link { src, dst }, SpanKind::Retransmit { dst: d, .. }) => {
                record.rank == *src && d == dst
            }
            (Target::Link { src, dst }, SpanKind::Recv { src: s, .. }) => {
                record.rank == *dst && s == src
            }
            (Target::DeviceGemm { rank }, SpanKind::Gemm { .. }) => record.rank == *rank,
            _ => false,
        }
    }

    /// Short human-readable description.
    pub fn describe(&self) -> String {
        match self {
            Target::Comm => "communication".to_string(),
            Target::Compute => "computation".to_string(),
            Target::Abft => "abft".to_string(),
            Target::Link { src, dst } => format!("link {src}->{dst}"),
            Target::DeviceGemm { rank } => format!("device {rank} gemm"),
        }
    }
}

/// One virtual intervention: multiply the service demand of every leaf
/// matching `target` by `factor` (`0` = free, `0.5` = twice as fast,
/// `2` = twice as slow).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Intervention {
    /// Which spans to rescale.
    pub target: Target,
    /// Demand multiplier (must be finite and non-negative).
    pub factor: f64,
}

impl Intervention {
    /// The intervention that makes `target` cost nothing.
    pub fn free(target: Target) -> Self {
        Self {
            target,
            factor: 0.0,
        }
    }

    /// The intervention that makes `target` `speedup`× faster.
    pub fn speedup(target: Target, speedup: f64) -> Self {
        assert!(speedup > 0.0, "speedup must be positive");
        Self {
            target,
            factor: 1.0 / speedup,
        }
    }
}

/// The re-timed schedule a [`replay`] produced.
#[derive(Debug, Clone, PartialEq)]
pub struct Replay {
    /// Latest re-timed leaf end over all ranks (0 for an empty trace).
    pub makespan: f64,
    /// Per-rank end of the last leaf after re-timing.
    pub per_rank_end: Vec<f64>,
    /// Leaves whose demand at least one intervention rescaled.
    pub scaled_leaves: usize,
    /// Total leaves replayed.
    pub leaves: usize,
}

impl Replay {
    /// Fractional makespan reduction versus `baseline` (negative when
    /// the intervention made things worse).
    pub fn reduction_vs(&self, baseline: f64) -> f64 {
        if baseline > 0.0 {
            1.0 - self.makespan / baseline
        } else {
            0.0
        }
    }
}

/// Re-times `trace` with every leaf's demand rescaled by the matching
/// `interventions` (factors compose multiplicatively when several match
/// one leaf), propagating the new times through the happens-before DAG.
///
/// Each rank's leaves keep their program order; a leaf starts at its
/// rank's previous finish (the first leaf keeps its original start, so
/// untraced setup offsets survive), a `Recv` additionally cannot finish
/// before the matching `Send`'s re-timed end plus the recv's own scaled
/// demand. Deterministic: the worklist visits ranks in index order.
pub fn replay(trace: &RecordedTrace, interventions: &[Intervention]) -> Replay {
    for iv in interventions {
        assert!(
            iv.factor.is_finite() && iv.factor >= 0.0,
            "intervention factor must be finite and non-negative, got {}",
            iv.factor
        );
    }
    // Leaf events per rank, program order (end times non-decreasing).
    let leaves: Vec<Vec<&SpanRecord>> = trace
        .spans
        .iter()
        .map(|spans| {
            spans
                .iter()
                .map(|ts| &ts.record)
                .filter(|r| r.kind.is_leaf())
                .collect()
        })
        .collect();
    // (sender rank, seq) -> program-order index of the Send.
    let mut send_at: BTreeMap<(usize, u64), usize> = BTreeMap::new();
    for (rank, rank_leaves) in leaves.iter().enumerate() {
        for (i, r) in rank_leaves.iter().enumerate() {
            if let SpanKind::Send { seq, .. } = r.kind {
                send_at.insert((rank, seq), i);
            }
        }
    }

    // Scaled demand per leaf. A recv's raw demand excludes the wait the
    // dependency edge will reproduce: everything past the matching
    // send's *original* end (or its own start, whichever is later).
    let mut scaled_leaves = 0usize;
    let demands: Vec<Vec<f64>> = leaves
        .iter()
        .map(|rank_leaves| {
            rank_leaves
                .iter()
                .map(|r| {
                    let raw = match r.kind {
                        SpanKind::Recv { src, seq, .. } => match send_at.get(&(src, seq)) {
                            Some(&si) => (r.end - r.start.max(leaves[src][si].end)).max(0.0),
                            None => r.duration(),
                        },
                        _ => r.duration(),
                    };
                    let mut factor = 1.0;
                    let mut scaled = false;
                    for iv in interventions {
                        if iv.target.matches(r) {
                            factor *= iv.factor;
                            scaled = true;
                        }
                    }
                    if scaled {
                        scaled_leaves += 1;
                    }
                    raw * factor
                })
                .collect()
        })
        .collect();

    // Forward worklist pass: advance each rank while its next leaf's
    // dependency (if any) is already re-timed.
    let nranks = leaves.len();
    let mut new_end: Vec<Vec<f64>> = leaves.iter().map(|l| vec![0.0; l.len()]).collect();
    let mut ptr = vec![0usize; nranks];
    let mut ready: Vec<f64> = leaves
        .iter()
        .map(|l| l.first().map_or(0.0, |r| r.start))
        .collect();
    let total: usize = leaves.iter().map(Vec::len).sum();
    let mut done = 0usize;
    while done < total {
        let mut progressed = false;
        for r in 0..nranks {
            while ptr[r] < leaves[r].len() {
                let i = ptr[r];
                let dep_end = match leaves[r][i].kind {
                    SpanKind::Recv { src, seq, .. } => match send_at.get(&(src, seq)) {
                        Some(&si) if si < ptr[src] => Some(new_end[src][si]),
                        Some(_) => break, // sender not re-timed yet: wait
                        None => None,
                    },
                    _ => None,
                };
                let start = dep_end.map_or(ready[r], |e| ready[r].max(e));
                let end = start + demands[r][i];
                new_end[r][i] = end;
                ready[r] = end;
                ptr[r] = i + 1;
                done += 1;
                progressed = true;
            }
        }
        if !progressed {
            // A cyclic wait is impossible in a well-formed trace (edges
            // only point backwards in time); it can appear when the ring
            // dropped the matching send. Resolve the first stuck recv
            // without its cross edge rather than spin.
            let r = (0..nranks)
                .find(|&r| ptr[r] < leaves[r].len())
                .expect("stuck worklist must have a pending rank");
            let i = ptr[r];
            let end = ready[r] + demands[r][i];
            new_end[r][i] = end;
            ready[r] = end;
            ptr[r] = i + 1;
            done += 1;
        }
    }

    let per_rank_end: Vec<f64> = new_end
        .iter()
        .map(|ends| ends.last().copied().unwrap_or(0.0))
        .collect();
    Replay {
        makespan: per_rank_end.iter().fold(0.0_f64, |a, &b| a.max(b)),
        per_rank_end,
        scaled_leaves,
        leaves: total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{critical_path, metrics};
    use crate::recorder::TraceRecorder;
    use summagen_comm::span::{EventSink, MsgOutcome};

    fn send(rank: usize, dst: usize, start: f64, end: f64, seq: u64) -> SpanRecord {
        SpanRecord {
            rank,
            start,
            end,
            kind: SpanKind::Send {
                dst,
                tag: 0,
                bytes: 64,
                seq,
                outcome: MsgOutcome::Delivered,
            },
        }
    }

    fn recv(rank: usize, src: usize, start: f64, end: f64, seq: u64) -> SpanRecord {
        SpanRecord {
            rank,
            start,
            end,
            kind: SpanKind::Recv {
                src,
                tag: 0,
                bytes: 64,
                seq,
            },
        }
    }

    fn gemm(rank: usize, start: f64, end: f64) -> SpanRecord {
        SpanRecord {
            rank,
            start,
            end,
            kind: SpanKind::Gemm {
                m: 8,
                n: 8,
                k: 8,
                flops: 1024.0,
                kernel_ns: 0,
            },
        }
    }

    /// send(r0) feeds recv(r1) which gates a gemm(r1).
    fn pipeline() -> RecordedTrace {
        let r = TraceRecorder::new(2);
        r.record(send(0, 1, 0.0, 2.0, 0));
        r.record(recv(1, 0, 0.0, 2.0, 0));
        r.record(gemm(1, 2.0, 5.0));
        r.finish()
    }

    #[test]
    fn identity_replay_reproduces_the_recorded_schedule() {
        let trace = pipeline();
        let base = replay(&trace, &[]);
        assert_eq!(base.makespan, metrics(&trace).makespan);
        assert_eq!(base.per_rank_end, vec![2.0, 5.0]);
        assert_eq!(base.leaves, 3);
        assert_eq!(base.scaled_leaves, 0);
    }

    #[test]
    fn comm_free_collapses_to_the_compute_chain() {
        let trace = pipeline();
        let free = replay(&trace, &[Intervention::free(Target::Comm)]);
        // Send and recv cost nothing; the gemm's 3 s remain.
        assert!((free.makespan - 3.0).abs() < 1e-12, "{}", free.makespan);
        assert_eq!(free.scaled_leaves, 2);
        // And it agrees with the critical path's compute content.
        let cp = critical_path(&trace);
        assert!((free.makespan - cp.comp_time).abs() < 1e-12);
    }

    #[test]
    fn comm_scaling_shrinks_the_wire_but_keeps_the_edge() {
        let trace = pipeline();
        let half = replay(&trace, &[Intervention::speedup(Target::Comm, 2.0)]);
        // Send takes 1 s; recv's demand was fully wait, so it finishes
        // with the send; gemm appends its 3 s.
        assert!((half.makespan - 4.0).abs() < 1e-12, "{}", half.makespan);
    }

    #[test]
    fn device_speedup_targets_one_rank_only() {
        let r = TraceRecorder::new(2);
        r.record(gemm(0, 0.0, 4.0));
        r.record(gemm(1, 0.0, 2.0));
        let trace = r.finish();
        let faster = replay(
            &trace,
            &[Intervention::speedup(Target::DeviceGemm { rank: 0 }, 2.0)],
        );
        assert_eq!(faster.per_rank_end, vec![2.0, 2.0]);
        assert_eq!(faster.scaled_leaves, 1);
    }

    #[test]
    fn link_target_matches_both_endpoints() {
        let trace = pipeline();
        let free = replay(
            &trace,
            &[Intervention::free(Target::Link { src: 0, dst: 1 })],
        );
        assert!((free.makespan - 3.0).abs() < 1e-12);
        assert_eq!(free.scaled_leaves, 2);
        // The reverse link matches nothing here.
        let noop = replay(
            &trace,
            &[Intervention::free(Target::Link { src: 1, dst: 0 })],
        );
        assert_eq!(noop.scaled_leaves, 0);
        assert_eq!(noop.makespan, 5.0);
    }

    #[test]
    fn slower_interventions_stretch_the_makespan() {
        let trace = pipeline();
        let slow = replay(
            &trace,
            &[Intervention {
                target: Target::Compute,
                factor: 2.0,
            }],
        );
        assert!((slow.makespan - 8.0).abs() < 1e-12, "{}", slow.makespan);
        assert!(slow.reduction_vs(5.0) < 0.0);
    }

    #[test]
    fn recv_without_matching_send_keeps_its_full_demand() {
        let r = TraceRecorder::new(1);
        // A recv whose send predates tracing: demand is its whole span.
        r.record(recv(0, 0, 1.0, 2.0, 99));
        let trace = r.finish();
        let base = replay(&trace, &[]);
        assert_eq!(base.makespan, 2.0);
    }

    #[test]
    fn empty_trace_replays_to_zero() {
        let trace = TraceRecorder::new(3).finish();
        let base = replay(&trace, &[]);
        assert_eq!(base.makespan, 0.0);
        assert_eq!(base.leaves, 0);
    }

    #[test]
    fn untraced_startup_offset_survives() {
        let r = TraceRecorder::new(1);
        r.record(gemm(0, 1.5, 3.0));
        let trace = r.finish();
        let base = replay(&trace, &[]);
        assert_eq!(base.makespan, 3.0);
    }
}
