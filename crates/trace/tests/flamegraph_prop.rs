//! Property test: folded-stack weights conserve busy time.
//!
//! For arbitrary properly-nested span forests — stages holding leaves
//! and collectives, collectives holding their own leaves, with gaps and
//! uncovered self time everywhere — the sum of all folded-stack weights
//! must equal the total busy time (the summed duration of the outermost
//! spans), because leaf weights plus encloser self times tile each
//! outermost span exactly. Annotation-only spans (SLO alerts, rank
//! deaths) overlap the structure arbitrarily and must not perturb the
//! total.
//!
//! All interval boundaries are integer virtual seconds, so the expected
//! nanosecond total is exact and the assertion is equality, not
//! tolerance.

use proptest::prelude::*;

use summagen_comm::span::{CollectiveOp, EventSink, MsgOutcome, SpanKind, SpanRecord, StageLabel};
use summagen_trace::{folded_stacks, TraceRecorder};

/// One child op inside a stage block: `(pad, width, kind)` with kind
/// 0 = GEMM leaf, 1 = send leaf, 2 = collective encloser (holding a
/// nested send when wide enough), 3 = an SLO-alert annotation that
/// occupies no device time and must be skipped by the fold.
type ChildSpec = (u64, u64, u32);

/// One stage block: `(gap, children, tail_pad)`.
type BlockSpec = (u64, Vec<ChildSpec>, u64);

fn span(rank: usize, start: u64, end: u64, kind: SpanKind) -> SpanRecord {
    SpanRecord {
        rank,
        start: start as f64,
        end: end as f64,
        kind,
    }
}

fn gemm(rank: usize, start: u64, end: u64) -> SpanRecord {
    span(
        rank,
        start,
        end,
        SpanKind::Gemm {
            m: 8,
            n: 8,
            k: 8,
            flops: 1024.0,
            kernel_ns: 0,
        },
    )
}

fn send(rank: usize, start: u64, end: u64) -> SpanRecord {
    span(
        rank,
        start,
        end,
        SpanKind::Send {
            dst: rank + 1,
            tag: 0,
            bytes: 64,
            seq: start,
            outcome: MsgOutcome::Delivered,
        },
    )
}

/// Materialises one rank's blocks into the recorder, returning the
/// rank's busy nanoseconds (the summed outermost stage durations).
fn build_rank(rec: &TraceRecorder, rank: usize, blocks: &[BlockSpec]) -> u64 {
    let mut t = 0u64;
    let mut busy_ns = 0u64;
    for (gap, children, tail_pad) in blocks {
        t += gap;
        let block_start = t;
        for &(pad, w, kind) in children {
            match kind {
                0 => {
                    t += pad;
                    rec.record(gemm(rank, t, t + w));
                    t += w;
                }
                1 => {
                    t += pad;
                    rec.record(send(rank, t, t + w));
                    t += w;
                }
                2 => {
                    t += pad;
                    rec.record(span(
                        rank,
                        t,
                        t + w,
                        SpanKind::Collective {
                            op: CollectiveOp::Bcast,
                            root: 0,
                            comm_size: 3,
                        },
                    ));
                    if w >= 2 {
                        // Nested leaf covering part of the collective;
                        // the rest stays collective self time.
                        rec.record(send(rank, t, t + w - 1));
                    }
                    t += w;
                }
                _ => {
                    // Annotation riding on top of the schedule: spans
                    // device time it does not occupy. No cursor
                    // advance, no busy contribution.
                    rec.record(span(
                        rank,
                        t,
                        t + w,
                        SpanKind::SloAlert {
                            tenant: rank as u64,
                            slo: "latency-p95",
                            burn_fast: 3.0,
                            burn_slow: 2.5,
                        },
                    ));
                }
            }
        }
        t += tail_pad;
        rec.record(span(
            rank,
            block_start,
            t,
            SpanKind::Stage {
                stage: StageLabel::HorizontalA,
            },
        ));
        busy_ns += (t - block_start) * 1_000_000_000;
    }
    // An instant event never carries weight.
    rec.record(span(rank, t, t, SpanKind::RankDeath { cause: "panic" }));
    busy_ns
}

fn folded_total_ns(folded: &str) -> u64 {
    folded
        .lines()
        .map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap())
        .sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn self_time_weights_sum_to_total_busy_time(
        ranks in proptest::collection::vec(
            proptest::collection::vec(
                (0u64..3, proptest::collection::vec((0u64..2, 1u64..4, 0u32..4), 0..5), 0u64..2),
                1..4,
            ),
            1..4,
        ),
    ) {
        let rec = TraceRecorder::new(ranks.len());
        let mut busy_ns = 0u64;
        for (rank, blocks) in ranks.iter().enumerate() {
            busy_ns += build_rank(&rec, rank, blocks);
        }
        let folded = folded_stacks(&rec.finish());
        prop_assert_eq!(folded_total_ns(&folded), busy_ns, "folded:\n{}", folded);
        // The annotations never leak into the stacks.
        prop_assert!(!folded.contains("slo-alert"));
        prop_assert!(!folded.contains("rank-death"));
    }
}
