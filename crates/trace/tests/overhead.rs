//! Ignored-by-default micro-benchmark guarding the "zero overhead when
//! disabled" property: with no sink installed every instrumentation hook
//! in the comm hot path is a single `Option` branch.
//!
//! Run with:
//!
//! ```text
//! cargo test --release -p summagen-trace --test overhead -- --ignored --nocapture
//! ```

use std::time::{Duration, Instant};

use summagen_comm::{Payload, Universe, ZeroCost};
use summagen_trace::TraceRecorder;

const ITERS: u64 = 20_000;
const REPS: usize = 5;

fn pingpong_wall_time(universe: &Universe) -> Duration {
    let t0 = Instant::now();
    universe.run(|comm| {
        for i in 0..ITERS {
            if comm.rank() == 0 {
                comm.send(1, 0, Payload::U64(vec![i]));
                comm.recv(1, 1);
            } else {
                comm.recv(0, 0);
                comm.send(0, 1, Payload::U64(vec![i]));
            }
        }
    });
    t0.elapsed()
}

fn best_of(universe: &Universe) -> Duration {
    (0..REPS)
        .map(|_| pingpong_wall_time(universe))
        .min()
        .unwrap()
}

#[test]
#[ignore = "benchmark: run explicitly with --ignored --nocapture"]
fn disabled_tracing_has_no_measurable_overhead() {
    let disabled = Universe::new(2, ZeroCost);
    let recorder = TraceRecorder::with_capacity(2, 1 << 17);
    let enabled = Universe::new(2, ZeroCost).with_event_sink(recorder.clone());

    // Warm up thread spawning and allocator before timing anything.
    pingpong_wall_time(&disabled);
    let t_disabled = best_of(&disabled);
    let t_enabled = best_of(&enabled);

    let msgs = 2 * ITERS;
    let per_msg = |d: Duration| d.as_nanos() as f64 / msgs as f64;
    println!(
        "ping-pong x{ITERS}: no sink {:?} ({:.0} ns/msg), recorder {:?} ({:.0} ns/msg), ratio {:.3}",
        t_disabled,
        per_msg(t_disabled),
        t_enabled,
        per_msg(t_enabled),
        t_enabled.as_secs_f64() / t_disabled.as_secs_f64(),
    );
    assert!(
        recorder.finish().len() as u64 >= msgs,
        "recorder should have captured every send and recv"
    );
    // The disabled path must never cost more than the enabled one (it
    // does strictly less work); allow generous scheduler noise. Absolute
    // regressions are caught by eyeballing the printed ns/msg against
    // previous runs, which is what a micro-benchmark is for.
    assert!(
        t_disabled.as_secs_f64() <= t_enabled.as_secs_f64() * 1.5,
        "disabled-tracing path slower than recording path: {t_disabled:?} vs {t_enabled:?}"
    );
}
