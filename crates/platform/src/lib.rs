//! Heterogeneous platform simulation for the SummaGen reproduction.
//!
//! The paper runs on *HCLServer1*: a dual-socket Intel Haswell multicore
//! CPU, an Nvidia K40c GPU and an Intel Xeon Phi 3120P, organized as three
//! *abstract processors* (AbsCPU = 22 CPU cores; AbsGPU / AbsXeonPhi = the
//! accelerator plus its dedicated host core, including host↔device
//! transfers). We do not have that hardware, so this crate models it:
//!
//! * [`device`] — the Table I specifications as data, plus derived
//!   theoretical peaks.
//! * [`speed`] — speed functions (the paper's performance models): constant
//!   models, tabulated non-smooth functional performance models with
//!   piecewise-linear interpolation, and Akima-spline smoothing (the three
//!   model families FuPerMod supports).
//! * [`ooc`] — an out-of-core execution model for accelerators
//!   (ZZGemmOOC / XeonPhiOOC analogue): once a problem no longer fits in
//!   device memory, tiles are staged over PCIe and the effective speed
//!   drops, producing the characteristic dents of Fig. 5.
//! * [`profile`] — mechanistic builders for the three abstract processors'
//!   full speed functions (Fig. 5), combining an efficiency ramp, resource
//!   contention, and the out-of-core penalty.
//! * [`energy`] — the dynamic/static energy accounting of Section VI-C,
//!   including a 1 Hz WattsUp-style sampled meter.
//! * [`failure`] — exponential device-failure models (MTBF, survival,
//!   restart-from-scratch makespan) backing the fault-tolerant executor.
//! * [`stats`] — the Student's t-test measurement protocol (repeat until
//!   the sample mean is within a 95 % CI at 2.5 % precision).

pub mod device;
pub mod energy;
pub mod failure;
pub mod measurement;
pub mod ooc;
pub mod profile;
pub mod speed;
pub mod stats;

pub use device::{AbstractProcessor, DeviceKind, DeviceSpec, Platform};
pub use energy::{dynamic_energy, EnergyMeter, PowerModel};
pub use failure::{
    degraded_capacity, expected_runtime_with_restarts, fleet_rate, fleet_survival, FailureModel,
    LinkReliability,
};
pub use measurement::{build_fpm_via_protocol, MeasuredPoint, NoisyTimer};
pub use ooc::OutOfCoreModel;
pub use profile::{abs_cpu_profile, abs_gpu_profile, abs_phi_profile, hclserver1};
pub use speed::{AkimaSpline, ConstantSpeed, SpeedFunction, TabulatedSpeed};
pub use stats::{measure_to_confidence, pearson_normality_test, MeasurementProtocol, SampleStats};
