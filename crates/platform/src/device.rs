//! Device specifications (the paper's Table I) and abstract processors.

use std::sync::Arc;

use crate::speed::SpeedFunction;

/// The kind of computing device backing an abstract processor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceKind {
    /// A group of host CPU cores.
    Cpu,
    /// A discrete GPU plus its dedicated host core.
    Gpu,
    /// A many-core coprocessor (Xeon Phi) plus its dedicated host core.
    XeonPhi,
}

/// Hardware description of one device, mirroring Table I of the paper.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceSpec {
    /// Human-readable name.
    pub name: &'static str,
    /// Device kind.
    pub kind: DeviceKind,
    /// Number of cores available to the abstract processor.
    pub cores: u32,
    /// Device (or host share) memory in bytes.
    pub memory_bytes: u64,
    /// Memory bandwidth in bytes/second.
    pub memory_bandwidth: f64,
    /// Theoretical peak double-precision performance in FLOP/s.
    pub peak_flops: f64,
    /// Host↔device link bandwidth in bytes/second (PCIe for accelerators;
    /// `None` for the CPU, which needs no staging).
    pub link_bandwidth: Option<f64>,
    /// Dynamic power draw when busy, in watts (used by the energy study).
    pub dynamic_power_w: f64,
}

impl DeviceSpec {
    /// Largest square problem size `N` for which an in-core DGEMM
    /// (three `N x N` f64 matrices plus ~30 % workspace) fits in memory.
    pub fn max_incore_n(&self) -> usize {
        // 3 matrices * N^2 * 8 bytes * 1.3 workspace factor <= memory
        let n2 = self.memory_bytes as f64 / (3.0 * 8.0 * 1.3);
        n2.sqrt().floor() as usize
    }
}

/// AbsCPU: 22 cores of the dual-socket Haswell E5-2670 v3 (two cores are
/// dedicated to driving the accelerators). Peaks are scaled so the
/// platform total matches the paper's 2.5 TFLOPs.
pub const HASWELL_E5_2670V3: DeviceSpec = DeviceSpec {
    name: "Intel Haswell E5-2670 v3 (22 cores)",
    kind: DeviceKind::Cpu,
    cores: 22,
    memory_bytes: 64 * 1024 * 1024 * 1024,
    memory_bandwidth: 68.0e9,
    peak_flops: 0.6e12,
    link_bandwidth: None,
    dynamic_power_w: 155.0,
};

/// AbsGPU: Nvidia K40c plus a dedicated host core.
pub const NVIDIA_K40C: DeviceSpec = DeviceSpec {
    name: "Nvidia K40c",
    kind: DeviceKind::Gpu,
    cores: 2880,
    memory_bytes: 12 * 1024 * 1024 * 1024,
    memory_bandwidth: 288.0e9,
    peak_flops: 1.2e12,
    link_bandwidth: Some(10.0e9),
    dynamic_power_w: 130.0,
};

/// AbsXeonPhi: Intel Xeon Phi 3120P plus a dedicated host core.
pub const XEON_PHI_3120P: DeviceSpec = DeviceSpec {
    name: "Intel Xeon Phi 3120P",
    kind: DeviceKind::XeonPhi,
    cores: 57,
    memory_bytes: 6 * 1024 * 1024 * 1024,
    memory_bandwidth: 240.0e9,
    peak_flops: 0.7e12,
    link_bandwidth: Some(7.0e9),
    dynamic_power_w: 110.0,
};

/// One abstract processor: a device plus the speed function that models the
/// PMM kernel running on it (with contention from the other kernels, as the
/// paper measures simultaneously).
#[derive(Clone)]
pub struct AbstractProcessor {
    /// The backing device.
    pub spec: DeviceSpec,
    /// Speed function: achieved FLOP/s as a function of the partition area
    /// assigned to this processor (see [`crate::speed::SpeedFunction`]).
    pub speed: Arc<dyn SpeedFunction>,
}

/// Dimension below which a DGEMM operand panel stops amortizing kernel
/// overheads (blocking, packing, thread startup). Used by
/// [`aspect_efficiency`].
pub const ASPECT_KNEE: f64 = 48.0;

/// Relative DGEMM kernel efficiency of an `m × k` by `k × w` multiply with
/// large `k`: sliver-shaped outputs (tiny `m` or `w`) under-utilize the
/// kernel. `1 / (1 + knee/m + knee/w)` — ≈ 1 for fat blocks, dropping
/// smoothly for thin ones. This is what makes partition *shape* (not just
/// area) matter for computation time, as the paper observes in Fig. 7b.
pub fn aspect_efficiency(m: usize, w: usize) -> f64 {
    if m == 0 || w == 0 {
        return 1.0;
    }
    1.0 / (1.0 + ASPECT_KNEE / m as f64 + ASPECT_KNEE / w as f64)
}

impl AbstractProcessor {
    /// Creates an abstract processor.
    pub fn new(spec: DeviceSpec, speed: Arc<dyn SpeedFunction>) -> Self {
        Self { spec, speed }
    }

    /// Execution time of a local DGEMM performing `flops` floating-point
    /// operations, with `area` the processor's total partition area (the
    /// problem-size argument of its speed function).
    pub fn compute_time(&self, flops: f64, area: f64) -> f64 {
        assert!(flops >= 0.0, "negative flops");
        if flops == 0.0 {
            return 0.0;
        }
        let s = self.speed.flops(area);
        assert!(s > 0.0, "speed function returned non-positive speed {s}");
        flops / s
    }

    /// Execution time of one `m × k` by `k × w` sub-partition DGEMM,
    /// including the aspect-ratio kernel efficiency. `area` is the
    /// processor's total partition area (speed-function argument).
    pub fn dgemm_time(&self, m: usize, k: usize, w: usize, area: f64) -> f64 {
        let flops = 2.0 * m as f64 * k as f64 * w as f64;
        if flops == 0.0 {
            return 0.0;
        }
        self.compute_time(flops, area) / aspect_efficiency(m, w)
    }
}

impl std::fmt::Debug for AbstractProcessor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AbstractProcessor")
            .field("spec", &self.spec.name)
            .finish()
    }
}

/// A heterogeneous platform: an ordered set of abstract processors plus the
/// platform-level static power (the 230 W of HCLServer1).
#[derive(Debug, Clone)]
pub struct Platform {
    /// The abstract processors, in rank order.
    pub processors: Vec<AbstractProcessor>,
    /// Static power of the whole platform in watts.
    pub static_power_w: f64,
}

impl Platform {
    /// Creates a platform.
    pub fn new(processors: Vec<AbstractProcessor>, static_power_w: f64) -> Self {
        assert!(!processors.is_empty(), "platform needs processors");
        assert!(static_power_w >= 0.0, "negative static power");
        Self {
            processors,
            static_power_w,
        }
    }

    /// Number of abstract processors.
    pub fn len(&self) -> usize {
        self.processors.len()
    }

    /// Whether the platform has no processors (never true after `new`).
    pub fn is_empty(&self) -> bool {
        self.processors.is_empty()
    }

    /// Sum of the theoretical peaks — the paper's 2.5 TFLOPs reference.
    pub fn theoretical_peak_flops(&self) -> f64 {
        self.processors.iter().map(|p| p.spec.peak_flops).sum()
    }

    /// Speeds of all processors evaluated at the given partition areas,
    /// in FLOP/s.
    pub fn speeds_at(&self, areas: &[f64]) -> Vec<f64> {
        assert_eq!(areas.len(), self.len(), "area count != processor count");
        self.processors
            .iter()
            .zip(areas)
            .map(|(p, &a)| p.speed.flops(a))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::speed::ConstantSpeed;

    #[test]
    fn table1_peaks_sum_to_paper_total() {
        let total =
            HASWELL_E5_2670V3.peak_flops + NVIDIA_K40C.peak_flops + XEON_PHI_3120P.peak_flops;
        assert!((total - 2.5e12).abs() < 1e6, "total peak {total}");
    }

    #[test]
    fn table1_fields_match_paper() {
        assert_eq!(HASWELL_E5_2670V3.cores, 22);
        assert_eq!(NVIDIA_K40C.cores, 2880);
        assert_eq!(XEON_PHI_3120P.cores, 57);
        assert_eq!(NVIDIA_K40C.memory_bytes, 12 << 30);
        assert_eq!(XEON_PHI_3120P.memory_bytes, 6 << 30);
        assert_eq!(HASWELL_E5_2670V3.memory_bandwidth, 68.0e9);
        assert_eq!(NVIDIA_K40C.memory_bandwidth, 288.0e9);
        assert_eq!(XEON_PHI_3120P.memory_bandwidth, 240.0e9);
    }

    #[test]
    fn incore_limits_are_plausible() {
        // The paper reports memory failures past N = 22592 with the CPU's
        // 64 GB and out-of-card computation on the Phi past ~13824.
        let gpu = NVIDIA_K40C.max_incore_n();
        let phi = XEON_PHI_3120P.max_incore_n();
        assert!((18_000..24_000).contains(&gpu), "gpu in-core limit {gpu}");
        assert!((12_000..16_000).contains(&phi), "phi in-core limit {phi}");
    }

    #[test]
    fn compute_time_inversely_proportional_to_speed() {
        let fast = AbstractProcessor::new(NVIDIA_K40C, Arc::new(ConstantSpeed::new(2.0e12)));
        let slow = AbstractProcessor::new(XEON_PHI_3120P, Arc::new(ConstantSpeed::new(1.0e12)));
        let flops = 8.0e12;
        assert!((fast.compute_time(flops, 0.0) - 4.0).abs() < 1e-12);
        assert!((slow.compute_time(flops, 0.0) - 8.0).abs() < 1e-12);
        assert_eq!(fast.compute_time(0.0, 0.0), 0.0);
    }

    #[test]
    fn aspect_efficiency_penalizes_slivers() {
        assert!(aspect_efficiency(4096, 4096) > 0.97);
        assert!(aspect_efficiency(100, 4096) < aspect_efficiency(1000, 4096));
        assert!(aspect_efficiency(10, 10) < 0.15);
        // Symmetric in m and w.
        assert_eq!(aspect_efficiency(64, 512), aspect_efficiency(512, 64));
        assert_eq!(aspect_efficiency(0, 5), 1.0);
    }

    #[test]
    fn dgemm_time_slower_for_slivers_of_equal_flops() {
        let p = AbstractProcessor::new(NVIDIA_K40C, Arc::new(ConstantSpeed::new(1.0e12)));
        // Same flops: 1024x1024 vs 64x16384 outputs.
        let fat = p.dgemm_time(1024, 1000, 1024, 0.0);
        let thin = p.dgemm_time(64, 1000, 16_384, 0.0);
        assert!(thin > fat, "thin {thin} fat {fat}");
        assert_eq!(p.dgemm_time(0, 10, 10, 0.0), 0.0);
    }

    #[test]
    fn platform_aggregates() {
        let p = Platform::new(
            vec![
                AbstractProcessor::new(HASWELL_E5_2670V3, Arc::new(ConstantSpeed::new(0.5e12))),
                AbstractProcessor::new(NVIDIA_K40C, Arc::new(ConstantSpeed::new(1.0e12))),
                AbstractProcessor::new(XEON_PHI_3120P, Arc::new(ConstantSpeed::new(0.45e12))),
            ],
            230.0,
        );
        assert_eq!(p.len(), 3);
        assert!((p.theoretical_peak_flops() - 2.5e12).abs() < 1e6);
        let speeds = p.speeds_at(&[1.0, 1.0, 1.0]);
        assert_eq!(speeds, vec![0.5e12, 1.0e12, 0.45e12]);
    }

    #[test]
    #[should_panic(expected = "platform needs processors")]
    fn empty_platform_rejected() {
        Platform::new(vec![], 230.0);
    }
}
