//! Energy accounting — Section VI-C of the paper.
//!
//! The paper measures the whole platform with a WattsUp Pro meter (1 sample
//! per second, ±3 % accuracy), fixes the fans at full speed so their draw is
//! part of static power, and computes the *dynamic* energy as
//! `E_D = E_T − P_S · T_E` (Equation 5). We model the same pipeline: every
//! device contributes its dynamic power while busy; a simulated meter
//! samples the resulting platform power at 1 Hz; dynamic energy is then
//! derived exactly as in the paper.

/// Equation 5 of the paper: dynamic energy from total energy, static power
/// and execution time.
pub fn dynamic_energy(total_energy_j: f64, static_power_w: f64, exec_time_s: f64) -> f64 {
    total_energy_j - static_power_w * exec_time_s
}

/// Per-device dynamic power model for an application run.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerModel {
    /// Platform static power in watts (230 W on HCLServer1, fans at full).
    pub static_power_w: f64,
    /// Per-device dynamic power when computing, in watts.
    pub compute_power_w: Vec<f64>,
    /// Fraction of compute power drawn while a device is communicating
    /// or waiting (DRAM/NIC activity without core activity).
    pub comm_power_fraction: f64,
}

impl PowerModel {
    /// Creates a power model.
    pub fn new(static_power_w: f64, compute_power_w: Vec<f64>) -> Self {
        assert!(!compute_power_w.is_empty(), "power model needs devices");
        Self {
            static_power_w,
            compute_power_w,
            comm_power_fraction: 0.15,
        }
    }

    /// Exact dynamic energy (J) of a run in which device `i` computed for
    /// `comp[i]` seconds and communicated/waited for `comm[i]` seconds.
    pub fn dynamic_energy_exact(&self, comp: &[f64], comm: &[f64]) -> f64 {
        assert_eq!(comp.len(), self.compute_power_w.len(), "device count");
        assert_eq!(comm.len(), self.compute_power_w.len(), "device count");
        comp.iter()
            .zip(comm)
            .zip(&self.compute_power_w)
            .map(|((&tc, &tm), &p)| p * tc + p * self.comm_power_fraction * tm)
            .sum()
    }

    /// Total platform energy (J) for a run of `exec_time_s` seconds.
    pub fn total_energy_exact(&self, comp: &[f64], comm: &[f64], exec_time_s: f64) -> f64 {
        self.static_power_w * exec_time_s + self.dynamic_energy_exact(comp, comm)
    }
}

/// A simulated WattsUp-style meter: builds a per-device busy timeline,
/// samples platform power at a fixed rate, and integrates.
///
/// Each device's busy time is laid out from the start of the run (the
/// integral of power over the run does not depend on placement, but the
/// sampled estimate quantizes exactly like the real meter does).
#[derive(Debug, Clone)]
pub struct EnergyMeter {
    /// Sampling interval in seconds (1.0 for the WattsUp Pro).
    pub sample_interval_s: f64,
    /// Fractional accuracy of each sample (±3 % in the datasheet); applied
    /// as a deterministic worst-case bound, not injected noise.
    pub accuracy: f64,
}

impl Default for EnergyMeter {
    fn default() -> Self {
        Self {
            sample_interval_s: 1.0,
            accuracy: 0.03,
        }
    }
}

/// Result of a metered run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeterReading {
    /// Total sampled energy (J).
    pub total_energy_j: f64,
    /// Dynamic energy per Equation 5 (J).
    pub dynamic_energy_j: f64,
    /// Execution time the meter observed (s).
    pub exec_time_s: f64,
}

impl EnergyMeter {
    /// Samples a run: device `i` computes for `comp[i]` s and
    /// communicates for `comm[i]` s within a run of `exec_time_s` s.
    pub fn sample_run(
        &self,
        model: &PowerModel,
        comp: &[f64],
        comm: &[f64],
        exec_time_s: f64,
    ) -> MeterReading {
        assert!(exec_time_s >= 0.0, "negative execution time");
        assert_eq!(comp.len(), model.compute_power_w.len());
        assert_eq!(comm.len(), model.compute_power_w.len());
        let dt = self.sample_interval_s;
        let steps = (exec_time_s / dt).ceil().max(1.0) as usize;
        let mut total = 0.0;
        for k in 0..steps {
            let t0 = k as f64 * dt;
            let t1 = (t0 + dt).min(exec_time_s);
            if t1 <= t0 {
                break;
            }
            // Midpoint sample of platform power.
            let tm = 0.5 * (t0 + t1);
            let mut power = model.static_power_w;
            for (i, &p) in model.compute_power_w.iter().enumerate() {
                // Busy layout per device: compute first, then comm.
                if tm < comp[i] {
                    power += p;
                } else if tm < comp[i] + comm[i] {
                    power += p * model.comm_power_fraction;
                }
            }
            total += power * (t1 - t0);
        }
        MeterReading {
            total_energy_j: total,
            dynamic_energy_j: dynamic_energy(total, model.static_power_w, exec_time_s),
            exec_time_s,
        }
    }
}

impl EnergyMeter {
    /// Samples a run from explicit per-device activity intervals
    /// `(start, end, is_compute)` — e.g. converted from a traced virtual
    /// timeline — instead of the busy-first layout of
    /// [`EnergyMeter::sample_run`]. This reproduces exactly what the
    /// WattsUp meter would have seen.
    pub fn sample_intervals(
        &self,
        model: &PowerModel,
        intervals: &[Vec<(f64, f64, bool)>],
        exec_time_s: f64,
    ) -> MeterReading {
        assert_eq!(intervals.len(), model.compute_power_w.len(), "device count");
        assert!(exec_time_s >= 0.0, "negative execution time");
        let dt = self.sample_interval_s;
        let steps = (exec_time_s / dt).ceil().max(1.0) as usize;
        let mut total = 0.0;
        for k in 0..steps {
            let t0 = k as f64 * dt;
            let t1 = (t0 + dt).min(exec_time_s);
            if t1 <= t0 {
                break;
            }
            let tm = 0.5 * (t0 + t1);
            let mut power = model.static_power_w;
            for (i, tl) in intervals.iter().enumerate() {
                for &(s, e, is_compute) in tl {
                    if tm >= s && tm < e {
                        power += if is_compute {
                            model.compute_power_w[i]
                        } else {
                            model.compute_power_w[i] * model.comm_power_fraction
                        };
                        break;
                    }
                }
            }
            total += power * (t1 - t0);
        }
        MeterReading {
            total_energy_j: total,
            dynamic_energy_j: dynamic_energy(total, model.static_power_w, exec_time_s),
            exec_time_s,
        }
    }
}

/// Dynamic power draws of the three HCLServer1 abstract processors,
/// in platform rank order (AbsCPU, AbsGPU, AbsXeonPhi).
pub fn hclserver1_power_model() -> PowerModel {
    PowerModel::new(230.0, vec![155.0, 130.0, 110.0])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equation5_dynamic_energy() {
        // E_T = 1000 J over 2 s at P_S = 230 W -> E_D = 540 J.
        assert!((dynamic_energy(1000.0, 230.0, 2.0) - 540.0).abs() < 1e-9);
    }

    #[test]
    fn exact_dynamic_energy_sums_devices() {
        let m = PowerModel::new(230.0, vec![100.0, 200.0]);
        // Device 0 computes 2 s; device 1 computes 1 s and comms 1 s.
        let e = m.dynamic_energy_exact(&[2.0, 1.0], &[0.0, 1.0]);
        let want = 100.0 * 2.0 + 200.0 * 1.0 + 200.0 * 0.15;
        assert!((e - want).abs() < 1e-9);
    }

    #[test]
    fn total_energy_includes_static() {
        let m = PowerModel::new(100.0, vec![50.0]);
        let e = m.total_energy_exact(&[1.0], &[0.0], 4.0);
        assert!((e - (400.0 + 50.0)).abs() < 1e-9);
    }

    #[test]
    fn meter_matches_exact_energy_for_long_runs() {
        let m = hclserver1_power_model();
        let comp = [40.0, 35.0, 38.0];
        let comm = [2.0, 4.0, 3.0];
        let t = 45.0;
        let reading = EnergyMeter::default().sample_run(&m, &comp, &comm, t);
        let exact = m.dynamic_energy_exact(&comp, &comm);
        let rel = (reading.dynamic_energy_j - exact).abs() / exact;
        // 1 Hz quantization error over a 45 s run stays small.
        assert!(rel < 0.05, "relative error {rel}");
    }

    #[test]
    fn meter_total_includes_static_power() {
        let m = PowerModel::new(230.0, vec![0.0]);
        let r = EnergyMeter::default().sample_run(&m, &[0.0], &[0.0], 10.0);
        assert!((r.total_energy_j - 2300.0).abs() < 1.0);
        assert!(r.dynamic_energy_j.abs() < 1.0);
    }

    #[test]
    fn meter_handles_fractional_final_sample() {
        let m = PowerModel::new(100.0, vec![0.0]);
        let r = EnergyMeter::default().sample_run(&m, &[0.0], &[0.0], 2.5);
        assert!((r.total_energy_j - 250.0).abs() < 1e-9);
    }

    #[test]
    fn meter_zero_duration_run() {
        let m = PowerModel::new(100.0, vec![10.0]);
        let r = EnergyMeter::default().sample_run(&m, &[0.0], &[0.0], 0.0);
        assert_eq!(r.total_energy_j, 0.0);
    }

    #[test]
    fn interval_sampling_matches_exact_for_dense_timelines() {
        let m = PowerModel::new(100.0, vec![50.0, 80.0]);
        // Device 0: compute [0, 30); device 1: comm [0, 10) then compute
        // [10, 35).
        let intervals = vec![
            vec![(0.0, 30.0, true)],
            vec![(0.0, 10.0, false), (10.0, 35.0, true)],
        ];
        let r = EnergyMeter::default().sample_intervals(&m, &intervals, 40.0);
        let exact = 50.0 * 30.0 + 80.0 * 0.15 * 10.0 + 80.0 * 25.0;
        let rel = (r.dynamic_energy_j - exact).abs() / exact;
        assert!(rel < 0.03, "rel {rel}: {} vs {exact}", r.dynamic_energy_j);
    }

    #[test]
    fn interval_sampling_sees_idle_gaps() {
        // Busy-first layout would smear these apart; interval sampling
        // sees the true (identical-integral) timeline.
        let m = PowerModel::new(0.0, vec![100.0]);
        let intervals = vec![vec![(0.0, 5.0, true), (15.0, 20.0, true)]];
        let r = EnergyMeter::default().sample_intervals(&m, &intervals, 20.0);
        assert!((r.dynamic_energy_j - 1000.0).abs() < 20.0);
    }

    #[test]
    #[should_panic(expected = "device count")]
    fn mismatched_device_counts_rejected() {
        let m = PowerModel::new(230.0, vec![100.0]);
        m.dynamic_energy_exact(&[1.0, 2.0], &[0.0, 0.0]);
    }
}
