//! Simulated measurement of speed functions — the paper's "automated
//! procedure" for building the Fig. 5 performance profiles.
//!
//! Each experimental point times a square `x × x` DGEMM on a device, with
//! measurement noise, repeating per the Student's-t protocol (95 % CI,
//! 2.5 % precision) until the mean converges; the speed is then
//! `s = 2·x³ / t̄`. The noise source is a deterministic seeded RNG so the
//! whole pipeline stays reproducible.

use rand::prelude::*;
use rand::rngs::StdRng;

use crate::speed::{SpeedFunction, TabulatedSpeed};
use crate::stats::{measure_to_confidence, MeasurementProtocol, SampleStats};

/// A simulated noisy timer for a device whose true behaviour is given by
/// a ground-truth speed function.
pub struct NoisyTimer<'a> {
    truth: &'a dyn SpeedFunction,
    rng: StdRng,
    /// Relative standard deviation of one timing sample.
    pub noise_sd: f64,
}

impl<'a> NoisyTimer<'a> {
    /// Creates a timer with the given relative noise (e.g. 0.02 = 2 %).
    pub fn new(truth: &'a dyn SpeedFunction, noise_sd: f64, seed: u64) -> Self {
        assert!(
            (0.0..1.0).contains(&noise_sd),
            "unreasonable noise {noise_sd}"
        );
        Self {
            truth,
            rng: StdRng::seed_from_u64(seed),
            noise_sd,
        }
    }

    /// One timing sample of a square `x × x` DGEMM (seconds).
    pub fn time_once(&mut self, x: f64) -> f64 {
        let flops = 2.0 * x * x * x;
        let true_time = flops / self.truth.flops_at_square(x);
        // Approximately normal multiplicative noise (sum of 4 uniforms),
        // clamped so times stay positive.
        let u: f64 = (0..4)
            .map(|_| self.rng.random_range(-0.5..0.5))
            .sum::<f64>()
            / 2.0;
        (true_time * (1.0 + self.noise_sd * u * 3.46)).max(true_time * 0.5)
    }
}

/// One measured point of a performance profile.
#[derive(Debug, Clone)]
pub struct MeasuredPoint {
    /// Square problem size.
    pub x: f64,
    /// Timing statistics (the paper reports the sample mean).
    pub stats: SampleStats,
    /// Derived speed `2·x³ / mean` in FLOP/s.
    pub speed: f64,
}

/// Builds a tabulated speed function by measuring each size with the
/// Student's-t protocol — the reproduction of the paper's profile
/// construction procedure.
pub fn build_fpm_via_protocol(
    truth: &dyn SpeedFunction,
    sizes: &[f64],
    noise_sd: f64,
    seed: u64,
    protocol: MeasurementProtocol,
) -> (TabulatedSpeed, Vec<MeasuredPoint>) {
    assert!(!sizes.is_empty(), "no sizes to measure");
    let mut timer = NoisyTimer::new(truth, noise_sd, seed);
    let mut points = Vec::with_capacity(sizes.len());
    for &x in sizes {
        let stats = measure_to_confidence(protocol, || timer.time_once(x));
        let speed = 2.0 * x * x * x / stats.mean;
        points.push(MeasuredPoint { x, stats, speed });
    }
    let table = TabulatedSpeed::from_square_sizes(points.iter().map(|p| (p.x, p.speed)).collect());
    (table, points)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::speed::ConstantSpeed;

    #[test]
    fn noisy_timer_is_reproducible() {
        let truth = ConstantSpeed::new(1e12);
        let mut t1 = NoisyTimer::new(&truth, 0.05, 7);
        let mut t2 = NoisyTimer::new(&truth, 0.05, 7);
        assert_eq!(t1.time_once(1000.0), t2.time_once(1000.0));
    }

    #[test]
    fn noise_stays_positive_and_near_truth() {
        let truth = ConstantSpeed::new(1e12);
        let mut t = NoisyTimer::new(&truth, 0.05, 3);
        let true_time = 2.0 * 1000.0f64.powi(3) / 1e12;
        for _ in 0..200 {
            let s = t.time_once(1000.0);
            assert!(s > 0.0);
            assert!((s - true_time).abs() / true_time < 0.5);
        }
    }

    #[test]
    fn protocol_recovers_constant_speed_within_precision() {
        let truth = ConstantSpeed::new(0.8e12);
        let sizes: Vec<f64> = (1..=8).map(|k| k as f64 * 512.0).collect();
        let (table, points) =
            build_fpm_via_protocol(&truth, &sizes, 0.05, 42, MeasurementProtocol::default());
        for p in &points {
            let rel = (p.speed - 0.8e12).abs() / 0.8e12;
            assert!(rel < 0.05, "at x={}: measured {} ({rel})", p.x, p.speed);
            assert!(p.stats.reps >= 5);
        }
        // The table interpolates near the truth everywhere in range.
        for x in [600.0, 1500.0, 3000.0] {
            let rel = (table.flops_at_square(x) - 0.8e12).abs() / 0.8e12;
            assert!(rel < 0.05, "table at {x}: {rel}");
        }
    }

    #[test]
    fn noisier_devices_need_more_repetitions() {
        let truth = ConstantSpeed::new(1e12);
        let protocol = MeasurementProtocol::default();
        let reps = |noise: f64| {
            let (_, pts) = build_fpm_via_protocol(&truth, &[2048.0], noise, 11, protocol);
            pts[0].stats.reps
        };
        assert!(
            reps(0.15) > reps(0.01),
            "noisy {} quiet {}",
            reps(0.15),
            reps(0.01)
        );
    }

    #[test]
    fn recovered_profile_tracks_a_varying_truth() {
        use crate::profile::abs_phi_profile;
        let truth = abs_phi_profile();
        let sizes: Vec<f64> = (4..=32).map(|k| k as f64 * 1_024.0).collect();
        let (table, _) =
            build_fpm_via_protocol(&truth, &sizes, 0.02, 5, MeasurementProtocol::default());
        for &x in &sizes {
            let t = truth.flops_at_square(x);
            let m = table.flops_at_square(x);
            assert!((m - t).abs() / t < 0.05, "x={x}: truth {t} measured {m}");
        }
    }
}
