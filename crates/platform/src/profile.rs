//! Synthetic full speed functions of the three abstract processors (Fig. 5).
//!
//! The paper builds these profiles with an automated measurement procedure:
//! every data point is a square `x × x` DGEMM executed on all three abstract
//! processors *simultaneously* (so contention is included), with accelerator
//! times including host↔device transfers, and out-of-core implementations
//! past the memory limits. We rebuild the same curves mechanistically:
//!
//! `effective(x) = ramp(x) · contention(x) · ooc(x) · calibration`
//!
//! * `ramp` — kernel efficiency rising with problem size (startup and
//!   cache-warm effects);
//! * `contention` — a deterministic, seeded ripple whose amplitude decays
//!   with `x` for AbsCPU/AbsGPU (as the paper observes) and *grows* for
//!   AbsXeonPhi in the window `[12800, 19200]` where the paper reports the
//!   maximum variations;
//! * `ooc` — the [`OutOfCoreModel`] transfer/tiling cost for accelerators;
//! * `calibration` — a single scale factor so the plateau speeds sit at the
//!   relative ratio {1.0, 2.0, 0.9} used in Section VI-A with the platform
//!   total ≈ 78 % of the 2.5 TFLOPs theoretical peak.

use std::sync::Arc;

use crate::device::{AbstractProcessor, Platform, HASWELL_E5_2670V3, NVIDIA_K40C, XEON_PHI_3120P};
use crate::ooc::OutOfCoreModel;
use crate::speed::TabulatedSpeed;

/// Plateau (constant-range) speed of AbsCPU in FLOP/s: the "1.0" of the
/// paper's relative speeds {1.0, 2.0, 0.9}.
pub const CPU_PLATEAU_FLOPS: f64 = 0.575e12;
/// Plateau speed of AbsGPU ("2.0").
pub const GPU_PLATEAU_FLOPS: f64 = 1.15e12;
/// Plateau speed of AbsXeonPhi ("0.9").
pub const PHI_PLATEAU_FLOPS: f64 = 0.5175e12;

/// Square size at which plateaus are calibrated (well inside the constant
/// range of every device).
const CALIBRATION_X: f64 = 11_000.0;

/// Sampling grid for the tabulated profiles: x = 64 then every 256 up to
/// 40 960, covering the paper's full experiment range (N up to 38 416).
fn sample_grid() -> Vec<f64> {
    let mut xs = vec![64.0];
    let mut x = 256.0;
    while x <= 40_960.0 {
        xs.push(x);
        x += 256.0;
    }
    xs
}

/// Deterministic "measurement ripple": a sum of incommensurate sinusoids in
/// `[-1, 1]`, seeded per device. No RNG so profiles are identical across
/// runs and platforms.
fn ripple(x: f64, seed: u64) -> f64 {
    let s = seed as f64;
    let a = (x / 517.0 + s * 1.7).sin();
    let b = (x / 1313.0 + s * 0.61).sin();
    let c = (x / 211.0 + s * 2.9).sin();
    (0.5 * a + 0.35 * b + 0.15 * c).clamp(-1.0, 1.0)
}

/// Kernel efficiency ramp: ~0 at tiny sizes, ~1 past a device-specific
/// knee `x0`.
fn ramp(x: f64, x0: f64) -> f64 {
    let x2 = x * x;
    x2 / (x2 + x0 * x0)
}

fn build_profile(xs: &[f64], raw: impl Fn(f64) -> f64, plateau_target: f64) -> TabulatedSpeed {
    let calib = plateau_target / raw(CALIBRATION_X);
    TabulatedSpeed::from_square_sizes(xs.iter().map(|&x| (x, (raw(x) * calib).max(1e9))).collect())
}

/// Full speed function of AbsCPU (22 Haswell cores running multithreaded
/// MKL-style DGEMM under contention from both accelerator host cores).
pub fn abs_cpu_profile() -> TabulatedSpeed {
    let xs = sample_grid();
    let raw = |x: f64| {
        // Contention amplitude decays with x (paper: variations decrease
        // for AbsCPU as problem size increases).
        let amp = 0.05 * (-x / 9_000.0).exp() + 0.008;
        ramp(x, 900.0) * (1.0 + amp * ripple(x, 11))
    };
    build_profile(&xs, raw, CPU_PLATEAU_FLOPS)
}

/// Full speed function of AbsGPU (K40c + dedicated host core, including
/// PCIe transfers and the ZZGemmOOC out-of-core path).
pub fn abs_gpu_profile() -> TabulatedSpeed {
    let xs = sample_grid();
    // ZZGemmOOC overlaps staging with computation well: mild OOC penalty.
    let ooc = OutOfCoreModel::new(
        NVIDIA_K40C.memory_bytes,
        NVIDIA_K40C.link_bandwidth.unwrap(),
    )
    .with_kernel_efficiency(0.97);
    let raw = |x: f64| {
        let amp = 0.06 * (-x / 7_000.0).exp() + 0.006;
        let kernel = ramp(x, 1_600.0) * (1.0 + amp * ripple(x, 23));
        // `effective_flops` folds in the transfer ramp and OOC penalty;
        // the kernel factor scales its in-core speed.
        ooc.effective_flops(x.max(1.0), kernel.max(1e-3))
    };
    build_profile(&xs, raw, GPU_PLATEAU_FLOPS)
}

/// Full speed function of AbsXeonPhi (Phi 3120P + dedicated host core,
/// including PCIe transfers and the XeonPhiOOC out-of-core path past
/// x ≈ 13 800).
pub fn abs_phi_profile() -> TabulatedSpeed {
    let xs = sample_grid();
    // XeonPhiOOC pays a visible out-of-card penalty (the paper reports
    // growing variations past x = 13824).
    let ooc = OutOfCoreModel::new(
        XEON_PHI_3120P.memory_bytes,
        XEON_PHI_3120P.link_bandwidth.unwrap(),
    )
    .with_kernel_efficiency(0.92);
    let raw = |x: f64| {
        // Smooth up to ~13760, maximum variations in [12800, 19200]
        // (paper, Section VI-B), growing again for out-of-card sizes.
        let window = if (12_800.0..=19_200.0).contains(&x) {
            0.05
        } else {
            0.0
        };
        let ooc_turbulence = if x > 13_824.0 { 0.035 } else { 0.0 };
        let amp = 0.01 + window + ooc_turbulence;
        let kernel = ramp(x, 1_200.0) * (1.0 + amp * ripple(x, 37));
        ooc.effective_flops(x.max(1.0), kernel.max(1e-3))
    };
    build_profile(&xs, raw, PHI_PLATEAU_FLOPS)
}

/// The full HCLServer1 model: the three abstract processors with their
/// Fig. 5 speed functions and the platform's 230 W static power.
pub fn hclserver1() -> Platform {
    Platform::new(
        vec![
            AbstractProcessor::new(HASWELL_E5_2670V3, Arc::new(abs_cpu_profile())),
            AbstractProcessor::new(NVIDIA_K40C, Arc::new(abs_gpu_profile())),
            AbstractProcessor::new(XEON_PHI_3120P, Arc::new(abs_phi_profile())),
        ],
        230.0,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::speed::SpeedFunction;

    #[test]
    fn profiles_are_deterministic() {
        let a = abs_phi_profile();
        let b = abs_phi_profile();
        assert_eq!(a.points(), b.points());
    }

    #[test]
    fn plateau_ratios_match_paper_constants() {
        // Relative speeds {1.0, 2.0, 0.9} in the constant range: probe the
        // per-device equivalent sizes for N ~ 30720 under proportional
        // distribution (fractions 1/3.9, 2/3.9, 0.9/3.9).
        let n = 30_720.0_f64;
        let cpu = abs_cpu_profile().flops_at_square(n * (1.0_f64 / 3.9).sqrt());
        let gpu = abs_gpu_profile().flops_at_square(n * (2.0_f64 / 3.9).sqrt());
        let phi = abs_phi_profile().flops_at_square(n * (0.9_f64 / 3.9).sqrt());
        let r_gpu = gpu / cpu;
        let r_phi = phi / cpu;
        assert!((r_gpu - 2.0).abs() < 0.25, "gpu/cpu ratio {r_gpu}");
        assert!((r_phi - 0.9).abs() < 0.15, "phi/cpu ratio {r_phi}");
    }

    #[test]
    fn combined_plateau_near_ninety_percent_of_peak() {
        // Loss mechanisms (communication, OOC, aspect efficiency, ripple)
        // bring the *achieved* fraction down to the paper's 70-84 % band,
        // so the raw plateau sum sits a little above it.
        let total = CPU_PLATEAU_FLOPS + GPU_PLATEAU_FLOPS + PHI_PLATEAU_FLOPS;
        let frac = total / 2.5e12;
        assert!((0.8..0.95).contains(&frac), "plateau fraction {frac}");
    }

    #[test]
    fn cpu_variations_decrease_with_size() {
        let p = abs_cpu_profile();
        let spread = |lo: f64, hi: f64| {
            let mut min = f64::INFINITY;
            let mut max = 0.0_f64;
            let mut x = lo;
            while x <= hi {
                let v = p.flops_at_square(x);
                min = min.min(v);
                max = max.max(v);
                x += 128.0;
            }
            (max - min) / max
        };
        assert!(spread(2_000.0, 6_000.0) > spread(20_000.0, 30_000.0));
    }

    #[test]
    fn phi_variation_window_is_turbulent() {
        let p = abs_phi_profile();
        let spread = |lo: f64, hi: f64| {
            let mut min = f64::INFINITY;
            let mut max = 0.0_f64;
            let mut x = lo;
            while x <= hi {
                let v = p.flops_at_square(x);
                min = min.min(v);
                max = max.max(v);
                x += 64.0;
            }
            (max - min) / max
        };
        let calm = spread(6_000.0, 11_000.0);
        let stormy = spread(13_000.0, 19_000.0);
        assert!(stormy > calm * 2.0, "calm {calm} stormy {stormy}");
    }

    #[test]
    fn gpu_ramps_then_plateaus() {
        let p = abs_gpu_profile();
        let small = p.flops_at_square(1_000.0);
        let mid = p.flops_at_square(10_000.0);
        assert!(small < 0.8 * mid, "small {small} mid {mid}");
        assert!((mid - GPU_PLATEAU_FLOPS).abs() / GPU_PLATEAU_FLOPS < 0.1);
    }

    #[test]
    fn speeds_positive_over_whole_range() {
        for p in [abs_cpu_profile(), abs_gpu_profile(), abs_phi_profile()] {
            for &(a, s) in p.points() {
                assert!(s > 0.0, "non-positive speed {s} at area {a}");
            }
        }
    }

    #[test]
    fn hclserver1_is_three_processors_at_230w() {
        let plat = hclserver1();
        assert_eq!(plat.len(), 3);
        assert_eq!(plat.static_power_w, 230.0);
        assert!((plat.theoretical_peak_flops() - 2.5e12).abs() < 1e6);
    }
}
