//! Device failure modeling for fault-tolerant runs.
//!
//! The paper's platform is a single heterogeneous node, but its abstract
//! processors are exactly the components that fail in practice: discrete
//! accelerators drop off the bus, coprocessors overheat, host memory
//! throws uncorrectable errors. This module provides the standard
//! exponential-failure machinery used to reason about such runs: per-device
//! MTBF, survival probabilities, and the expected makespan of a
//! restart-from-scratch execution — the analytical counterpart of the
//! shrink-and-retry recovery implemented in `summagen-core`.

use crate::device::DeviceKind;

/// An exponential (memoryless) failure law for one device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FailureModel {
    /// Mean time between failures, in seconds.
    pub mtbf_seconds: f64,
    /// Time to detect the failure and restart the computation, in seconds.
    pub restart_seconds: f64,
}

impl FailureModel {
    /// A model with the given MTBF and restart cost.
    pub fn new(mtbf_seconds: f64, restart_seconds: f64) -> Self {
        assert!(
            mtbf_seconds > 0.0 && mtbf_seconds.is_finite(),
            "MTBF must be positive, got {mtbf_seconds}"
        );
        assert!(
            restart_seconds >= 0.0 && restart_seconds.is_finite(),
            "restart cost must be non-negative, got {restart_seconds}"
        );
        Self {
            mtbf_seconds,
            restart_seconds,
        }
    }

    /// A plausible default per device class. These are modeling
    /// assumptions, not measurements: discrete accelerators fail more
    /// often than host CPUs (driver resets, ECC events, thermal trips),
    /// and a first-generation many-core coprocessor more often still.
    pub fn typical(kind: DeviceKind) -> Self {
        match kind {
            // ~4 months between CPU-side failures, 30 s to restart.
            DeviceKind::Cpu => Self::new(1e7, 30.0),
            // ~1 month for the GPU (driver reset + reload).
            DeviceKind::Gpu => Self::new(2.5e6, 60.0),
            // ~2 weeks for the Xeon Phi.
            DeviceKind::XeonPhi => Self::new(1.2e6, 120.0),
        }
    }

    /// Failure rate λ = 1 / MTBF, in failures per second.
    pub fn rate(&self) -> f64 {
        1.0 / self.mtbf_seconds
    }

    /// Probability the device is still alive after `t` seconds:
    /// `exp(-t / MTBF)`.
    pub fn survival(&self, t: f64) -> f64 {
        assert!(t >= 0.0, "time must be non-negative");
        (-t * self.rate()).exp()
    }

    /// Probability of at least one failure within `t` seconds.
    pub fn failure_probability(&self, t: f64) -> f64 {
        1.0 - self.survival(t)
    }
}

/// Probability that *every* device survives a run of `t` seconds —
/// the product of individual survivals (independent failures), i.e.
/// `exp(-t · Σ λᵢ)`.
pub fn fleet_survival(models: &[FailureModel], t: f64) -> f64 {
    models.iter().map(|m| m.survival(t)).product()
}

/// Combined failure rate of a device pool, in failures per second.
pub fn fleet_rate(models: &[FailureModel]) -> f64 {
    models.iter().map(|m| m.rate()).sum()
}

/// Expected wall time to complete `work_seconds` of failure-free work when
/// any device failure forces a restart from scratch (no checkpointing),
/// using the classic exponential-failure result
/// `E[T] = (1/λ + R) · (e^{λ·w} − 1)` with the pooled rate `λ` and the
/// mean restart cost `R`. Converges to `work_seconds` as failures become
/// rare (`λ·w → 0`).
pub fn expected_runtime_with_restarts(work_seconds: f64, models: &[FailureModel]) -> f64 {
    assert!(work_seconds >= 0.0, "work must be non-negative");
    assert!(!models.is_empty(), "need at least one device");
    let lambda = fleet_rate(models);
    if lambda == 0.0 {
        return work_seconds;
    }
    let restart = models.iter().map(|m| m.restart_seconds).sum::<f64>() / models.len() as f64;
    (1.0 / lambda + restart) * ((lambda * work_seconds).exp_m1())
}

/// Reliability of one network link, the analytical counterpart of the
/// comm runtime's seeded `LinkPlan`: packets are lost independently with
/// probability `drop_probability`, and every loss costs the sender a
/// retransmission (timeout plus a resend of the same bytes).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkReliability {
    /// Per-packet loss probability, in `[0, 1)`.
    pub drop_probability: f64,
}

impl LinkReliability {
    /// A link losing each packet independently with probability `p`.
    pub fn new(drop_probability: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&drop_probability),
            "drop probability must be in [0, 1), got {drop_probability}"
        );
        Self { drop_probability }
    }

    /// A perfectly reliable link.
    pub fn reliable() -> Self {
        Self::new(0.0)
    }

    /// Expected wire transmissions per delivered packet under
    /// stop-and-wait ARQ with unbounded retries: the geometric mean
    /// `1 / (1 − p)`.
    pub fn expected_transmissions(&self) -> f64 {
        1.0 / (1.0 - self.drop_probability)
    }

    /// Expected *extra* transmissions (retransmits) per delivered
    /// packet: `p / (1 − p)`.
    pub fn expected_retransmits(&self) -> f64 {
        self.expected_transmissions() - 1.0
    }

    /// Probability that a packet is still undelivered after `attempts`
    /// independent wire attempts — the chance a bounded-retry transport
    /// declares the peer unreachable.
    pub fn residual_loss(&self, attempts: u32) -> f64 {
        self.drop_probability.powi(attempts as i32)
    }

    /// Multiplies a fault-free communication time by the expected ARQ
    /// inflation: each of the expected retransmits costs one
    /// retransmission timeout (`rto_seconds`) plus a resend of the
    /// original transfer. `comm_seconds` is the fault-free wire time of
    /// the traffic being priced.
    pub fn expected_comm_seconds(&self, comm_seconds: f64, rto_seconds: f64) -> f64 {
        assert!(comm_seconds >= 0.0, "comm time must be non-negative");
        assert!(rto_seconds >= 0.0, "rto must be non-negative");
        let r = self.expected_retransmits();
        comm_seconds * (1.0 + r) + r * rto_seconds
    }
}

/// Fraction of the pool's aggregate speed that survives once the devices
/// in `failed` are removed — the capacity available to a shrink-and-retry
/// recovery. Duplicate or out-of-range indices in `failed` are ignored.
pub fn degraded_capacity(rel_speeds: &[f64], failed: &[usize]) -> f64 {
    let total: f64 = rel_speeds.iter().sum();
    assert!(total > 0.0, "speeds must sum to a positive value");
    let lost: f64 = rel_speeds
        .iter()
        .enumerate()
        .filter(|(i, _)| failed.contains(i))
        .map(|(_, s)| s)
        .sum();
    (total - lost) / total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn survival_decays_exponentially() {
        let m = FailureModel::new(1000.0, 10.0);
        assert!((m.survival(0.0) - 1.0).abs() < 1e-12);
        assert!((m.survival(1000.0) - (-1.0f64).exp()).abs() < 1e-12);
        assert!(m.failure_probability(100.0) > 0.0);
        assert!(m.failure_probability(100.0) < m.failure_probability(1000.0));
    }

    #[test]
    fn fleet_survival_is_product_of_members() {
        let ms = [
            FailureModel::new(1000.0, 0.0),
            FailureModel::new(2000.0, 0.0),
        ];
        let t = 500.0;
        let want = ms[0].survival(t) * ms[1].survival(t);
        assert!((fleet_survival(&ms, t) - want).abs() < 1e-12);
        // Equivalent to a single device at the pooled rate.
        assert!((fleet_survival(&ms, t) - (-t * fleet_rate(&ms)).exp()).abs() < 1e-12);
    }

    #[test]
    fn expected_runtime_approaches_work_when_failures_are_rare() {
        let reliable = [FailureModel::new(1e12, 10.0)];
        let w = 3600.0;
        let e = expected_runtime_with_restarts(w, &reliable);
        assert!((e - w).abs() / w < 1e-6, "E[T] = {e}, want ≈ {w}");
    }

    #[test]
    fn expected_runtime_grows_with_failure_rate() {
        let w = 1000.0;
        let slow_fail = [FailureModel::new(1e6, 30.0)];
        let fast_fail = [FailureModel::new(1e3, 30.0)];
        let e_slow = expected_runtime_with_restarts(w, &slow_fail);
        let e_fast = expected_runtime_with_restarts(w, &fast_fail);
        assert!(e_slow >= w);
        assert!(e_fast > e_slow);
    }

    #[test]
    fn typical_models_rank_cpu_most_reliable() {
        let cpu = FailureModel::typical(DeviceKind::Cpu);
        let gpu = FailureModel::typical(DeviceKind::Gpu);
        let phi = FailureModel::typical(DeviceKind::XeonPhi);
        assert!(cpu.mtbf_seconds > gpu.mtbf_seconds);
        assert!(gpu.mtbf_seconds > phi.mtbf_seconds);
    }

    #[test]
    fn link_reliability_prices_retransmission_overhead() {
        let perfect = LinkReliability::reliable();
        assert!((perfect.expected_transmissions() - 1.0).abs() < 1e-12);
        assert!((perfect.expected_comm_seconds(2.0, 1e-3) - 2.0).abs() < 1e-12);

        // 20% loss: 1.25 transmissions per delivery, 0.25 retransmits.
        let lossy = LinkReliability::new(0.2);
        assert!((lossy.expected_transmissions() - 1.25).abs() < 1e-12);
        assert!((lossy.expected_retransmits() - 0.25).abs() < 1e-12);
        // Inflated comm time: 2s of traffic becomes 2.5s of wire plus
        // 0.25 timeouts of 1ms each.
        let e = lossy.expected_comm_seconds(2.0, 1e-3);
        assert!((e - (2.5 + 0.25e-3)).abs() < 1e-12, "got {e}");
        // Residual loss decays geometrically with the retry budget.
        assert!((lossy.residual_loss(3) - 0.008).abs() < 1e-15);
        assert!(lossy.residual_loss(30) < 1e-20);
    }

    #[test]
    fn degraded_capacity_removes_failed_share() {
        let speeds = [1.0, 2.0, 1.0];
        assert!((degraded_capacity(&speeds, &[]) - 1.0).abs() < 1e-12);
        assert!((degraded_capacity(&speeds, &[1]) - 0.5).abs() < 1e-12);
        assert!((degraded_capacity(&speeds, &[0, 2]) - 0.5).abs() < 1e-12);
        // Out-of-range indices are ignored.
        assert!((degraded_capacity(&speeds, &[7]) - 1.0).abs() < 1e-12);
    }
}
