//! The paper's measurement protocol: repeat an experiment until the sample
//! mean lies in a 95 % confidence interval with 2.5 % precision, using
//! Student's t distribution.

/// Two-sided 97.5 % quantiles of Student's t distribution (95 % CI) for
/// 1..=30 degrees of freedom; beyond 30 we use the normal quantile 1.96.
const T_975: [f64; 30] = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
    2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
    2.052, 2.048, 2.045, 2.042,
];

/// 97.5 % t quantile for `df` degrees of freedom.
pub fn t_quantile_975(df: usize) -> f64 {
    if df == 0 {
        f64::INFINITY
    } else if df <= 30 {
        T_975[df - 1]
    } else {
        1.96
    }
}

/// Summary statistics of a repeated measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleStats {
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (unbiased).
    pub stddev: f64,
    /// Number of repetitions performed.
    pub reps: usize,
    /// Half-width of the 95 % confidence interval around the mean.
    pub ci_half_width: f64,
}

impl SampleStats {
    /// Computes statistics from raw samples.
    ///
    /// # Panics
    /// Panics on an empty sample.
    pub fn from_samples(samples: &[f64]) -> Self {
        assert!(!samples.is_empty(), "no samples");
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = if samples.len() > 1 {
            samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0)
        } else {
            0.0
        };
        let stddev = var.sqrt();
        let ci_half_width = if samples.len() > 1 {
            t_quantile_975(samples.len() - 1) * stddev / n.sqrt()
        } else {
            f64::INFINITY
        };
        Self {
            mean,
            stddev,
            reps: samples.len(),
            ci_half_width,
        }
    }

    /// Relative precision achieved: CI half-width over mean.
    pub fn relative_precision(&self) -> f64 {
        if self.mean == 0.0 {
            if self.ci_half_width == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            self.ci_half_width / self.mean.abs()
        }
    }
}

/// The repetition protocol of Section VI: 95 % confidence, 2.5 % precision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeasurementProtocol {
    /// Target relative precision (the paper uses 0.025).
    pub precision: f64,
    /// Minimum repetitions before testing convergence.
    pub min_reps: usize,
    /// Hard cap on repetitions.
    pub max_reps: usize,
}

impl Default for MeasurementProtocol {
    fn default() -> Self {
        Self {
            precision: 0.025,
            min_reps: 5,
            max_reps: 1000,
        }
    }
}

/// Repeats `sample()` until the Student's-t 95 % CI half-width is within
/// `protocol.precision` of the mean (or `max_reps` is hit) and returns the
/// statistics. This is exactly the paper's experimental-point procedure.
pub fn measure_to_confidence(
    protocol: MeasurementProtocol,
    mut sample: impl FnMut() -> f64,
) -> SampleStats {
    let mut samples = Vec::with_capacity(protocol.min_reps);
    loop {
        samples.push(sample());
        if samples.len() >= protocol.min_reps {
            let stats = SampleStats::from_samples(&samples);
            if stats.relative_precision() <= protocol.precision
                || samples.len() >= protocol.max_reps
            {
                return stats;
            }
        }
    }
}

/// Percentage difference between the extremes of a set of values relative
/// to their mean — the metric behind the paper's "average percentage
/// difference of 8 %" comparison of the four shapes.
pub fn percent_spread(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "no values");
    let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    if mean == 0.0 {
        0.0
    } else {
        100.0 * (max - min) / mean
    }
}

/// 95 % quantiles of the chi-squared distribution for 1..=30 degrees of
/// freedom (upper critical values).
const CHI2_95: [f64; 30] = [
    3.841, 5.991, 7.815, 9.488, 11.070, 12.592, 14.067, 15.507, 16.919, 18.307, 19.675, 21.026,
    22.362, 23.685, 24.996, 26.296, 27.587, 28.869, 30.144, 31.410, 32.671, 33.924, 35.172, 36.415,
    37.652, 38.885, 40.113, 41.337, 42.557, 43.773,
];

/// 95 % chi-squared critical value for `df` degrees of freedom
/// (Wilson–Hilferty approximation beyond 30).
pub fn chi2_critical_95(df: usize) -> f64 {
    if df == 0 {
        0.0
    } else if df <= 30 {
        CHI2_95[df - 1]
    } else {
        let d = df as f64;
        d * (1.0 - 2.0 / (9.0 * d) + 1.645 * (2.0 / (9.0 * d)).sqrt()).powi(3)
    }
}

/// Result of a Pearson chi-squared goodness-of-fit test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChiSquaredTest {
    /// The test statistic `Σ (O - E)² / E`.
    pub statistic: f64,
    /// Degrees of freedom (`bins - 3`: bin count minus one minus two
    /// fitted parameters).
    pub df: usize,
    /// The 95 % critical value for `df`.
    pub critical_95: f64,
}

impl ChiSquaredTest {
    /// Whether normality is *not* rejected at the 5 % level.
    pub fn consistent_with_normal(&self) -> bool {
        self.statistic <= self.critical_95
    }
}

/// Inverse CDF of the standard normal (Acklam-style rational
/// approximation, adequate for bin-edge computation).
#[allow(clippy::excessive_precision)] // canonical published coefficients
fn normal_quantile(p: f64) -> f64 {
    assert!((0.0..1.0).contains(&p) && p > 0.0, "quantile arg {p}");
    // Beasley-Springer-Moro.
    let a = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383577518672690e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    let b = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    let c = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    let d = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    let plow = 0.02425;
    if p < plow {
        let q = (-2.0 * p.ln()).sqrt();
        (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5])
            / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0)
    } else if p <= 1.0 - plow {
        let q = p - 0.5;
        let r = q * q;
        (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q
            / (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0)
    } else {
        -normal_quantile(1.0 - p)
    }
}

/// Pearson's chi-squared test of normality — the paper uses it to verify
/// the assumptions behind the Student's-t protocol. Samples are binned
/// into `bins` equiprobable intervals under the fitted normal; the
/// statistic compares observed and expected counts.
///
/// # Panics
/// Panics with fewer than `5 * bins` samples (expected counts would be
/// too small for the test to be valid) or `bins < 4`.
pub fn pearson_normality_test(samples: &[f64], bins: usize) -> ChiSquaredTest {
    assert!(bins >= 4, "need at least 4 bins");
    assert!(
        samples.len() >= 5 * bins,
        "need >= {} samples for {bins} bins, got {}",
        5 * bins,
        samples.len()
    );
    let stats = SampleStats::from_samples(samples);
    let (mean, sd) = (stats.mean, stats.stddev.max(1e-300));
    // Equiprobable bin edges under N(mean, sd).
    let edges: Vec<f64> = (1..bins)
        .map(|i| mean + sd * normal_quantile(i as f64 / bins as f64))
        .collect();
    let mut observed = vec![0usize; bins];
    for &x in samples {
        let bin = edges.partition_point(|&e| e < x);
        observed[bin] += 1;
    }
    let expected = samples.len() as f64 / bins as f64;
    let statistic: f64 = observed
        .iter()
        .map(|&o| {
            let d = o as f64 - expected;
            d * d / expected
        })
        .sum();
    let df = bins.saturating_sub(3).max(1);
    ChiSquaredTest {
        statistic,
        df,
        critical_95: chi2_critical_95(df),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t_quantiles_decrease_with_df() {
        assert!(t_quantile_975(1) > t_quantile_975(2));
        assert!(t_quantile_975(30) > t_quantile_975(31));
        assert_eq!(t_quantile_975(100), 1.96);
        assert_eq!(t_quantile_975(0), f64::INFINITY);
    }

    #[test]
    fn stats_of_constant_samples() {
        let s = SampleStats::from_samples(&[5.0, 5.0, 5.0, 5.0]);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.stddev, 0.0);
        assert_eq!(s.ci_half_width, 0.0);
        assert_eq!(s.relative_precision(), 0.0);
    }

    #[test]
    fn stats_known_values() {
        let s = SampleStats::from_samples(&[1.0, 2.0, 3.0]);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert!((s.stddev - 1.0).abs() < 1e-12);
        // CI half width = t(2) * 1 / sqrt(3).
        assert!((s.ci_half_width - 4.303 / 3.0_f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn single_sample_has_infinite_ci() {
        let s = SampleStats::from_samples(&[3.0]);
        assert_eq!(s.ci_half_width, f64::INFINITY);
    }

    #[test]
    fn protocol_stops_quickly_on_stable_measurements() {
        let mut count = 0;
        let stats = measure_to_confidence(MeasurementProtocol::default(), || {
            count += 1;
            10.0 + 0.001 * (count % 2) as f64
        });
        assert_eq!(stats.reps, 5); // min_reps suffices for tiny variance
        assert!(stats.relative_precision() <= 0.025);
    }

    #[test]
    fn protocol_keeps_sampling_noisy_measurements() {
        // Deterministic "noise": alternating large swings that shrink.
        let mut k = 0_u32;
        let stats = measure_to_confidence(
            MeasurementProtocol {
                precision: 0.025,
                min_reps: 5,
                max_reps: 500,
            },
            || {
                k += 1;
                10.0 + if k.is_multiple_of(2) { 1.0 } else { -1.0 }
            },
        );
        assert!(stats.reps > 5, "needed {} reps", stats.reps);
        assert!(
            stats.relative_precision() <= 0.025 || stats.reps == 500,
            "prec {}",
            stats.relative_precision()
        );
    }

    #[test]
    fn protocol_respects_max_reps() {
        let mut k = 0_f64;
        let stats = measure_to_confidence(
            MeasurementProtocol {
                precision: 1e-9,
                min_reps: 3,
                max_reps: 20,
            },
            || {
                k += 1.0;
                k // wildly non-converging
            },
        );
        assert_eq!(stats.reps, 20);
    }

    #[test]
    fn percent_spread_examples() {
        assert_eq!(percent_spread(&[1.0, 1.0, 1.0]), 0.0);
        // max 1.1, min 0.9, mean 1.0 -> 20 %.
        assert!((percent_spread(&[0.9, 1.0, 1.1]) - 20.0).abs() < 1e-9);
    }

    #[test]
    fn normal_quantile_symmetry_and_known_values() {
        assert!((normal_quantile(0.5)).abs() < 1e-9);
        assert!((normal_quantile(0.975) - 1.95996).abs() < 1e-3);
        assert!((normal_quantile(0.025) + 1.95996).abs() < 1e-3);
        assert!((normal_quantile(0.84134) - 1.0).abs() < 1e-3);
    }

    #[test]
    fn chi2_critical_values() {
        assert!((chi2_critical_95(1) - 3.841).abs() < 1e-3);
        assert!((chi2_critical_95(10) - 18.307).abs() < 1e-3);
        // Wilson-Hilferty beyond the table: df=40 is ~55.76.
        assert!((chi2_critical_95(40) - 55.76).abs() < 0.5);
    }

    #[test]
    fn normality_accepted_for_near_normal_samples() {
        // Sum of 8 deterministic quasi-uniforms per sample: CLT-normal.
        let samples: Vec<f64> = (0..400)
            .map(|i| {
                (0..8)
                    .map(|j| {
                        let x = ((i * 8 + j) as f64 * 0.6180339887498949).fract();
                        x - 0.5
                    })
                    .sum::<f64>()
            })
            .collect();
        let t = pearson_normality_test(&samples, 8);
        assert!(
            t.consistent_with_normal(),
            "stat {} > crit {}",
            t.statistic,
            t.critical_95
        );
    }

    #[test]
    fn normality_rejected_for_bimodal_samples() {
        // Two well-separated spikes — nothing like a normal.
        let samples: Vec<f64> = (0..400)
            .map(|i| if i % 2 == 0 { 0.0 } else { 10.0 } + (i % 5) as f64 * 1e-3)
            .collect();
        let t = pearson_normality_test(&samples, 8);
        assert!(!t.consistent_with_normal(), "stat {}", t.statistic);
    }

    #[test]
    #[should_panic(expected = "need >=")]
    fn normality_test_rejects_tiny_samples() {
        pearson_normality_test(&[1.0; 10], 8);
    }
}
