//! Speed functions — the paper's performance models.
//!
//! Following Section II, a processor's speed is a function of the problem
//! size assigned to it. The paper measures speed on square `x × x` matrix
//! multiplications as `s = 2·x³ / t` and indexes the function by the
//! partition *area* `a = x²` when partitioning (the simplifying assumption
//! at the end of Section II). We adopt the same convention: `flops(area)`
//! returns the achieved FLOP/s when the processor computes a partition of
//! `area` elements of `C`.
//!
//! Three families are provided, matching the models FuPerMod (the paper's
//! reference implementation for rectangular partitioning) supports:
//! constant models, piecewise-linear interpolated functional performance
//! models (FPMs), and Akima-spline FPMs.

/// A speed function of problem size (partition area, in matrix elements).
pub trait SpeedFunction: Send + Sync + 'static {
    /// Achieved FLOP/s at the given partition area. Must be positive for
    /// any non-negative area.
    fn flops(&self, area: f64) -> f64;

    /// Equivalent square problem size for an area (`x = sqrt(a)`), a
    /// convenience for plotting Fig. 5-style profiles.
    fn flops_at_square(&self, x: f64) -> f64 {
        self.flops(x * x)
    }
}

/// Constant performance model (CPM): speed does not depend on problem size.
/// This is the model of Kalinov/Beaumont and of the paper's Section VI-A.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConstantSpeed {
    flops: f64,
}

impl ConstantSpeed {
    /// Creates a constant-speed model.
    ///
    /// # Panics
    /// Panics unless `flops` is positive and finite.
    pub fn new(flops: f64) -> Self {
        assert!(flops > 0.0 && flops.is_finite(), "invalid speed {flops}");
        Self { flops }
    }
}

impl SpeedFunction for ConstantSpeed {
    fn flops(&self, _area: f64) -> f64 {
        self.flops
    }
}

/// A tabulated (possibly non-smooth) functional performance model with
/// piecewise-linear interpolation between sample points and constant
/// extrapolation beyond them. This is what the paper's load-imbalancing
/// partitioner consumes: discrete speed functions with real drops and
/// variations, no shape assumptions.
///
/// ```
/// use summagen_platform::speed::{SpeedFunction, TabulatedSpeed};
///
/// // A device that slows down sharply past area 1e6 (e.g. out-of-core).
/// let s = TabulatedSpeed::new(vec![(0.0, 1.0e12), (1.0e6, 1.0e12), (2.0e6, 0.4e12)]);
/// assert_eq!(s.flops(5.0e5), 1.0e12);
/// assert!(s.flops(1.5e6) < 1.0e12);
/// assert_eq!(s.flops(9.9e9), 0.4e12); // constant extrapolation
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TabulatedSpeed {
    /// `(area, flops)` samples sorted by area, strictly increasing areas.
    points: Vec<(f64, f64)>,
}

impl TabulatedSpeed {
    /// Builds a tabulated model from `(area, flops)` samples.
    ///
    /// # Panics
    /// Panics if fewer than one sample is given, if areas are not strictly
    /// increasing, or if any speed is non-positive.
    pub fn new(points: Vec<(f64, f64)>) -> Self {
        assert!(!points.is_empty(), "tabulated speed needs samples");
        for w in points.windows(2) {
            assert!(
                w[1].0 > w[0].0,
                "areas must be strictly increasing ({} then {})",
                w[0].0,
                w[1].0
            );
        }
        for &(a, s) in &points {
            assert!(a >= 0.0, "negative area {a}");
            assert!(s > 0.0 && s.is_finite(), "invalid speed {s} at area {a}");
        }
        Self { points }
    }

    /// Builds from `(x, flops)` samples on square problem sizes (`x × x`
    /// matrices), converting to areas — the form Fig. 5 is plotted in.
    pub fn from_square_sizes(points: Vec<(f64, f64)>) -> Self {
        Self::new(points.into_iter().map(|(x, s)| (x * x, s)).collect())
    }

    /// The sample points `(area, flops)`.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Largest sampled area.
    pub fn max_area(&self) -> f64 {
        self.points.last().unwrap().0
    }
}

impl SpeedFunction for TabulatedSpeed {
    fn flops(&self, area: f64) -> f64 {
        let pts = &self.points;
        if area <= pts[0].0 {
            return pts[0].1;
        }
        if area >= pts[pts.len() - 1].0 {
            return pts[pts.len() - 1].1;
        }
        // Binary search for the bracketing interval.
        let idx = pts.partition_point(|&(a, _)| a <= area);
        let (a0, s0) = pts[idx - 1];
        let (a1, s1) = pts[idx];
        let t = (area - a0) / (a1 - a0);
        s0 + t * (s1 - s0)
    }
}

/// Akima-spline interpolated speed function. Akima interpolation is local
/// and avoids the overshoot of cubic splines near abrupt changes, which is
/// why FuPerMod offers it for FPMs built from noisy measurements.
#[derive(Debug, Clone)]
pub struct AkimaSpline {
    xs: Vec<f64>,
    ys: Vec<f64>,
    /// Spline slopes at each knot.
    slopes: Vec<f64>,
}

impl AkimaSpline {
    /// Builds an Akima spline through `(area, flops)` samples.
    ///
    /// # Panics
    /// Panics with fewer than 3 points or non-increasing areas.
    pub fn new(points: Vec<(f64, f64)>) -> Self {
        assert!(points.len() >= 3, "Akima spline needs at least 3 points");
        for w in points.windows(2) {
            assert!(w[1].0 > w[0].0, "areas must be strictly increasing");
        }
        let n = points.len();
        let xs: Vec<f64> = points.iter().map(|p| p.0).collect();
        let ys: Vec<f64> = points.iter().map(|p| p.1).collect();

        // Segment slopes m[i] for i in 0..n-1, extended by two virtual
        // segments on each side (Akima's boundary treatment).
        let mut m = vec![0.0; n + 3];
        for i in 0..n - 1 {
            m[i + 2] = (ys[i + 1] - ys[i]) / (xs[i + 1] - xs[i]);
        }
        m[1] = 2.0 * m[2] - m[3];
        m[0] = 2.0 * m[1] - m[2];
        m[n + 1] = 2.0 * m[n] - m[n - 1];
        m[n + 2] = 2.0 * m[n + 1] - m[n];

        let mut slopes = vec![0.0; n];
        for i in 0..n {
            let w1 = (m[i + 3] - m[i + 2]).abs();
            let w2 = (m[i + 1] - m[i]).abs();
            slopes[i] = if w1 + w2 == 0.0 {
                0.5 * (m[i + 1] + m[i + 2])
            } else {
                (w1 * m[i + 1] + w2 * m[i + 2]) / (w1 + w2)
            };
        }
        Self { xs, ys, slopes }
    }
}

impl SpeedFunction for AkimaSpline {
    fn flops(&self, area: f64) -> f64 {
        let n = self.xs.len();
        if area <= self.xs[0] {
            return self.ys[0];
        }
        if area >= self.xs[n - 1] {
            return self.ys[n - 1];
        }
        let idx = self.xs.partition_point(|&a| a <= area) - 1;
        let (x0, x1) = (self.xs[idx], self.xs[idx + 1]);
        let (y0, y1) = (self.ys[idx], self.ys[idx + 1]);
        let (t0, t1) = (self.slopes[idx], self.slopes[idx + 1]);
        let h = x1 - x0;
        let t = (area - x0) / h;
        // Cubic Hermite basis.
        let h00 = 2.0 * t * t * t - 3.0 * t * t + 1.0;
        let h10 = t * t * t - 2.0 * t * t + t;
        let h01 = -2.0 * t * t * t + 3.0 * t * t;
        let h11 = t * t * t - t * t;
        // Speeds must stay positive: clamp to a small floor in case the
        // spline undershoots between noisy knots.
        (h00 * y0 + h10 * h * t0 + h01 * y1 + h11 * h * t1).max(1e-6 * y0.max(y1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_speed_ignores_area() {
        let s = ConstantSpeed::new(1.5e12);
        assert_eq!(s.flops(0.0), 1.5e12);
        assert_eq!(s.flops(1e9), 1.5e12);
        assert_eq!(s.flops_at_square(1000.0), 1.5e12);
    }

    #[test]
    #[should_panic(expected = "invalid speed")]
    fn constant_speed_rejects_zero() {
        ConstantSpeed::new(0.0);
    }

    #[test]
    fn tabulated_interpolates_linearly() {
        let s = TabulatedSpeed::new(vec![(0.0, 100.0), (10.0, 200.0), (20.0, 100.0)]);
        assert_eq!(s.flops(0.0), 100.0);
        assert_eq!(s.flops(5.0), 150.0);
        assert_eq!(s.flops(10.0), 200.0);
        assert_eq!(s.flops(15.0), 150.0);
    }

    #[test]
    fn tabulated_extrapolates_constantly() {
        let s = TabulatedSpeed::new(vec![(10.0, 50.0), (20.0, 80.0)]);
        assert_eq!(s.flops(0.0), 50.0);
        assert_eq!(s.flops(100.0), 80.0);
    }

    #[test]
    fn tabulated_from_square_sizes_squares_x() {
        let s = TabulatedSpeed::from_square_sizes(vec![(10.0, 1.0), (20.0, 2.0)]);
        assert_eq!(s.points()[0].0, 100.0);
        assert_eq!(s.points()[1].0, 400.0);
        assert_eq!(s.flops_at_square(20.0), 2.0);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn tabulated_rejects_unsorted() {
        TabulatedSpeed::new(vec![(10.0, 1.0), (5.0, 2.0)]);
    }

    #[test]
    fn tabulated_handles_non_smooth_drops() {
        // A sharp drop like the Phi's out-of-card transition.
        let s = TabulatedSpeed::new(vec![(0.0, 500.0), (99.0, 500.0), (100.0, 100.0)]);
        assert_eq!(s.flops(50.0), 500.0);
        assert!(s.flops(99.5) < 310.0);
        assert_eq!(s.flops(150.0), 100.0);
    }

    #[test]
    fn akima_interpolates_through_knots() {
        let pts = vec![(0.0, 1.0), (1.0, 2.0), (2.0, 0.5), (3.0, 3.0), (4.0, 2.0)];
        let s = AkimaSpline::new(pts.clone());
        for &(x, y) in &pts {
            // At interior knots the spline passes through the data; at the
            // boundaries we clamp.
            assert!(
                (s.flops(x) - y).abs() < 1e-9,
                "at {x}: {} vs {y}",
                s.flops(x)
            );
        }
    }

    #[test]
    fn akima_is_local_no_wild_overshoot() {
        // A step-like profile: Akima should not overshoot much above the
        // plateau, unlike a natural cubic spline.
        let pts = vec![
            (0.0, 1.0),
            (1.0, 1.0),
            (2.0, 1.0),
            (3.0, 10.0),
            (4.0, 10.0),
            (5.0, 10.0),
        ];
        let s = AkimaSpline::new(pts);
        for i in 0..=50 {
            let x = i as f64 * 0.1;
            let v = s.flops(x);
            assert!((0.9..=10.6).contains(&v), "overshoot at {x}: {v}");
        }
    }

    #[test]
    fn akima_stays_positive_on_noisy_data() {
        let pts = vec![(0.0, 10.0), (1.0, 0.5), (2.0, 9.0), (3.0, 0.4), (4.0, 8.0)];
        let s = AkimaSpline::new(pts);
        for i in 0..=400 {
            let x = i as f64 * 0.01;
            assert!(s.flops(x) > 0.0, "non-positive at {x}");
        }
    }

    #[test]
    #[should_panic(expected = "at least 3 points")]
    fn akima_rejects_two_points() {
        AkimaSpline::new(vec![(0.0, 1.0), (1.0, 2.0)]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn sorted_points() -> impl Strategy<Value = Vec<(f64, f64)>> {
        proptest::collection::vec((0.0f64..1e6, 1.0f64..1e12), 3..20).prop_map(|mut v| {
            v.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            v.dedup_by(|a, b| a.0 == b.0);
            // Ensure strictly increasing by nudging duplicates.
            for i in 1..v.len() {
                if v[i].0 <= v[i - 1].0 {
                    v[i].0 = v[i - 1].0 + 1.0;
                }
            }
            v
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Tabulated interpolation stays within the convex hull of the
        /// bracketing sample speeds.
        #[test]
        fn tabulated_bounded_by_samples(pts in sorted_points(), q in 0.0f64..2e6) {
            let s = TabulatedSpeed::new(pts.clone());
            let v = s.flops(q);
            let lo = pts.iter().map(|p| p.1).fold(f64::INFINITY, f64::min);
            let hi = pts.iter().map(|p| p.1).fold(0.0, f64::max);
            prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
        }

        /// Akima output is always positive (required by compute_time).
        #[test]
        fn akima_always_positive(pts in sorted_points(), q in 0.0f64..2e6) {
            prop_assume!(pts.len() >= 3);
            let s = AkimaSpline::new(pts);
            prop_assert!(s.flops(q) > 0.0);
        }
    }
}
