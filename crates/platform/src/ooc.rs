//! Out-of-core execution model for accelerator kernels.
//!
//! The paper uses ZZGemmOOC (GPU) and XeonPhiOOC (Phi) to multiply matrices
//! larger than the accelerator memory: tiles of `C` stay resident while
//! panels of `A` and `B` stream over PCIe. This module models the cost of
//! that scheme so the platform's speed functions show the same mechanics:
//!
//! * **In-core** (`3·x²·8·workspace ≤ memory`): one transfer of the three
//!   matrices plus the in-core kernel time. Transfers amortize as `x` grows,
//!   producing the rising ramp of Fig. 5.
//! * **Out-of-core**: for each `t × t` tile of `C`, a `t × x` panel of `A`
//!   and an `x × t` panel of `B` are staged, so the traffic grows as
//!   `16·x³/t` bytes — a *constant* overhead per flop, which is why the
//!   paper's speed functions flatten (rather than collapse) past the memory
//!   boundary, and an out-of-core kernel efficiency factor (tile switching,
//!   partial overlap) that produces the visible drop at the transition.

/// Cost model for a device that must stage data over a host link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OutOfCoreModel {
    /// Device memory in bytes.
    pub memory_bytes: u64,
    /// Host↔device link bandwidth in bytes/second.
    pub link_bandwidth: f64,
    /// Memory headroom multiplier for workspace (>= 1).
    pub workspace_factor: f64,
    /// Relative efficiency of the out-of-core kernel (0, 1].
    pub ooc_kernel_efficiency: f64,
}

impl OutOfCoreModel {
    /// Creates a model.
    pub fn new(memory_bytes: u64, link_bandwidth: f64) -> Self {
        assert!(link_bandwidth > 0.0, "non-positive link bandwidth");
        Self {
            memory_bytes,
            link_bandwidth,
            workspace_factor: 1.3,
            ooc_kernel_efficiency: 0.9,
        }
    }

    /// Sets the out-of-core kernel efficiency (builder style).
    pub fn with_kernel_efficiency(mut self, eff: f64) -> Self {
        assert!(eff > 0.0 && eff <= 1.0, "efficiency must be in (0, 1]");
        self.ooc_kernel_efficiency = eff;
        self
    }

    /// Largest square size that runs in-core.
    pub fn max_incore_x(&self) -> f64 {
        (self.memory_bytes as f64 / (3.0 * 8.0 * self.workspace_factor)).sqrt()
    }

    /// Whether a square `x × x` DGEMM fits in device memory.
    pub fn fits_incore(&self, x: f64) -> bool {
        x <= self.max_incore_x()
    }

    /// Tile edge used by the out-of-core schedule: the largest `t` whose
    /// resident working set (`t²` C tile plus two staging buffers) fits.
    pub fn tile_edge(&self, x: f64) -> f64 {
        let t = (self.memory_bytes as f64 / (8.0 * 4.0 * self.workspace_factor)).sqrt();
        t.min(x).max(1.0)
    }

    /// Total bytes moved over the link for a square `x × x` DGEMM.
    pub fn transfer_bytes(&self, x: f64) -> f64 {
        if self.fits_incore(x) {
            // A and B in, C out: 3·x²·8 bytes.
            3.0 * x * x * 8.0
        } else {
            let t = self.tile_edge(x);
            // (x/t)² tiles, each staging a t×x A panel and x×t B panel,
            // plus C in/out once: 2·x³/t·8 + 2·x²·8.
            16.0 * x * x * x / t + 16.0 * x * x
        }
    }

    /// Wall time of a square `x × x` DGEMM given the device's in-core
    /// kernel speed (FLOP/s), including all link transfers.
    pub fn execution_time(&self, x: f64, incore_flops: f64) -> f64 {
        assert!(incore_flops > 0.0, "non-positive kernel speed");
        if x == 0.0 {
            return 0.0;
        }
        let flops = 2.0 * x * x * x;
        let kernel = if self.fits_incore(x) {
            flops / incore_flops
        } else {
            flops / (incore_flops * self.ooc_kernel_efficiency)
        };
        kernel + self.transfer_bytes(x) / self.link_bandwidth
    }

    /// Effective speed (FLOP/s) of a square `x × x` DGEMM including
    /// transfers — the quantity the paper plots in Fig. 5 for the
    /// accelerator abstract processors.
    pub fn effective_flops(&self, x: f64, incore_flops: f64) -> f64 {
        if x == 0.0 {
            return incore_flops;
        }
        2.0 * x * x * x / self.execution_time(x, incore_flops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k40_like() -> OutOfCoreModel {
        OutOfCoreModel::new(12 << 30, 10.0e9)
    }

    fn phi_like() -> OutOfCoreModel {
        OutOfCoreModel::new(6 << 30, 7.0e9)
    }

    #[test]
    fn incore_boundary_matches_memory() {
        let m = k40_like();
        let limit = m.max_incore_x();
        assert!(m.fits_incore(limit - 1.0));
        assert!(!m.fits_incore(limit + 1.0));
        // 12 GB / (24 * 1.3) bytes per element ~ (20305)^2.
        assert!((20_000.0..21_000.0).contains(&limit), "limit {limit}");
    }

    #[test]
    fn phi_ooc_threshold_near_paper_value() {
        // The paper reports out-of-card computation past N = 13824 for the
        // Phi's 6 GB.
        let limit = phi_like().max_incore_x();
        assert!((13_500.0..15_000.0).contains(&limit), "limit {limit}");
    }

    #[test]
    fn effective_speed_ramps_up_in_core() {
        let m = k40_like();
        let s = 1.0e12;
        let small = m.effective_flops(1000.0, s);
        let big = m.effective_flops(15000.0, s);
        assert!(small < big, "transfer should dominate small sizes");
        assert!(big < s, "effective speed can never exceed kernel speed");
        assert!(big > 0.9 * s, "large in-core sizes amortize transfers");
    }

    #[test]
    fn ooc_drop_then_flattens() {
        let m = phi_like();
        let s = 0.45e12;
        let limit = m.max_incore_x();
        let before = m.effective_flops(limit * 0.99, s);
        let after = m.effective_flops(limit * 1.05, s);
        let far = m.effective_flops(limit * 2.0, s);
        assert!(after < before, "speed must drop at the OOC transition");
        // Asymptotically constant: far and after within ~10 %.
        assert!((far - after).abs() / after < 0.1, "far {far} after {after}");
    }

    #[test]
    fn transfer_bytes_incore_is_three_matrices() {
        let m = k40_like();
        assert_eq!(m.transfer_bytes(1000.0), 24.0e6);
    }

    #[test]
    fn ooc_transfer_grows_cubically() {
        let m = phi_like();
        let x1 = m.max_incore_x() * 1.5;
        let x2 = x1 * 2.0;
        // The x³/t term dominates but the 16·x² C-traffic term keeps the
        // ratio a little under the pure-cubic 8.
        let ratio = m.transfer_bytes(x2) / m.transfer_bytes(x1);
        assert!((6.0..8.5).contains(&ratio), "ratio {ratio} not ~cubic");
    }

    #[test]
    fn zero_size_costs_nothing() {
        assert_eq!(k40_like().execution_time(0.0, 1e12), 0.0);
    }

    #[test]
    fn tile_edge_never_exceeds_problem() {
        let m = phi_like();
        assert_eq!(m.tile_edge(100.0), 100.0);
        assert!(m.tile_edge(1e9) < 1e9);
    }
}
