//! The `reproduce bench` subcommand: the performance-regression harness.
//!
//! For each of the four paper shapes this runs the virtual-time pipeline
//! with the metrics registry installed and captures one schema-stamped
//! `BENCH_<shape>.json` document per shape:
//!
//! * the CPM phantom run at [`BENCH_N`] (makespan, achieved GFLOP/s,
//!   communication fraction, and the registry's histogram quantiles for
//!   send / receive-wait / broadcast latency and per-block GEMM time);
//! * the FPM point at [`BENCH_FPM_N`] through the load-imbalancing
//!   partitioner;
//! * the ABFT overhead pair at [`resilience::ABFT_N`] (protected vs
//!   unprotected makespan, resilience-time share, checkpoints).
//!
//! Every number is derived from the **virtual** clock, so two runs of
//! the same source tree produce byte-identical metric values — which is
//! what makes committed baselines meaningful: `bench --check <dir>`
//! reruns the harness and compares every numeric leaf against the
//! baseline document within a relative tolerance, exiting nonzero on
//! any regression. A folded-stack flamegraph (`flame_<shape>.folded`)
//! of each CPM run rides along for "where did the time go" triage.

use std::fs;
use std::io;
use std::path::Path;
use std::sync::Arc;

use summagen_comm::RuntimeMetrics;
use summagen_core::{simulate_observed, SimReport};
use summagen_partition::{proportional_areas, Shape, ALL_FOUR_SHAPES};
use summagen_platform::profile::hclserver1;
use summagen_trace::{folded_stacks, TraceRecorder};

use crate::json::{with_metadata, Json, SCHEMA_VERSION};
use crate::resilience::{self, AbftShapeRun};
use crate::{link_model, run_fpm_point, CPM_SPEEDS};

/// Problem size of the CPM regression run: the paper's smallest
/// Figure 6/8 point, large enough to exercise every communicator.
pub const BENCH_N: usize = 25_600;

/// Problem size of the FPM regression point (load-imbalancing
/// partitioner over the discrete speed functions).
pub const BENCH_FPM_N: usize = 8_192;

/// Default relative tolerance of `bench --check`. Virtual-time runs are
/// deterministic, so this only needs to absorb float formatting and
/// cross-platform libm noise — 1 % is generous.
pub const DEFAULT_CHECK_TOLERANCE: f64 = 0.01;

/// Everything measured about one shape's regression runs.
#[derive(Debug)]
pub struct BenchShapeRun {
    /// Shape that was run.
    pub shape: Shape,
    /// The CPM phantom run at [`BENCH_N`].
    pub cpm: SimReport,
    /// Metrics registry populated by the CPM run.
    pub metrics: Arc<RuntimeMetrics>,
    /// Folded-stack flamegraph of the CPM run (virtual-ns weights).
    pub folded: String,
    /// The FPM point at [`BENCH_FPM_N`].
    pub fpm: SimReport,
    /// Protected-vs-unprotected ABFT overhead runs.
    pub abft: AbftShapeRun,
}

/// Runs the three regression scenarios for one shape.
pub fn bench_shape(shape: Shape) -> BenchShapeRun {
    let platform = hclserver1();
    let areas = proportional_areas(BENCH_N, &CPM_SPEEDS);
    let spec = shape.build(BENCH_N, &areas);
    let metrics = RuntimeMetrics::fresh();
    let recorder = TraceRecorder::new(spec.nprocs);
    let cpm = simulate_observed(
        &spec,
        &platform,
        link_model(),
        Some(recorder.clone()),
        Some(metrics.clone()),
    );
    let folded = folded_stacks(&recorder.finish());
    let fpm = run_fpm_point(BENCH_FPM_N, shape, &platform);
    let abft = resilience::abft_shape_run(resilience::ABFT_N, shape);
    BenchShapeRun {
        shape,
        cpm,
        metrics,
        folded,
        fpm,
        abft,
    }
}

/// The schema-stamped regression document for one shape.
pub fn bench_json(run: &BenchShapeRun) -> Json {
    let m = &run.metrics;
    let cpm = &run.cpm;
    let doc = Json::obj([
        (
            "cpm",
            Json::obj([
                ("makespan_s", Json::from(cpm.exec_time)),
                ("comp_time_s", Json::from(cpm.comp_time)),
                ("comm_time_s", Json::from(cpm.comm_time)),
                (
                    "comm_fraction",
                    Json::from(cpm.comm_time / cpm.exec_time.max(1e-300)),
                ),
                ("gflops", Json::from(cpm.achieved_flops() / 1e9)),
            ]),
        ),
        (
            "fpm",
            Json::obj([
                ("makespan_s", Json::from(run.fpm.exec_time)),
                ("gflops", Json::from(run.fpm.achieved_flops() / 1e9)),
            ]),
        ),
        (
            "abft",
            Json::obj([
                ("protected_s", Json::from(run.abft.exec_protected)),
                ("unprotected_s", Json::from(run.abft.exec_unprotected)),
                ("slowdown_pct", Json::from(run.abft.slowdown_pct)),
                ("overhead_pct", Json::from(run.abft.overhead_pct)),
                ("checkpoints", Json::from(run.abft.checkpoints)),
                ("abft_spans", Json::from(run.abft.abft_spans)),
            ]),
        ),
        (
            "comm",
            Json::obj([
                ("send_msgs", Json::from(m.send_msgs.get())),
                ("send_bytes", Json::from(m.send_bytes.get())),
                ("bcast_bytes", Json::from(m.bcast_bytes.get())),
                ("send_seconds", hist_quantiles(&m.send_seconds)),
                ("recv_wait_seconds", hist_quantiles(&m.recv_wait_seconds)),
                ("bcast_seconds", hist_quantiles(&m.bcast_seconds)),
            ]),
        ),
        (
            "gemm",
            Json::obj([
                ("ops", Json::from(m.gemm.ops.get())),
                ("flops", Json::from(m.gemm.flops.get())),
                ("virtual_seconds", hist_quantiles(&m.gemm.virtual_seconds)),
                ("virtual_gflops", hist_quantiles(&m.gemm.virtual_gflops)),
            ]),
        ),
    ]);
    with_metadata(
        doc,
        Json::obj([
            ("command", Json::from("reproduce bench")),
            ("shape", Json::from(run.shape.name())),
            ("cpm_n", Json::from(BENCH_N)),
            ("fpm_n", Json::from(BENCH_FPM_N)),
            ("abft_n", Json::from(resilience::ABFT_N)),
            (
                "cpm_speeds",
                Json::arr(CPM_SPEEDS.iter().copied().map(Json::from)),
            ),
        ]),
    )
}

/// `{count, p50, p95, p99}` for one of the registry's histograms; the
/// quantile estimates are bucket upper bounds (≤ 6.25 % relative error)
/// and fully deterministic on the virtual clock.
fn hist_quantiles(h: &summagen_metrics::Histogram) -> Json {
    Json::obj([
        ("count", Json::from(h.count())),
        ("p50", Json::from(h.quantile(0.50))),
        ("p95", Json::from(h.quantile(0.95))),
        ("p99", Json::from(h.quantile(0.99))),
    ])
}

fn shape_slug(shape: Shape) -> String {
    shape.name().replace(' ', "-")
}

/// Runs all four shapes, writing `BENCH_<shape>.json` and
/// `flame_<shape>.folded` into `out_dir` and printing a summary table.
pub fn run_bench(out_dir: &Path) -> io::Result<()> {
    fs::create_dir_all(out_dir)?;
    println!(
        "\nBENCH — regression harness (CPM N = {BENCH_N}, FPM N = {BENCH_FPM_N}, \
         ABFT N = {}), output in {}",
        resilience::ABFT_N,
        out_dir.display()
    );
    println!(
        "{:>20} {:>12} {:>10} {:>8} {:>10} {:>12}",
        "shape", "makespan(s)", "GFLOP/s", "comm%", "abft+%", "p99 send(s)"
    );
    for shape in ALL_FOUR_SHAPES {
        let run = bench_shape(shape);
        let slug = shape_slug(shape);
        fs::write(
            out_dir.join(format!("BENCH_{slug}.json")),
            bench_json(&run).pretty(),
        )?;
        fs::write(out_dir.join(format!("flame_{slug}.folded")), &run.folded)?;
        println!(
            "{:>20} {:>12.4} {:>10.1} {:>7.2}% {:>9.2}% {:>12.3e}",
            shape.name(),
            run.cpm.exec_time,
            run.cpm.achieved_flops() / 1e9,
            100.0 * run.cpm.comm_time / run.cpm.exec_time.max(1e-300),
            run.abft.slowdown_pct,
            run.metrics.send_seconds.quantile(0.99),
        );
    }
    Ok(())
}

/// One `--check` violation, human-readable.
pub type CheckViolation = String;

/// Flattens every numeric leaf of a document into `(dotted.path, value)`
/// pairs. Array elements use their index as the path component.
fn numeric_leaves(prefix: &str, v: &Json, out: &mut Vec<(String, f64)>) {
    match v {
        Json::Num(x) => out.push((prefix.to_string(), *x)),
        Json::Obj(pairs) => {
            for (k, v) in pairs {
                let p = if prefix.is_empty() {
                    k.clone()
                } else {
                    format!("{prefix}.{k}")
                };
                numeric_leaves(&p, v, out);
            }
        }
        Json::Arr(items) => {
            for (i, v) in items.iter().enumerate() {
                numeric_leaves(&format!("{prefix}.{i}"), v, out);
            }
        }
        _ => {}
    }
}

/// Compares a fresh document against a baseline: every numeric leaf of
/// the baseline must exist in the fresh document and agree within
/// relative tolerance `tol` (absolute for values near zero). The
/// provenance `git_commit` is a string and is naturally ignored;
/// `schema_version` must match exactly.
pub fn compare_docs(label: &str, baseline: &Json, fresh: &Json, tol: f64) -> Vec<CheckViolation> {
    let mut violations = Vec::new();
    let base_schema = baseline.get("schema_version").and_then(Json::as_f64);
    if base_schema != Some(SCHEMA_VERSION as f64) {
        violations.push(format!(
            "{label}: baseline schema_version {base_schema:?} != {SCHEMA_VERSION} — \
             refresh the baseline (see EXPERIMENTS.md)"
        ));
        return violations;
    }
    let mut base_leaves = Vec::new();
    numeric_leaves("", baseline, &mut base_leaves);
    let mut fresh_leaves = Vec::new();
    numeric_leaves("", fresh, &mut fresh_leaves);
    let fresh_map: std::collections::BTreeMap<&str, f64> =
        fresh_leaves.iter().map(|(k, v)| (k.as_str(), *v)).collect();
    for (path, want) in &base_leaves {
        let Some(&got) = fresh_map.get(path.as_str()) else {
            violations.push(format!("{label}: metric '{path}' missing from fresh run"));
            continue;
        };
        let scale = want.abs().max(1e-12);
        let rel = (got - want).abs() / scale;
        if rel > tol {
            violations.push(format!(
                "{label}: '{path}' regressed — baseline {want}, fresh {got} \
                 ({:+.2}% vs tolerance ±{:.2}%)",
                100.0 * (got - want) / scale,
                100.0 * tol
            ));
        }
    }
    violations
}

/// Reruns the harness and checks each shape's fresh document against
/// `BENCH_<shape>.json` in `baseline_dir`. Returns all violations; an
/// empty list means the run is within tolerance.
pub fn check_bench(baseline_dir: &Path, tol: f64) -> io::Result<Vec<CheckViolation>> {
    let mut violations = Vec::new();
    println!(
        "\nBENCH CHECK — fresh run vs baselines in {} (tolerance ±{:.2}%)",
        baseline_dir.display(),
        100.0 * tol
    );
    for shape in ALL_FOUR_SHAPES {
        let slug = shape_slug(shape);
        let path = baseline_dir.join(format!("BENCH_{slug}.json"));
        let text = fs::read_to_string(&path)?;
        let baseline = Json::parse(&text)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("{path:?}: {e}")))?;
        let fresh = bench_json(&bench_shape(shape));
        let v = compare_docs(shape.name(), &baseline, &fresh, tol);
        println!(
            "  {:<20} {}",
            shape.name(),
            if v.is_empty() {
                "ok".to_string()
            } else {
                format!("{} violation(s)", v.len())
            }
        );
        violations.extend(v);
    }
    Ok(violations)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_json_is_deterministic_and_parseable() {
        let a = bench_json(&bench_shape(Shape::SquareCorner));
        let b = bench_json(&bench_shape(Shape::SquareCorner));
        // Virtual-time determinism: identical documents run-to-run.
        assert_eq!(a.pretty(), b.pretty());
        let parsed = Json::parse(&a.pretty()).expect("own output parses");
        assert!(
            parsed
                .path("cpm.makespan_s")
                .and_then(Json::as_f64)
                .unwrap()
                > 0.0
        );
        assert!(parsed.path("gemm.flops").and_then(Json::as_f64).unwrap() > 0.0);
        assert!(
            parsed
                .path("comm.send_seconds.count")
                .and_then(Json::as_f64)
                .unwrap()
                > 0.0
        );
        assert_eq!(
            parsed.get("schema_version").and_then(Json::as_f64),
            Some(SCHEMA_VERSION as f64)
        );
    }

    #[test]
    fn compare_accepts_identical_and_rejects_perturbed() {
        let doc = bench_json(&bench_shape(Shape::OneDRectangular));
        assert!(compare_docs("self", &doc, &doc, 0.0).is_empty());

        // Perturb one metric by 10%: must be flagged at 5% tolerance.
        let perturbed = perturb(&doc, "cpm.makespan_s", 1.10);
        let v = compare_docs("perturbed", &perturbed, &doc, 0.05);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("cpm.makespan_s"));

        // A missing metric is also a violation.
        let mut extra = doc.clone();
        if let Json::Obj(pairs) = &mut extra {
            pairs.push(("invented".to_string(), Json::from(1.0f64)));
        }
        let v = compare_docs("missing", &extra, &doc, 0.05);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("invented"));
    }

    #[test]
    fn compare_rejects_schema_mismatch() {
        let doc = Json::obj([("schema_version", Json::from(999u32))]);
        let v = compare_docs("schema", &doc, &doc, 0.05);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("schema_version"));
    }

    /// Returns a copy of `doc` with the numeric leaf at `path` scaled.
    fn perturb(doc: &Json, path: &str, factor: f64) -> Json {
        fn walk(v: &Json, parts: &[&str], factor: f64) -> Json {
            match v {
                Json::Obj(pairs) => Json::Obj(
                    pairs
                        .iter()
                        .map(|(k, val)| {
                            if parts.first() == Some(&k.as_str()) {
                                if parts.len() == 1 {
                                    let x = val.as_f64().expect("numeric leaf");
                                    (k.clone(), Json::Num(x * factor))
                                } else {
                                    (k.clone(), walk(val, &parts[1..], factor))
                                }
                            } else {
                                (k.clone(), val.clone())
                            }
                        })
                        .collect(),
                ),
                other => other.clone(),
            }
        }
        let parts: Vec<&str> = path.split('.').collect();
        walk(doc, &parts, factor)
    }
}
