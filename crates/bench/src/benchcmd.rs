//! The `reproduce bench` subcommand: the performance-regression harness.
//!
//! For each of the four paper shapes this runs the virtual-time pipeline
//! with the metrics registry installed and captures one schema-stamped
//! `BENCH_<shape>.json` document per shape:
//!
//! * the CPM phantom run at [`BENCH_N`] (makespan, achieved GFLOP/s,
//!   communication fraction, and the registry's histogram quantiles for
//!   send / receive-wait / broadcast latency and per-block GEMM time);
//! * the FPM point at [`BENCH_FPM_N`] through the load-imbalancing
//!   partitioner;
//! * the ABFT overhead pair at [`resilience::ABFT_N`] (protected vs
//!   unprotected makespan, resilience-time share, checkpoints).
//!
//! Every number is derived from the **virtual** clock, so two runs of
//! the same source tree produce byte-identical metric values — which is
//! what makes committed baselines meaningful: `bench --check <dir>`
//! reruns the harness and compares every numeric leaf against the
//! baseline document within a relative tolerance, exiting nonzero on
//! any regression. A folded-stack flamegraph (`flame_<shape>.folded`)
//! of each CPM run rides along for "where did the time go" triage.

use std::fs;
use std::io;
use std::path::Path;
use std::sync::Arc;

use summagen_comm::{Backend, RuntimeMetrics};
use summagen_core::{simulate_observed_on, SimReport};
use summagen_partition::{proportional_areas, Shape, ALL_FOUR_SHAPES};
use summagen_platform::profile::hclserver1;
use summagen_trace::{folded_stacks, TraceRecorder};

use crate::json::{with_metadata, Json, SCHEMA_VERSION};
use crate::resilience::{self, AbftShapeRun};
use crate::{link_model, run_fpm_point, CPM_SPEEDS};

/// Problem size of the CPM regression run: the paper's smallest
/// Figure 6/8 point, large enough to exercise every communicator.
pub const BENCH_N: usize = 25_600;

/// Problem size of the FPM regression point (load-imbalancing
/// partitioner over the discrete speed functions).
pub const BENCH_FPM_N: usize = 8_192;

/// Default relative tolerance of `bench --check`. Virtual-time runs are
/// deterministic, so this only needs to absorb float formatting and
/// cross-platform libm noise — 1 % is generous.
pub const DEFAULT_CHECK_TOLERANCE: f64 = 0.01;

/// Everything measured about one shape's regression runs.
#[derive(Debug)]
pub struct BenchShapeRun {
    /// Shape that was run.
    pub shape: Shape,
    /// The CPM phantom run at [`BENCH_N`].
    pub cpm: SimReport,
    /// Metrics registry populated by the CPM run.
    pub metrics: Arc<RuntimeMetrics>,
    /// Folded-stack flamegraph of the CPM run (virtual-ns weights).
    pub folded: String,
    /// The FPM point at [`BENCH_FPM_N`].
    pub fpm: SimReport,
    /// Protected-vs-unprotected ABFT overhead runs.
    pub abft: AbftShapeRun,
    /// Transport backend the CPM run executed over. Virtual time is
    /// backend-blind, so the metric values are identical either way;
    /// the field records which wire actually carried the run.
    pub backend: Backend,
}

/// Runs the three regression scenarios for one shape, with the CPM run
/// carried over `backend`.
pub fn bench_shape(shape: Shape, backend: Backend) -> BenchShapeRun {
    let platform = hclserver1();
    let areas = proportional_areas(BENCH_N, &CPM_SPEEDS);
    let spec = shape.build(BENCH_N, &areas);
    let metrics = RuntimeMetrics::fresh();
    let recorder = TraceRecorder::new(spec.nprocs);
    let cpm = simulate_observed_on(
        &spec,
        &platform,
        link_model(),
        Some(recorder.clone()),
        Some(metrics.clone()),
        backend,
    );
    let folded = folded_stacks(&recorder.finish());
    let fpm = run_fpm_point(BENCH_FPM_N, shape, &platform);
    let abft = resilience::abft_shape_run(resilience::ABFT_N, shape);
    BenchShapeRun {
        shape,
        cpm,
        metrics,
        folded,
        fpm,
        abft,
        backend,
    }
}

/// The schema-stamped regression document for one shape.
pub fn bench_json(run: &BenchShapeRun) -> Json {
    let m = &run.metrics;
    let cpm = &run.cpm;
    let doc = Json::obj([
        (
            "cpm",
            Json::obj([
                ("makespan_s", Json::from(cpm.exec_time)),
                ("comp_time_s", Json::from(cpm.comp_time)),
                ("comm_time_s", Json::from(cpm.comm_time)),
                (
                    "comm_fraction",
                    Json::from(cpm.comm_time / cpm.exec_time.max(1e-300)),
                ),
                ("gflops", Json::from(cpm.achieved_flops() / 1e9)),
            ]),
        ),
        (
            "fpm",
            Json::obj([
                ("makespan_s", Json::from(run.fpm.exec_time)),
                ("gflops", Json::from(run.fpm.achieved_flops() / 1e9)),
            ]),
        ),
        (
            "abft",
            Json::obj([
                ("protected_s", Json::from(run.abft.exec_protected)),
                ("unprotected_s", Json::from(run.abft.exec_unprotected)),
                ("slowdown_pct", Json::from(run.abft.slowdown_pct)),
                ("overhead_pct", Json::from(run.abft.overhead_pct)),
                ("checkpoints", Json::from(run.abft.checkpoints)),
                ("abft_spans", Json::from(run.abft.abft_spans)),
            ]),
        ),
        (
            "comm",
            Json::obj([
                ("send_msgs", Json::from(m.send_msgs.get())),
                ("send_bytes", Json::from(m.send_bytes.get())),
                ("bcast_bytes", Json::from(m.bcast_bytes.get())),
                ("send_seconds", hist_quantiles(&m.send_seconds)),
                ("recv_wait_seconds", hist_quantiles(&m.recv_wait_seconds)),
                ("bcast_seconds", hist_quantiles(&m.bcast_seconds)),
            ]),
        ),
        (
            "gemm",
            Json::obj([
                ("ops", Json::from(m.gemm.ops.get())),
                ("flops", Json::from(m.gemm.flops.get())),
                ("virtual_seconds", hist_quantiles(&m.gemm.virtual_seconds)),
                ("virtual_gflops", hist_quantiles(&m.gemm.virtual_gflops)),
            ]),
        ),
    ]);
    with_metadata(
        doc,
        Json::obj([
            ("command", Json::from("reproduce bench")),
            ("backend", Json::from(run.backend.name())),
            ("shape", Json::from(run.shape.name())),
            ("cpm_n", Json::from(BENCH_N)),
            ("fpm_n", Json::from(BENCH_FPM_N)),
            ("abft_n", Json::from(resilience::ABFT_N)),
            (
                "cpm_speeds",
                Json::arr(CPM_SPEEDS.iter().copied().map(Json::from)),
            ),
        ]),
    )
}

/// `{count, p50, p95, p99}` for one of the registry's histograms; the
/// quantile estimates are bucket upper bounds (≤ 6.25 % relative error)
/// and fully deterministic on the virtual clock.
fn hist_quantiles(h: &summagen_metrics::Histogram) -> Json {
    Json::obj([
        ("count", Json::from(h.count())),
        ("p50", Json::from(h.quantile(0.50))),
        ("p95", Json::from(h.quantile(0.95))),
        ("p99", Json::from(h.quantile(0.99))),
    ])
}

fn shape_slug(shape: Shape) -> String {
    shape.name().replace(' ', "-")
}

/// Artifact name for one shape's document: channel runs keep the
/// historical `BENCH_<shape>.json` so committed baselines stay valid;
/// other backends get a `_<backend>` suffix and never collide with them.
pub fn bench_artifact_name(shape: Shape, backend: Backend) -> String {
    let slug = shape_slug(shape);
    match backend {
        Backend::Channel => format!("BENCH_{slug}.json"),
        other => format!("BENCH_{slug}_{}.json", other.name()),
    }
}

/// Runs all four shapes over `backend`, writing `BENCH_<shape>.json`
/// (suffixed with the backend name off the default channel) and
/// `flame_<shape>.folded` into `out_dir` and printing a summary table.
pub fn run_bench(out_dir: &Path, backend: Backend) -> io::Result<()> {
    fs::create_dir_all(out_dir)?;
    println!(
        "\nBENCH — regression harness (CPM N = {BENCH_N}, FPM N = {BENCH_FPM_N}, \
         ABFT N = {}, backend = {backend}), output in {}",
        resilience::ABFT_N,
        out_dir.display()
    );
    println!(
        "{:>20} {:>12} {:>10} {:>8} {:>10} {:>12}",
        "shape", "makespan(s)", "GFLOP/s", "comm%", "abft+%", "p99 send(s)"
    );
    for shape in ALL_FOUR_SHAPES {
        let run = bench_shape(shape, backend);
        let slug = shape_slug(shape);
        fs::write(
            out_dir.join(bench_artifact_name(shape, backend)),
            bench_json(&run).pretty(),
        )?;
        fs::write(out_dir.join(format!("flame_{slug}.folded")), &run.folded)?;
        println!(
            "{:>20} {:>12.4} {:>10.1} {:>7.2}% {:>9.2}% {:>12.3e}",
            shape.name(),
            run.cpm.exec_time,
            run.cpm.achieved_flops() / 1e9,
            100.0 * run.cpm.comm_time / run.cpm.exec_time.max(1e-300),
            run.abft.slowdown_pct,
            run.metrics.send_seconds.quantile(0.99),
        );
    }
    Ok(())
}

/// One `--check` violation, human-readable.
pub type CheckViolation = String;

/// Why a `--check` run could not even be attempted — distinct from a
/// [`CheckOutcome`] with violations (the comparison ran and failed).
/// Every variant names the offending path, so a typo'd `--check DIR`
/// fails with the directory it looked in rather than a bare "No such
/// file or directory".
#[derive(Debug)]
pub enum CheckError {
    /// The baseline directory does not exist (or is not a directory).
    MissingBaselineDir(std::path::PathBuf),
    /// A baseline artifact is missing or unreadable.
    UnreadableBaseline(std::path::PathBuf, io::Error),
    /// A baseline artifact exists but is not parseable JSON.
    MalformedBaseline(std::path::PathBuf, String),
}

impl std::fmt::Display for CheckError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckError::MissingBaselineDir(dir) => write!(
                f,
                "baseline directory '{}' does not exist — run the export first \
                 (e.g. `reproduce bench --out {}`) or point --check at a committed baseline",
                dir.display(),
                dir.display()
            ),
            CheckError::UnreadableBaseline(path, e) => {
                write!(f, "baseline '{}' unreadable: {e}", path.display())
            }
            CheckError::MalformedBaseline(path, e) => {
                write!(f, "baseline '{}' is not valid JSON: {e}", path.display())
            }
        }
    }
}

impl std::error::Error for CheckError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckError::UnreadableBaseline(_, e) => Some(e),
            _ => None,
        }
    }
}

/// Reads and parses one baseline artifact, wrapping both failure modes
/// with the offending path. Shared by `bench --check` and
/// `insight --check`.
pub fn read_baseline(path: &Path) -> Result<Json, CheckError> {
    let text = fs::read_to_string(path)
        .map_err(|e| CheckError::UnreadableBaseline(path.to_path_buf(), e))?;
    Json::parse(&text).map_err(|e| CheckError::MalformedBaseline(path.to_path_buf(), e))
}

/// Fails fast with a typed error if `baseline_dir` is not a directory,
/// before any expensive fresh runs are attempted.
pub fn require_baseline_dir(baseline_dir: &Path) -> Result<(), CheckError> {
    if baseline_dir.is_dir() {
        Ok(())
    } else {
        Err(CheckError::MissingBaselineDir(baseline_dir.to_path_buf()))
    }
}

/// The relative drift of one numeric leaf between baseline and fresh
/// documents; `--check` reports the worst one on failure so the first
/// place to look is named instead of buried in a violation list.
#[derive(Debug, Clone, PartialEq)]
pub struct LeafDrift {
    /// Dotted path of the leaf, prefixed with the document label
    /// (e.g. `square-corner: summary.exec_time_s`).
    pub path: String,
    /// The baseline value.
    pub baseline: f64,
    /// The freshly measured value.
    pub fresh: f64,
    /// `|fresh - baseline|` relative to the baseline magnitude.
    pub rel: f64,
}

impl std::fmt::Display for LeafDrift {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "'{}' drifted {:+.2}% (baseline {}, fresh {})",
            self.path,
            100.0 * (self.fresh - self.baseline) / self.baseline.abs().max(1e-12),
            self.baseline,
            self.fresh
        )
    }
}

/// Everything a `--check` run learned: the violations (empty = pass)
/// plus the worst-drifting leaf across every compared document, even
/// when that drift is within tolerance.
#[derive(Debug, Default)]
pub struct CheckOutcome {
    /// Out-of-tolerance (or structural) violations.
    pub violations: Vec<CheckViolation>,
    /// The numeric leaf with the largest relative drift seen anywhere.
    pub worst: Option<LeafDrift>,
}

impl CheckOutcome {
    pub(crate) fn absorb(&mut self, drift: Option<LeafDrift>) {
        if let Some(d) = drift {
            if self.worst.as_ref().is_none_or(|w| d.rel > w.rel) {
                self.worst = Some(d);
            }
        }
    }
}

/// Flattens every numeric leaf of a document into `(dotted.path, value)`
/// pairs. Array elements use their index as the path component.
fn numeric_leaves(prefix: &str, v: &Json, out: &mut Vec<(String, f64)>) {
    match v {
        Json::Num(x) => out.push((prefix.to_string(), *x)),
        Json::Obj(pairs) => {
            for (k, v) in pairs {
                let p = if prefix.is_empty() {
                    k.clone()
                } else {
                    format!("{prefix}.{k}")
                };
                numeric_leaves(&p, v, out);
            }
        }
        Json::Arr(items) => {
            for (i, v) in items.iter().enumerate() {
                numeric_leaves(&format!("{prefix}.{i}"), v, out);
            }
        }
        _ => {}
    }
}

/// Compares a fresh document against a baseline: every numeric leaf of
/// the baseline must exist in the fresh document and agree within
/// relative tolerance `tol` (absolute for values near zero). The
/// provenance `git_commit` is a string and is naturally ignored;
/// `schema_version` must match exactly. When *both* documents record a
/// `run_config.backend`, they must match — a channel baseline checked
/// against a TCP rerun (or vice versa) is not a like-for-like
/// comparison, even though the virtual-time numbers should agree.
/// Baselines predating the field compare against any backend.
pub fn compare_docs(label: &str, baseline: &Json, fresh: &Json, tol: f64) -> Vec<CheckViolation> {
    compare_docs_drift(label, baseline, fresh, tol).0
}

/// [`compare_docs`], additionally reporting the worst-drifting numeric
/// leaf of the pair (whether or not it violated the tolerance).
pub fn compare_docs_drift(
    label: &str,
    baseline: &Json,
    fresh: &Json,
    tol: f64,
) -> (Vec<CheckViolation>, Option<LeafDrift>) {
    let mut violations = Vec::new();
    let mut worst: Option<LeafDrift> = None;
    let base_schema = baseline.get("schema_version").and_then(Json::as_f64);
    if base_schema != Some(SCHEMA_VERSION as f64) {
        violations.push(format!(
            "{label}: baseline schema_version {base_schema:?} != {SCHEMA_VERSION} — \
             refresh the baseline (see EXPERIMENTS.md)"
        ));
        return (violations, worst);
    }
    let backend_of = |doc: &Json| {
        doc.path("run_config.backend")
            .and_then(Json::as_str)
            .map(str::to_string)
    };
    if let (Some(base_be), Some(fresh_be)) = (backend_of(baseline), backend_of(fresh)) {
        if base_be != fresh_be {
            violations.push(format!(
                "{label}: backend mismatch — baseline ran over '{base_be}', fresh run over \
                 '{fresh_be}'; check like-for-like or refresh the baseline"
            ));
            return (violations, worst);
        }
    }
    let mut base_leaves = Vec::new();
    numeric_leaves("", baseline, &mut base_leaves);
    let mut fresh_leaves = Vec::new();
    numeric_leaves("", fresh, &mut fresh_leaves);
    let fresh_map: std::collections::BTreeMap<&str, f64> =
        fresh_leaves.iter().map(|(k, v)| (k.as_str(), *v)).collect();
    for (path, want) in &base_leaves {
        let Some(&got) = fresh_map.get(path.as_str()) else {
            violations.push(format!("{label}: metric '{path}' missing from fresh run"));
            continue;
        };
        // schema_version was matched exactly above; its zero drift
        // would only dilute the worst-leaf report, so skip it.
        if path == "schema_version" {
            continue;
        }
        let scale = want.abs().max(1e-12);
        let rel = (got - want).abs() / scale;
        if worst.as_ref().is_none_or(|w| rel > w.rel) {
            worst = Some(LeafDrift {
                path: format!("{label}: {path}"),
                baseline: *want,
                fresh: got,
                rel,
            });
        }
        if rel > tol {
            violations.push(format!(
                "{label}: '{path}' regressed — baseline {want}, fresh {got} \
                 ({:+.2}% vs tolerance ±{:.2}%)",
                100.0 * (got - want) / scale,
                100.0 * tol
            ));
        }
    }
    (violations, worst)
}

/// Reruns the harness over `backend` and checks each shape's fresh
/// document against the matching artifact in `baseline_dir` (channel
/// baselines are the unsuffixed `BENCH_<shape>.json`). Returns every
/// violation (empty = within tolerance) plus the worst-drifting leaf
/// across all shapes, so a failure names where to look first. A missing
/// or unreadable baseline is a typed [`CheckError`] naming the path —
/// detected before the expensive fresh runs start.
pub fn check_bench(
    baseline_dir: &Path,
    tol: f64,
    backend: Backend,
) -> Result<CheckOutcome, CheckError> {
    require_baseline_dir(baseline_dir)?;
    let mut outcome = CheckOutcome::default();
    println!(
        "\nBENCH CHECK — fresh {backend} run vs baselines in {} (tolerance ±{:.2}%)",
        baseline_dir.display(),
        100.0 * tol
    );
    for shape in ALL_FOUR_SHAPES {
        let path = baseline_dir.join(bench_artifact_name(shape, backend));
        let baseline = read_baseline(&path)?;
        let fresh = bench_json(&bench_shape(shape, backend));
        let (v, drift) = compare_docs_drift(shape.name(), &baseline, &fresh, tol);
        println!(
            "  {:<20} {}",
            shape.name(),
            if v.is_empty() {
                "ok".to_string()
            } else {
                format!("{} violation(s)", v.len())
            }
        );
        outcome.violations.extend(v);
        outcome.absorb(drift);
    }
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_against_a_missing_baseline_dir_is_a_typed_error_naming_the_path() {
        let dir = Path::new("target/no-such-baseline-dir");
        let err = check_bench(dir, 0.01, Backend::Channel).unwrap_err();
        match &err {
            CheckError::MissingBaselineDir(p) => assert_eq!(p, dir),
            other => panic!("expected MissingBaselineDir, got {other:?}"),
        }
        let msg = err.to_string();
        assert!(msg.contains("target/no-such-baseline-dir"), "{msg}");
        assert!(msg.contains("does not exist"), "{msg}");
    }

    #[test]
    fn unreadable_and_malformed_baselines_name_the_offending_path() {
        let dir = std::env::temp_dir().join("summagen-check-error-test");
        fs::create_dir_all(&dir).unwrap();

        let missing = dir.join("BENCH_nope.json");
        match read_baseline(&missing) {
            Err(CheckError::UnreadableBaseline(p, _)) => assert_eq!(p, missing),
            other => panic!("expected UnreadableBaseline, got {other:?}"),
        }

        let bad = dir.join("BENCH_bad.json");
        fs::write(&bad, "{ this is not json").unwrap();
        match read_baseline(&bad) {
            Err(CheckError::MalformedBaseline(p, _)) => assert_eq!(p, bad),
            other => panic!("expected MalformedBaseline, got {other:?}"),
        }
        // The dir exists, so the fast pre-check passes.
        assert!(require_baseline_dir(&dir).is_ok());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bench_json_is_deterministic_and_parseable() {
        let a = bench_json(&bench_shape(Shape::SquareCorner, Backend::Channel));
        let b = bench_json(&bench_shape(Shape::SquareCorner, Backend::Channel));
        // Virtual-time determinism: identical documents run-to-run.
        assert_eq!(a.pretty(), b.pretty());
        let parsed = Json::parse(&a.pretty()).expect("own output parses");
        assert!(
            parsed
                .path("cpm.makespan_s")
                .and_then(Json::as_f64)
                .unwrap()
                > 0.0
        );
        assert!(parsed.path("gemm.flops").and_then(Json::as_f64).unwrap() > 0.0);
        assert!(
            parsed
                .path("comm.send_seconds.count")
                .and_then(Json::as_f64)
                .unwrap()
                > 0.0
        );
        assert_eq!(
            parsed.get("schema_version").and_then(Json::as_f64),
            Some(SCHEMA_VERSION as f64)
        );
        assert_eq!(
            parsed.path("run_config.backend").and_then(Json::as_str),
            Some("channel")
        );
    }

    #[test]
    fn bench_over_tcp_is_bit_identical_and_stamped() {
        // Virtual time is backend-blind: the TCP document differs from
        // the channel one only in its `run_config.backend` stamp.
        let chan = bench_json(&bench_shape(Shape::SquareCorner, Backend::Channel));
        let tcp = bench_json(&bench_shape(Shape::SquareCorner, Backend::Tcp));
        assert_eq!(
            tcp.path("run_config.backend").and_then(Json::as_str),
            Some("tcp")
        );
        assert_eq!(
            chan.pretty().replace("\"backend\": \"channel\"", ""),
            tcp.pretty().replace("\"backend\": \"tcp\"", "")
        );
        assert_eq!(
            bench_artifact_name(Shape::SquareCorner, Backend::Tcp),
            "BENCH_square-corner_tcp.json"
        );
    }

    #[test]
    fn compare_rejects_cross_backend_checks_but_tolerates_legacy_baselines() {
        let chan = bench_json(&bench_shape(Shape::OneDRectangular, Backend::Channel));
        let tcp = bench_json(&bench_shape(Shape::OneDRectangular, Backend::Tcp));
        let v = compare_docs("cross", &chan, &tcp, 0.05);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("backend mismatch"), "{v:?}");

        // A baseline predating the field compares against any backend.
        let mut legacy = chan.clone();
        if let Json::Obj(pairs) = &mut legacy {
            for (k, val) in pairs.iter_mut() {
                if k == "run_config" {
                    if let Json::Obj(cfg) = val {
                        cfg.retain(|(ck, _)| ck != "backend");
                    }
                }
            }
        }
        assert!(compare_docs("legacy", &legacy, &tcp, 0.05).is_empty());
    }

    #[test]
    fn compare_accepts_identical_and_rejects_perturbed() {
        let doc = bench_json(&bench_shape(Shape::OneDRectangular, Backend::Channel));
        assert!(compare_docs("self", &doc, &doc, 0.0).is_empty());

        // Perturb one metric by 10%: must be flagged at 5% tolerance.
        let perturbed = perturb(&doc, "cpm.makespan_s", 1.10);
        let v = compare_docs("perturbed", &perturbed, &doc, 0.05);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("cpm.makespan_s"));

        // A missing metric is also a violation.
        let mut extra = doc.clone();
        if let Json::Obj(pairs) = &mut extra {
            pairs.push(("invented".to_string(), Json::from(1.0f64)));
        }
        let v = compare_docs("missing", &extra, &doc, 0.05);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("invented"));
    }

    #[test]
    fn worst_drift_names_the_most_perturbed_leaf() {
        let doc = bench_json(&bench_shape(Shape::OneDRectangular, Backend::Channel));

        // Identical documents: every leaf drifts 0%, but a worst leaf is
        // still reported (ties resolve to the first).
        let (v, worst) = compare_docs_drift("self", &doc, &doc, 0.0);
        assert!(v.is_empty());
        assert_eq!(worst.as_ref().map(|w| w.rel), Some(0.0));

        // Two perturbed leaves: the bigger drift wins, even though both
        // violate tolerance, and it renders with path + percentage.
        let perturbed = perturb(&perturb(&doc, "cpm.makespan_s", 1.10), "fpm.gflops", 1.50);
        let (v, worst) = compare_docs_drift("perturbed", &perturbed, &doc, 0.05);
        assert_eq!(v.len(), 2, "{v:?}");
        let worst = worst.expect("drift reported");
        assert!(worst.path.contains("fpm.gflops"), "{worst:?}");
        assert!((worst.rel - 1.0 / 3.0).abs() < 1e-12, "{worst:?}");
        let line = worst.to_string();
        assert!(line.contains("fpm.gflops") && line.contains('%'), "{line}");
    }

    #[test]
    fn compare_rejects_schema_mismatch() {
        let doc = Json::obj([("schema_version", Json::from(999u32))]);
        let v = compare_docs("schema", &doc, &doc, 0.05);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("schema_version"));
    }

    /// Returns a copy of `doc` with the numeric leaf at `path` scaled.
    fn perturb(doc: &Json, path: &str, factor: f64) -> Json {
        fn walk(v: &Json, parts: &[&str], factor: f64) -> Json {
            match v {
                Json::Obj(pairs) => Json::Obj(
                    pairs
                        .iter()
                        .map(|(k, val)| {
                            if parts.first() == Some(&k.as_str()) {
                                if parts.len() == 1 {
                                    let x = val.as_f64().expect("numeric leaf");
                                    (k.clone(), Json::Num(x * factor))
                                } else {
                                    (k.clone(), walk(val, &parts[1..], factor))
                                }
                            } else {
                                (k.clone(), val.clone())
                            }
                        })
                        .collect(),
                ),
                other => other.clone(),
            }
        }
        let parts: Vec<&str> = path.split('.').collect();
        walk(doc, &parts, factor)
    }
}
