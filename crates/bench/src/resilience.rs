//! The `reproduce abft` subcommand and the machine-readable recovery
//! artifact: where resilience time goes, measured rather than asserted.
//!
//! `reproduce abft` runs every paper shape twice through the
//! checksum-protected executor ([`summagen_core::multiply_abft`]):
//!
//! * a **clean** traced run against the unprotected baseline, which yields
//!   the ABFT overhead — the share of the virtual makespan spent in
//!   verify/correct/checkpoint/rollback spans, and the end-to-end slowdown
//!   against [`summagen_core::multiply_with_cost`] on the same partition;
//! * a **corrupted** run with a deterministic wire flip and a local-block
//!   flip, which must be detected and corrected in place (attempts = 1)
//!   with the final product still matching the fault-free reference.
//!
//! Artifacts per shape: `abft_<shape>.json` (schema-stamped summary) and
//! `abft_trace_<shape>.json` (Perfetto file whose op tracks show the
//! `abft-verify` / `abft-checkpoint` spans tiling against sends and
//! GEMMs). `reproduce recovery --json` emits the companion document for
//! the unprotected shrink-and-retry path, with per-cause failure counts
//! and the recompute fraction, so checkpointed and full-restart recovery
//! are comparable from artifacts alone.

use std::fs;
use std::io;
use std::path::Path;
use std::time::Duration;

use summagen_comm::{FaultPlan, HockneyModel};
use summagen_core::{
    multiply_abft, multiply_abft_traced, multiply_panelled_with_cost, multiply_with_recovery,
    AbftOptions, AbftRunResult, ExecutionMode, RecoveryOptions,
};
use summagen_matrix::{gemm_naive, max_abs_diff, random_matrix, DenseMatrix, GemmKernel};
use summagen_partition::{proportional_areas, Shape, ALL_FOUR_SHAPES};
use summagen_trace::{metrics, perfetto_json, TraceRecorder};

use crate::json::{with_metadata, Json};
use crate::CPM_SPEEDS;

/// Problem size of the ABFT overhead runs: big enough that every shape
/// has multiple panels (so checkpoints actually happen), small enough
/// that the eight real-GEMM runs stay a smoke test.
pub const ABFT_N: usize = 96;

/// Checkpoint interval of the overhead runs: every panel boundary, the
/// worst case for checkpoint cost and therefore the honest overhead bound.
pub const ABFT_CHECKPOINT_INTERVAL: usize = 1;

fn mode() -> ExecutionMode {
    ExecutionMode::RealWith(GemmKernel::Blocked)
}

fn abft_options() -> AbftOptions {
    AbftOptions {
        checkpoint_interval: ABFT_CHECKPOINT_INTERVAL,
        ..AbftOptions::default()
    }
}

fn recovery_options() -> RecoveryOptions {
    RecoveryOptions {
        max_attempts: 4,
        retry_backoff: 0.25,
        recv_timeout: Duration::from_millis(1_000),
        ..RecoveryOptions::default()
    }
}

fn reference(a: &DenseMatrix, b: &DenseMatrix) -> DenseMatrix {
    let n = a.rows();
    let mut c = DenseMatrix::zeros(n, n);
    gemm_naive(
        n,
        n,
        n,
        1.0,
        a.as_slice(),
        n,
        b.as_slice(),
        n,
        0.0,
        c.as_mut_slice(),
        n,
    );
    c
}

/// Everything measured about one shape's protected runs.
#[derive(Debug)]
pub struct AbftShapeRun {
    /// Shape that was run.
    pub shape: Shape,
    /// Problem size.
    pub n: usize,
    /// Virtual execution time of the clean protected run.
    pub exec_protected: f64,
    /// Virtual execution time of the unprotected baseline on the same
    /// partition and cost model.
    pub exec_unprotected: f64,
    /// Largest per-rank share of busy time spent in ABFT spans.
    pub abft_time_max: f64,
    /// Sum over ranks of ABFT span time.
    pub abft_time_total: f64,
    /// `100 · abft_time_total / (nranks · makespan)` — the share of the
    /// run's total rank-time spent on resilience.
    pub overhead_pct: f64,
    /// `100 · (exec_protected − exec_unprotected) / exec_unprotected` —
    /// the end-to-end makespan cost of protection (checksum traffic,
    /// widened GEMMs, verification).
    pub slowdown_pct: f64,
    /// Complete checkpoints captured by the clean run.
    pub checkpoints: usize,
    /// ABFT leaf spans in the clean run's trace.
    pub abft_spans: usize,
    /// The Perfetto export of the clean run (kept so callers can assert
    /// on / write the span stream).
    pub perfetto: String,
    /// The corrupted run's outcome (attempts, detections, final error).
    pub corrupted: AbftRunResult,
    /// `max |C − C_ref|` of the corrupted run.
    pub corrupted_max_err: f64,
}

/// Runs the clean-overhead and corrupted scenarios for one shape.
pub fn abft_shape_run(n: usize, shape: Shape) -> AbftShapeRun {
    let a = random_matrix(n, n, 71);
    let b = random_matrix(n, n, 72);
    let want = reference(&a, &b);
    let cost = HockneyModel::intra_node();
    let opts = recovery_options();
    let abft = abft_options();

    // Clean protected run, traced.
    let areas = proportional_areas(n, &CPM_SPEEDS);
    let spec = shape.build(n, &areas);
    let recorder = TraceRecorder::new(spec.nprocs);
    let protected = multiply_abft_traced(
        shape,
        &CPM_SPEEDS,
        &a,
        &b,
        mode(),
        cost,
        &[],
        &opts,
        &abft,
        recorder.clone(),
    )
    .expect("fault-free protected run succeeds");
    assert!(
        max_abs_diff(&protected.run.c, &want) < 1e-9,
        "{}: protected product drifted",
        shape.name()
    );
    let trace = recorder.finish();
    let m = metrics(&trace);
    let abft_time_max = m
        .per_rank
        .iter()
        .map(|r| r.abft_time)
        .fold(0.0_f64, f64::max);
    let abft_time_total: f64 = m.per_rank.iter().map(|r| r.abft_time).sum();
    let abft_spans = trace
        .iter()
        .filter(|s| matches!(s.record.kind, summagen_comm::SpanKind::Abft { .. }))
        .count();
    let perfetto = perfetto_json(&trace, &format!("SummaGen ABFT {} N={n}", shape.name()));

    // Unprotected baseline: the panelled executor the ABFT path mirrors
    // (same gather structure and panel traffic, minus the checksums), on
    // the identical partition and cost model.
    let baseline = multiply_panelled_with_cost(&spec, &a, &b, GemmKernel::Blocked, cost);

    // Corrupted run: one wire flip early plus one local-block flip at the
    // second panel boundary. Both are single-element events, so the run
    // must finish on the first attempt with the corruption repaired.
    let plan = FaultPlan::new()
        .corrupt_message(0, 1, 0, 11, 1e3)
        .corrupt_block(2, 1, 7, -2.0);
    let corrupted = multiply_abft(
        shape,
        &CPM_SPEEDS,
        &a,
        &b,
        mode(),
        cost,
        std::slice::from_ref(&plan),
        &opts,
        &abft,
    )
    .expect("correctable corruption never fails the run");
    let corrupted_max_err = max_abs_diff(&corrupted.run.c, &want);

    AbftShapeRun {
        shape,
        n,
        exec_protected: protected.run.exec_time,
        exec_unprotected: baseline.exec_time,
        abft_time_max,
        abft_time_total,
        overhead_pct: 100.0 * abft_time_total / (m.per_rank.len() as f64 * m.makespan).max(1e-300),
        slowdown_pct: 100.0 * (protected.run.exec_time - baseline.exec_time)
            / baseline.exec_time.max(1e-300),
        checkpoints: protected.abft.checkpoints,
        abft_spans,
        perfetto,
        corrupted,
        corrupted_max_err,
    }
}

/// The schema-stamped JSON summary for one shape's ABFT runs.
pub fn abft_json(run: &AbftShapeRun) -> Json {
    let cr = &run.corrupted;
    let doc = Json::obj([
        (
            "clean",
            Json::obj([
                ("exec_protected_s", Json::from(run.exec_protected)),
                ("exec_unprotected_s", Json::from(run.exec_unprotected)),
                ("abft_time_max_s", Json::from(run.abft_time_max)),
                ("abft_time_total_s", Json::from(run.abft_time_total)),
                ("abft_overhead_pct", Json::from(run.overhead_pct)),
                ("makespan_slowdown_pct", Json::from(run.slowdown_pct)),
                ("checkpoints", Json::from(run.checkpoints)),
                ("abft_spans", Json::from(run.abft_spans)),
            ]),
        ),
        (
            "corrupted",
            Json::obj([
                ("attempts", Json::from(cr.abft.attempts)),
                ("detected", Json::from(cr.abft.detected)),
                ("corrected", Json::from(cr.abft.corrected)),
                ("uncorrectable", Json::from(cr.abft.uncorrectable)),
                ("recompute_fraction", Json::from(cr.abft.recompute_fraction)),
                ("max_abs_err", Json::from(run.corrupted_max_err)),
            ]),
        ),
    ]);
    with_metadata(
        doc,
        Json::obj([
            ("command", Json::from("reproduce abft")),
            ("n", Json::from(run.n)),
            ("shape", Json::from(run.shape.name())),
            ("checkpoint_interval", Json::from(ABFT_CHECKPOINT_INTERVAL)),
            (
                "cpm_speeds",
                Json::arr(CPM_SPEEDS.iter().copied().map(Json::from)),
            ),
        ]),
    )
}

fn shape_slug(shape: Shape) -> String {
    shape.name().replace(' ', "-")
}

/// Runs the four paper shapes, writing `abft_<shape>.json` and
/// `abft_trace_<shape>.json` into `out_dir` and printing the overhead
/// table. Panics (failing CI) if a trace is missing the verify or
/// checkpoint spans, or if a corrupted run was not fully repaired.
pub fn run_abft(n: usize, out_dir: &Path) -> io::Result<()> {
    fs::create_dir_all(out_dir)?;
    println!(
        "\nABFT — checksum-protected SummaGen overhead (N = {n}, checkpoint every {ABFT_CHECKPOINT_INTERVAL} panel), output in {}",
        out_dir.display()
    );
    println!(
        "{:>20}{:>14}{:>14}{:>10}{:>10}{:>7}{:>10}{:>11}{:>10}",
        "shape",
        "protect (s)",
        "plain (s)",
        "slow%",
        "abft%",
        "ckpts",
        "spans",
        "corrected",
        "max err"
    );
    for shape in ALL_FOUR_SHAPES {
        let run = abft_shape_run(n, shape);
        assert!(
            run.perfetto.contains("abft-verify") && run.perfetto.contains("abft-checkpoint"),
            "{}: Perfetto export is missing ABFT spans",
            shape.name()
        );
        assert_eq!(
            run.corrupted.abft.attempts,
            1,
            "{}: correctable corruption must not trigger recovery",
            shape.name()
        );
        assert!(
            run.corrupted.abft.corrected >= 1,
            "{}: the injected corruption was never seen",
            shape.name()
        );
        assert!(
            run.corrupted_max_err < 1e-9,
            "{}: corrupted run returned a wrong product (err {:.2e})",
            shape.name(),
            run.corrupted_max_err
        );

        let slug = shape_slug(shape);
        let json_path = out_dir.join(format!("abft_{slug}.json"));
        fs::write(&json_path, abft_json(&run).pretty())?;
        let trace_path = out_dir.join(format!("abft_trace_{slug}.json"));
        fs::write(&trace_path, &run.perfetto)?;

        println!(
            "{:>20}{:>14.6}{:>14.6}{:>9.2}%{:>9.3}%{:>7}{:>10}{:>11}{:>10.1e}",
            shape.name(),
            run.exec_protected,
            run.exec_unprotected,
            run.slowdown_pct,
            run.overhead_pct,
            run.checkpoints,
            run.abft_spans,
            run.corrupted.abft.corrected,
            run.corrupted_max_err,
        );
    }
    println!(
        "\nload the abft_trace files at https://ui.perfetto.dev to see where resilience time goes"
    );
    Ok(())
}

/// One row of the machine-readable recovery artifact: a `(shape, seed)`
/// cell of the seeded chaos grid run through the *unprotected*
/// shrink-and-retry path.
#[derive(Debug)]
pub struct RecoveryRow {
    pub shape: Shape,
    pub seed: u64,
    /// `"clean"`, `"recovered"`, or `"error"`.
    pub outcome: &'static str,
    pub attempts: usize,
    pub failed_devices: Vec<usize>,
    /// `(FailureCause::kind_label, count)` over every failed attempt.
    pub failure_causes: Vec<(String, usize)>,
    /// 1.0 for every successful unprotected run (full restart); the
    /// checkpointed artifact reports less when it resumes mid-plan.
    pub recompute_fraction: f64,
    /// `max |C − C_ref|`, or `None` when the run ended in a typed error.
    pub max_err: Option<f64>,
    /// Display string of the typed error, when one was returned.
    pub error: Option<String>,
}

/// Runs the `(shape, seed)` grid of `reproduce recovery` and reduces each
/// cell to its comparable parts.
pub fn recovery_series(n: usize, seeds: &[u64]) -> Vec<RecoveryRow> {
    let a = random_matrix(n, n, 41);
    let b = random_matrix(n, n, 42);
    let want = reference(&a, &b);
    let opts = RecoveryOptions {
        max_attempts: 3,
        retry_backoff: 0.25,
        recv_timeout: Duration::from_millis(500),
        ..RecoveryOptions::default()
    };
    let mut rows = Vec::new();
    for shape in ALL_FOUR_SHAPES {
        for &seed in seeds {
            let plan = FaultPlan::seeded(seed, CPM_SPEEDS.len());
            let row = match multiply_with_recovery(
                shape,
                &CPM_SPEEDS,
                &a,
                &b,
                ExecutionMode::Real,
                summagen_comm::ZeroCost,
                std::slice::from_ref(&plan),
                &opts,
            ) {
                Ok(res) => {
                    let max_err = Some(max_abs_diff(&res.c, &want));
                    match res.recovery {
                        Some(rep) => RecoveryRow {
                            shape,
                            seed,
                            outcome: "recovered",
                            attempts: rep.attempts,
                            failed_devices: rep.failed_devices,
                            failure_causes: rep.failure_causes,
                            recompute_fraction: rep.recompute_fraction,
                            max_err,
                            error: None,
                        },
                        None => RecoveryRow {
                            shape,
                            seed,
                            outcome: "clean",
                            attempts: 1,
                            failed_devices: Vec::new(),
                            failure_causes: Vec::new(),
                            recompute_fraction: 1.0,
                            max_err,
                            error: None,
                        },
                    }
                }
                Err(e) => RecoveryRow {
                    shape,
                    seed,
                    outcome: "error",
                    attempts: 0,
                    failed_devices: Vec::new(),
                    failure_causes: Vec::new(),
                    recompute_fraction: 0.0,
                    max_err: None,
                    error: Some(e.to_string()),
                },
            };
            rows.push(row);
        }
    }
    rows
}

/// The seeds of the machine-readable recovery artifact — aligned with the
/// CI chaos matrix so each job's artifact covers its seed.
pub const RECOVERY_SEEDS: [u64; 4] = [1, 2, 3, 4];

/// The schema-stamped `reproduce recovery --json` document.
pub fn recovery_json(n: usize) -> Json {
    let rows = recovery_series(n, &RECOVERY_SEEDS);
    let doc = Json::obj([(
        "runs",
        Json::arr(rows.iter().map(|r| {
            Json::obj([
                ("shape", Json::from(r.shape.name())),
                ("seed", Json::from(r.seed)),
                ("outcome", Json::from(r.outcome)),
                ("attempts", Json::from(r.attempts)),
                (
                    "failed_devices",
                    Json::arr(r.failed_devices.iter().copied().map(Json::from)),
                ),
                (
                    "failure_causes",
                    Json::arr(r.failure_causes.iter().map(|(label, count)| {
                        Json::obj([
                            ("cause", Json::from(label.as_str())),
                            ("count", Json::from(*count)),
                        ])
                    })),
                ),
                ("recompute_fraction", Json::from(r.recompute_fraction)),
                ("max_abs_err", Json::from(r.max_err)),
                ("error", Json::from(r.error.as_deref())),
            ])
        })),
    )]);
    with_metadata(
        doc,
        Json::obj([
            ("command", Json::from("reproduce recovery --json")),
            ("n", Json::from(n)),
            (
                "seeds",
                Json::arr(RECOVERY_SEEDS.iter().copied().map(Json::from)),
            ),
            (
                "cpm_speeds",
                Json::arr(CPM_SPEEDS.iter().copied().map(Json::from)),
            ),
        ]),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abft_shape_run_measures_overhead_and_repairs_corruption() {
        let run = abft_shape_run(48, Shape::OneDRectangular);
        assert!(run.exec_protected > 0.0);
        assert!(run.abft_time_total > 0.0, "verification must cost time");
        assert!(run.overhead_pct > 0.0 && run.overhead_pct < 50.0);
        assert!(run.checkpoints >= 1, "every boundary is checkpointed");
        assert!(run.abft_spans > 0);
        assert!(run.perfetto.contains("abft-verify"));
        assert!(run.perfetto.contains("abft-checkpoint"));
        assert_eq!(run.corrupted.abft.attempts, 1);
        assert!(run.corrupted.abft.corrected >= 1);
        assert!(run.corrupted_max_err < 1e-9);

        let doc = abft_json(&run).pretty();
        assert!(doc.contains("\"schema_version\""));
        assert!(doc.contains("\"abft_overhead_pct\""));
        assert!(doc.contains("\"recompute_fraction\""));
        assert!(doc.contains("\"shape\": \"1D rectangular\""));
    }

    #[test]
    fn recovery_json_counts_causes_and_recompute() {
        let doc = recovery_json(32).pretty();
        assert!(doc.contains("\"schema_version\""));
        assert!(doc.contains("\"failure_causes\""));
        assert!(doc.contains("\"recompute_fraction\""));
        // The seeded grid is deterministic, and at least one cell of it
        // recovers from an injected kill.
        assert!(doc.contains("\"outcome\": \"recovered\""), "{doc}");
        assert!(doc.contains("\"cause\": \"injected-kill\""), "{doc}");
    }

    #[test]
    fn recovery_rows_cover_the_full_grid_deterministically() {
        let rows = recovery_series(32, &[2, 3]);
        assert_eq!(rows.len(), ALL_FOUR_SHAPES.len() * 2);
        for r in &rows {
            if let Some(err) = r.max_err {
                assert!(
                    err < 1e-9,
                    "{} seed {}: err {err:.2e}",
                    r.shape.name(),
                    r.seed
                );
            }
            if r.outcome == "recovered" {
                assert!(r.attempts >= 2);
                assert!(!r.failure_causes.is_empty());
                assert!((r.recompute_fraction - 1.0).abs() < 1e-12);
            }
        }
        let again = recovery_series(32, &[2, 3]);
        for (x, y) in rows.iter().zip(&again) {
            assert_eq!(x.outcome, y.outcome);
            assert_eq!(x.attempts, y.attempts);
            assert_eq!(x.failure_causes, y.failure_causes);
        }
    }
}
