//! Minimal JSON document builder used by the `reproduce --json` output.
//!
//! The build environment has no crates.io access, so instead of `serde_json`
//! the harness emits its machine-readable output through this small value
//! type. It only needs to *produce* JSON (the consumers are plotting
//! scripts), so there is no parser here; `PartitionSpec::from_json` in
//! `summagen-partition` covers the one place the workspace reads JSON back.

use std::fmt::Write as _;

/// A JSON value. Construct with the `From` impls and [`Json::obj`] /
/// [`Json::arr`], then render with [`Json::pretty`].
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn obj<K: Into<String>, V: Into<Json>>(pairs: impl IntoIterator<Item = (K, V)>) -> Json {
        Json::Obj(
            pairs
                .into_iter()
                .map(|(k, v)| (k.into(), v.into()))
                .collect(),
        )
    }

    /// Builds an array from values.
    pub fn arr<V: Into<Json>>(items: impl IntoIterator<Item = V>) -> Json {
        Json::Arr(items.into_iter().map(Into::into).collect())
    }

    /// Renders with two-space indentation, matching `serde_json`'s
    /// `to_string_pretty` layout closely enough for diff-friendly output.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(x) => {
                if x.is_finite() {
                    if *x == x.trunc() && x.abs() < 1e15 {
                        let _ = write!(out, "{}", *x as i64);
                    } else {
                        let _ = write!(out, "{x}");
                    }
                } else {
                    // JSON has no NaN/Inf; null is the conventional stand-in.
                    out.push_str("null");
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\t' => out.push_str("\\t"),
                        '\r' => out.push_str("\\r"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    pad(out, indent + 1);
                    item.write(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                pad(out, indent);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    pad(out, indent + 1);
                    Json::Str(k.clone()).write(out, indent + 1);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                    if i + 1 < pairs.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                pad(out, indent);
                out.push('}');
            }
        }
    }
}

/// Version of the machine-readable output schema. Bump whenever a key is
/// renamed, removed, or changes meaning, so downstream plotting scripts
/// can detect documents they do not understand.
pub const SCHEMA_VERSION: u32 = 1;

/// The git commit the binary's source tree was at, or `"unknown"` when
/// the repository (or git itself) is unavailable — machine-readable
/// output must never fail just because provenance is missing.
pub fn git_commit() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Prepends the standard provenance header — `schema_version`, the git
/// commit, and the run configuration — to a JSON document. Non-object
/// documents are wrapped under a `"data"` key so the header always sits
/// at the top level.
pub fn with_metadata(doc: Json, run_config: Json) -> Json {
    let mut pairs = vec![
        ("schema_version".to_string(), Json::from(SCHEMA_VERSION)),
        ("git_commit".to_string(), Json::from(git_commit())),
        ("run_config".to_string(), run_config),
    ];
    match doc {
        Json::Obj(body) => pairs.extend(body),
        other => pairs.push(("data".to_string(), other)),
    }
    Json::Obj(pairs)
}

fn pad(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}
impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Num(x)
    }
}
impl From<usize> for Json {
    fn from(x: usize) -> Json {
        Json::Num(x as f64)
    }
}
impl From<u64> for Json {
    fn from(x: u64) -> Json {
        Json::Num(x as f64)
    }
}
impl From<i64> for Json {
    fn from(x: i64) -> Json {
        Json::Num(x as f64)
    }
}
impl From<u32> for Json {
    fn from(x: u32) -> Json {
        Json::Num(x as f64)
    }
}
impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}
impl<T: Into<Json>> From<Option<T>> for Json {
    fn from(o: Option<T>) -> Json {
        match o {
            Some(v) => v.into(),
            None => Json::Null,
        }
    }
}
impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Json {
        Json::arr(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_prints_nested_document() {
        let doc = Json::obj([
            ("figure", Json::from("fig9")),
            ("n", Json::from(1024usize)),
            (
                "series",
                Json::arr([Json::obj([
                    ("x", Json::from(1.5f64)),
                    ("ok", Json::from(true)),
                ])]),
            ),
            ("empty", Json::Arr(vec![])),
            ("note", Json::from(Option::<&str>::None)),
        ]);
        let s = doc.pretty();
        assert!(s.contains("\"figure\": \"fig9\""));
        assert!(s.contains("\"n\": 1024"));
        assert!(s.contains("\"x\": 1.5"));
        assert!(s.contains("\"empty\": []"));
        assert!(s.contains("\"note\": null"));
        assert!(s.starts_with("{\n"));
        assert!(s.ends_with('}'));
    }

    #[test]
    fn metadata_header_leads_the_document() {
        let doc = with_metadata(
            Json::obj([("series", Json::arr([Json::from(1.0f64)]))]),
            Json::obj([("figure", Json::from("fig6"))]),
        );
        let Json::Obj(pairs) = &doc else {
            panic!("expected object")
        };
        let keys: Vec<&str> = pairs.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(
            keys,
            ["schema_version", "git_commit", "run_config", "series"]
        );
        let s = doc.pretty();
        assert!(s.contains("\"schema_version\": 1"));
        assert!(s.contains("\"figure\": \"fig6\""));
        // git_commit is a 40-hex SHA in a checkout, "unknown" otherwise;
        // either way it is a non-empty string.
        assert!(!git_commit().is_empty());
    }

    #[test]
    fn metadata_wraps_non_object_documents() {
        let doc = with_metadata(Json::arr([Json::from(1usize)]), Json::Null);
        let s = doc.pretty();
        assert!(s.contains("\"data\": ["));
    }

    #[test]
    fn escapes_strings_and_maps_non_finite_to_null() {
        assert_eq!(Json::from("a\"b\\c\n").pretty(), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(Json::Num(f64::NAN).pretty(), "null");
        assert_eq!(Json::Num(f64::INFINITY).pretty(), "null");
    }
}
