//! Minimal JSON document builder and parser used by the `reproduce`
//! machine-readable output.
//!
//! The build environment has no crates.io access, so instead of
//! `serde_json` the harness emits its machine-readable output through
//! this small value type. [`Json::parse`] is the matching reader — it
//! exists for `bench --check`, which loads committed `BENCH_*.json`
//! baselines back in to compare against a fresh run.

use std::fmt::Write as _;

/// A JSON value. Construct with the `From` impls and [`Json::obj`] /
/// [`Json::arr`], then render with [`Json::pretty`].
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn obj<K: Into<String>, V: Into<Json>>(pairs: impl IntoIterator<Item = (K, V)>) -> Json {
        Json::Obj(
            pairs
                .into_iter()
                .map(|(k, v)| (k.into(), v.into()))
                .collect(),
        )
    }

    /// Builds an array from values.
    pub fn arr<V: Into<Json>>(items: impl IntoIterator<Item = V>) -> Json {
        Json::Arr(items.into_iter().map(Into::into).collect())
    }

    /// Renders with two-space indentation, matching `serde_json`'s
    /// `to_string_pretty` layout closely enough for diff-friendly output.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    /// Parses a JSON document. Covers everything [`Json::pretty`] can
    /// emit (and standard JSON generally); numbers become `f64`, which
    /// is exact for the integer range the harness uses.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing content at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Object member lookup; `None` on non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Walks a `.`-separated path of object keys (`"metrics.makespan_s"`).
    pub fn path(&self, path: &str) -> Option<&Json> {
        path.split('.').try_fold(self, |v, key| v.get(key))
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(x) => {
                if x.is_finite() {
                    if *x == x.trunc() && x.abs() < 1e15 {
                        let _ = write!(out, "{}", *x as i64);
                    } else {
                        let _ = write!(out, "{x}");
                    }
                } else {
                    // JSON has no NaN/Inf; null is the conventional stand-in.
                    out.push_str("null");
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\t' => out.push_str("\\t"),
                        '\r' => out.push_str("\\r"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    pad(out, indent + 1);
                    item.write(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                pad(out, indent);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    pad(out, indent + 1);
                    Json::Str(k.clone()).write(out, indent + 1);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                    if i + 1 < pairs.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                pad(out, indent);
                out.push('}');
            }
        }
    }
}

/// Recursive-descent JSON reader over the raw bytes.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            pairs.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                            let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                            // Surrogate pairs don't occur in harness output;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {:?}", other.map(|c| c as char))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // byte boundaries are trustworthy).
                    let rest =
                        std::str::from_utf8(&self.bytes[self.pos..]).map_err(|e| e.to_string())?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number {text:?} at byte {start}"))
    }
}

/// Version of the machine-readable output schema. Bump whenever a key is
/// renamed, removed, or changes meaning, so downstream plotting scripts
/// can detect documents they do not understand.
pub const SCHEMA_VERSION: u32 = 1;

/// The git commit the binary's source tree was at, or `"unknown"` when
/// the repository (or git itself) is unavailable — machine-readable
/// output must never fail just because provenance is missing.
pub fn git_commit() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Prepends the standard provenance header — `schema_version`, the git
/// commit, and the run configuration — to a JSON document. Non-object
/// documents are wrapped under a `"data"` key so the header always sits
/// at the top level.
pub fn with_metadata(doc: Json, run_config: Json) -> Json {
    let mut pairs = vec![
        ("schema_version".to_string(), Json::from(SCHEMA_VERSION)),
        ("git_commit".to_string(), Json::from(git_commit())),
        ("run_config".to_string(), run_config),
    ];
    match doc {
        Json::Obj(body) => pairs.extend(body),
        other => pairs.push(("data".to_string(), other)),
    }
    Json::Obj(pairs)
}

fn pad(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}
impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Num(x)
    }
}
impl From<usize> for Json {
    fn from(x: usize) -> Json {
        Json::Num(x as f64)
    }
}
impl From<u64> for Json {
    fn from(x: u64) -> Json {
        Json::Num(x as f64)
    }
}
impl From<i64> for Json {
    fn from(x: i64) -> Json {
        Json::Num(x as f64)
    }
}
impl From<u32> for Json {
    fn from(x: u32) -> Json {
        Json::Num(x as f64)
    }
}
impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}
impl<T: Into<Json>> From<Option<T>> for Json {
    fn from(o: Option<T>) -> Json {
        match o {
            Some(v) => v.into(),
            None => Json::Null,
        }
    }
}
impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Json {
        Json::arr(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_prints_nested_document() {
        let doc = Json::obj([
            ("figure", Json::from("fig9")),
            ("n", Json::from(1024usize)),
            (
                "series",
                Json::arr([Json::obj([
                    ("x", Json::from(1.5f64)),
                    ("ok", Json::from(true)),
                ])]),
            ),
            ("empty", Json::Arr(vec![])),
            ("note", Json::from(Option::<&str>::None)),
        ]);
        let s = doc.pretty();
        assert!(s.contains("\"figure\": \"fig9\""));
        assert!(s.contains("\"n\": 1024"));
        assert!(s.contains("\"x\": 1.5"));
        assert!(s.contains("\"empty\": []"));
        assert!(s.contains("\"note\": null"));
        assert!(s.starts_with("{\n"));
        assert!(s.ends_with('}'));
    }

    #[test]
    fn metadata_header_leads_the_document() {
        let doc = with_metadata(
            Json::obj([("series", Json::arr([Json::from(1.0f64)]))]),
            Json::obj([("figure", Json::from("fig6"))]),
        );
        let Json::Obj(pairs) = &doc else {
            panic!("expected object")
        };
        let keys: Vec<&str> = pairs.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(
            keys,
            ["schema_version", "git_commit", "run_config", "series"]
        );
        let s = doc.pretty();
        assert!(s.contains("\"schema_version\": 1"));
        assert!(s.contains("\"figure\": \"fig6\""));
        // git_commit is a 40-hex SHA in a checkout, "unknown" otherwise;
        // either way it is a non-empty string.
        assert!(!git_commit().is_empty());
    }

    #[test]
    fn metadata_wraps_non_object_documents() {
        let doc = with_metadata(Json::arr([Json::from(1usize)]), Json::Null);
        let s = doc.pretty();
        assert!(s.contains("\"data\": ["));
    }

    #[test]
    fn parse_round_trips_pretty_output() {
        let doc = with_metadata(
            Json::obj([
                ("makespan_s", Json::from(12.375f64)),
                ("shapes", Json::arr(["square-corner", "block-rectangle"])),
                ("nested", Json::obj([("p99", Json::from(1.5e-3f64))])),
                ("note", Json::from("quote \" backslash \\ newline \n")),
                ("flag", Json::from(true)),
                ("missing", Json::Null),
            ]),
            Json::obj([("n", Json::from(25_600usize))]),
        );
        let parsed = Json::parse(&doc.pretty()).expect("round trip");
        assert_eq!(parsed, doc);
        assert_eq!(
            parsed.path("nested.p99").and_then(Json::as_f64),
            Some(1.5e-3)
        );
        assert_eq!(
            parsed
                .get("shapes")
                .and_then(Json::as_arr)
                .map(<[Json]>::len),
            Some(2)
        );
        assert_eq!(
            parsed.path("run_config.n").and_then(Json::as_f64),
            Some(25_600.0)
        );
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        assert!(Json::parse("{\"a\": }").is_err());
        assert!(Json::parse("[1, 2").is_err());
        assert!(Json::parse("{\"a\": 1} extra").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn parse_handles_numbers_and_escapes() {
        let v = Json::parse("{\"x\": -1.25e2, \"s\": \"a\\u0041\\n\"}").unwrap();
        assert_eq!(v.get("x").and_then(Json::as_f64), Some(-125.0));
        assert_eq!(v.get("s").and_then(Json::as_str), Some("aA\n"));
    }

    #[test]
    fn escapes_strings_and_maps_non_finite_to_null() {
        assert_eq!(Json::from("a\"b\\c\n").pretty(), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(Json::Num(f64::NAN).pretty(), "null");
        assert_eq!(Json::Num(f64::INFINITY).pretty(), "null");
    }
}
