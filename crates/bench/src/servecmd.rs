//! The `reproduce serve` subcommand: a soak-style load run of the
//! multi-tenant GEMM service, comparing the FPM-aware scheduler against
//! the FIFO and round-robin baselines on the same seeded job stream.
//!
//! For each policy the same generated load (Poisson arrivals, weighted
//! tenants, per-tenant size tables — see `summagen_service::loadgen`)
//! runs through a fresh service over the hclserver1 device pool, with
//! per-tenant metrics registered on a Prometheus-renderable registry and
//! every dispatch recorded as a `Sched` span into a schedule timeline.
//!
//! Artifacts, all under the output directory:
//!
//! * `LOAD_<mix>.json` — schema-stamped document: per-policy makespan,
//!   throughput, queue/batch/retry counters, per-tenant p50/p95/p99
//!   latency (exact, from the sorted per-job latencies), rejection
//!   counts by reason, and the schedule digest that pins determinism.
//! * `LOAD_<mix>.prom` — the Prometheus exposition of the FPM-aware
//!   run's registry: the same per-tenant series a live scrape of
//!   `examples/prometheus_server.rs --service` serves.
//! * `SCHEDULE_<mix>_<policy>.json` — Perfetto timeline of the run, one
//!   track per pool device tiled with its dispatched batches.
//!
//! When all three policies run (the default), the command exits nonzero
//! unless FPM-aware beats FIFO on *both* makespan and p95 latency —
//! that comparison is the service-level restatement of the paper's
//! claim, and this gate is what the CI load job regression-tests.

use std::fs;
use std::io;
use std::path::Path;
use std::sync::Arc;

use summagen_metrics::MetricsRegistry;
use summagen_platform::profile::hclserver1;
use summagen_service::{
    generate, mix_by_name, DevicePool, GemmService, LoadMix, Policy, ServiceConfig, ServiceMetrics,
    ServiceReport,
};
use summagen_trace::{perfetto_json, TraceRecorder};

use crate::json::{with_metadata, Json};

/// Hockney link parameters of the pool (same intra-node class the other
/// simulated experiments use).
pub const SERVE_ALPHA: f64 = 1e-5;
pub const SERVE_BETA: f64 = 4e-10;

/// One policy's run, kept for the artifact and the comparison gate.
pub struct PolicyRun {
    /// The report of the run.
    pub report: ServiceReport,
    /// The Prometheus exposition of the run's registry.
    pub exposition: String,
    /// Perfetto timeline of the schedule.
    pub perfetto: String,
}

/// Runs one policy over a fresh pool and the given job stream.
pub fn run_policy(mix: &LoadMix, policy: Policy) -> PolicyRun {
    let pool = DevicePool::from_platform(&hclserver1(), SERVE_ALPHA, SERVE_BETA);
    let tenant_names = mix.tenant_names();
    let device_names: Vec<&'static str> = pool.devices().iter().map(|d| d.name).collect();
    let registry = Arc::new(MetricsRegistry::new());
    let metrics = ServiceMetrics::register(&registry, &tenant_names, &device_names);
    let recorder = TraceRecorder::new(pool.devices().len());
    let config = ServiceConfig {
        policy,
        ..ServiceConfig::default()
    };
    let mut service = GemmService::new(pool, config)
        .with_metrics(metrics)
        .with_sink(recorder.clone());
    let report = service.run(generate(mix));
    let trace = recorder.finish();
    PolicyRun {
        exposition: summagen_metrics::prometheus::render(&registry),
        perfetto: perfetto_json(
            &trace,
            &format!("{} schedule ({})", mix.name, policy.name()),
        ),
        report,
    }
}

fn rejection_count(report: &ServiceReport, label: &str) -> usize {
    report
        .rejections
        .iter()
        .filter(|(_, r)| r.label() == label)
        .count()
}

fn policy_json(mix: &LoadMix, run: &PolicyRun) -> Json {
    let report = &run.report;
    let tenants = report.tenant_summaries(mix.tenants.len());
    Json::obj([
        ("policy", Json::from(report.policy.name())),
        ("makespan_s", Json::from(report.makespan)),
        ("throughput_jobs_per_s", Json::from(report.throughput())),
        ("completed", Json::from(report.completed())),
        ("failed", Json::from(report.failed())),
        ("rejected", Json::from(report.rejections.len())),
        ("p50_s", Json::from(report.latency_quantile(0.50))),
        ("p95_s", Json::from(report.latency_quantile(0.95))),
        ("p99_s", Json::from(report.latency_quantile(0.99))),
        ("peak_queue_depth", Json::from(report.peak_queue_depth)),
        ("batches", Json::from(report.batches)),
        ("retries", Json::from(report.retries)),
        (
            "schedule_digest",
            Json::from(format!("{:016x}", report.schedule_digest)),
        ),
        (
            "device_busy_s",
            Json::arr(
                report
                    .device_names
                    .iter()
                    .zip(&report.device_busy)
                    .map(|(name, &busy)| {
                        Json::obj([("device", Json::from(*name)), ("busy_s", Json::from(busy))])
                    }),
            ),
        ),
        (
            "rejections_by_reason",
            Json::obj([
                (
                    "queue-full",
                    Json::from(rejection_count(report, "queue-full")),
                ),
                (
                    "quota-exceeded",
                    Json::from(rejection_count(report, "quota-exceeded")),
                ),
                (
                    "too-large",
                    Json::from(rejection_count(report, "too-large")),
                ),
            ]),
        ),
        (
            "tenants",
            Json::arr(tenants.iter().map(|t| {
                Json::obj([
                    ("tenant", Json::from(mix.tenants[t.tenant].name)),
                    ("submitted", Json::from(t.submitted)),
                    ("completed", Json::from(t.completed)),
                    ("failed", Json::from(t.failed)),
                    ("rejected", Json::from(t.rejected)),
                    ("p50_s", Json::from(t.p50)),
                    ("p95_s", Json::from(t.p95)),
                    ("p99_s", Json::from(t.p99)),
                    ("mean_s", Json::from(t.mean)),
                    ("max_s", Json::from(t.max)),
                    ("deadline_misses", Json::from(t.deadline_misses)),
                ])
            })),
        ),
    ])
}

/// The serve document for a mix across the given policy runs.
pub fn serve_json(mix: &LoadMix, runs: &[PolicyRun]) -> Json {
    let doc = Json::obj([
        ("mix", Json::from(mix.name)),
        (
            "policies",
            Json::arr(runs.iter().map(|r| policy_json(mix, r))),
        ),
    ]);
    with_metadata(
        doc,
        Json::obj([
            (
                "command",
                Json::from(format!("reproduce serve --mix {}", mix.name)),
            ),
            ("seed", Json::from(mix.seed)),
            ("arrival_rate_jobs_per_s", Json::from(mix.arrival_rate)),
            ("jobs", Json::from(mix.jobs)),
            (
                "tenants",
                Json::arr(mix.tenants.iter().map(|t| Json::from(t.name))),
            ),
            ("alpha_s", Json::from(SERVE_ALPHA)),
            ("beta_s_per_byte", Json::from(SERVE_BETA)),
        ]),
    )
}

fn print_comparison(mix: &LoadMix, runs: &[PolicyRun]) {
    println!(
        "\nSERVE — multi-tenant GEMM service, mix '{}' ({} jobs, seed {})",
        mix.name, mix.jobs, mix.seed
    );
    println!(
        "{:>12}{:>12}{:>12}{:>10}{:>10}{:>10}{:>8}{:>10}{:>10}",
        "policy", "makespan", "thru j/s", "p50 s", "p95 s", "p99 s", "done", "failed", "rejected"
    );
    for run in runs {
        let r = &run.report;
        println!(
            "{:>12}{:>12.3}{:>12.1}{:>10.3}{:>10.3}{:>10.3}{:>8}{:>10}{:>10}",
            r.policy.name(),
            r.makespan,
            r.throughput(),
            r.latency_quantile(0.50),
            r.latency_quantile(0.95),
            r.latency_quantile(0.99),
            r.completed(),
            r.failed(),
            r.rejections.len()
        );
    }
    println!("\n  per-tenant p95 latency (s):");
    print!("{:>12}", "policy");
    for t in &mix.tenants {
        print!("{:>14}", t.name);
    }
    println!();
    for run in runs {
        let summaries = run.report.tenant_summaries(mix.tenants.len());
        print!("{:>12}", run.report.policy.name());
        for s in &summaries {
            print!("{:>14.3}", s.p95);
        }
        println!();
    }
}

/// Runs the serve experiment: the named mix under `policy` (or all three
/// policies when `None`), artifacts into `out_dir`. With all three
/// policies the FPM-vs-FIFO win is asserted and a loss is an `Err`.
pub fn run_serve(
    mix_name: &str,
    policy: Option<Policy>,
    jobs_override: Option<usize>,
    out_dir: &Path,
) -> Result<(), String> {
    let mut mix = mix_by_name(mix_name)
        .ok_or_else(|| format!("unknown mix '{mix_name}'; expected small or hetero"))?;
    if let Some(jobs) = jobs_override {
        mix.jobs = jobs;
    }
    let policies: Vec<Policy> = match policy {
        Some(p) => vec![p],
        None => Policy::ALL.to_vec(),
    };
    let runs: Vec<PolicyRun> = policies.iter().map(|&p| run_policy(&mix, p)).collect();
    print_comparison(&mix, &runs);

    fs::create_dir_all(out_dir).map_err(|e| io_err(out_dir, &e))?;
    let doc_path = out_dir.join(format!("LOAD_{}.json", mix.name));
    fs::write(&doc_path, serve_json(&mix, &runs).pretty()).map_err(|e| io_err(&doc_path, &e))?;
    for run in &runs {
        let sched_path = out_dir.join(format!(
            "SCHEDULE_{}_{}.json",
            mix.name,
            run.report.policy.name()
        ));
        fs::write(&sched_path, &run.perfetto).map_err(|e| io_err(&sched_path, &e))?;
        if run.report.policy == Policy::FpmAware {
            let prom_path = out_dir.join(format!("LOAD_{}.prom", mix.name));
            fs::write(&prom_path, &run.exposition).map_err(|e| io_err(&prom_path, &e))?;
        }
    }
    println!("\nserve artifacts written to {}", out_dir.display());

    let fifo = runs.iter().find(|r| r.report.policy == Policy::Fifo);
    let fpm = runs.iter().find(|r| r.report.policy == Policy::FpmAware);
    if let (Some(fifo), Some(fpm)) = (fifo, fpm) {
        let (fm, pm) = (fifo.report.makespan, fpm.report.makespan);
        let (f95, p95) = (
            fifo.report.latency_quantile(0.95),
            fpm.report.latency_quantile(0.95),
        );
        println!(
            "  fpm-aware vs fifo: makespan {:.3}x, p95 {:.3}x",
            fm / pm,
            f95 / p95
        );
        if pm >= fm || p95 >= f95 {
            return Err(format!(
                "FPM-aware failed to beat FIFO: makespan {pm:.3} vs {fm:.3}, p95 {p95:.3} vs {f95:.3}"
            ));
        }
    }
    Ok(())
}

fn io_err(path: &Path, e: &io::Error) -> String {
    format!("{}: {e}", path.display())
}

#[cfg(test)]
mod tests {
    use super::*;
    use summagen_service::small_mix;

    fn tiny_mix() -> LoadMix {
        let mut mix = small_mix();
        mix.jobs = 40;
        mix
    }

    #[test]
    fn serve_json_carries_all_policies_and_tenants() {
        let mix = tiny_mix();
        let runs: Vec<PolicyRun> = Policy::ALL.iter().map(|&p| run_policy(&mix, p)).collect();
        let doc = serve_json(&mix, &runs);
        let policies = doc.get("policies").and_then(Json::as_arr).unwrap();
        assert_eq!(policies.len(), 3);
        for p in policies {
            let tenants = p.get("tenants").and_then(Json::as_arr).unwrap();
            assert_eq!(tenants.len(), 3);
            assert!(p.path("rejections_by_reason.queue-full").is_some());
            assert!(p.get("schedule_digest").and_then(Json::as_str).is_some());
        }
        assert_eq!(
            doc.path("run_config.seed").and_then(Json::as_f64),
            Some(mix.seed as f64)
        );
        // The document round-trips through the parser (artifact sanity).
        assert_eq!(Json::parse(&doc.pretty()).unwrap(), doc);
    }

    #[test]
    fn exposition_has_per_tenant_series_and_perfetto_has_device_tracks() {
        let mix = tiny_mix();
        let run = run_policy(&mix, Policy::FpmAware);
        assert!(run.exposition.contains("summagen_service_jobs_total"));
        assert!(
            run.exposition.contains("tenant=\"free\""),
            "{}",
            run.exposition
        );
        assert!(run.exposition.contains("summagen_service_latency_seconds"));
        assert!(
            run.perfetto.contains("\"sched\""),
            "no sched spans in timeline"
        );
    }

    #[test]
    fn policy_runs_are_deterministic() {
        let mix = tiny_mix();
        let a = run_policy(&mix, Policy::FpmAware);
        let b = run_policy(&mix, Policy::FpmAware);
        assert_eq!(a.report.schedule_digest, b.report.schedule_digest);
        assert_eq!(a.exposition, b.exposition);
        assert_eq!(a.perfetto, b.perfetto);
    }
}
