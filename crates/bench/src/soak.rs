//! The `reproduce soak` subcommand: a seeded lossy-link chaos soak over
//! the four paper shapes, plus its machine-readable artifact.
//!
//! Two scenarios per shape, both on the Hockney intra-node cost model so
//! transport overhead lands in the virtual makespan:
//!
//! * a **lossy** run per seed — every link drops, duplicates, reorders
//!   and delays packets per the seeded [`summagen_comm::LinkPlan`], with
//!   the heartbeat detector armed. No rank fails, so the run must finish
//!   on the first attempt with zero suspicions and a product
//!   **bit-identical** to the reliable-link run of the same partition;
//!   the stop-and-wait retransmissions only inflate the makespan. The
//!   per-run metrics bundle supplies the delivered / retransmitted /
//!   duplicated / suppressed packet counts.
//! * a **hang** run — one rank goes *silent* mid-multiply (no panic, no
//!   death notice) on otherwise lossy links. The heartbeat watchdog must
//!   suspect it, post the death notice, and let shrink-and-retry finish
//!   on the survivors with the product still matching the fault-free
//!   reference. The artifact records the detection latency and the
//!   announced-vs-detected split of the recovery report.
//!
//! Artifacts: one schema-stamped `SOAK_<shape>.json` per shape. Any
//! correctness mismatch panics, which is what fails the CI soak job.

use std::fs;
use std::io;
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

use summagen_comm::{Backend, HeartbeatConfig, HockneyModel, LinkPlan, RuntimeMetrics};
use summagen_core::{multiply_with_recovery, ExecutionMode, RecoveryOptions, RecoveryReport};
use summagen_matrix::{gemm_naive, max_abs_diff, random_matrix, DenseMatrix};
use summagen_partition::{Shape, ALL_FOUR_SHAPES};

use crate::json::{with_metadata, Json};
use crate::CPM_SPEEDS;

/// Problem size of the soak runs: large enough for multiple panels of
/// real traffic per shape, small enough that the full grid stays a
/// smoke test.
pub const SOAK_N: usize = 64;

/// Base seeds of the soak grid. The CI soak matrix adds one extra seed
/// per job via `SUMMAGEN_CHAOS_SEED`, widening the grid covered across
/// the matrix beyond any single local run.
pub const SOAK_SEEDS: [u64; 3] = [1, 2, 3];

/// Wire-fault rates of the lossy scenario, in permille. They are
/// aggressive — 12 % drops, 8 % duplicates, 6 % reorders, 4 % delays of
/// 100 µs — because the staged executor moves whole panels in few, large
/// messages; at soak sizes a run only pushes on the order of ten
/// packets, so polite real-network rates would leave most seeds
/// fault-free.
pub const SOAK_DROP_PERMILLE: u16 = 120;
pub const SOAK_DUP_PERMILLE: u16 = 80;
pub const SOAK_REORDER_PERMILLE: u16 = 60;
pub const SOAK_DELAY_PERMILLE: u16 = 40;
pub const SOAK_DELAY_SECS: f64 = 1e-4;

/// Rank that goes silent in the hang scenario, and the op count at which
/// it stops responding. Hanging the *last* rank means the shrunken retry
/// (one fewer rank) no longer has a rank by that id, so recovery
/// converges after a single shrink. The op index is early enough that
/// every shape reaches it — the 1D shapes give the last rank only a
/// handful of p2p operations at soak sizes.
pub const SOAK_HANG_RANK: usize = 2;
pub const SOAK_HANG_AT_OP: u64 = 2;

/// Human-readable reproduction context for failure messages: the active
/// backend and the raw `SUMMAGEN_CHAOS_SEED` environment value, so a red
/// soak log alone is enough to rerun the exact scenario.
pub fn chaos_context(backend: Backend) -> String {
    let seed_env = std::env::var("SUMMAGEN_CHAOS_SEED").unwrap_or_else(|_| "<unset>".into());
    format!("backend={} SUMMAGEN_CHAOS_SEED={seed_env}", backend.name())
}

/// The seed list with any `SUMMAGEN_CHAOS_SEED` from the environment
/// folded in (the CI soak matrix sets one per job).
pub fn soak_seeds() -> Vec<u64> {
    let mut seeds = SOAK_SEEDS.to_vec();
    if let Ok(v) = std::env::var("SUMMAGEN_CHAOS_SEED") {
        if let Ok(s) = v.trim().parse::<u64>() {
            if !seeds.contains(&s) {
                seeds.push(s);
            }
        }
    }
    seeds
}

/// The seeded wire-fault plan of the lossy scenario.
pub fn lossy_plan(seed: u64) -> LinkPlan {
    LinkPlan::seeded(seed)
        .drop_rate(SOAK_DROP_PERMILLE)
        .duplicate_rate(SOAK_DUP_PERMILLE)
        .reorder_rate(SOAK_REORDER_PERMILLE)
        .delay_rate(SOAK_DELAY_PERMILLE, SOAK_DELAY_SECS)
}

fn recovery_options(
    link: LinkPlan,
    metrics: Arc<RuntimeMetrics>,
    backend: Backend,
) -> RecoveryOptions {
    RecoveryOptions {
        max_attempts: 4,
        retry_backoff: 0.25,
        // Must dwarf the heartbeat suspicion threshold: the detector has
        // to fire well before any peer gives up on a receive.
        recv_timeout: Duration::from_millis(2_000),
        link_plan: Some(link),
        heartbeat: Some(HeartbeatConfig::default()),
        metrics: Some(metrics),
        backend,
    }
}

fn reference(a: &DenseMatrix, b: &DenseMatrix) -> DenseMatrix {
    let n = a.rows();
    let mut c = DenseMatrix::zeros(n, n);
    gemm_naive(
        n,
        n,
        n,
        1.0,
        a.as_slice(),
        n,
        b.as_slice(),
        n,
        0.0,
        c.as_mut_slice(),
        n,
    );
    c
}

/// One `(shape, seed)` cell of the lossy grid.
#[derive(Debug)]
pub struct LossyRun {
    pub seed: u64,
    /// Wire packets delivered (first copies).
    pub delivered: u64,
    /// Retransmissions after wire drops.
    pub retransmits: u64,
    /// Extra copies injected by duplication.
    pub duplicates: u64,
    /// Duplicate packets suppressed at the receiver.
    pub dup_dropped: u64,
    /// Heartbeats emitted across the run.
    pub heartbeats: u64,
    /// Watchdog suspicions — must be zero (nobody hung).
    pub suspicions: u64,
    /// Virtual makespan of the lossy run.
    pub exec_lossy: f64,
    /// Virtual makespan of the reliable-link run on the same partition.
    pub exec_reliable: f64,
    /// `100 · (exec_lossy − exec_reliable) / exec_reliable`.
    pub inflation_pct: f64,
    /// Whether the lossy product matched the reliable product exactly.
    pub bit_identical: bool,
    /// `max |C − C_ref|` against the naive fault-free reference.
    pub max_err: f64,
}

/// The hang scenario's outcome for one shape.
#[derive(Debug)]
pub struct HangRun {
    pub seed: u64,
    /// The recovery report of the successful run (a hang always forces
    /// at least one retry).
    pub report: RecoveryReport,
    /// Watchdog suspicions across all attempts.
    pub suspicions: u64,
    /// `max |C − C_ref|` against the naive fault-free reference.
    pub max_err: f64,
}

/// Everything measured about one shape's soak.
#[derive(Debug)]
pub struct SoakShapeRun {
    pub shape: Shape,
    pub n: usize,
    pub backend: Backend,
    pub lossy: Vec<LossyRun>,
    pub hang: HangRun,
}

/// Runs the lossy grid and the hang scenario for one shape over the
/// given backend.
pub fn soak_shape_run(n: usize, shape: Shape, seeds: &[u64], backend: Backend) -> SoakShapeRun {
    let a = random_matrix(n, n, 51);
    let b = random_matrix(n, n, 52);
    let want = reference(&a, &b);
    let cost = HockneyModel::intra_node();
    let mode = ExecutionMode::Real;
    let ctx = chaos_context(backend);

    // Reliable-link baseline: the identical executor and partition with
    // the fault injection disengaged, on the same backend. Fault-free,
    // so it never retries and its product is the bit-exactness
    // yardstick.
    let reliable = multiply_with_recovery(
        shape,
        &CPM_SPEEDS,
        &a,
        &b,
        mode,
        cost,
        &[],
        &RecoveryOptions {
            backend,
            ..RecoveryOptions::default()
        },
    )
    .unwrap_or_else(|e| panic!("{} [{ctx}]: reliable run failed: {e}", shape.name()));
    assert!(
        reliable.recovery.is_none(),
        "{} [{ctx}]: reliable run must not recover",
        shape.name()
    );

    let mut lossy = Vec::new();
    for &seed in seeds {
        let m = RuntimeMetrics::fresh();
        let opts = recovery_options(lossy_plan(seed), m.clone(), backend);
        let run = multiply_with_recovery(shape, &CPM_SPEEDS, &a, &b, mode, cost, &[], &opts)
            .unwrap_or_else(|e| {
                panic!(
                    "{} seed {seed} [{ctx}]: lossy run failed: {e}",
                    shape.name()
                )
            });
        assert!(
            run.recovery.is_none(),
            "{} seed {seed} [{ctx}]: wire faults alone must not trigger recovery",
            shape.name()
        );
        let diff = max_abs_diff(&run.c, &reliable.c);
        lossy.push(LossyRun {
            seed,
            delivered: m.transport_delivered.get(),
            retransmits: m.transport_retransmits.get(),
            duplicates: m.transport_duplicates.get(),
            dup_dropped: m.transport_dup_dropped.get(),
            heartbeats: m.heartbeats.get(),
            suspicions: m.suspicions.get(),
            exec_lossy: run.exec_time,
            exec_reliable: reliable.exec_time,
            inflation_pct: 100.0 * (run.exec_time - reliable.exec_time)
                / reliable.exec_time.max(1e-300),
            bit_identical: diff == 0.0,
            max_err: max_abs_diff(&run.c, &want),
        });
    }

    // Hang scenario: same lossy wire, plus one rank going silent. The
    // first seed keeps the artifact deterministic per shape.
    let hang_seed = seeds[0];
    let m = RuntimeMetrics::fresh();
    let plan = lossy_plan(hang_seed).hang_rank(SOAK_HANG_RANK, SOAK_HANG_AT_OP);
    let opts = recovery_options(plan, m.clone(), backend);
    let run = multiply_with_recovery(shape, &CPM_SPEEDS, &a, &b, mode, cost, &[], &opts)
        .unwrap_or_else(|e| panic!("{} [{ctx}]: hang run failed to recover: {e}", shape.name()));
    let report = run
        .recovery
        .clone()
        .unwrap_or_else(|| panic!("{} [{ctx}]: a hung rank must force a retry", shape.name()));
    let hang = HangRun {
        seed: hang_seed,
        report,
        suspicions: m.suspicions.get(),
        max_err: max_abs_diff(&run.c, &want),
    };

    SoakShapeRun {
        shape,
        n,
        backend,
        lossy,
        hang,
    }
}

/// The schema-stamped `SOAK_<shape>.json` document.
pub fn soak_json(run: &SoakShapeRun, seeds: &[u64]) -> Json {
    let hang = &run.hang;
    let rep = &hang.report;
    let doc = Json::obj([
        (
            "lossy",
            Json::Arr(
                run.lossy
                    .iter()
                    .map(|r| {
                        Json::obj([
                            ("seed", Json::from(r.seed)),
                            ("delivered", Json::from(r.delivered)),
                            ("retransmits", Json::from(r.retransmits)),
                            ("duplicates", Json::from(r.duplicates)),
                            ("dup_dropped", Json::from(r.dup_dropped)),
                            ("heartbeats", Json::from(r.heartbeats)),
                            ("suspicions", Json::from(r.suspicions)),
                            ("exec_lossy_s", Json::from(r.exec_lossy)),
                            ("exec_reliable_s", Json::from(r.exec_reliable)),
                            ("makespan_inflation_pct", Json::from(r.inflation_pct)),
                            ("bit_identical", Json::from(r.bit_identical)),
                            ("max_abs_err", Json::from(r.max_err)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "hang",
            Json::obj([
                ("seed", Json::from(hang.seed)),
                ("hang_rank", Json::from(SOAK_HANG_RANK)),
                ("hang_at_op", Json::from(SOAK_HANG_AT_OP)),
                ("attempts", Json::from(rep.attempts)),
                (
                    "failed_devices",
                    Json::arr(rep.failed_devices.iter().copied().map(Json::from)),
                ),
                ("announced_failures", Json::from(rep.announced_failures)),
                ("detected_failures", Json::from(rep.detected_failures)),
                ("detection_latency_s", Json::from(rep.max_detection_latency)),
                ("suspicions", Json::from(hang.suspicions)),
                ("recompute_fraction", Json::from(rep.recompute_fraction)),
                ("max_abs_err", Json::from(hang.max_err)),
            ]),
        ),
    ]);
    with_metadata(
        doc,
        Json::obj([
            ("command", Json::from("reproduce soak")),
            ("backend", Json::from(run.backend.name())),
            ("n", Json::from(run.n)),
            ("shape", Json::from(run.shape.name())),
            ("seeds", Json::arr(seeds.iter().copied().map(Json::from))),
            ("drop_permille", Json::from(u64::from(SOAK_DROP_PERMILLE))),
            ("dup_permille", Json::from(u64::from(SOAK_DUP_PERMILLE))),
            (
                "reorder_permille",
                Json::from(u64::from(SOAK_REORDER_PERMILLE)),
            ),
            ("delay_permille", Json::from(u64::from(SOAK_DELAY_PERMILLE))),
            (
                "cpm_speeds",
                Json::arr(CPM_SPEEDS.iter().copied().map(Json::from)),
            ),
        ]),
    )
}

fn shape_slug(shape: Shape) -> String {
    shape.name().replace(' ', "-")
}

/// Runs the soak over the four paper shapes on the given backend,
/// writing `SOAK_<shape>.json` (or `SOAK_<shape>_tcp.json` for the TCP
/// backend) into `out_dir` and printing the chaos table. Panics (failing
/// CI) if a lossy run is not bit-identical to its reliable-link twin, if
/// the detector raised a false suspicion, or if the hang was not
/// *detected* (as opposed to announced) and recovered with a correct
/// product. Every panic message carries the backend and the raw
/// `SUMMAGEN_CHAOS_SEED` so the failing cell can be replayed.
pub fn run_soak(n: usize, out_dir: &Path, backend: Backend) -> io::Result<()> {
    fs::create_dir_all(out_dir)?;
    let seeds = soak_seeds();
    let ctx = chaos_context(backend);
    println!(
        "\nSOAK — lossy-link chaos + silent-hang detection (N = {n}, seeds {seeds:?}, backend {}), output in {}",
        backend.name(),
        out_dir.display()
    );
    println!(
        "{:>20}{:>6}{:>10}{:>8}{:>7}{:>9}{:>9}{:>9}{:>10}{:>9}",
        "shape",
        "seed",
        "delivered",
        "retx",
        "dups",
        "dropped",
        "inflat%",
        "bitid",
        "detect(s)",
        "attempts"
    );
    for shape in ALL_FOUR_SHAPES {
        let run = soak_shape_run(n, shape, &seeds, backend);
        for r in &run.lossy {
            assert!(
                r.bit_identical,
                "{} seed {} [{ctx}]: lossy product diverged from the reliable-link run",
                shape.name(),
                r.seed
            );
            assert!(
                r.max_err < 1e-9,
                "{} seed {} [{ctx}]: lossy product wrong (err {:.2e})",
                shape.name(),
                r.seed,
                r.max_err
            );
            assert_eq!(
                r.suspicions,
                0,
                "{} seed {} [{ctx}]: false suspicion on a healthy run",
                shape.name(),
                r.seed
            );
            println!(
                "{:>20}{:>6}{:>10}{:>8}{:>7}{:>9}{:>8.2}%{:>9}{:>10}{:>9}",
                shape.name(),
                r.seed,
                r.delivered,
                r.retransmits,
                r.duplicates,
                r.dup_dropped,
                r.inflation_pct,
                if r.bit_identical { "yes" } else { "NO" },
                "-",
                1,
            );
        }
        // Per-seed retransmit counts can legitimately be zero (a run is
        // only ~10 packets), but across the whole seed list the 12 %
        // drop rate must bite at least once per shape.
        let total_retx: u64 = run.lossy.iter().map(|r| r.retransmits).sum();
        assert!(
            total_retx > 0,
            "{} [{ctx}]: no retransmissions across seeds {seeds:?}",
            shape.name()
        );
        let hang = &run.hang;
        let rep = &hang.report;
        assert!(
            rep.detected_failures >= 1,
            "{} [{ctx}]: the silent hang was never *detected* (announced: {})",
            shape.name(),
            rep.announced_failures
        );
        assert!(
            rep.max_detection_latency > 0.0,
            "{} [{ctx}]: detection latency missing from the report",
            shape.name()
        );
        assert!(
            hang.suspicions >= 1,
            "{} [{ctx}]: the watchdog never suspected anyone",
            shape.name()
        );
        assert!(
            rep.failed_devices.contains(&SOAK_HANG_RANK),
            "{} [{ctx}]: recovery dropped {:?}, not the hung rank {SOAK_HANG_RANK}",
            shape.name(),
            rep.failed_devices
        );
        assert!(
            hang.max_err < 1e-9,
            "{} [{ctx}]: recovered product wrong (err {:.2e})",
            shape.name(),
            hang.max_err
        );
        println!(
            "{:>20}{:>6}{:>10}{:>8}{:>7}{:>9}{:>9}{:>9}{:>10.3}{:>9}",
            shape.name(),
            hang.seed,
            "-",
            "-",
            "-",
            "-",
            "-",
            "-",
            rep.max_detection_latency,
            rep.attempts,
        );

        // Channel keeps the historical artifact names so committed
        // baselines and dashboards stay addressable; other backends tag
        // the filename so one out_dir can hold both sides of a parity
        // run.
        let slug = shape_slug(shape);
        let path = match backend {
            Backend::Channel => out_dir.join(format!("SOAK_{slug}.json")),
            other => out_dir.join(format!("SOAK_{slug}_{}.json", other.name())),
        };
        fs::write(&path, soak_json(&run, &seeds).pretty())?;
    }
    println!("\nall lossy runs bit-identical; every silent hang detected by heartbeat suspicion");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lossy_soak_is_bit_identical_and_counts_retransmits() {
        let run = soak_shape_run(32, Shape::OneDRectangular, &SOAK_SEEDS, Backend::Channel);
        assert_eq!(run.lossy.len(), SOAK_SEEDS.len());
        for r in &run.lossy {
            assert!(r.bit_identical, "seed {}: lossy product diverged", r.seed);
            assert!(r.max_err < 1e-9);
            assert_eq!(r.suspicions, 0, "false suspicion on a healthy run");
            assert!(r.delivered > 0);
            assert!(r.heartbeats > 0, "ranks must emit heartbeats");
        }
        // Per-seed counts can be zero on a ~10-packet run; the seed list
        // as a whole must see drops, and those drops must cost virtual
        // time on the run that retransmitted.
        let total_retx: u64 = run.lossy.iter().map(|r| r.retransmits).sum();
        assert!(total_retx > 0, "12% drops must force retransmissions");
        assert!(
            run.lossy
                .iter()
                .filter(|r| r.retransmits > 0)
                .all(|r| r.exec_lossy > r.exec_reliable),
            "retransmission timeouts must inflate the makespan"
        );
    }

    #[test]
    fn lossy_soak_over_tcp_matches_the_channel_backend() {
        // The same seeded chaos over loopback TCP: still first-attempt,
        // still zero suspicions, and the product is bit-identical to the
        // reliable run — which in turn is bit-identical to the channel
        // run of the other tests, so the two backends agree.
        let run = soak_shape_run(32, Shape::OneDRectangular, &[2], Backend::Tcp);
        assert_eq!(run.backend, Backend::Tcp);
        for r in &run.lossy {
            assert!(
                r.bit_identical,
                "seed {}: TCP lossy product diverged",
                r.seed
            );
            assert!(r.max_err < 1e-9);
            assert_eq!(r.suspicions, 0, "false suspicion on a healthy TCP run");
            assert!(r.delivered > 0);
        }
    }

    #[test]
    fn hang_soak_detects_and_recovers() {
        let run = soak_shape_run(32, Shape::SquareCorner, &[2], Backend::Channel);
        let rep = &run.hang.report;
        assert!(rep.attempts >= 2, "a hang must force a retry");
        assert!(rep.detected_failures >= 1, "hang must be detected");
        assert!(rep.max_detection_latency > 0.0);
        assert!(run.hang.suspicions >= 1);
        assert!(rep.failed_devices.contains(&SOAK_HANG_RANK));
        assert!(run.hang.max_err < 1e-9);
    }

    #[test]
    fn soak_json_is_schema_stamped() {
        let run = soak_shape_run(32, Shape::OneDRectangular, &[1], Backend::Channel);
        let doc = soak_json(&run, &[1]).pretty();
        assert!(doc.contains("\"schema_version\""));
        assert!(doc.contains("\"command\": \"reproduce soak\""));
        assert!(doc.contains("\"backend\": \"channel\""));
        assert!(doc.contains("\"retransmits\""));
        assert!(doc.contains("\"detection_latency_s\""));
        assert!(doc.contains("\"recompute_fraction\""));
        assert!(doc.contains("\"bit_identical\": true"));
    }

    #[test]
    fn soak_seeds_fold_the_chaos_env_seed() {
        // Can't set the env var safely in a threaded test harness; just
        // pin the base list the CI matrix extends.
        assert_eq!(SOAK_SEEDS, [1, 2, 3]);
    }
}
